#include "query/dag.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "query/plan.h"

namespace anker::query {

namespace {

bool IsNumeric(ExprType type) {
  return type == ExprType::kInt64 || type == ExprType::kDouble;
}

void AddName(const std::string& name, std::vector<std::string>* names) {
  for (const std::string& n : *names) {
    if (n == name) return;
  }
  names->push_back(name);
}

void CollectColumnNames(const ExprNode* node,
                        std::vector<std::string>* names) {
  if (node == nullptr) return;
  if (node->kind == ExprKind::kColumn) {
    AddName(node->name, names);
    return;
  }
  CollectColumnNames(node->lhs.get(), names);
  CollectColumnNames(node->rhs.get(), names);
}

void CollectExprColumnNames(const Expr& expr,
                            std::vector<std::string>* names) {
  if (expr.valid()) CollectColumnNames(expr.node(), names);
}

int FindSlot(const std::vector<DagOutCol>& schema, const std::string& name) {
  for (size_t i = 0; i < schema.size(); ++i) {
    if (schema[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Result<uint16_t> ResolveSlot(const std::vector<DagOutCol>& schema,
                             const std::string& name,
                             const std::string& where) {
  const int slot = FindSlot(schema, name);
  if (slot < 0) {
    return Status::NotFound("no column '" + name + "' " + where);
  }
  return static_cast<uint16_t>(slot);
}

void FlattenAnd(const Expr& expr, std::vector<Expr>* out) {
  if (!expr.valid()) return;
  if (expr.node()->kind == ExprKind::kAnd) {
    FlattenAnd(Expr(expr.node()->lhs), out);
    FlattenAnd(Expr(expr.node()->rhs), out);
    return;
  }
  out->push_back(expr);
}

bool SchemaCovers(const std::vector<DagOutCol>& schema,
                  const std::vector<std::string>& names) {
  for (const std::string& n : names) {
    if (FindSlot(schema, n) < 0) return false;
  }
  return true;
}

Status CheckBool(const Expr& expr, const std::vector<DagOutCol>& schema,
                 const std::string& what) {
  auto type = TypeCheckTuple(expr, schema);
  if (!type.ok()) return type.status();
  if (type.value() != ExprType::kBool) {
    return Status::InvalidArgument(what + " must be boolean, got " +
                                   ExprTypeName(type.value()));
  }
  return Status::OK();
}

std::vector<DagOutCol> ScanSchema(
    storage::Table* table, const std::vector<storage::Column*>& columns) {
  std::vector<DagOutCol> schema;
  schema.reserve(columns.size());
  for (storage::Column* column : columns) {
    DagOutCol out;
    out.name = column->name();
    out.type = ExprTypeFor(column->type());
    if (out.type == ExprType::kDict) {
      out.dict = table->GetDictionary(out.name);
    }
    schema.push_back(std::move(out));
  }
  return schema;
}

/// Builds the scan of one base-table input: lowers `filter` into scan
/// predicates, then materializes every globally referenced column the
/// table provides. A scan always projects at least one column (row
/// counting needs a spine even when nothing is referenced).
Result<DagScan> BuildTableScan(storage::Table* table, const Expr& filter,
                               const std::vector<std::string>& all_names) {
  DagScan scan;
  scan.table = table;
  ColumnSet cols(table);
  ANKER_RETURN_IF_ERROR(
      LowerFilter(filter, &cols, &scan.preds, &scan.generic_preds));
  for (const std::string& name : all_names) {
    if (table->HasColumn(name)) {
      ANKER_RETURN_IF_ERROR(cols.Use(name).status());
    }
  }
  if (cols.columns().empty()) {
    if (table->schema().empty()) {
      return Status::InvalidArgument("table '" + table->name() +
                                     "' has no columns");
    }
    ANKER_RETURN_IF_ERROR(cols.Use(table->schema()[0].name).status());
  }
  scan.columns = cols.columns();
  scan.schema = ScanSchema(table, scan.columns);
  return scan;
}

Result<ExprType> TypeCheckTupleNode(const ExprNode* node,
                                    const std::vector<DagOutCol>& schema) {
  switch (node->kind) {
    case ExprKind::kColumn: {
      const int slot = FindSlot(schema, node->name);
      if (slot < 0) {
        return Status::NotFound("no column '" + node->name +
                                "' at this query stage");
      }
      return schema[slot].type;
    }
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return node->type;
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      auto lhs = TypeCheckTupleNode(node->lhs.get(), schema);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckTupleNode(node->rhs.get(), schema);
      if (!rhs.ok()) return rhs;
      const ExprType lt = lhs.value();
      const ExprType rt = rhs.value();
      if (IsNumeric(lt) && IsNumeric(rt)) {
        return (lt == ExprType::kDouble || rt == ExprType::kDouble)
                   ? ExprType::kDouble
                   : ExprType::kInt64;
      }
      if (node->kind != ExprKind::kMul && lt == ExprType::kDate &&
          rt == ExprType::kInt64) {
        return ExprType::kDate;
      }
      return Status::InvalidArgument(
          std::string("arithmetic requires numeric operands, got ") +
          ExprTypeName(lt) + " and " + ExprTypeName(rt));
    }
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
    case ExprKind::kEq:
    case ExprKind::kNe: {
      auto lhs = TypeCheckTupleNode(node->lhs.get(), schema);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckTupleNode(node->rhs.get(), schema);
      if (!rhs.ok()) return rhs;
      const ExprType lt = lhs.value();
      const ExprType rt = rhs.value();
      if (lt == ExprType::kDict || rt == ExprType::kDict) {
        if (node->kind != ExprKind::kEq && node->kind != ExprKind::kNe) {
          return Status::InvalidArgument(
              "dictionary-encoded values support only == and !=");
        }
        if (lt != rt) {
          return Status::InvalidArgument(std::string("cannot compare ") +
                                         ExprTypeName(lt) + " with " +
                                         ExprTypeName(rt));
        }
        return ExprType::kBool;
      }
      const bool ok = (IsNumeric(lt) && IsNumeric(rt)) ||
                      (lt == ExprType::kDate &&
                       (rt == ExprType::kDate || rt == ExprType::kInt64)) ||
                      (rt == ExprType::kDate && lt == ExprType::kInt64);
      if (!ok) {
        return Status::InvalidArgument(std::string("cannot compare ") +
                                       ExprTypeName(lt) + " with " +
                                       ExprTypeName(rt));
      }
      return ExprType::kBool;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      auto lhs = TypeCheckTupleNode(node->lhs.get(), schema);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckTupleNode(node->rhs.get(), schema);
      if (!rhs.ok()) return rhs;
      if (lhs.value() != ExprType::kBool ||
          rhs.value() != ExprType::kBool) {
        return Status::InvalidArgument(
            std::string("logical operators require bool operands, got ") +
            ExprTypeName(lhs.value()) + " and " +
            ExprTypeName(rhs.value()));
      }
      return ExprType::kBool;
    }
  }
  return Status::Internal("unhandled expression kind");
}

/// The text of a string operand (Str literal or param bound as a string),
/// if `node` is one.
bool StringOperand(const ExprNode* node, const Params& params,
                   std::string* text) {
  if (node->kind == ExprKind::kLiteral && node->is_string) {
    *text = node->text;
    return true;
  }
  if (node->kind == ExprKind::kParam) {
    const Params::Value* value = params.Find(node->name);
    if (value != nullptr && value->is_string) {
      *text = value->text;
      return true;
    }
  }
  return false;
}

Result<std::shared_ptr<const ExprNode>> BindTupleNode(
    const ExprNode* node, const std::vector<DagOutCol>& schema,
    const Params& params) {
  auto out = std::make_shared<ExprNode>();
  out->kind = node->kind;
  switch (node->kind) {
    case ExprKind::kColumn: {
      const int slot = FindSlot(schema, node->name);
      if (slot < 0) {
        return Status::Internal("column '" + node->name +
                                "' missing from stage schema");
      }
      out->name = node->name;
      out->type = schema[slot].type;
      out->raw = static_cast<uint64_t>(slot);
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kLiteral: {
      if (node->is_string) {
        return Status::InvalidArgument(
            "string literal is only valid in a dictionary equality "
            "predicate");
      }
      out->type = node->type;
      out->raw = node->raw;
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kParam: {
      auto value = EvalConstExpr(node, params);
      if (!value.ok()) return value.status();
      out->kind = ExprKind::kLiteral;
      out->type = value.value().type;
      out->raw = value.value().raw;
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kEq:
    case ExprKind::kNe: {
      // Dictionary equality by text: resolve the string side through the
      // compared column's dictionary, mirroring BindOnePred.
      std::string text;
      const ExprNode* col_side = nullptr;
      bool lhs_is_text = false;
      if (StringOperand(node->lhs.get(), params, &text)) {
        col_side = node->rhs.get();
        lhs_is_text = true;
      } else if (StringOperand(node->rhs.get(), params, &text)) {
        col_side = node->lhs.get();
      }
      if (col_side != nullptr) {
        if (col_side->kind != ExprKind::kColumn) {
          return Status::InvalidArgument(
              "string compare requires a dictionary column operand");
        }
        const int slot = FindSlot(schema, col_side->name);
        if (slot < 0) {
          return Status::Internal("column '" + col_side->name +
                                  "' missing from stage schema");
        }
        const DagOutCol& col = schema[slot];
        if (col.type != ExprType::kDict || col.dict == nullptr) {
          return Status::InvalidArgument(
              "string compare against non-dict column '" + col.name + "'");
        }
        auto code = col.dict->Lookup(text);
        if (!code.ok()) {
          return Status::NotFound("value '" + text +
                                  "' not in dictionary of column '" +
                                  col.name + "'");
        }
        auto col_node = std::make_shared<ExprNode>();
        col_node->kind = ExprKind::kColumn;
        col_node->name = col_side->name;
        col_node->type = ExprType::kDict;
        col_node->raw = static_cast<uint64_t>(slot);
        auto lit_node = std::make_shared<ExprNode>();
        lit_node->kind = ExprKind::kLiteral;
        lit_node->type = ExprType::kDict;
        lit_node->raw = storage::EncodeDict(code.value());
        out->lhs = lhs_is_text ? std::shared_ptr<const ExprNode>(lit_node)
                               : std::shared_ptr<const ExprNode>(col_node);
        out->rhs = lhs_is_text ? std::shared_ptr<const ExprNode>(col_node)
                               : std::shared_ptr<const ExprNode>(lit_node);
        return std::shared_ptr<const ExprNode>(std::move(out));
      }
      [[fallthrough]];
    }
    default: {
      auto lhs = BindTupleNode(node->lhs.get(), schema, params);
      if (!lhs.ok()) return lhs.status();
      auto rhs = BindTupleNode(node->rhs.get(), schema, params);
      if (!rhs.ok()) return rhs.status();
      out->lhs = lhs.TakeValue();
      out->rhs = rhs.TakeValue();
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
  }
}

void CollectParamNamesNode(const ExprNode* node,
                           std::vector<std::string>* names) {
  if (node == nullptr) return;
  if (node->kind == ExprKind::kParam) names->push_back(node->name);
  CollectParamNamesNode(node->lhs.get(), names);
  CollectParamNamesNode(node->rhs.get(), names);
}

}  // namespace

Result<ExprType> TypeCheckTuple(const Expr& expr,
                                const std::vector<DagOutCol>& schema) {
  if (!expr.valid()) return Status::InvalidArgument("empty expression");
  return TypeCheckTupleNode(expr.node(), schema);
}

Result<BoundScalar> BindTupleScalar(const Expr& expr,
                                    const std::vector<DagOutCol>& schema,
                                    const Params& params) {
  auto root = BindTupleNode(expr.node(), schema, params);
  if (!root.ok()) return root.status();
  return BoundScalar{root.TakeValue()};
}

void CollectParamNames(const Expr& expr, std::vector<std::string>* names) {
  if (expr.valid()) CollectParamNamesNode(expr.node(), names);
}

Result<Query> BuildDagQuery(const QueryBuilder& b) {
  // ---- overall shape -----------------------------------------------------
  if (b.table_ == nullptr && b.sub_ == nullptr) {
    return Status::InvalidArgument("query needs a table (Query::On)");
  }
  if (b.sub_ != nullptr && b.sub_->dag == nullptr) {
    return Status::Internal("sub-query input carries no DAG plan");
  }
  if (b.aggs_.empty() && !b.group_by_.empty()) {
    return Status::InvalidArgument("GroupBy requires aggregates");
  }
  if (b.aggs_.empty() && b.having_.valid()) {
    return Status::InvalidArgument("Having requires aggregates");
  }
  if (b.aggs_.empty() && b.select_.empty()) {
    return Status::InvalidArgument(
        "query must declare aggregates or a Select projection");
  }
  if (b.limit_ < -1) {
    return Status::InvalidArgument("Limit must be non-negative");
  }
  for (const QueryBuilder::JoinClause& clause : b.joins_) {
    if (clause.input.sub() != nullptr &&
        clause.input.sub()->dag == nullptr) {
      return Status::Internal("join build input carries no DAG plan");
    }
    if (clause.input.sub() == nullptr && clause.input.table() == nullptr) {
      return Status::InvalidArgument(
          "join build input needs a table or a built sub-query");
    }
  }

  // ---- referenced column names (per-join build filters bind against
  //      their build table alone and are excluded) ------------------------
  std::vector<std::string> all_names;
  CollectExprColumnNames(b.filter_, &all_names);
  for (const Agg& agg : b.aggs_) CollectExprColumnNames(agg.expr(), &all_names);
  for (const std::string& g : b.group_by_) AddName(g, &all_names);
  for (const QueryBuilder::JoinClause& clause : b.joins_) {
    for (const std::string& k : clause.probe_keys) AddName(k, &all_names);
    for (const std::string& k : clause.build_keys) AddName(k, &all_names);
    CollectExprColumnNames(clause.residual, &all_names);
  }
  CollectExprColumnNames(b.having_, &all_names);
  for (const WindowDef& w : b.win_funcs_) {
    CollectExprColumnNames(w.input, &all_names);
  }
  for (const std::string& p : b.win_partition_) AddName(p, &all_names);
  for (const SortSpec& s : b.win_order_) AddName(s.column, &all_names);
  CollectExprColumnNames(b.post_filter_, &all_names);
  for (const SelectItem& s : b.select_) AddName(s.column, &all_names);
  for (const SortSpec& s : b.order_by_) AddName(s.column, &all_names);

  // ---- ambiguity: a referenced name must have at most one input source
  //      (self-joins rename through a Select sub-query) -------------------
  auto input_provides = [](const JoinInput& input,
                           const std::string& name) {
    if (input.sub() != nullptr) {
      return FindSlot(input.sub()->dag->schema, name) >= 0;
    }
    return input.table() != nullptr && input.table()->HasColumn(name);
  };
  for (const std::string& name : all_names) {
    int sources = 0;
    const bool base_has =
        b.table_ != nullptr ? b.table_->HasColumn(name)
                            : FindSlot(b.sub_->dag->schema, name) >= 0;
    if (base_has) ++sources;
    for (const QueryBuilder::JoinClause& clause : b.joins_) {
      if (input_provides(clause.input, name)) ++sources;
    }
    if (sources > 1) {
      return Status::InvalidArgument(
          "column '" + name +
          "' is ambiguous across the query's inputs; rename it with "
          "Select in a sub-query");
    }
  }

  // ---- Filter conjuncts: push each to the earliest covering stage --------
  std::vector<Expr> conjuncts;
  FlattenAnd(b.filter_, &conjuncts);
  std::vector<std::pair<Expr, std::vector<std::string>>> pending;
  Expr base_filter;                     // Base-table conjunction.
  std::vector<Expr> base_tuple_filters;  // Sub-input conjuncts.
  for (const Expr& conjunct : conjuncts) {
    std::vector<std::string> names;
    CollectExprColumnNames(conjunct, &names);
    bool base_covers = true;
    for (const std::string& name : names) {
      const bool has = b.table_ != nullptr
                           ? b.table_->HasColumn(name)
                           : FindSlot(b.sub_->dag->schema, name) >= 0;
      if (!has) {
        base_covers = false;
        break;
      }
    }
    if (base_covers) {
      if (b.table_ != nullptr) {
        base_filter =
            base_filter.valid() ? (base_filter && conjunct) : conjunct;
      } else {
        ANKER_RETURN_IF_ERROR(
            CheckBool(conjunct, b.sub_->dag->schema, "Filter"));
        base_tuple_filters.push_back(conjunct);
      }
    } else {
      pending.emplace_back(conjunct, std::move(names));
    }
  }

  // ---- input stage -------------------------------------------------------
  auto dag = std::make_shared<DagPlan>();
  std::vector<DagOutCol> schema;
  if (b.table_ != nullptr) {
    if (base_filter.valid()) {
      auto type = TypeCheck(base_filter, *b.table_);
      if (!type.ok()) return type.status();
      if (type.value() != ExprType::kBool) {
        return Status::InvalidArgument("filter must be boolean, got " +
                                       std::string(ExprTypeName(
                                           type.value())));
      }
    }
    auto scan = BuildTableScan(b.table_, base_filter, all_names);
    if (!scan.ok()) return scan.status();
    dag->scan = scan.TakeValue();
  } else {
    dag->scan.sub = b.sub_;
    dag->scan.schema = b.sub_->dag->schema;
    dag->scan.sub_filters = std::move(base_tuple_filters);
  }
  schema = dag->scan.schema;

  // ---- joins -------------------------------------------------------------
  for (const QueryBuilder::JoinClause& clause : b.joins_) {
    DagJoin join;
    join.type = clause.type;
    if (clause.input.sub() != nullptr) {
      join.build.sub = clause.input.sub();
      join.build.schema = clause.input.sub()->dag->schema;
      if (clause.input.filter().valid()) {
        ANKER_RETURN_IF_ERROR(CheckBool(clause.input.filter(),
                                        join.build.schema,
                                        "join build filter"));
        join.build.sub_filters.push_back(clause.input.filter());
      }
    } else {
      if (clause.input.filter().valid()) {
        auto type = TypeCheck(clause.input.filter(), *clause.input.table());
        if (!type.ok()) return type.status();
        if (type.value() != ExprType::kBool) {
          return Status::InvalidArgument(
              "join build filter must be boolean, got " +
              std::string(ExprTypeName(type.value())));
        }
      }
      auto scan = BuildTableScan(clause.input.table(),
                                 clause.input.filter(), all_names);
      if (!scan.ok()) return scan.status();
      join.build = scan.TakeValue();
    }

    if (clause.probe_keys.size() != clause.build_keys.size()) {
      return Status::InvalidArgument(
          "join key lists must pair up (" +
          std::to_string(clause.probe_keys.size()) + " probe vs " +
          std::to_string(clause.build_keys.size()) + " build keys)");
    }
    for (size_t i = 0; i < clause.probe_keys.size(); ++i) {
      auto pi =
          ResolveSlot(schema, clause.probe_keys[i], "on the probe side");
      if (!pi.ok()) return pi.status();
      auto bi = ResolveSlot(join.build.schema, clause.build_keys[i],
                            "on the build side");
      if (!bi.ok()) return bi.status();
      const DagOutCol& probe_col = schema[pi.value()];
      const DagOutCol& build_col = join.build.schema[bi.value()];
      if (probe_col.type != build_col.type) {
        return Status::InvalidArgument(
            "join key type mismatch: '" + probe_col.name + "' (" +
            ExprTypeName(probe_col.type) + ") vs '" + build_col.name +
            "' (" + ExprTypeName(build_col.type) + ")");
      }
      if (probe_col.type == ExprType::kDict &&
          probe_col.dict != build_col.dict) {
        return Status::InvalidArgument(
            "dictionary join keys must share one dictionary; join on "
            "integer keys instead");
      }
      join.probe_keys.push_back(pi.value());
      join.build_keys.push_back(bi.value());
    }

    if (clause.residual.valid()) {
      std::vector<DagOutCol> combined = schema;
      combined.insert(combined.end(), join.build.schema.begin(),
                      join.build.schema.end());
      std::vector<std::string> rnames;
      CollectExprColumnNames(clause.residual, &rnames);
      for (const std::string& name : rnames) {
        int count = 0;
        for (const DagOutCol& c : combined) {
          if (c.name == name) ++count;
        }
        if (count > 1) {
          return Status::InvalidArgument(
              "join residual column '" + name +
              "' is ambiguous between the probe and build sides");
        }
      }
      ANKER_RETURN_IF_ERROR(
          CheckBool(clause.residual, combined, "join residual"));
      join.residual = clause.residual;
    }

    if (clause.type == JoinType::kInner ||
        clause.type == JoinType::kLeftOuter) {
      std::vector<DagOutCol> out = schema;
      for (size_t s = 0; s < join.build.schema.size(); ++s) {
        bool is_key = false;
        for (const uint16_t k : join.build_keys) {
          if (k == s) {
            is_key = true;
            break;
          }
        }
        if (is_key) continue;
        const DagOutCol& col = join.build.schema[s];
        if (FindSlot(out, col.name) >= 0) {
          return Status::InvalidArgument(
              "join output would contain duplicate column '" + col.name +
              "'");
        }
        join.build_out.push_back(static_cast<uint16_t>(s));
        out.push_back(col);
      }
      if (clause.type == JoinType::kLeftOuter) {
        if (FindSlot(out, "__matched") >= 0) {
          return Status::InvalidArgument(
              "join output would contain duplicate column '__matched'");
        }
        out.push_back(DagOutCol{"__matched", ExprType::kInt64, nullptr});
      }
      join.schema = std::move(out);
    } else {
      join.schema = schema;
    }

    for (auto it = pending.begin(); it != pending.end();) {
      if (SchemaCovers(join.schema, it->second)) {
        ANKER_RETURN_IF_ERROR(CheckBool(it->first, join.schema, "Filter"));
        join.post_filters.push_back(it->first);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    schema = join.schema;
    dag->joins.push_back(std::move(join));
  }
  if (!pending.empty()) {
    std::string missing = pending.front().second.front();
    for (const std::string& name : pending.front().second) {
      if (FindSlot(schema, name) < 0) {
        missing = name;
        break;
      }
    }
    // A name a later stage produces earns a redirect hint; a name no
    // stage produces is plainly unknown.
    bool later_stage = false;
    for (size_t i = 0; i < b.aggs_.size(); ++i) {
      const std::string name = b.aggs_[i].name().empty()
                                   ? "agg" + std::to_string(i)
                                   : b.aggs_[i].name();
      if (name == missing) later_stage = true;
    }
    for (const WindowDef& def : b.win_funcs_) {
      if (def.name == missing) later_stage = true;
    }
    if (!later_stage) {
      return Status::NotFound("no column '" + missing +
                              "' in the query's inputs");
    }
    return Status::InvalidArgument(
        "Filter references '" + missing +
        "', which no scan or join output provides (filter aggregate or "
        "window outputs with Having / PostFilter)");
  }

  // ---- aggregation -------------------------------------------------------
  if (!b.aggs_.empty()) {
    dag->agg.present = true;
    std::vector<DagOutCol> out;
    for (const std::string& g : b.group_by_) {
      auto gi = ResolveSlot(schema, g, "to group by");
      if (!gi.ok()) return gi.status();
      if (FindSlot(out, g) >= 0) {
        return Status::InvalidArgument("duplicate GroupBy column '" + g +
                                       "'");
      }
      dag->agg.group_cols.push_back(gi.value());
      out.push_back(schema[gi.value()]);
    }
    for (size_t i = 0; i < b.aggs_.size(); ++i) {
      const Agg& agg = b.aggs_[i];
      DagAggSpec spec;
      spec.kind = agg.kind();
      spec.name =
          agg.name().empty() ? "agg" + std::to_string(i) : agg.name();
      if (FindSlot(out, spec.name) >= 0) {
        return Status::InvalidArgument("duplicate output name '" +
                                       spec.name + "'");
      }
      if (agg.kind() == AggKind::kCount) {
        if (agg.expr().valid()) {
          return Status::InvalidArgument(
              "count() takes no input expression");
        }
      } else {
        if (!agg.expr().valid()) {
          return Status::InvalidArgument(
              "aggregate '" + spec.name + "' needs an input expression");
        }
        auto type = TypeCheckTuple(agg.expr(), schema);
        if (!type.ok()) return type.status();
        switch (agg.kind()) {
          case AggKind::kSum:
          case AggKind::kAvg:
            if (!IsNumeric(type.value())) {
              return Status::InvalidArgument(
                  "sum/avg input must be numeric, got " +
                  std::string(ExprTypeName(type.value())));
            }
            break;
          case AggKind::kMin:
          case AggKind::kMax:
            if (!IsNumeric(type.value()) &&
                type.value() != ExprType::kDate) {
              return Status::InvalidArgument(
                  "min/max input must be numeric or date, got " +
                  std::string(ExprTypeName(type.value())));
            }
            break;
          case AggKind::kCountDistinct:
            if (type.value() == ExprType::kBool) {
              return Status::InvalidArgument(
                  "count-distinct input must be a value, not a "
                  "predicate");
            }
            break;
          default:
            break;
        }
        spec.expr = agg.expr();
      }
      dag->agg.aggs.push_back(std::move(spec));
      out.push_back(
          DagOutCol{dag->agg.aggs.back().name, ExprType::kDouble, nullptr});
    }
    dag->agg.schema = out;
    schema = std::move(out);
    if (b.having_.valid()) {
      ANKER_RETURN_IF_ERROR(CheckBool(b.having_, schema, "Having"));
      dag->agg.having = b.having_;
    }
  }

  // ---- window functions --------------------------------------------------
  if (b.has_window_) {
    dag->window.present = true;
    if (b.win_funcs_.empty()) {
      return Status::InvalidArgument("Window needs at least one function");
    }
    for (const std::string& p : b.win_partition_) {
      auto pi = ResolveSlot(schema, p, "to partition by");
      if (!pi.ok()) return pi.status();
      dag->window.partition_cols.push_back(pi.value());
    }
    for (const SortSpec& s : b.win_order_) {
      auto si = ResolveSlot(schema, s.column, "to order a window by");
      if (!si.ok()) return si.status();
      if (schema[si.value()].type == ExprType::kDict) {
        return Status::InvalidArgument(
            "cannot order by dictionary column '" + s.column +
            "' (codes are unordered)");
      }
      dag->window.order.push_back(DagSortKey{si.value(), s.desc});
    }
    std::vector<DagOutCol> out = schema;
    for (const WindowDef& w : b.win_funcs_) {
      if (w.name.empty()) {
        return Status::InvalidArgument(
            "window function needs an output name");
      }
      if (FindSlot(out, w.name) >= 0) {
        return Status::InvalidArgument("duplicate output name '" + w.name +
                                       "'");
      }
      DagWinSpec spec;
      spec.name = w.name;
      spec.fn = w.fn;
      switch (w.fn) {
        case WinFn::kRank:
        case WinFn::kRowNumber:
          if (b.win_order_.empty()) {
            return Status::InvalidArgument(
                "rank/row_number need window order keys");
          }
          [[fallthrough]];
        case WinFn::kCount:
          if (w.input.valid()) {
            return Status::InvalidArgument("window function '" + w.name +
                                           "' takes no input");
          }
          break;
        case WinFn::kSum:
        case WinFn::kAvg:
        case WinFn::kMin:
        case WinFn::kMax: {
          if (!w.input.valid()) {
            return Status::InvalidArgument("window function '" + w.name +
                                           "' needs an input expression");
          }
          auto type = TypeCheckTuple(w.input, schema);
          if (!type.ok()) return type.status();
          const bool date_ok =
              w.fn == WinFn::kMin || w.fn == WinFn::kMax;
          if (!IsNumeric(type.value()) &&
              !(date_ok && type.value() == ExprType::kDate)) {
            return Status::InvalidArgument(
                "window aggregate input must be numeric, got " +
                std::string(ExprTypeName(type.value())));
          }
          spec.input = w.input;
          break;
        }
      }
      dag->window.funcs.push_back(std::move(spec));
      out.push_back(DagOutCol{w.name, ExprType::kDouble, nullptr});
    }
    dag->window.schema = out;
    schema = std::move(out);
  }

  // ---- post filter / select / order / limit ------------------------------
  if (b.post_filter_.valid()) {
    ANKER_RETURN_IF_ERROR(CheckBool(b.post_filter_, schema, "PostFilter"));
    dag->final_filter = b.post_filter_;
  }
  if (!b.select_.empty()) {
    std::vector<DagOutCol> out;
    for (const SelectItem& item : b.select_) {
      auto si = ResolveSlot(schema, item.column, "to select");
      if (!si.ok()) return si.status();
      DagOutCol col = schema[si.value()];
      if (!item.alias.empty()) col.name = item.alias;
      if (FindSlot(out, col.name) >= 0) {
        return Status::InvalidArgument("duplicate output name '" +
                                       col.name + "'");
      }
      dag->select.push_back(si.value());
      out.push_back(std::move(col));
    }
    dag->schema = std::move(out);
  } else {
    dag->schema = schema;
  }
  for (const SortSpec& s : b.order_by_) {
    auto si = ResolveSlot(dag->schema, s.column, "to order by");
    if (!si.ok()) return si.status();
    if (dag->schema[si.value()].type == ExprType::kDict) {
      return Status::InvalidArgument(
          "cannot order by dictionary column '" + s.column +
          "' (codes are unordered); order by an integer or double "
          "column");
    }
    dag->order.push_back(DagSortKey{si.value(), s.desc});
  }
  dag->limit = b.limit_;

  // ---- plan assembly -----------------------------------------------------
  auto plan = std::make_shared<CompiledQuery>();
  plan->table = b.table_ != nullptr ? b.table_ : b.sub_->table;
  auto add_columns = [&plan](const std::vector<storage::Column*>& cols) {
    for (storage::Column* c : cols) {
      bool seen = false;
      for (storage::Column* existing : plan->columns) {
        if (existing == c) {
          seen = true;
          break;
        }
      }
      if (!seen) plan->columns.push_back(c);
    }
  };
  if (b.table_ != nullptr) {
    add_columns(dag->scan.columns);
  } else {
    add_columns(b.sub_->columns);
  }
  for (const DagJoin& join : dag->joins) {
    if (join.build.sub != nullptr) {
      add_columns(join.build.sub->columns);
    } else {
      add_columns(join.build.columns);
    }
  }
  plan->column_types.reserve(plan->columns.size());
  for (storage::Column* c : plan->columns) {
    plan->column_types.push_back(ExprTypeFor(c->type()));
  }

  std::vector<std::string> pnames;
  CollectParamNames(b.filter_, &pnames);
  for (const Agg& agg : b.aggs_) CollectParamNames(agg.expr(), &pnames);
  for (const QueryBuilder::JoinClause& clause : b.joins_) {
    CollectParamNames(clause.residual, &pnames);
    CollectParamNames(clause.input.filter(), &pnames);
    if (clause.input.sub() != nullptr) {
      const auto& sub_names = clause.input.sub()->param_names;
      pnames.insert(pnames.end(), sub_names.begin(), sub_names.end());
    }
  }
  CollectParamNames(b.having_, &pnames);
  for (const WindowDef& w : b.win_funcs_) {
    CollectParamNames(w.input, &pnames);
  }
  CollectParamNames(b.post_filter_, &pnames);
  if (b.sub_ != nullptr) {
    pnames.insert(pnames.end(), b.sub_->param_names.begin(),
                  b.sub_->param_names.end());
  }
  std::sort(pnames.begin(), pnames.end());
  pnames.erase(std::unique(pnames.begin(), pnames.end()), pnames.end());
  plan->param_names = std::move(pnames);

  plan->strategy = ExecStrategy::kDag;
  plan->dag = std::move(dag);
  return Query(std::move(plan));
}

}  // namespace anker::query
