#ifndef ANKER_QUERY_SERIALIZE_H_
#define ANKER_QUERY_SERIALIZE_H_

// Wire (de)serialization of the declarative query surface: expression
// trees, aggregate specs, group-by lists and parameter bindings, in the
// WAL's little-endian encode/decode idiom (wal/wal_format.h). This is
// what lets a Query travel: the network front-end (src/server/) ships a
// WireQuery + Params from the client library to anker_serve, which
// recompiles it against the live catalog with the ordinary QueryBuilder —
// the server never executes anything the in-process Build() would have
// rejected.
//
// Format stability: the encoding carries explicit kind/type tags and
// length-prefixed strings, and decoders reject unknown tags, oversized
// trees and truncated input with a recoverable Status (never a CHECK) —
// wire input is untrusted. Versioning rides on the server protocol's
// HELLO version (docs/SERVER.md); the encoding itself is additive-only.

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace anker::query {

/// Hard limits on a decoded expression tree. Anything larger is rejected
/// as malformed: a legitimate query never gets close, and a hostile
/// length field must not drive recursion depth or allocation size.
inline constexpr size_t kMaxWireExprNodes = 4096;
inline constexpr size_t kMaxWireExprDepth = 64;
/// Upper bound on the declared aggregate / group-by / join / window /
/// select / order list sizes.
inline constexpr size_t kMaxWireQueryLists = 256;
/// Sub-query nesting bound (pipeline inputs and join build sides).
inline constexpr size_t kMaxWireQueryDepth = 4;

/// Appends the encoding of `expr` (which must be valid) to `out`.
/// Fails with InvalidArgument when the tree exceeds the wire limits.
Status EncodeExpr(const Expr& expr, std::string* out);

/// Decodes one expression tree from the front of `*in`, consuming it.
/// Fails with InvalidArgument on truncated input, unknown tags, or a
/// tree exceeding the wire limits.
Status DecodeExpr(std::string_view* in, Expr* expr);

struct WireQuery;

/// Build side of a wire Join: a named table (optionally pre-filtered) or
/// a nested sub-query.
struct WireJoinInput {
  std::string table;  ///< Set iff `sub` is null.
  Expr filter;        ///< Optional (table inputs only).
  std::shared_ptr<WireQuery> sub;
};

/// One Join clause in transit (mirrors QueryBuilder::Join).
struct WireJoin {
  WireJoinInput input;
  JoinType type = JoinType::kInner;
  std::vector<std::string> probe_keys;
  std::vector<std::string> build_keys;
  Expr residual;  ///< Invalid handle = pure equi join.
};

/// A declarative query in transit: everything QueryBuilder needs, plus
/// the table name (or a nested sub-query input) to resolve against the
/// destination catalog. The DAG surface (joins, having, window, post
/// filter, select, order/limit) rides along since protocol v2; the
/// single-table fields keep their v1 layout.
struct WireQuery {
  std::string table;  ///< Set iff `sub` is null.
  std::shared_ptr<WireQuery> sub;
  Expr filter;  ///< Invalid handle = unfiltered scan.
  std::vector<Agg> aggs;
  std::vector<std::string> group_by;
  std::vector<WireJoin> joins;
  Expr having;  ///< Invalid handle = absent.
  bool has_window = false;
  std::vector<WindowDef> win_funcs;
  std::vector<std::string> win_partition;
  std::vector<SortSpec> win_order;
  Expr post_filter;  ///< Invalid handle = absent.
  std::vector<SelectItem> select;
  std::vector<SortSpec> order_by;
  int64_t limit = -1;  ///< -1 = unlimited.
};

Status EncodeWireQuery(const WireQuery& query, std::string* out);
Status DecodeWireQuery(std::string_view* in, WireQuery* query);

/// Captures an executable Query back into its wire form is not possible
/// (plans are compiled, not reversible); clients assemble WireQuery
/// directly from the same Expr/Agg pieces they would hand the builder.

/// Compiles a decoded WireQuery against a catalog through the ordinary
/// QueryBuilder: NotFound for an unknown table, and every Build() error
/// (type errors, unknown columns, oversized group domains) surfaces
/// unchanged.
Result<Query> CompileWireQuery(const WireQuery& query,
                               const storage::Catalog& catalog);

/// Parameter bindings. Encoding preserves the declared type and, for
/// string parameters, the text (resolved against the destination
/// column's dictionary when the predicate binds, exactly like local
/// execution).
void EncodeParams(const Params& params, std::string* out);
Status DecodeParams(std::string_view* in, Params* params);

}  // namespace anker::query

#endif  // ANKER_QUERY_SERIALIZE_H_
