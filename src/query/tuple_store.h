#ifndef ANKER_QUERY_TUPLE_STORE_H_
#define ANKER_QUERY_TUPLE_STORE_H_

// Spill-capable intermediate tuple storage for the operator DAG
// (query/dag.h). A TempTupleStore holds fixed-width rows of raw 8-byte
// slot values in column-major chunks, so downstream operators evaluate
// expressions over chunk spans with the exact same scalar interpreter the
// scan kernels use (plan.h's EvalScalar over `const uint64_t* const*`).
//
// Memory is governed by a per-execution SpillArena: once the arena's
// budget is exceeded, completed chunks are flushed to an anonymous
// temporary file and reloaded chunk-at-a-time (or slice-at-a-time for
// merge phases), which keeps multi-join pipelines within bounded memory.
// Spilling never changes results: chunk order and intra-chunk row order
// are preserved exactly.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace anker::query {

/// Per-execution memory budget shared by every store of one query run.
/// Not thread-safe: the DAG executor materializes stages sequentially.
class SpillArena {
 public:
  explicit SpillArena(size_t threshold_bytes)
      : threshold_(threshold_bytes) {}

  size_t threshold() const { return threshold_; }
  size_t used() const { return used_; }
  bool OverBudget() const { return used_ > threshold_; }
  void Add(size_t bytes) { used_ += bytes; }
  void Sub(size_t bytes) { used_ -= bytes < used_ ? bytes : used_; }

  /// Aggregated spill activity across all stores of the execution.
  size_t spilled_chunks = 0;
  size_t spilled_bytes = 0;

 private:
  size_t threshold_;
  size_t used_ = 0;
};

class TempTupleStore {
 public:
  /// Rows per column-major chunk. Chunks are the spill and streaming
  /// granule; 4096 rows x 8 bytes = 32 KiB per column.
  static constexpr size_t kChunkRows = 4096;

  /// `width` = slots per row; `arena` must outlive the store.
  TempTupleStore(size_t width, SpillArena* arena);
  ~TempTupleStore();
  ANKER_DISALLOW_COPY_AND_MOVE(TempTupleStore);

  size_t width() const { return width_; }
  size_t rows() const { return rows_; }
  size_t num_chunks() const { return chunks_.size(); }
  bool spilled() const { return file_ != nullptr; }

  /// Appends one row-major row. May spill a completed chunk (IoError).
  Status Append(const uint64_t* row);

  /// Appends one row gathered from column spans: row r of `cols[src[i]]`
  /// becomes slot i. `src` has width() entries.
  Status AppendGather(const uint64_t* const* cols, const uint16_t* src,
                      size_t r);

  /// Seals the store for reading. Append is invalid afterwards.
  Status Finish();

  /// Streams every chunk in insertion order as column-major spans:
  /// fn(cols, rows) where cols[c][0..rows) is slot c. Spilled chunks are
  /// loaded one at a time into an internal scratch buffer.
  Status ForEachChunk(
      const std::function<Status(const uint64_t* const* cols,
                                 size_t rows)>& fn) const;

  /// Sequential reader over one chunk's rows in [0, chunk_rows(chunk)),
  /// buffering at most `buffer_rows` rows — the bounded-memory input of
  /// the external merge in the sort operator. Readers must not outlive
  /// the store; any number may be open concurrently (pread-style I/O).
  class SliceReader {
   public:
    SliceReader() = default;
    SliceReader(const TempTupleStore* store, size_t chunk,
                size_t buffer_rows);

    bool exhausted() const { return next_ >= limit_; }
    /// Loads the next slice; returns row count (0 when exhausted) and
    /// points *cols at width() column spans of that many rows.
    Result<size_t> Next(const uint64_t* const** cols);

   private:
    const TempTupleStore* store_ = nullptr;
    size_t chunk_ = 0;
    size_t next_ = 0;
    size_t limit_ = 0;
    size_t buffer_rows_ = 0;
    std::vector<uint64_t> buffer_;
    std::vector<const uint64_t*> col_ptrs_;
  };

  size_t chunk_rows(size_t chunk) const;

 private:
  friend class SliceReader;

  struct Chunk {
    std::vector<uint64_t> data;  ///< Column-major; empty when spilled.
    long file_offset = -1;       ///< Offset in `file_` when spilled.
    size_t rows = 0;
  };

  Status SpillChunk(Chunk* chunk);
  Status EnsureTail();
  /// Reads rows [row0, row0+n) of `chunk`, column-major with stride n,
  /// into `dst` (n * width slots). In-memory chunks are copied; spilled
  /// chunks are read with positional I/O.
  Status ReadSlice(size_t chunk, size_t row0, size_t n,
                   uint64_t* dst) const;

  size_t width_;
  SpillArena* arena_;
  std::vector<Chunk> chunks_;
  size_t rows_ = 0;
  size_t tail_rows_ = 0;  ///< Rows in chunks_.back().
  bool sealed_ = false;
  std::FILE* file_ = nullptr;  ///< Anonymous spill file, lazily created.
  long file_bytes_ = 0;
  mutable std::vector<uint64_t> scratch_;  ///< ForEachChunk reload buffer.
};

}  // namespace anker::query

#endif  // ANKER_QUERY_TUPLE_STORE_H_
