#include "query/plan.h"

#include <cmath>
#include <limits>

#include "query/query.h"

namespace anker::query {

namespace {

bool IsNumeric(ExprType type) {
  return type == ExprType::kInt64 || type == ExprType::kDouble;
}

double ConstAsDouble(const ConstValue& v) {
  switch (v.type) {
    case ExprType::kDouble:
      return storage::DecodeDouble(v.raw);
    case ExprType::kInt64:
    case ExprType::kDate:
      return static_cast<double>(storage::DecodeInt64(v.raw));
    case ExprType::kDict:
      return static_cast<double>(storage::DecodeDict(v.raw));
    case ExprType::kBool:
      return v.raw != 0 ? 1.0 : 0.0;
  }
  return 0.0;
}

}  // namespace

Result<uint16_t> ColumnSet::Use(const std::string& name) {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<uint16_t>(i);
  }
  if (!table_->HasColumn(name)) {
    return Status::NotFound("table '" + table_->name() +
                            "' has no column '" + name + "'");
  }
  if (names_.size() >= 0xffff) {
    return Status::NotSupported("too many columns in one query");
  }
  names_.push_back(name);
  columns_.push_back(table_->GetColumn(name));
  return static_cast<uint16_t>(names_.size() - 1);
}

std::vector<ExprType> ColumnSet::types() const {
  std::vector<ExprType> types;
  types.reserve(columns_.size());
  for (const storage::Column* column : columns_) {
    types.push_back(ExprTypeFor(column->type()));
  }
  return types;
}

Result<ConstValue> EvalConstExpr(const ExprNode* node, const Params& params) {
  switch (node->kind) {
    case ExprKind::kLiteral: {
      if (node->is_string) {
        return Status::InvalidArgument(
            "string literal is only valid in a dictionary equality");
      }
      return ConstValue{node->type, node->raw};
    }
    case ExprKind::kParam: {
      const Params::Value* value = params.Find(node->name);
      if (value == nullptr) {
        return Status::InvalidArgument("missing parameter '" + node->name +
                                       "'");
      }
      if (value->is_string) {
        return Status::InvalidArgument(
            "string parameter '" + node->name +
            "' is only valid in a dictionary equality");
      }
      if (value->type != node->type) {
        return Status::InvalidArgument(
            "parameter '" + node->name + "' declared " +
            ExprTypeName(node->type) + " but bound as " +
            ExprTypeName(value->type));
      }
      return ConstValue{value->type, value->raw};
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      auto lhs = EvalConstExpr(node->lhs.get(), params);
      if (!lhs.ok()) return lhs.status();
      auto rhs = EvalConstExpr(node->rhs.get(), params);
      if (!rhs.ok()) return rhs.status();
      const ConstValue& l = lhs.value();
      const ConstValue& r = rhs.value();
      // Date +/- day offset stays a date; int arithmetic stays exact.
      const bool date_shift = l.type == ExprType::kDate &&
                              r.type == ExprType::kInt64 &&
                              node->kind != ExprKind::kMul;
      if (date_shift || (l.type == ExprType::kInt64 &&
                         r.type == ExprType::kInt64)) {
        const int64_t a = storage::DecodeInt64(l.raw);
        const int64_t b = storage::DecodeInt64(r.raw);
        int64_t v = 0;
        if (node->kind == ExprKind::kAdd) v = a + b;
        if (node->kind == ExprKind::kSub) v = a - b;
        if (node->kind == ExprKind::kMul) v = a * b;
        return ConstValue{date_shift ? ExprType::kDate : ExprType::kInt64,
                          storage::EncodeInt64(v)};
      }
      if (IsNumeric(l.type) && IsNumeric(r.type)) {
        const double a = ConstAsDouble(l);
        const double b = ConstAsDouble(r);
        double v = 0;
        if (node->kind == ExprKind::kAdd) v = a + b;
        if (node->kind == ExprKind::kSub) v = a - b;
        if (node->kind == ExprKind::kMul) v = a * b;
        return ConstValue{ExprType::kDouble, storage::EncodeDouble(v)};
      }
      return Status::InvalidArgument("invalid constant arithmetic");
    }
    default:
      return Status::InvalidArgument(
          "expression is not constant-foldable at bind time");
  }
}

namespace {

bool IsConstNode(const ExprNode* node) {
  if (node == nullptr) return true;
  if (node->kind == ExprKind::kColumn) return false;
  return IsConstNode(node->lhs.get()) && IsConstNode(node->rhs.get());
}

/// Tries to lower one conjunct into a SimplePred; returns false when the
/// term is not of the `col <op> const` shape.
Result<bool> TryLowerSimple(const ExprNode* node, ColumnSet* cols,
                            std::vector<SimplePred>* preds) {
  ExprKind kind = node->kind;
  switch (kind) {
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
    case ExprKind::kEq:
      break;
    default:
      return false;
  }
  const ExprNode* lhs = node->lhs.get();
  const ExprNode* rhs = node->rhs.get();
  if (lhs->kind != ExprKind::kColumn || !IsConstNode(rhs)) {
    if (rhs->kind == ExprKind::kColumn && IsConstNode(lhs)) {
      // Flip `const <op> col` to `col <flipped-op> const`.
      std::swap(lhs, rhs);
      switch (kind) {
        case ExprKind::kLt: kind = ExprKind::kGt; break;
        case ExprKind::kLe: kind = ExprKind::kGe; break;
        case ExprKind::kGt: kind = ExprKind::kLt; break;
        case ExprKind::kGe: kind = ExprKind::kLe; break;
        default: break;
      }
    } else {
      return false;
    }
  }
  auto col = cols->Use(lhs->name);
  if (!col.ok()) return col.status();
  const ExprType col_type = ExprTypeFor(
      cols->table()->GetColumn(lhs->name)->type());

  SimplePred pred;
  pred.col = col.value();
  pred.domain = col_type;
  std::shared_ptr<const ExprNode> cexpr =
      (lhs == node->lhs.get()) ? node->rhs : node->lhs;
  switch (kind) {
    case ExprKind::kLt:
      pred.hi = cexpr;
      pred.hi_strict = true;
      break;
    case ExprKind::kLe:
      pred.hi = cexpr;
      break;
    case ExprKind::kGt:
      pred.lo = cexpr;
      pred.lo_strict = true;
      break;
    case ExprKind::kGe:
      pred.lo = cexpr;
      break;
    case ExprKind::kEq:
      pred.lo = cexpr;
      pred.hi = cexpr;
      break;
    default:
      return false;
  }
  preds->push_back(std::move(pred));
  return true;
}

Status LowerFilterNode(const std::shared_ptr<const ExprNode>& node,
                       ColumnSet* cols, std::vector<SimplePred>* preds,
                       std::vector<GenericPred>* generic) {
  if (node->kind == ExprKind::kAnd) {
    ANKER_RETURN_IF_ERROR(LowerFilterNode(node->lhs, cols, preds, generic));
    return LowerFilterNode(node->rhs, cols, preds, generic);
  }
  auto simple = TryLowerSimple(node.get(), cols, preds);
  if (!simple.ok()) return simple.status();
  if (!simple.value()) {
    // Residual term: register its columns and keep the expression for the
    // scalar interpreter.
    generic->push_back(GenericPred{Expr(node)});
  }
  return Status::OK();
}

Status RegisterColumns(const ExprNode* node, ColumnSet* cols) {
  if (node == nullptr) return Status::OK();
  if (node->kind == ExprKind::kColumn) {
    return cols->Use(node->name).status();
  }
  ANKER_RETURN_IF_ERROR(RegisterColumns(node->lhs.get(), cols));
  return RegisterColumns(node->rhs.get(), cols);
}

}  // namespace

Status RegisterExprColumns(const Expr& expr, ColumnSet* cols) {
  if (!expr.valid()) return Status::OK();
  return RegisterColumns(expr.node(), cols);
}

Status LowerFilter(const Expr& filter, ColumnSet* cols,
                   std::vector<SimplePred>* preds,
                   std::vector<GenericPred>* generic) {
  if (!filter.valid()) return Status::OK();
  const size_t generic_before = generic->size();
  ANKER_RETURN_IF_ERROR(
      LowerFilterNode(filter.shared(), cols, preds, generic));
  for (size_t i = generic_before; i < generic->size(); ++i) {
    ANKER_RETURN_IF_ERROR(
        RegisterColumns((*generic)[i].expr.node(), cols));
  }
  return Status::OK();
}

namespace {

Status BindOnePred(const SimplePred& pred,
                   const std::vector<storage::Column*>& columns,
                   storage::Table* table, const Params& params,
                   BoundPred* out) {
  const storage::Column* column = columns[pred.col];
  out->col = pred.col;
  out->is_double = pred.domain == ExprType::kDouble;

  // Resolve a bound const-expr to a raw value in the column's domain; a
  // string resolves through the column's dictionary (dict equality).
  auto resolve = [&](const ExprNode* node, int64_t* iv,
                     double* dv) -> Status {
    // Dictionary equality by text: literal or param string.
    std::string text;
    bool is_text = false;
    if (node->kind == ExprKind::kLiteral && node->is_string) {
      text = node->text;
      is_text = true;
    } else if (node->kind == ExprKind::kParam) {
      const Params::Value* value = params.Find(node->name);
      if (value != nullptr && value->is_string) {
        text = value->text;
        is_text = true;
      }
    }
    if (is_text) {
      if (column->type() != storage::ValueType::kDict32) {
        return Status::InvalidArgument("string compare against non-dict "
                                       "column '" + column->name() + "'");
      }
      const storage::Dictionary* dict =
          table->GetDictionary(column->name());
      auto code = dict->Lookup(text);
      if (!code.ok()) {
        return Status::NotFound("value '" + text +
                                "' not in dictionary of column '" +
                                column->name() + "'");
      }
      *iv = static_cast<int64_t>(code.value());
      return Status::OK();
    }
    auto value = EvalConstExpr(node, params);
    if (!value.ok()) return value.status();
    const ConstValue& v = value.value();
    if (pred.domain == ExprType::kDouble) {
      if (v.type == ExprType::kDouble) {
        *dv = storage::DecodeDouble(v.raw);
      } else if (v.type == ExprType::kInt64) {
        *dv = static_cast<double>(storage::DecodeInt64(v.raw));
      } else {
        return Status::InvalidArgument("bound of double predicate must be "
                                       "numeric");
      }
      return Status::OK();
    }
    // Integer domains: int64, date (as days) and dict codes.
    switch (v.type) {
      case ExprType::kInt64:
      case ExprType::kDate:
        *iv = storage::DecodeInt64(v.raw);
        return Status::OK();
      case ExprType::kDict:
        *iv = static_cast<int64_t>(storage::DecodeDict(v.raw));
        return Status::OK();
      default:
        return Status::InvalidArgument("bound of integer predicate must "
                                       "be integral");
    }
  };

  if (out->is_double) {
    out->dlo = -std::numeric_limits<double>::infinity();
    out->dhi = std::numeric_limits<double>::infinity();
    if (pred.lo != nullptr) {
      ANKER_RETURN_IF_ERROR(resolve(pred.lo.get(), nullptr, &out->dlo));
      if (pred.lo_strict) {
        out->dlo = std::nextafter(out->dlo,
                                  std::numeric_limits<double>::infinity());
      }
    }
    if (pred.hi != nullptr) {
      ANKER_RETURN_IF_ERROR(resolve(pred.hi.get(), nullptr, &out->dhi));
      if (pred.hi_strict) {
        out->dhi = std::nextafter(out->dhi,
                                  -std::numeric_limits<double>::infinity());
      }
    }
  } else {
    out->ilo = std::numeric_limits<int64_t>::min();
    out->ihi = std::numeric_limits<int64_t>::max();
    if (pred.lo != nullptr) {
      ANKER_RETURN_IF_ERROR(resolve(pred.lo.get(), &out->ilo, nullptr));
      if (pred.lo_strict) ++out->ilo;
    }
    if (pred.hi != nullptr) {
      ANKER_RETURN_IF_ERROR(resolve(pred.hi.get(), &out->ihi, nullptr));
      if (pred.hi_strict) --out->ihi;
    }
  }
  return Status::OK();
}

}  // namespace

Status BindPredsFor(const std::vector<SimplePred>& preds,
                    const std::vector<storage::Column*>& columns,
                    storage::Table* table, const Params& params,
                    std::vector<BoundPred>* out) {
  out->clear();
  out->reserve(preds.size());
  for (const SimplePred& pred : preds) {
    BoundPred bound;
    ANKER_RETURN_IF_ERROR(
        BindOnePred(pred, columns, table, params, &bound));
    // Coalesce with an earlier predicate on the same column (a >= lo &&
    // a < hi arrives as two conjuncts): intersecting the closed ranges
    // halves the per-row work of range filters.
    bool merged = false;
    for (BoundPred& existing : *out) {
      if (existing.col != bound.col ||
          existing.is_double != bound.is_double) {
        continue;
      }
      if (existing.is_double) {
        existing.dlo = std::max(existing.dlo, bound.dlo);
        existing.dhi = std::min(existing.dhi, bound.dhi);
      } else {
        existing.ilo = std::max(existing.ilo, bound.ilo);
        existing.ihi = std::min(existing.ihi, bound.ihi);
      }
      merged = true;
      break;
    }
    if (!merged) out->push_back(bound);
  }
  return Status::OK();
}

Status BindPreds(const CompiledQuery& plan, const Params& params,
                 std::vector<BoundPred>* out) {
  return BindPredsFor(plan.preds, plan.columns, plan.table, params, out);
}

namespace {

/// The text of a string operand (Str literal or param bound as a string),
/// if `node` is one.
bool StringOperandText(const ExprNode* node, const Params& params,
                       std::string* text) {
  if (node->kind == ExprKind::kLiteral && node->is_string) {
    *text = node->text;
    return true;
  }
  if (node->kind == ExprKind::kParam) {
    const Params::Value* value = params.Find(node->name);
    if (value != nullptr && value->is_string) {
      *text = value->text;
      return true;
    }
  }
  return false;
}

/// Clones an expression, folding params into literals and resolving
/// column references to plan indexes (stored in `raw`, with the column's
/// type recorded for decoding).
Result<std::shared_ptr<const ExprNode>> BindScalarNode(
    const ExprNode* node, const std::vector<storage::Column*>& columns,
    storage::Table* table, const Params& params, ColumnSet* cols) {
  auto out = std::make_shared<ExprNode>();
  out->kind = node->kind;
  switch (node->kind) {
    case ExprKind::kColumn: {
      uint16_t index = 0;
      if (cols != nullptr) {
        auto use = cols->Use(node->name);
        if (!use.ok()) return use.status();
        index = use.value();
        out->type = ExprTypeFor(
            cols->columns()[index]->type());
      } else {
        bool found = false;
        for (size_t i = 0; i < columns.size(); ++i) {
          if (columns[i]->name() == node->name) {
            index = static_cast<uint16_t>(i);
            out->type = ExprTypeFor(columns[i]->type());
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::Internal("column '" + node->name +
                                  "' missing from plan column set");
        }
      }
      out->name = node->name;
      out->raw = index;
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kLiteral: {
      if (node->is_string) {
        return Status::InvalidArgument(
            "string literal is only valid in a dictionary equality "
            "predicate");
      }
      out->type = node->type;
      out->raw = node->raw;
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kParam: {
      auto value = EvalConstExpr(node, params);
      if (!value.ok()) return value.status();
      out->kind = ExprKind::kLiteral;
      out->type = value.value().type;
      out->raw = value.value().raw;
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
    case ExprKind::kEq:
    case ExprKind::kNe: {
      // Dictionary equality by text: resolve the string side through the
      // compared column's dictionary (mirrors BindOnePred, so a dict
      // equality nested under OR binds the same way a conjunct does).
      std::string text;
      const ExprNode* col_side = nullptr;
      bool lhs_is_text = false;
      if (StringOperandText(node->lhs.get(), params, &text)) {
        col_side = node->rhs.get();
        lhs_is_text = true;
      } else if (StringOperandText(node->rhs.get(), params, &text)) {
        col_side = node->lhs.get();
      }
      if (col_side != nullptr) {
        if (col_side->kind != ExprKind::kColumn) {
          return Status::InvalidArgument(
              "string compare requires a dictionary column operand");
        }
        auto bound_col =
            BindScalarNode(col_side, columns, table, params, cols);
        if (!bound_col.ok()) return bound_col.status();
        if (bound_col.value()->type != ExprType::kDict) {
          return Status::InvalidArgument(
              "string compare against non-dict column '" +
              col_side->name + "'");
        }
        const storage::Dictionary* dict =
            table != nullptr ? table->GetDictionary(col_side->name)
                             : nullptr;
        if (dict == nullptr) {
          return Status::InvalidArgument(
              "string compare against non-dict column '" +
              col_side->name + "'");
        }
        auto code = dict->Lookup(text);
        if (!code.ok()) {
          return Status::NotFound("value '" + text +
                                  "' not in dictionary of column '" +
                                  col_side->name + "'");
        }
        auto lit_node = std::make_shared<ExprNode>();
        lit_node->kind = ExprKind::kLiteral;
        lit_node->type = ExprType::kDict;
        lit_node->raw = storage::EncodeDict(code.value());
        out->lhs = lhs_is_text
                       ? std::shared_ptr<const ExprNode>(lit_node)
                       : bound_col.TakeValue();
        out->rhs = lhs_is_text
                       ? bound_col.TakeValue()
                       : std::shared_ptr<const ExprNode>(lit_node);
        return std::shared_ptr<const ExprNode>(std::move(out));
      }
      [[fallthrough]];
    }
    default: {
      auto lhs =
          BindScalarNode(node->lhs.get(), columns, table, params, cols);
      if (!lhs.ok()) return lhs.status();
      auto rhs =
          BindScalarNode(node->rhs.get(), columns, table, params, cols);
      if (!rhs.ok()) return rhs.status();
      out->lhs = lhs.TakeValue();
      out->rhs = rhs.TakeValue();
      return std::shared_ptr<const ExprNode>(std::move(out));
    }
  }
}

}  // namespace

Result<BoundScalar> BindScalar(const Expr& expr, ColumnSet* cols,
                               const Params& params) {
  auto root = BindScalarNode(expr.node(), cols->columns(), cols->table(),
                             params, cols);
  if (!root.ok()) return root.status();
  return BoundScalar{root.TakeValue()};
}

Result<BoundScalar> BindScalarFor(
    const Expr& expr, const std::vector<storage::Column*>& columns,
    storage::Table* table, const Params& params) {
  auto root = BindScalarNode(expr.node(), columns, table, params, nullptr);
  if (!root.ok()) return root.status();
  return BoundScalar{root.TakeValue()};
}

ScalarValue EvalScalar(const ExprNode* node, const uint64_t* const* cols,
                       size_t i) {
  ScalarValue value;
  switch (node->kind) {
    case ExprKind::kColumn: {
      const uint64_t raw = cols[node->raw][i];
      value.type = node->type;
      switch (node->type) {
        case ExprType::kDouble:
          value.d = storage::DecodeDouble(raw);
          break;
        case ExprType::kDict:
          value.i = static_cast<int64_t>(storage::DecodeDict(raw));
          break;
        default:
          value.i = storage::DecodeInt64(raw);
          break;
      }
      return value;
    }
    case ExprKind::kLiteral:
    case ExprKind::kParam: {
      value.type = node->type;
      if (node->type == ExprType::kDouble) {
        value.d = storage::DecodeDouble(node->raw);
      } else if (node->type == ExprType::kDict) {
        value.i = static_cast<int64_t>(storage::DecodeDict(node->raw));
      } else {
        value.i = storage::DecodeInt64(node->raw);
      }
      return value;
    }
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      const ScalarValue l = EvalScalar(node->lhs.get(), cols, i);
      const ScalarValue r = EvalScalar(node->rhs.get(), cols, i);
      const bool any_double =
          l.type == ExprType::kDouble || r.type == ExprType::kDouble;
      if (any_double) {
        const double a = l.type == ExprType::kDouble
                             ? l.d
                             : static_cast<double>(l.i);
        const double b = r.type == ExprType::kDouble
                             ? r.d
                             : static_cast<double>(r.i);
        value.type = ExprType::kDouble;
        if (node->kind == ExprKind::kAdd) value.d = a + b;
        if (node->kind == ExprKind::kSub) value.d = a - b;
        if (node->kind == ExprKind::kMul) value.d = a * b;
      } else {
        value.type = ExprType::kInt64;
        if (node->kind == ExprKind::kAdd) value.i = l.i + r.i;
        if (node->kind == ExprKind::kSub) value.i = l.i - r.i;
        if (node->kind == ExprKind::kMul) value.i = l.i * r.i;
      }
      return value;
    }
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
    case ExprKind::kEq:
    case ExprKind::kNe: {
      const ScalarValue l = EvalScalar(node->lhs.get(), cols, i);
      const ScalarValue r = EvalScalar(node->rhs.get(), cols, i);
      int cmp;
      if (l.type == ExprType::kDouble || r.type == ExprType::kDouble) {
        const double a = l.type == ExprType::kDouble
                             ? l.d
                             : static_cast<double>(l.i);
        const double b = r.type == ExprType::kDouble
                             ? r.d
                             : static_cast<double>(r.i);
        cmp = a < b ? -1 : (a > b ? 1 : 0);
      } else {
        cmp = l.i < r.i ? -1 : (l.i > r.i ? 1 : 0);
      }
      value.type = ExprType::kBool;
      switch (node->kind) {
        case ExprKind::kLt: value.b = cmp < 0; break;
        case ExprKind::kLe: value.b = cmp <= 0; break;
        case ExprKind::kGt: value.b = cmp > 0; break;
        case ExprKind::kGe: value.b = cmp >= 0; break;
        case ExprKind::kEq: value.b = cmp == 0; break;
        case ExprKind::kNe: value.b = cmp != 0; break;
        default: break;
      }
      return value;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      const ScalarValue l = EvalScalar(node->lhs.get(), cols, i);
      value.type = ExprType::kBool;
      if (node->kind == ExprKind::kAnd) {
        value.b = l.b && EvalScalar(node->rhs.get(), cols, i).b;
      } else {
        value.b = l.b || EvalScalar(node->rhs.get(), cols, i).b;
      }
      return value;
    }
  }
  return value;
}

double EvalScalarDouble(const BoundScalar& expr, const uint64_t* const* cols,
                        size_t i) {
  const ScalarValue value = EvalScalar(expr.root.get(), cols, i);
  return value.type == ExprType::kDouble ? value.d
                                         : static_cast<double>(value.i);
}

bool EvalScalarBool(const BoundScalar& expr, const uint64_t* const* cols,
                    size_t i) {
  return EvalScalar(expr.root.get(), cols, i).b;
}

}  // namespace anker::query
