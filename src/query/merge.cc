#include "query/merge.h"

#include <algorithm>
#include <cstdint>
#include <set>

#include "storage/value.h"

namespace anker::query {

namespace {

/// Hidden per-group row count appended to partial-aggregate shard
/// queries so the router can finalize AVG = sum / count. Dropped from
/// the merged result before it leaves the router.
constexpr char kHiddenCountName[] = "__shard_count";

// ---------------------------------------------------------------------------
// Distribution analysis
// ---------------------------------------------------------------------------

/// What the sharded execution of a (sub-)stream produces, per shard.
struct StreamInfo {
  bool ok = false;          ///< false: cross-shard; `reason` says why.
  std::string reason;
  /// !ok: the refusal is the ROOT query's own aggregation over a
  /// partitioned stream — the one shape PlanScatter can repair with
  /// router-side partial aggregation. Never set for a refusal that
  /// originates inside a nested sub-query or join input: those
  /// partials would feed another operator on the shard, so each shard
  /// would aggregate over its partition alone and the merged answer
  /// would be silently wrong.
  bool root_agg = false;
  bool replicated = false;  ///< Identical rows on every shard.
  /// !replicated: the shard streams partition the global stream, and
  /// equal values in these output columns only occur on one shard.
  std::set<std::string> aligned;
};

StreamInfo Unsupported(std::string reason) {
  StreamInfo info;
  info.reason = std::move(reason);
  return info;
}

StreamInfo Replicated() {
  StreamInfo info;
  info.ok = true;
  info.replicated = true;
  return info;
}

StreamInfo TableStream(const std::string& table,
                       const PartitionMap& partitioned) {
  auto it = partitioned.find(table);
  if (it == partitioned.end()) return Replicated();
  StreamInfo info;
  info.ok = true;
  info.aligned.insert(it->second);
  return info;
}

/// `nested`: true below the root — a nested stream cannot fall back to
/// router-side partial aggregation, its rows feed another operator.
StreamInfo AnalyzeStream(const WireQuery& q, const PartitionMap& partitioned,
                         size_t depth, bool nested);

/// Combines probe stream `in` with one join clause.
StreamInfo CombineJoin(const StreamInfo& in, const WireJoin& join,
                       const PartitionMap& partitioned, size_t depth) {
  const StreamInfo build =
      join.input.sub != nullptr
          ? AnalyzeStream(*join.input.sub, partitioned, depth + 1, true)
          : TableStream(join.input.table, partitioned);
  if (!build.ok) return build;

  if (in.replicated && build.replicated) return Replicated();

  if (!in.replicated && build.replicated) {
    // Disjoint probe against the full build side on every shard: each
    // probe row meets its complete match set locally, so the per-shard
    // outputs partition the global join for every join type.
    StreamInfo out;
    out.ok = true;
    out.aligned = in.aligned;
    return out;
  }

  if (in.replicated && !build.replicated) {
    // Each output row is pinned to exactly one build row's shard — but
    // only for INNER joins. Semi/anti/outer decide row fate from "did
    // ANY build row match", which a single shard cannot answer.
    if (join.type != JoinType::kInner) {
      return Unsupported(
          "semi/anti/outer join of a replicated stream against a "
          "partitioned build side is cross-shard");
    }
    StreamInfo out;
    out.ok = true;
    out.aligned = build.aligned;
    // The equi-join transfers alignment onto the probe keys: a probe
    // key equals an aligned build key in every output row.
    for (size_t i = 0; i < join.build_keys.size() &&
                       i < join.probe_keys.size();
         ++i) {
      if (build.aligned.count(join.build_keys[i]) != 0) {
        out.aligned.insert(join.probe_keys[i]);
      }
    }
    return out;
  }

  // Disjoint join disjoint: valid only when co-partitioned — some equi
  // key pair is aligned on both sides, so matching rows share a shard.
  bool co_partitioned = false;
  for (size_t i = 0;
       i < join.probe_keys.size() && i < join.build_keys.size(); ++i) {
    if (in.aligned.count(join.probe_keys[i]) != 0 &&
        build.aligned.count(join.build_keys[i]) != 0) {
      co_partitioned = true;
      break;
    }
  }
  if (!co_partitioned) {
    return Unsupported(
        "join of two partitioned streams without a co-partitioned key "
        "pair is cross-shard");
  }
  StreamInfo out;
  out.ok = true;
  out.aligned = in.aligned;
  out.aligned.insert(build.aligned.begin(), build.aligned.end());
  for (size_t i = 0;
       i < join.probe_keys.size() && i < join.build_keys.size(); ++i) {
    if (build.aligned.count(join.build_keys[i]) != 0) {
      out.aligned.insert(join.probe_keys[i]);
    }
    if (in.aligned.count(join.probe_keys[i]) != 0) {
      out.aligned.insert(join.build_keys[i]);
    }
  }
  return out;
}

StreamInfo AnalyzeStream(const WireQuery& q, const PartitionMap& partitioned,
                         size_t depth, bool nested) {
  if (depth > kMaxWireQueryDepth) {
    return Unsupported("query nesting exceeds the wire depth limit");
  }

  StreamInfo info = q.sub != nullptr
                        ? AnalyzeStream(*q.sub, partitioned, depth + 1, true)
                        : TableStream(q.table, partitioned);
  if (!info.ok) return info;
  // q.filter: row-local, preserves both distribution and alignment.

  for (const WireJoin& join : q.joins) {
    info = CombineJoin(info, join, partitioned, depth);
    if (!info.ok) return info;
  }

  if (!q.aggs.empty()) {
    if (info.replicated) {
      info = Replicated();
    } else {
      // Groups are shard-local iff some group key is aligned.
      std::set<std::string> aligned_keys;
      for (const std::string& key : q.group_by) {
        if (info.aligned.count(key) != 0) aligned_keys.insert(key);
      }
      if (aligned_keys.empty()) {
        // Root-level: the caller falls back to partial aggregation.
        // Nested: the partials would feed another operator — refuse.
        StreamInfo refusal = Unsupported(
            q.group_by.empty()
                ? "global aggregate over a partitioned stream"
                : "group-by without a partition-aligned key over a "
                  "partitioned stream");
        refusal.root_agg = !nested;
        return refusal;
      }
      info.aligned = std::move(aligned_keys);
      // q.having filters complete shard-local groups: fine.
    }
  }

  if (q.has_window && !info.replicated) {
    bool aligned_partition = false;
    for (const std::string& key : q.win_partition) {
      if (info.aligned.count(key) != 0) {
        aligned_partition = true;
        break;
      }
    }
    if (!aligned_partition) {
      return Unsupported(
          "window partition without a partition-aligned key over a "
          "partitioned stream");
    }
  }
  // q.post_filter: row-local, fine.

  if (!q.select.empty() && !info.replicated) {
    std::set<std::string> renamed;
    for (const SelectItem& item : q.select) {
      if (info.aligned.count(item.column) != 0) {
        renamed.insert(item.alias.empty() ? item.column : item.alias);
      }
    }
    info.aligned = std::move(renamed);
  }

  if (nested && !info.replicated && q.limit >= 0) {
    // A nested top-k is global: per-shard top-k rows are not the rows
    // the outer operator would have consumed.
    return Unsupported("limit inside a partitioned sub-query is global");
  }
  return info;
}

bool NameCollides(const WireQuery& q, const std::string& name) {
  for (const Agg& agg : q.aggs) {
    if (agg.name() == name) return true;
  }
  for (const std::string& key : q.group_by) {
    if (key == name) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Merge-time row comparison (replicates dag_exec's CompareTyped /
// RowCompare total order at the QueryResult level)
// ---------------------------------------------------------------------------

/// Addresses one output column inside a QueryResult row.
struct CellRef {
  bool is_value = false;  ///< values[] (double) vs keys[] (typed raw).
  size_t index = 0;
  ExprType type = ExprType::kDouble;
};

int CompareCell(const QueryResult::Row& a, const QueryResult::Row& b,
                const CellRef& cell) {
  if (cell.is_value) {
    const double x = a.values[cell.index];
    const double y = b.values[cell.index];
    if (x < y) return -1;
    if (x > y) return 1;
    // Raw-bits tiebreak (-0.0 vs 0.0), as in the DAG executor.
    const uint64_t xr = storage::EncodeDouble(x);
    const uint64_t yr = storage::EncodeDouble(y);
    if (xr < yr) return -1;
    if (xr > yr) return 1;
    return 0;
  }
  const uint64_t xr = a.keys[cell.index];
  const uint64_t yr = b.keys[cell.index];
  if (cell.type == ExprType::kDict) {
    // Keys hold decoded codes; unsigned order.
    if (xr < yr) return -1;
    if (xr > yr) return 1;
    return 0;
  }
  const int64_t x = storage::DecodeInt64(xr);
  const int64_t y = storage::DecodeInt64(yr);
  if (x < y) return -1;
  if (x > y) return 1;
  return 0;
}

/// Output columns in the producing plan's schema order, for the
/// full-row tiebreak. Falls back to keys-then-values when the result
/// carries no interleave (non-DAG execution strategies).
std::vector<CellRef> SchemaOrder(const QueryResult& result) {
  std::vector<CellRef> order;
  if (result.interleave.size() ==
      result.columns.size() + result.key_names.size()) {
    size_t ki = 0, vi = 0;
    for (const uint8_t tag : result.interleave) {
      CellRef cell;
      if (tag == 1) {
        cell.is_value = true;
        cell.index = vi++;
      } else {
        cell.index = ki;
        cell.type = result.key_types[ki];
        ++ki;
      }
      order.push_back(cell);
    }
    return order;
  }
  for (size_t k = 0; k < result.key_names.size(); ++k) {
    CellRef cell;
    cell.index = k;
    cell.type = result.key_types[k];
    order.push_back(cell);
  }
  for (size_t v = 0; v < result.columns.size(); ++v) {
    CellRef cell;
    cell.is_value = true;
    cell.index = v;
    order.push_back(cell);
  }
  return order;
}

Status ResolveSortKeys(const QueryResult& result,
                       const std::vector<SortSpec>& order_by,
                       std::vector<std::pair<CellRef, bool>>* keys) {
  keys->clear();
  for (const SortSpec& spec : order_by) {
    CellRef cell;
    bool found = false;
    for (size_t k = 0; k < result.key_names.size(); ++k) {
      if (result.key_names[k] == spec.column) {
        cell.index = k;
        cell.type = result.key_types[k];
        found = true;
        break;
      }
    }
    if (!found) {
      for (size_t v = 0; v < result.columns.size(); ++v) {
        if (result.columns[v] == spec.column) {
          cell.is_value = true;
          cell.index = v;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      return Status::Internal("merge sort key '" + spec.column +
                              "' missing from the shard result schema");
    }
    keys->emplace_back(cell, spec.desc);
  }
  return Status::OK();
}

/// Sorts rows by the order keys (desc flips) with the full row in
/// schema order as the tiebreak — the DAG executor's RowCompare.
Status SortRows(QueryResult* result, const std::vector<SortSpec>& order_by) {
  std::vector<std::pair<CellRef, bool>> sort_keys;
  ANKER_RETURN_IF_ERROR(ResolveSortKeys(*result, order_by, &sort_keys));
  const std::vector<CellRef> schema = SchemaOrder(*result);
  std::sort(result->rows.begin(), result->rows.end(),
            [&](const QueryResult::Row& a, const QueryResult::Row& b) {
              for (const auto& [cell, desc] : sort_keys) {
                const int c = CompareCell(a, b, cell);
                if (c != 0) return desc ? c > 0 : c < 0;
              }
              for (const CellRef& cell : schema) {
                const int c = CompareCell(a, b, cell);
                if (c != 0) return c < 0;
              }
              return false;
            });
  return Status::OK();
}

Status CheckSchemasAgree(const std::vector<QueryResult>& parts) {
  if (parts.empty()) {
    return Status::Internal("merge called with no shard results");
  }
  const QueryResult& first = parts.front();
  for (size_t i = 1; i < parts.size(); ++i) {
    if (parts[i].columns != first.columns ||
        parts[i].key_names != first.key_names ||
        parts[i].key_types != first.key_types ||
        parts[i].interleave != first.interleave) {
      return Status::Internal(
          "shard results disagree on the output schema");
    }
  }
  return Status::OK();
}

void AdoptMetadata(const QueryResult& from, QueryResult* out) {
  out->columns = from.columns;
  out->key_names = from.key_names;
  out->key_types = from.key_types;
  out->interleave = from.interleave;
  out->rows.clear();
  out->rows_scanned = 0;
}

Status MergeConcat(const ScatterPlan& plan, std::vector<QueryResult> parts,
                   QueryResult* out) {
  AdoptMetadata(parts.front(), out);
  for (QueryResult& part : parts) {
    out->rows_scanned += part.rows_scanned;
    for (QueryResult::Row& row : part.rows) {
      out->rows.push_back(std::move(row));
    }
  }
  if (!plan.order_by.empty()) {
    ANKER_RETURN_IF_ERROR(SortRows(out, plan.order_by));
  }
  if (plan.limit >= 0 &&
      out->rows.size() > static_cast<size_t>(plan.limit)) {
    out->rows.resize(static_cast<size_t>(plan.limit));
  }
  return Status::OK();
}

Status MergePartialAgg(const ScatterPlan& plan,
                       std::vector<QueryResult> parts, QueryResult* out) {
  const size_t expected_cols =
      plan.agg_kinds.size() + (plan.hidden_count ? 1 : 0);
  const QueryResult& first = parts.front();
  if (first.columns.size() != expected_cols) {
    // A double-typed group key would land in `columns` and shift the
    // aggregate slots; the layouts this router ships never do that.
    return Status::NotSupported(
        "partial-aggregate merge requires integer-domain group keys");
  }

  AdoptMetadata(first, out);
  // Group rows by key vector. Keys are exact (integer-domain raws), so
  // a map keyed on the vector is the same grouping the engine does.
  std::map<std::vector<uint64_t>, std::vector<double>> groups;
  for (const QueryResult& part : parts) {
    out->rows_scanned += part.rows_scanned;
    for (const QueryResult::Row& row : part.rows) {
      auto [it, inserted] = groups.emplace(row.keys, row.values);
      if (inserted) continue;
      std::vector<double>& acc = it->second;
      for (size_t c = 0; c < acc.size() && c < row.values.size(); ++c) {
        const AggKind kind =
            c < plan.agg_kinds.size() ? plan.agg_kinds[c] : AggKind::kCount;
        switch (kind) {
          case AggKind::kSum:
          case AggKind::kCount:
          case AggKind::kAvg:  // Travels as a partial SUM (rewrite).
            acc[c] += row.values[c];
            break;
          case AggKind::kMin:
            acc[c] = std::min(acc[c], row.values[c]);
            break;
          case AggKind::kMax:
            acc[c] = std::max(acc[c], row.values[c]);
            break;
          case AggKind::kCountDistinct:
            return Status::NotSupported(
                "COUNT(DISTINCT) cannot merge from partials");
        }
      }
    }
  }

  // Finalize AVG with the engine's exact operands: the global sum
  // divided by the global row count (dag_exec finalizes acc / count the
  // same way), then drop the hidden count column.
  const size_t count_col = expected_cols - 1;  // Hidden count is last.
  for (auto& [keys, values] : groups) {
    if (plan.hidden_count) {
      for (size_t c = 0; c < plan.agg_kinds.size(); ++c) {
        if (plan.agg_kinds[c] == AggKind::kAvg) {
          values[c] = values[count_col] > 0.0 ? values[c] / values[count_col]
                                              : 0.0;
        }
      }
      values.resize(count_col);
    }
    QueryResult::Row row;
    row.keys = keys;
    row.values = std::move(values);
    out->rows.push_back(std::move(row));
  }
  if (plan.hidden_count) {
    out->columns.resize(count_col);
    if (!out->interleave.empty()) {
      // The hidden count is the last value slot in schema order.
      for (size_t i = out->interleave.size(); i-- > 0;) {
        if (out->interleave[i] == 1) {
          out->interleave.erase(out->interleave.begin() +
                                static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
  }
  // groups is key-ordered already (std::map over the key raws), which
  // is deterministic; an explicit ORDER BY re-sorts below.
  if (!plan.order_by.empty()) {
    ANKER_RETURN_IF_ERROR(SortRows(out, plan.order_by));
  }
  if (plan.limit >= 0 &&
      out->rows.size() > static_cast<size_t>(plan.limit)) {
    out->rows.resize(static_cast<size_t>(plan.limit));
  }
  return Status::OK();
}

}  // namespace

const char* ScatterModeName(ScatterMode mode) {
  switch (mode) {
    case ScatterMode::kSingleShard:
      return "single-shard";
    case ScatterMode::kConcat:
      return "concat";
    case ScatterMode::kPartialAgg:
      return "partial-agg";
    case ScatterMode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

ScatterPlan PlanScatter(const WireQuery& query,
                        const PartitionMap& partitioned) {
  ScatterPlan plan;
  const StreamInfo info = AnalyzeStream(query, partitioned, 0, false);
  if (info.ok) {
    if (info.replicated) {
      plan.mode = ScatterMode::kSingleShard;
      return plan;
    }
    plan.mode = ScatterMode::kConcat;
    plan.shard_query = query;
    plan.order_by = query.order_by;
    plan.limit = query.limit;
    return plan;
  }

  // The only refusal the router can repair itself: the ROOT query's
  // own aggregation over a disjoint stream merges from shard partials.
  // The flag — not the reason text — carries that decision: a nested
  // sub-query's aggregate produces the same reason, but its partials
  // feed another operator and must stay kUnsupported.
  if (!info.root_agg) {
    plan.reason = info.reason;
    return plan;
  }
  if (query.having.valid() || query.has_window ||
      query.post_filter.valid() || !query.select.empty()) {
    plan.reason =
        "having/window/post-filter/select over cross-shard partial "
        "aggregates";
    return plan;
  }
  for (const Agg& agg : query.aggs) {
    if (agg.kind() == AggKind::kCountDistinct) {
      plan.reason = "COUNT(DISTINCT) over a partitioned stream";
      return plan;
    }
  }
  if (NameCollides(query, kHiddenCountName)) {
    plan.reason = "query uses the router's reserved column name";
    return plan;
  }

  plan.mode = ScatterMode::kPartialAgg;
  plan.shard_query = query;
  plan.shard_query.order_by.clear();
  plan.shard_query.limit = -1;
  plan.order_by = query.order_by;
  plan.limit = query.limit;
  bool any_avg = false;
  for (Agg& agg : plan.shard_query.aggs) {
    plan.agg_kinds.push_back(agg.kind());
    if (agg.kind() == AggKind::kAvg) {
      any_avg = true;
      agg = Agg(AggKind::kSum, agg.expr()).As(agg.name());
    }
  }
  if (any_avg) {
    plan.hidden_count = true;
    plan.shard_query.aggs.push_back(Count().As(kHiddenCountName));
  }
  return plan;
}

Status MergeShardResults(const ScatterPlan& plan,
                         std::vector<QueryResult> parts, QueryResult* out) {
  *out = QueryResult();
  ANKER_RETURN_IF_ERROR(CheckSchemasAgree(parts));
  switch (plan.mode) {
    case ScatterMode::kConcat:
      return MergeConcat(plan, std::move(parts), out);
    case ScatterMode::kPartialAgg:
      return MergePartialAgg(plan, std::move(parts), out);
    case ScatterMode::kSingleShard:
    case ScatterMode::kUnsupported:
      return Status::Internal("merge called for a non-merging mode");
  }
  return Status::Internal("unknown scatter mode");
}

}  // namespace anker::query
