#include "query/expr.h"

namespace anker::query {

namespace {

Expr MakeLeaf(ExprKind kind, std::string name, ExprType type, uint64_t raw,
              std::string text, bool is_string) {
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  node->name = std::move(name);
  node->type = type;
  node->raw = raw;
  node->text = std::move(text);
  node->is_string = is_string;
  return Expr(std::move(node));
}

Expr MakeBinary(ExprKind kind, Expr lhs, Expr rhs) {
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  node->lhs = lhs.shared();
  node->rhs = rhs.shared();
  return Expr(std::move(node));
}

bool IsNumeric(ExprType type) {
  return type == ExprType::kInt64 || type == ExprType::kDouble;
}

}  // namespace

const char* ExprTypeName(ExprType type) {
  switch (type) {
    case ExprType::kInt64:
      return "int64";
    case ExprType::kDouble:
      return "double";
    case ExprType::kDate:
      return "date";
    case ExprType::kDict:
      return "dict";
    case ExprType::kBool:
      return "bool";
  }
  return "unknown";
}

ExprType ExprTypeFor(storage::ValueType type) {
  switch (type) {
    case storage::ValueType::kInt64:
      return ExprType::kInt64;
    case storage::ValueType::kDouble:
      return ExprType::kDouble;
    case storage::ValueType::kDate:
      return ExprType::kDate;
    case storage::ValueType::kDict32:
      return ExprType::kDict;
  }
  return ExprType::kInt64;
}

Expr Col(std::string name) {
  return MakeLeaf(ExprKind::kColumn, std::move(name), ExprType::kInt64, 0, "",
                  false);
}

Expr I64(int64_t value) {
  return MakeLeaf(ExprKind::kLiteral, "", ExprType::kInt64,
                  storage::EncodeInt64(value), "", false);
}

Expr F64(double value) {
  return MakeLeaf(ExprKind::kLiteral, "", ExprType::kDouble,
                  storage::EncodeDouble(value), "", false);
}

Expr DateDays(int64_t days) {
  return MakeLeaf(ExprKind::kLiteral, "", ExprType::kDate,
                  storage::EncodeDate(days), "", false);
}

Expr Str(std::string text) {
  return MakeLeaf(ExprKind::kLiteral, "", ExprType::kDict, 0, std::move(text),
                  true);
}

Expr DictCode(uint32_t code) {
  return MakeLeaf(ExprKind::kLiteral, "", ExprType::kDict,
                  storage::EncodeDict(code), "", false);
}

Expr Param(std::string name, ExprType type) {
  return MakeLeaf(ExprKind::kParam, std::move(name), type, 0, "", false);
}

Expr operator+(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kAdd, std::move(lhs), std::move(rhs));
}
Expr operator-(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kSub, std::move(lhs), std::move(rhs));
}
Expr operator*(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kMul, std::move(lhs), std::move(rhs));
}
Expr operator<(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kLt, std::move(lhs), std::move(rhs));
}
Expr operator<=(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kLe, std::move(lhs), std::move(rhs));
}
Expr operator>(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kGt, std::move(lhs), std::move(rhs));
}
Expr operator>=(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kGe, std::move(lhs), std::move(rhs));
}
Expr operator==(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kEq, std::move(lhs), std::move(rhs));
}
Expr operator!=(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kNe, std::move(lhs), std::move(rhs));
}
Expr operator&&(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kAnd, std::move(lhs), std::move(rhs));
}
Expr operator||(Expr lhs, Expr rhs) {
  return MakeBinary(ExprKind::kOr, std::move(lhs), std::move(rhs));
}

Expr Between(Expr value, Expr lo, Expr hi) {
  return (lo <= value) && (value <= hi);
}

namespace {

Result<ExprType> TypeCheckNode(const ExprNode* node,
                               const storage::Table& table) {
  switch (node->kind) {
    case ExprKind::kColumn: {
      if (!table.HasColumn(node->name)) {
        return Status::NotFound("table '" + table.name() +
                                "' has no column '" + node->name + "'");
      }
      return ExprTypeFor(table.GetColumn(node->name)->type());
    }
    case ExprKind::kLiteral:
    case ExprKind::kParam:
      return node->type;
    case ExprKind::kAdd:
    case ExprKind::kSub:
    case ExprKind::kMul: {
      auto lhs = TypeCheckNode(node->lhs.get(), table);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckNode(node->rhs.get(), table);
      if (!rhs.ok()) return rhs;
      const ExprType lt = lhs.value();
      const ExprType rt = rhs.value();
      if (IsNumeric(lt) && IsNumeric(rt)) {
        return (lt == ExprType::kDouble || rt == ExprType::kDouble)
                   ? ExprType::kDouble
                   : ExprType::kInt64;
      }
      // Date arithmetic: shifting by a day offset (Q4's start + 92 days).
      if (node->kind != ExprKind::kMul && lt == ExprType::kDate &&
          rt == ExprType::kInt64) {
        return ExprType::kDate;
      }
      return Status::InvalidArgument(
          std::string("arithmetic requires numeric operands, got ") +
          ExprTypeName(lt) + " and " + ExprTypeName(rt));
    }
    case ExprKind::kLt:
    case ExprKind::kLe:
    case ExprKind::kGt:
    case ExprKind::kGe:
    case ExprKind::kEq:
    case ExprKind::kNe: {
      auto lhs = TypeCheckNode(node->lhs.get(), table);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckNode(node->rhs.get(), table);
      if (!rhs.ok()) return rhs;
      const ExprType lt = lhs.value();
      const ExprType rt = rhs.value();
      if (lt == ExprType::kDict || rt == ExprType::kDict) {
        // Dictionary codes are equality-only: the dictionaries are not
        // order-preserving, so range comparisons would be meaningless.
        if (node->kind != ExprKind::kEq && node->kind != ExprKind::kNe) {
          return Status::InvalidArgument(
              "dictionary-encoded values support only == and !=");
        }
        if (lt != rt) {
          return Status::InvalidArgument(
              std::string("cannot compare ") + ExprTypeName(lt) + " with " +
              ExprTypeName(rt));
        }
        return ExprType::kBool;
      }
      const bool ok = (IsNumeric(lt) && IsNumeric(rt)) ||
                      (lt == ExprType::kDate &&
                       (rt == ExprType::kDate || rt == ExprType::kInt64)) ||
                      (rt == ExprType::kDate && lt == ExprType::kInt64);
      if (!ok) {
        return Status::InvalidArgument(std::string("cannot compare ") +
                                       ExprTypeName(lt) + " with " +
                                       ExprTypeName(rt));
      }
      return ExprType::kBool;
    }
    case ExprKind::kAnd:
    case ExprKind::kOr: {
      auto lhs = TypeCheckNode(node->lhs.get(), table);
      if (!lhs.ok()) return lhs;
      auto rhs = TypeCheckNode(node->rhs.get(), table);
      if (!rhs.ok()) return rhs;
      if (lhs.value() != ExprType::kBool || rhs.value() != ExprType::kBool) {
        return Status::InvalidArgument(
            std::string("logical operators require bool operands, got ") +
            ExprTypeName(lhs.value()) + " and " + ExprTypeName(rhs.value()));
      }
      return ExprType::kBool;
    }
  }
  return Status::Internal("unhandled expression kind");
}

bool IsConstNode(const ExprNode* node) {
  if (node == nullptr) return true;
  if (node->kind == ExprKind::kColumn) return false;
  return IsConstNode(node->lhs.get()) && IsConstNode(node->rhs.get());
}

}  // namespace

Result<ExprType> TypeCheck(const Expr& expr, const storage::Table& table) {
  if (!expr.valid()) return Status::InvalidArgument("empty expression");
  return TypeCheckNode(expr.node(), table);
}

bool IsConstExpr(const Expr& expr) {
  return expr.valid() && IsConstNode(expr.node());
}

}  // namespace anker::query
