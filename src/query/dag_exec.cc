// Execution of the operator DAG (query/dag.h): morsel-parallel scan
// leaves feeding partitioned hash joins, hash aggregation, window
// functions and sort/top-k through spill-capable TempTupleStores.
//
// Determinism: scan output is reassembled in block order regardless of
// morsel parallelism; the hash join emits (partition, probe order); sorts
// use a total order (keys, then the full row). A DAG execution therefore
// produces bit-identical rows across serial/parallel scans, spill
// thresholds, processing modes and buffer backends — the contract the
// differential plan fuzzer asserts.

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "query/dag.h"
#include "query/plan.h"
#include "query/tuple_store.h"

namespace anker::query {

namespace {

constexpr size_t kJoinPartitions = 8;
constexpr size_t kMergeBufferRows = 256;

/// Total-order three-way compare of one slot value under its schema type,
/// with a raw-bits tiebreak so bit-distinct equal values (-0.0 vs 0.0)
/// still order deterministically.
int CompareTyped(uint64_t a, uint64_t b, ExprType type) {
  switch (type) {
    case ExprType::kDouble: {
      const double x = storage::DecodeDouble(a);
      const double y = storage::DecodeDouble(b);
      if (x < y) return -1;
      if (x > y) return 1;
      break;
    }
    case ExprType::kDict: {
      const uint32_t x = storage::DecodeDict(a);
      const uint32_t y = storage::DecodeDict(b);
      if (x < y) return -1;
      if (x > y) return 1;
      break;
    }
    default: {
      const int64_t x = storage::DecodeInt64(a);
      const int64_t y = storage::DecodeInt64(b);
      if (x < y) return -1;
      if (x > y) return 1;
      break;
    }
  }
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// Row compare: sort keys first (desc flips), then the full row ascending
/// as the tiebreak — a total order over distinct rows.
int RowCompare(const uint64_t* a, const uint64_t* b,
               const std::vector<DagSortKey>& keys,
               const std::vector<DagOutCol>& schema) {
  for (const DagSortKey& key : keys) {
    const int c = CompareTyped(a[key.col], b[key.col], schema[key.col].type);
    if (c != 0) return key.desc ? -c : c;
  }
  for (size_t c = 0; c < schema.size(); ++c) {
    const int r = CompareTyped(a[c], b[c], schema[c].type);
    if (r != 0) return r;
  }
  return 0;
}

uint64_t HashBytes(const std::string& bytes) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a.
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendKeyBytes(const uint64_t* const* cols, size_t row,
                    const std::vector<uint16_t>& key_slots,
                    std::string* out) {
  out->clear();
  for (const uint16_t slot : key_slots) {
    const uint64_t raw = cols[slot][row];
    out->append(reinterpret_cast<const char*>(&raw), sizeof(raw));
  }
}

std::vector<uint16_t> IdentitySrc(size_t width) {
  std::vector<uint16_t> src(width);
  for (size_t i = 0; i < width; ++i) src[i] = static_cast<uint16_t>(i);
  return src;
}

/// Streams `in` through tuple filters into a fresh store (no-op without
/// filters). Used for sub-input filters and join post filters live in
/// their own operators; this one handles DagScan::sub_filters and the
/// plan's final filter.
Status FilterStore(std::unique_ptr<TempTupleStore>* cur,
                   const std::vector<DagOutCol>& schema,
                   const std::vector<Expr>& filters, const Params& params,
                   SpillArena* arena) {
  if (filters.empty()) return Status::OK();
  std::vector<BoundScalar> bound;
  bound.reserve(filters.size());
  for (const Expr& f : filters) {
    auto b = BindTupleScalar(f, schema, params);
    if (!b.ok()) return b.status();
    bound.push_back(b.TakeValue());
  }
  const size_t width = schema.size();
  const std::vector<uint16_t> identity = IdentitySrc(width);
  auto out = std::make_unique<TempTupleStore>(width, arena);
  ANKER_RETURN_IF_ERROR((*cur)->Finish());
  ANKER_RETURN_IF_ERROR((*cur)->ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          bool pass = true;
          for (const BoundScalar& f : bound) {
            if (!EvalScalarBool(f, cols, r)) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          ANKER_RETURN_IF_ERROR(out->AppendGather(cols, identity.data(), r));
        }
        return Status::OK();
      }));
  *cur = std::move(out);
  return Status::OK();
}

Status RunPipeline(const DagPlan& dag, const engine::OlapContext& ctx,
                   const Params& params,
                   const engine::ScanOptions& scan_opts, SpillArena* arena,
                   TempTupleStore* out, uint64_t* rows_scanned,
                   engine::ScanStats* stats);

/// Runs one filtered base-table scan, reassembling passing rows in block
/// order so parallel and serial scans produce identical stores.
Status RunBaseScan(const DagScan& scan, const engine::OlapContext& ctx,
                   const Params& params,
                   const engine::ScanOptions& scan_opts,
                   TempTupleStore* out, uint64_t* rows_scanned,
                   engine::ScanStats* stats) {
  std::vector<BoundPred> preds;
  ANKER_RETURN_IF_ERROR(BindPredsFor(scan.preds, scan.columns, scan.table,
                                     params, &preds));
  std::vector<BoundScalar> generics;
  generics.reserve(scan.generic_preds.size());
  for (const GenericPred& g : scan.generic_preds) {
    auto bound = BindScalarFor(g.expr, scan.columns, scan.table, params);
    if (!bound.ok()) return bound.status();
    generics.push_back(bound.TakeValue());
  }

  std::vector<engine::ColumnReader> readers;
  readers.reserve(scan.columns.size());
  for (storage::Column* column : scan.columns) {
    auto reader = ctx.TryReader(column);
    if (!reader.ok()) return reader.status();
    readers.push_back(reader.value());
  }
  std::vector<const engine::ColumnReader*> reader_ptrs;
  reader_ptrs.reserve(readers.size());
  for (const engine::ColumnReader& reader : readers) {
    reader_ptrs.push_back(&reader);
  }
  engine::ScanDriver driver(std::move(reader_ptrs));

  const size_t width = scan.columns.size();
  // Per-block row-major runs keyed by block begin; the post-fold sort by
  // begin restores block order whatever the morsel schedule was.
  struct Acc {
    std::vector<std::pair<size_t, std::vector<uint64_t>>> runs;
  };
  Acc total{};
  engine::ScanStats local_stats;
  driver.FoldBlockwise<Acc>(
      &total,
      [&](Acc& acc, const engine::ScanBlock& block) {
        std::vector<uint64_t>* run = nullptr;
        for (size_t i = 0; i < block.rows; ++i) {
          if (!PredsPass(preds.data(), preds.size(), block.cols, i)) {
            continue;
          }
          bool pass = true;
          for (const BoundScalar& g : generics) {
            if (!EvalScalarBool(g, block.cols, i)) {
              pass = false;
              break;
            }
          }
          if (!pass) continue;
          if (run == nullptr) {
            acc.runs.emplace_back(block.begin, std::vector<uint64_t>());
            run = &acc.runs.back().second;
          }
          for (size_t c = 0; c < width; ++c) {
            run->push_back(block.cols[c][i]);
          }
        }
      },
      [](Acc& into, Acc&& from) {
        into.runs.insert(into.runs.end(),
                         std::make_move_iterator(from.runs.begin()),
                         std::make_move_iterator(from.runs.end()));
      },
      &local_stats, scan_opts);

  std::sort(total.runs.begin(), total.runs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& run : total.runs) {
    const size_t n = run.second.size() / width;
    for (size_t r = 0; r < n; ++r) {
      ANKER_RETURN_IF_ERROR(out->Append(run.second.data() + r * width));
    }
  }
  if (rows_scanned != nullptr) *rows_scanned += driver.num_rows();
  stats->Merge(local_stats);
  return Status::OK();
}

/// Materializes one DAG input (base-table scan or sub-query pipeline plus
/// tuple filters) into a store of the input's schema width.
Status RunScanInput(const DagScan& scan, const engine::OlapContext& ctx,
                    const Params& params,
                    const engine::ScanOptions& scan_opts, SpillArena* arena,
                    uint64_t* rows_scanned, engine::ScanStats* stats,
                    std::unique_ptr<TempTupleStore>* out) {
  if (scan.table != nullptr) {
    *out = std::make_unique<TempTupleStore>(scan.columns.size(), arena);
    return RunBaseScan(scan, ctx, params, scan_opts, out->get(),
                       rows_scanned, stats);
  }
  if (scan.sub == nullptr || scan.sub->dag == nullptr) {
    return Status::Internal("DAG scan input has neither table nor sub-plan");
  }
  auto store = std::make_unique<TempTupleStore>(
      scan.sub->dag->schema.size(), arena);
  ANKER_RETURN_IF_ERROR(RunPipeline(*scan.sub->dag, ctx, params, scan_opts,
                                    arena, store.get(), rows_scanned,
                                    stats));
  ANKER_RETURN_IF_ERROR(
      FilterStore(&store, scan.schema, scan.sub_filters, params, arena));
  *out = std::move(store);
  return Status::OK();
}

/// Partitioned hash build/probe join. Both sides are hash-partitioned on
/// the key bytes; per partition the build side is loaded row-major and
/// indexed, then the probe side streams through in store order.
Status RunJoin(const DagJoin& join, const std::vector<DagOutCol>& probe_schema,
               const engine::OlapContext& ctx, const Params& params,
               const engine::ScanOptions& scan_opts, SpillArena* arena,
               engine::ScanStats* stats,
               std::unique_ptr<TempTupleStore>* cur) {
  std::unique_ptr<TempTupleStore> build_store;
  ANKER_RETURN_IF_ERROR(RunScanInput(join.build, ctx, params, scan_opts,
                                     arena, nullptr, stats, &build_store));
  ANKER_RETURN_IF_ERROR(build_store->Finish());
  ANKER_RETURN_IF_ERROR((*cur)->Finish());

  const size_t pw = probe_schema.size();
  const size_t bw = join.build.schema.size();
  const size_t ow = join.schema.size();
  const bool keyed = !join.probe_keys.empty();

  // Bind the residual over the combined probe ++ full build schema, and
  // the post filters over the output schema.
  BoundScalar residual;
  std::vector<DagOutCol> combined;
  if (join.residual.valid()) {
    combined = probe_schema;
    combined.insert(combined.end(), join.build.schema.begin(),
                    join.build.schema.end());
    auto bound = BindTupleScalar(join.residual, combined, params);
    if (!bound.ok()) return bound.status();
    residual = bound.TakeValue();
  }
  std::vector<BoundScalar> post;
  post.reserve(join.post_filters.size());
  for (const Expr& f : join.post_filters) {
    auto bound = BindTupleScalar(f, join.schema, params);
    if (!bound.ok()) return bound.status();
    post.push_back(bound.TakeValue());
  }

  // Partition both sides by key-byte hash (everything lands in partition
  // 0 for a keyless cross join).
  const size_t nparts = keyed ? kJoinPartitions : 1;
  std::vector<std::unique_ptr<TempTupleStore>> probe_parts;
  std::vector<std::unique_ptr<TempTupleStore>> build_parts;
  for (size_t p = 0; p < nparts; ++p) {
    probe_parts.push_back(std::make_unique<TempTupleStore>(pw, arena));
    build_parts.push_back(std::make_unique<TempTupleStore>(bw, arena));
  }
  const std::vector<uint16_t> probe_identity = IdentitySrc(pw);
  const std::vector<uint16_t> build_identity = IdentitySrc(bw);
  std::string key;
  ANKER_RETURN_IF_ERROR((*cur)->ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          size_t p = 0;
          if (keyed) {
            AppendKeyBytes(cols, r, join.probe_keys, &key);
            p = HashBytes(key) % kJoinPartitions;
          }
          ANKER_RETURN_IF_ERROR(
              probe_parts[p]->AppendGather(cols, probe_identity.data(), r));
        }
        return Status::OK();
      }));
  ANKER_RETURN_IF_ERROR(build_store->ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          size_t p = 0;
          if (keyed) {
            AppendKeyBytes(cols, r, join.build_keys, &key);
            p = HashBytes(key) % kJoinPartitions;
          }
          ANKER_RETURN_IF_ERROR(
              build_parts[p]->AppendGather(cols, build_identity.data(), r));
        }
        return Status::OK();
      }));
  build_store.reset();

  auto out = std::make_unique<TempTupleStore>(ow, arena);
  // Evaluation buffers: one combined probe+build row (residual), one
  // output row (post filters + emission).
  std::vector<uint64_t> pair_row(pw + bw, 0);
  std::vector<const uint64_t*> pair_cols(pw + bw);
  for (size_t c = 0; c < pw + bw; ++c) pair_cols[c] = &pair_row[c];
  std::vector<uint64_t> out_row(ow, 0);
  std::vector<const uint64_t*> out_cols(ow);
  for (size_t c = 0; c < ow; ++c) out_cols[c] = &out_row[c];

  auto emit = [&](const uint64_t* const* probe_cols, size_t r,
                  const uint64_t* build_row, bool matched) -> Status {
    for (size_t c = 0; c < pw; ++c) out_row[c] = probe_cols[c][r];
    size_t slot = pw;
    for (const uint16_t b : join.build_out) {
      out_row[slot++] = build_row != nullptr ? build_row[b] : 0;
    }
    if (join.type == JoinType::kLeftOuter) {
      out_row[slot++] = storage::EncodeInt64(matched ? 1 : 0);
    }
    for (const BoundScalar& f : post) {
      if (!EvalScalarBool(f, out_cols.data(), 0)) return Status::OK();
    }
    return out->Append(out_row.data());
  };

  for (size_t p = 0; p < nparts; ++p) {
    ANKER_RETURN_IF_ERROR(build_parts[p]->Finish());
    ANKER_RETURN_IF_ERROR(probe_parts[p]->Finish());
    // Load the partition's build rows row-major and index them by key.
    std::vector<uint64_t> build_rows;
    build_rows.reserve(build_parts[p]->rows() * bw);
    ANKER_RETURN_IF_ERROR(build_parts[p]->ForEachChunk(
        [&](const uint64_t* const* cols, size_t rows) -> Status {
          for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < bw; ++c) {
              build_rows.push_back(cols[c][r]);
            }
          }
          return Status::OK();
        }));
    const size_t build_count = build_rows.size() / bw;
    std::unordered_map<std::string, std::vector<uint32_t>> index;
    if (keyed) {
      for (size_t r = 0; r < build_count; ++r) {
        key.clear();
        for (const uint16_t slot : join.build_keys) {
          const uint64_t raw = build_rows[r * bw + slot];
          key.append(reinterpret_cast<const char*>(&raw), sizeof(raw));
        }
        index[key].push_back(static_cast<uint32_t>(r));
      }
    }

    std::vector<uint32_t> all_rows;
    if (!keyed) {
      all_rows.resize(build_count);
      for (size_t r = 0; r < build_count; ++r) {
        all_rows[r] = static_cast<uint32_t>(r);
      }
    }
    const std::vector<uint32_t> empty_rows;

    ANKER_RETURN_IF_ERROR(probe_parts[p]->ForEachChunk(
        [&](const uint64_t* const* cols, size_t rows) -> Status {
          for (size_t r = 0; r < rows; ++r) {
            const std::vector<uint32_t>* candidates = &empty_rows;
            if (keyed) {
              AppendKeyBytes(cols, r, join.probe_keys, &key);
              auto it = index.find(key);
              if (it != index.end()) candidates = &it->second;
            } else {
              candidates = &all_rows;
            }
            bool any = false;
            for (const uint32_t b : *candidates) {
              const uint64_t* build_row = build_rows.data() + b * bw;
              if (residual.root != nullptr) {
                for (size_t c = 0; c < pw; ++c) pair_row[c] = cols[c][r];
                std::memcpy(pair_row.data() + pw, build_row,
                            bw * sizeof(uint64_t));
                if (!EvalScalarBool(residual, pair_cols.data(), 0)) {
                  continue;
                }
              }
              any = true;
              if (join.type == JoinType::kLeftSemi ||
                  join.type == JoinType::kLeftAnti) {
                break;
              }
              ANKER_RETURN_IF_ERROR(emit(cols, r, build_row, true));
            }
            if (join.type == JoinType::kLeftSemi && any) {
              ANKER_RETURN_IF_ERROR(emit(cols, r, nullptr, true));
            } else if (join.type == JoinType::kLeftAnti && !any) {
              ANKER_RETURN_IF_ERROR(emit(cols, r, nullptr, false));
            } else if (join.type == JoinType::kLeftOuter && !any) {
              ANKER_RETURN_IF_ERROR(emit(cols, r, nullptr, false));
            }
          }
          return Status::OK();
        }));
    probe_parts[p].reset();
    build_parts[p].reset();
  }
  *cur = std::move(out);
  return Status::OK();
}

/// Hash aggregation: insertion-ordered groups over raw-byte keys, one
/// double accumulator per aggregate plus a shared row count and optional
/// per-aggregate distinct sets.
Status RunAggregate(const DagAggregate& agg,
                    const std::vector<DagOutCol>& in_schema,
                    const Params& params, SpillArena* arena,
                    std::unique_ptr<TempTupleStore>* cur) {
  struct GroupState {
    std::vector<uint64_t> keys;
    std::vector<double> acc;
    uint64_t count = 0;
  };
  std::vector<BoundScalar> inputs(agg.aggs.size());
  for (size_t i = 0; i < agg.aggs.size(); ++i) {
    if (!agg.aggs[i].expr.valid()) continue;
    auto bound = BindTupleScalar(agg.aggs[i].expr, in_schema, params);
    if (!bound.ok()) return bound.status();
    inputs[i] = bound.TakeValue();
  }
  std::unordered_map<std::string, size_t> group_index;
  std::vector<GroupState> groups;
  std::vector<std::vector<std::unordered_set<uint64_t>>> distinct;

  ANKER_RETURN_IF_ERROR((*cur)->Finish());
  std::string key;
  ANKER_RETURN_IF_ERROR((*cur)->ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          AppendKeyBytes(cols, r, agg.group_cols, &key);
          auto it = group_index.find(key);
          size_t g;
          if (it == group_index.end()) {
            g = groups.size();
            group_index.emplace(key, g);
            GroupState state;
            state.keys.reserve(agg.group_cols.size());
            for (const uint16_t slot : agg.group_cols) {
              state.keys.push_back(cols[slot][r]);
            }
            state.acc.resize(agg.aggs.size(), 0.0);
            for (size_t i = 0; i < agg.aggs.size(); ++i) {
              if (agg.aggs[i].kind == AggKind::kMin) {
                state.acc[i] = std::numeric_limits<double>::infinity();
              } else if (agg.aggs[i].kind == AggKind::kMax) {
                state.acc[i] = -std::numeric_limits<double>::infinity();
              }
            }
            groups.push_back(std::move(state));
            distinct.emplace_back(agg.aggs.size());
          } else {
            g = it->second;
          }
          GroupState& state = groups[g];
          ++state.count;
          for (size_t i = 0; i < agg.aggs.size(); ++i) {
            const DagAggSpec& spec = agg.aggs[i];
            switch (spec.kind) {
              case AggKind::kCount:
                break;
              case AggKind::kSum:
              case AggKind::kAvg:
                state.acc[i] += EvalScalarDouble(inputs[i], cols, r);
                break;
              case AggKind::kMin:
                state.acc[i] = std::min(
                    state.acc[i], EvalScalarDouble(inputs[i], cols, r));
                break;
              case AggKind::kMax:
                state.acc[i] = std::max(
                    state.acc[i], EvalScalarDouble(inputs[i], cols, r));
                break;
              case AggKind::kCountDistinct: {
                const ScalarValue v =
                    EvalScalar(inputs[i].root.get(), cols, r);
                const uint64_t ident =
                    v.type == ExprType::kDouble
                        ? storage::EncodeDouble(v.d)
                        : static_cast<uint64_t>(v.i);
                distinct[g][i].insert(ident);
                break;
              }
            }
          }
        }
        return Status::OK();
      }));

  // A global aggregate (no group keys) over empty input yields one
  // identity row — count = 0, sum = 0, min/max = ±infinity — matching
  // the fused/vectorized fast paths and SQL's COUNT semantics. Grouped
  // aggregates stay empty: there are no groups to report.
  if (agg.group_cols.empty() && groups.empty()) {
    GroupState state;
    state.acc.resize(agg.aggs.size(), 0.0);
    for (size_t i = 0; i < agg.aggs.size(); ++i) {
      if (agg.aggs[i].kind == AggKind::kMin) {
        state.acc[i] = std::numeric_limits<double>::infinity();
      } else if (agg.aggs[i].kind == AggKind::kMax) {
        state.acc[i] = -std::numeric_limits<double>::infinity();
      }
    }
    groups.push_back(std::move(state));
    distinct.emplace_back(agg.aggs.size());
  }

  BoundScalar having;
  if (agg.having.valid()) {
    auto bound = BindTupleScalar(agg.having, agg.schema, params);
    if (!bound.ok()) return bound.status();
    having = bound.TakeValue();
  }

  const size_t width = agg.schema.size();
  auto out = std::make_unique<TempTupleStore>(width, arena);
  std::vector<uint64_t> row(width, 0);
  std::vector<const uint64_t*> row_cols(width);
  for (size_t c = 0; c < width; ++c) row_cols[c] = &row[c];
  for (size_t g = 0; g < groups.size(); ++g) {
    const GroupState& state = groups[g];
    for (size_t k = 0; k < state.keys.size(); ++k) row[k] = state.keys[k];
    for (size_t i = 0; i < agg.aggs.size(); ++i) {
      double v = state.acc[i];
      switch (agg.aggs[i].kind) {
        case AggKind::kCount:
          v = static_cast<double>(state.count);
          break;
        case AggKind::kAvg:
          v = state.count > 0 ? state.acc[i] /
                                    static_cast<double>(state.count)
                              : 0.0;
          break;
        case AggKind::kCountDistinct:
          v = static_cast<double>(distinct[g][i].size());
          break;
        default:
          break;
      }
      row[state.keys.size() + i] = storage::EncodeDouble(v);
    }
    if (having.root != nullptr &&
        !EvalScalarBool(having, row_cols.data(), 0)) {
      continue;
    }
    ANKER_RETURN_IF_ERROR(out->Append(row.data()));
  }
  *cur = std::move(out);
  return Status::OK();
}

/// External sort of a sealed store: per-chunk in-memory sorts into a run
/// store (runs align 1:1 with chunks), then a bounded-memory k-way merge
/// through SliceReaders. `fn` receives rows in sorted order.
Status SortedScan(const TempTupleStore& in,
                  const std::vector<DagSortKey>& keys,
                  const std::vector<DagOutCol>& schema, SpillArena* arena,
                  const std::function<Status(const uint64_t* row)>& fn) {
  const size_t width = schema.size();
  TempTupleStore runs(width, arena);
  std::vector<uint64_t> rows;
  std::vector<const uint64_t*> row_ptrs;
  ANKER_RETURN_IF_ERROR(in.ForEachChunk(
      [&](const uint64_t* const* cols, size_t n) -> Status {
        rows.assign(width * n, 0);
        row_ptrs.resize(n);
        for (size_t r = 0; r < n; ++r) {
          for (size_t c = 0; c < width; ++c) {
            rows[r * width + c] = cols[c][r];
          }
          row_ptrs[r] = rows.data() + r * width;
        }
        std::sort(row_ptrs.begin(), row_ptrs.end(),
                  [&](const uint64_t* a, const uint64_t* b) {
                    return RowCompare(a, b, keys, schema) < 0;
                  });
        for (const uint64_t* row : row_ptrs) {
          ANKER_RETURN_IF_ERROR(runs.Append(row));
        }
        return Status::OK();
      }));
  ANKER_RETURN_IF_ERROR(runs.Finish());

  struct Cursor {
    TempTupleStore::SliceReader reader;
    const uint64_t* const* cols = nullptr;
    size_t n = 0;
    size_t pos = 0;
    std::vector<uint64_t> row;
    bool done = false;
  };
  std::vector<Cursor> cursors(runs.num_chunks());
  auto advance = [&](Cursor* cur) -> Status {
    if (cur->pos >= cur->n) {
      auto next = cur->reader.Next(&cur->cols);
      if (!next.ok()) return next.status();
      cur->n = next.value();
      cur->pos = 0;
      if (cur->n == 0) {
        cur->done = true;
        return Status::OK();
      }
    }
    for (size_t c = 0; c < width; ++c) {
      cur->row[c] = cur->cols[c][cur->pos];
    }
    ++cur->pos;
    return Status::OK();
  };
  for (size_t i = 0; i < cursors.size(); ++i) {
    cursors[i].reader =
        TempTupleStore::SliceReader(&runs, i, kMergeBufferRows);
    cursors[i].row.resize(width);
    ANKER_RETURN_IF_ERROR(advance(&cursors[i]));
  }
  for (;;) {
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].done) continue;
      if (best < 0 ||
          RowCompare(cursors[i].row.data(), cursors[best].row.data(), keys,
                     schema) < 0) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    ANKER_RETURN_IF_ERROR(fn(cursors[best].row.data()));
    ANKER_RETURN_IF_ERROR(advance(&cursors[best]));
  }
  return Status::OK();
}

/// Window stage: sort by (partition, order, tiebreak), then stream one
/// partition at a time, appending the function outputs.
Status RunWindow(const DagWindow& win,
                 const std::vector<DagOutCol>& in_schema,
                 const Params& params, SpillArena* arena,
                 std::unique_ptr<TempTupleStore>* cur) {
  const size_t in_width = in_schema.size();
  const size_t out_width = win.schema.size();
  std::vector<BoundScalar> inputs(win.funcs.size());
  for (size_t i = 0; i < win.funcs.size(); ++i) {
    if (!win.funcs[i].input.valid()) continue;
    auto bound = BindTupleScalar(win.funcs[i].input, in_schema, params);
    if (!bound.ok()) return bound.status();
    inputs[i] = bound.TakeValue();
  }
  std::vector<DagSortKey> sort_keys;
  for (const uint16_t p : win.partition_cols) {
    sort_keys.push_back(DagSortKey{p, false});
  }
  sort_keys.insert(sort_keys.end(), win.order.begin(), win.order.end());

  ANKER_RETURN_IF_ERROR((*cur)->Finish());
  auto out = std::make_unique<TempTupleStore>(out_width, arena);

  // Partition buffer (row-major input rows). Windows typically run after
  // aggregation, so partitions are small; correctness does not depend on
  // that, only memory use does.
  std::vector<uint64_t> part_rows;
  std::vector<uint64_t> out_row(out_width, 0);
  std::vector<const uint64_t*> row_cols(in_width);

  auto same_partition = [&](const uint64_t* a, const uint64_t* b) {
    for (const uint16_t p : win.partition_cols) {
      if (a[p] != b[p]) return false;
    }
    return true;
  };
  auto order_equal = [&](const uint64_t* a, const uint64_t* b) {
    for (const DagSortKey& key : win.order) {
      if (CompareTyped(a[key.col], b[key.col], in_schema[key.col].type) !=
          0) {
        return false;
      }
    }
    return true;
  };

  auto flush_partition = [&]() -> Status {
    const size_t n = part_rows.size() / in_width;
    if (n == 0) return Status::OK();
    // Whole-partition aggregates.
    std::vector<double> agg(win.funcs.size(), 0.0);
    for (size_t i = 0; i < win.funcs.size(); ++i) {
      if (win.funcs[i].fn == WinFn::kMin) {
        agg[i] = std::numeric_limits<double>::infinity();
      } else if (win.funcs[i].fn == WinFn::kMax) {
        agg[i] = -std::numeric_limits<double>::infinity();
      }
    }
    for (size_t r = 0; r < n; ++r) {
      const uint64_t* row = part_rows.data() + r * in_width;
      for (size_t c = 0; c < in_width; ++c) row_cols[c] = &row[c];
      for (size_t i = 0; i < win.funcs.size(); ++i) {
        switch (win.funcs[i].fn) {
          case WinFn::kSum:
          case WinFn::kAvg:
            agg[i] += EvalScalarDouble(inputs[i], row_cols.data(), 0);
            break;
          case WinFn::kMin:
            agg[i] = std::min(
                agg[i], EvalScalarDouble(inputs[i], row_cols.data(), 0));
            break;
          case WinFn::kMax:
            agg[i] = std::max(
                agg[i], EvalScalarDouble(inputs[i], row_cols.data(), 0));
            break;
          default:
            break;
        }
      }
    }
    // Emission pass: rank tracks the start of the current order-key run.
    size_t run_start = 0;
    for (size_t r = 0; r < n; ++r) {
      const uint64_t* row = part_rows.data() + r * in_width;
      if (r > 0 &&
          !order_equal(row, part_rows.data() + (r - 1) * in_width)) {
        run_start = r;
      }
      for (size_t c = 0; c < in_width; ++c) out_row[c] = row[c];
      for (size_t i = 0; i < win.funcs.size(); ++i) {
        double v = 0.0;
        switch (win.funcs[i].fn) {
          case WinFn::kRank:
            v = static_cast<double>(run_start + 1);
            break;
          case WinFn::kRowNumber:
            v = static_cast<double>(r + 1);
            break;
          case WinFn::kCount:
            v = static_cast<double>(n);
            break;
          case WinFn::kSum:
          case WinFn::kMin:
          case WinFn::kMax:
            v = agg[i];
            break;
          case WinFn::kAvg:
            v = agg[i] / static_cast<double>(n);
            break;
        }
        out_row[in_width + i] = storage::EncodeDouble(v);
      }
      ANKER_RETURN_IF_ERROR(out->Append(out_row.data()));
    }
    part_rows.clear();
    return Status::OK();
  };

  ANKER_RETURN_IF_ERROR(SortedScan(
      **cur, sort_keys, in_schema, arena,
      [&](const uint64_t* row) -> Status {
        if (!part_rows.empty() &&
            !same_partition(row, part_rows.data())) {
          ANKER_RETURN_IF_ERROR(flush_partition());
        }
        part_rows.insert(part_rows.end(), row, row + in_width);
        return Status::OK();
      }));
  ANKER_RETURN_IF_ERROR(flush_partition());
  *cur = std::move(out);
  return Status::OK();
}

/// Final ordering: top-k via a bounded heap when a limit accompanies the
/// order keys, full external sort otherwise, plain head for a bare limit.
Status RunOrderLimit(const DagPlan& dag, SpillArena* arena,
                     std::unique_ptr<TempTupleStore>* cur) {
  if (dag.order.empty() && dag.limit < 0) return Status::OK();
  const size_t width = dag.schema.size();
  ANKER_RETURN_IF_ERROR((*cur)->Finish());
  auto out = std::make_unique<TempTupleStore>(width, arena);

  if (dag.order.empty()) {
    // Bare limit: first `limit` rows in store order.
    size_t remaining = static_cast<size_t>(dag.limit);
    ANKER_RETURN_IF_ERROR((*cur)->ForEachChunk(
        [&](const uint64_t* const* cols, size_t rows) -> Status {
          std::vector<uint64_t> row(width);
          for (size_t r = 0; r < rows && remaining > 0; ++r, --remaining) {
            for (size_t c = 0; c < width; ++c) row[c] = cols[c][r];
            ANKER_RETURN_IF_ERROR(out->Append(row.data()));
          }
          return Status::OK();
        }));
    *cur = std::move(out);
    return Status::OK();
  }

  if (dag.limit >= 0) {
    // Top-k: max-heap of the k smallest rows under the total order.
    const size_t k = static_cast<size_t>(dag.limit);
    if (k == 0) {
      *cur = std::move(out);
      return Status::OK();
    }
    auto less = [&](const std::vector<uint64_t>& a,
                    const std::vector<uint64_t>& b) {
      return RowCompare(a.data(), b.data(), dag.order, dag.schema) < 0;
    };
    std::vector<std::vector<uint64_t>> heap;
    ANKER_RETURN_IF_ERROR((*cur)->ForEachChunk(
        [&](const uint64_t* const* cols, size_t rows) -> Status {
          std::vector<uint64_t> row(width);
          for (size_t r = 0; r < rows; ++r) {
            for (size_t c = 0; c < width; ++c) row[c] = cols[c][r];
            if (heap.size() < k) {
              heap.push_back(row);
              std::push_heap(heap.begin(), heap.end(), less);
            } else if (less(row, heap.front())) {
              std::pop_heap(heap.begin(), heap.end(), less);
              heap.back() = row;
              std::push_heap(heap.begin(), heap.end(), less);
            }
          }
          return Status::OK();
        }));
    std::sort(heap.begin(), heap.end(), less);
    for (const std::vector<uint64_t>& row : heap) {
      ANKER_RETURN_IF_ERROR(out->Append(row.data()));
    }
    *cur = std::move(out);
    return Status::OK();
  }

  // Full sort, no limit.
  ANKER_RETURN_IF_ERROR(SortedScan(
      **cur, dag.order, dag.schema, arena,
      [&](const uint64_t* row) { return out->Append(row); }));
  *cur = std::move(out);
  return Status::OK();
}

Status RunPipeline(const DagPlan& dag, const engine::OlapContext& ctx,
                   const Params& params,
                   const engine::ScanOptions& scan_opts, SpillArena* arena,
                   TempTupleStore* out, uint64_t* rows_scanned,
                   engine::ScanStats* stats) {
  std::unique_ptr<TempTupleStore> cur;
  ANKER_RETURN_IF_ERROR(RunScanInput(dag.scan, ctx, params, scan_opts,
                                     arena, rows_scanned, stats, &cur));
  const std::vector<DagOutCol>* schema = &dag.scan.schema;
  for (const DagJoin& join : dag.joins) {
    ANKER_RETURN_IF_ERROR(RunJoin(join, *schema, ctx, params, scan_opts,
                                  arena, stats, &cur));
    schema = &join.schema;
  }
  if (dag.agg.present) {
    ANKER_RETURN_IF_ERROR(RunAggregate(dag.agg, *schema, params, arena,
                                       &cur));
    schema = &dag.agg.schema;
  }
  if (dag.window.present) {
    ANKER_RETURN_IF_ERROR(RunWindow(dag.window, *schema, params, arena,
                                    &cur));
    schema = &dag.window.schema;
  }
  if (dag.final_filter.valid()) {
    ANKER_RETURN_IF_ERROR(FilterStore(&cur, *schema, {dag.final_filter},
                                      params, arena));
  }
  if (!dag.select.empty()) {
    auto selected =
        std::make_unique<TempTupleStore>(dag.select.size(), arena);
    ANKER_RETURN_IF_ERROR(cur->Finish());
    ANKER_RETURN_IF_ERROR(cur->ForEachChunk(
        [&](const uint64_t* const* cols, size_t rows) -> Status {
          for (size_t r = 0; r < rows; ++r) {
            ANKER_RETURN_IF_ERROR(
                selected->AppendGather(cols, dag.select.data(), r));
          }
          return Status::OK();
        }));
    cur = std::move(selected);
  }
  ANKER_RETURN_IF_ERROR(RunOrderLimit(dag, arena, &cur));

  // Hand the final rows to the caller's store.
  const std::vector<uint16_t> identity = IdentitySrc(dag.schema.size());
  ANKER_RETURN_IF_ERROR(cur->Finish());
  return cur->ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          ANKER_RETURN_IF_ERROR(out->AppendGather(cols, identity.data(), r));
        }
        return Status::OK();
      });
}

}  // namespace

Status ExecuteDag(const CompiledQuery& plan, const engine::OlapContext& ctx,
                  const Params& params, const ExecOptions& options,
                  QueryResult* result) {
  if (plan.dag == nullptr) {
    return Status::Internal("plan carries no DAG lowering");
  }
  const DagPlan& dag = *plan.dag;
  SpillArena arena(options.spill_threshold_bytes);
  const engine::ScanOptions scan_opts = options.scan_options != nullptr
                                            ? *options.scan_options
                                            : ctx.scan_options();
  uint64_t rows_scanned = 0;
  engine::ScanStats stats;
  TempTupleStore final_store(dag.schema.size(), &arena);
  ANKER_RETURN_IF_ERROR(RunPipeline(dag, ctx, params, scan_opts, &arena,
                                    &final_store, &rows_scanned, &stats));
  ANKER_RETURN_IF_ERROR(final_store.Finish());

  // Assemble: double-typed schema columns land in `values`, the integer
  // domains (dict codes, dates, int64) in `keys`.
  result->columns.clear();
  result->key_names.clear();
  result->key_types.clear();
  result->interleave.clear();
  result->rows.clear();
  std::vector<size_t> value_slots;
  std::vector<size_t> key_slots;
  for (size_t c = 0; c < dag.schema.size(); ++c) {
    if (dag.schema[c].type == ExprType::kDouble) {
      result->columns.push_back(dag.schema[c].name);
      result->interleave.push_back(1);
      value_slots.push_back(c);
    } else {
      result->key_names.push_back(dag.schema[c].name);
      result->key_types.push_back(dag.schema[c].type);
      result->interleave.push_back(0);
      key_slots.push_back(c);
    }
  }
  ANKER_RETURN_IF_ERROR(final_store.ForEachChunk(
      [&](const uint64_t* const* cols, size_t rows) -> Status {
        for (size_t r = 0; r < rows; ++r) {
          QueryResult::Row row;
          row.keys.reserve(key_slots.size());
          for (const size_t slot : key_slots) {
            const uint64_t raw = cols[slot][r];
            if (dag.schema[slot].type == ExprType::kDict) {
              row.keys.push_back(storage::DecodeDict(raw));
            } else {
              row.keys.push_back(
                  static_cast<uint64_t>(storage::DecodeInt64(raw)));
            }
          }
          row.values.reserve(value_slots.size());
          for (const size_t slot : value_slots) {
            row.values.push_back(storage::DecodeDouble(cols[slot][r]));
          }
          result->rows.push_back(std::move(row));
        }
        return Status::OK();
      }));
  result->rows_scanned = rows_scanned;
  result->scan = stats;
  return Status::OK();
}

}  // namespace anker::query
