#ifndef ANKER_QUERY_MERGE_H_
#define ANKER_QUERY_MERGE_H_

// Scatter-gather planning and partial-result merging for the shard
// router (src/shard/). Given a WireQuery and the shard map's table
// layout, PlanScatter decides how the query distributes:
//
//  - kSingleShard: the plan touches only replicated tables, so any one
//    shard computes the complete answer — the router forwards the query
//    verbatim to one healthy backend.
//  - kConcat: every result row is produced whole by exactly one shard
//    (the plan's streams are provably shard-disjoint), so the global
//    answer is the concatenation of the shard answers, re-sorted and
//    re-limited at the router when the query ordered. Per-shard top-k
//    stays on the shards: a row in the global top-k is necessarily in
//    its own shard's top-k under the engine's total row order.
//  - kPartialAgg: a global (or non-co-partitioned grouped) aggregation
//    over a disjoint stream. Each shard computes partial aggregates —
//    AVG rewritten to SUM plus one appended hidden COUNT — and the
//    router re-aggregates by group key and finalizes AVG = sum/count
//    with the same operands the single-node engine would divide.
//  - kUnsupported: the plan genuinely needs rows from multiple shards
//    in one operator (a non-co-partitioned join, a DISTINCT count over
//    a scattered stream, ...). The router surfaces this as a
//    recoverable NotSupported wire error.
//
// The disjointness analysis tracks, per stream, whether it is
// replicated (identical on every shard) or a disjoint partition of the
// global stream, plus which output columns are "aligned": equal values
// in an aligned column only ever co-occur on one shard (the partition
// key and anything joined or grouped through it). Grouping on an
// aligned column keeps groups shard-local; joining disjoint streams is
// valid only through aligned key pairs (co-partitioned).

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"
#include "query/serialize.h"

namespace anker::query {

/// Table layout from the router's shard map: table name -> hash
/// partition key column. Tables absent from the map are replicated
/// (loaded identically on every shard).
using PartitionMap = std::map<std::string, std::string>;

enum class ScatterMode {
  kSingleShard,
  kConcat,
  kPartialAgg,
  kUnsupported,
};

const char* ScatterModeName(ScatterMode mode);

struct ScatterPlan {
  ScatterMode mode = ScatterMode::kUnsupported;
  /// kUnsupported: what made the plan cross-shard.
  std::string reason;
  /// The query each shard executes (kConcat: the original verbatim;
  /// kPartialAgg: AVG->SUM rewrite, hidden COUNT appended, order/limit
  /// stripped). Unset for kSingleShard — forward the original bytes.
  WireQuery shard_query;
  /// kPartialAgg: merge kind per original aggregate output, in order.
  std::vector<AggKind> agg_kinds;
  /// kPartialAgg: a hidden Count was appended to shard_query's aggs
  /// (dropped again by MergeShardResults after AVG finalization).
  bool hidden_count = false;
  /// Router-side ordering obligations (from the original query).
  std::vector<SortSpec> order_by;
  int64_t limit = -1;
};

/// Classifies `query` against the shard layout. Infallible: an
/// unanalyzable or genuinely cross-shard plan comes back as
/// kUnsupported with a reason, never an error.
ScatterPlan PlanScatter(const WireQuery& query,
                        const PartitionMap& partitioned);

/// Merges per-shard results under `plan` (kConcat or kPartialAgg).
/// `parts` must hold at least one result; all parts must agree on the
/// output schema (same query, same engine — a mismatch is an Internal
/// error). The merged result is bit-identical to a single-node run over
/// the union of the shard data whenever the workload's sums are exact
/// in double arithmetic (associativity), which the router smoke
/// enforces by construction.
Status MergeShardResults(const ScatterPlan& plan,
                         std::vector<QueryResult> parts, QueryResult* out);

}  // namespace anker::query

#endif  // ANKER_QUERY_MERGE_H_
