#include "snapshot/rewired_buffer.h"

#include <sys/mman.h>

#include <cstring>

#include "vm/page.h"

namespace anker::snapshot {

using vm::kPageSize;

namespace {

/// Snapshot view over rewired pool pages. Owns the mapped region; the pool
/// pages it references are never reused while the buffer is alive, so the
/// view stays stable even as the source keeps COW-ing.
class RewiredSnapshotView : public SnapshotView {
 public:
  explicit RewiredSnapshotView(vm::MapRegion region)
      : SnapshotView(region.data(), region.size()),
        region_(std::move(region)) {}

 private:
  vm::MapRegion region_;
};

}  // namespace

Result<std::unique_ptr<RewiredBuffer>> RewiredBuffer::Create(size_t size) {
  std::unique_ptr<RewiredBuffer> buffer(new RewiredBuffer());
  ANKER_RETURN_IF_ERROR(buffer->Init(vm::RoundUpToPage(size)));
  return buffer;
}

Status RewiredBuffer::Init(size_t size) {
  num_pages_ = vm::PageCount(size);
  ANKER_RETURN_IF_ERROR(pool_.Init("anker-rewired-pool", size));
  // Claim the initial contiguous run of pool pages for the column.
  auto first = pool_.AllocatePages(num_pages_);
  if (!first.ok()) return first.status();
  ANKER_CHECK(first.value() == 0);
  page_offsets_.resize(num_pages_);
  for (size_t i = 0; i < num_pages_; ++i) {
    page_offsets_[i] = static_cast<off_t>(i * kPageSize);
  }
  auto region = vm::MapRegion::MapSharedFile(pool_.fd(), size, /*offset=*/0,
                                             PROT_READ | PROT_WRITE);
  if (!region.ok()) return region.status();
  source_ = region.TakeValue();
  data_ = source_.data();
  size_ = source_.size();
  vm::FaultRouter::Instance().RegisterRange(data_, size_, this);
  return Status::OK();
}

RewiredBuffer::~RewiredBuffer() {
  if (data_ != nullptr) {
    vm::FaultRouter::Instance().UnregisterRange(data_);
  }
}

Status RewiredBuffer::RewireRange(uint8_t* target, int prot,
                                  size_t* mmap_calls) const {
  size_t calls = 0;
  size_t run_start = 0;
  while (run_start < num_pages_) {
    size_t run_len = 1;
    while (run_start + run_len < num_pages_ &&
           page_offsets_[run_start + run_len] ==
               page_offsets_[run_start] +
                   static_cast<off_t>(run_len * kPageSize)) {
      ++run_len;
    }
    ANKER_RETURN_IF_ERROR(vm::MapRegion::MapFixedShared(
        target + run_start * kPageSize, pool_.fd(), run_len * kPageSize,
        page_offsets_[run_start], prot));
    ++calls;
    run_start += run_len;
  }
  if (mmap_calls != nullptr) *mmap_calls = calls;
  return Status::OK();
}

Result<std::unique_ptr<SnapshotView>> RewiredBuffer::TakeSnapshot() {
  // Reserve a fresh virtual area, then rewire it run by run to the same
  // pool offsets as the source (this is the per-VMA mmap loop whose cost
  // grows with fragmentation).
  auto reserved = vm::MapRegion::MapAnonymous(size_);
  if (!reserved.ok()) return reserved.status();
  vm::MapRegion region = reserved.TakeValue();
  ANKER_RETURN_IF_ERROR(RewireRange(region.data(), PROT_READ, nullptr));
  // Second pass over the source VMAs: set the protection to read-only so
  // the first write to every page is detected (manual COW).
  ANKER_RETURN_IF_ERROR(source_.Protect(PROT_READ));
  protected_ = true;
  ++snapshots_taken_;
  return std::unique_ptr<SnapshotView>(
      new RewiredSnapshotView(std::move(region)));
}

bool RewiredBuffer::HandleWriteFault(void* fault_addr) {
  const uintptr_t base = reinterpret_cast<uintptr_t>(data_);
  const uintptr_t addr = reinterpret_cast<uintptr_t>(fault_addr);
  if (addr < base || addr >= base + size_) return false;

  SpinLockGuard guard(fault_lock_);
  const size_t page = (addr - base) / kPageSize;
  uint8_t* page_addr = data_ + page * kPageSize;

  // The page may already have been resolved by a racing fault; probe the
  // mapping protection cheaply by checking whether the offset changed while
  // we waited for the lock is not sufficient (same page can fault twice per
  // snapshot round). Re-doing the COW is merely wasted work, not incorrect,
  // because content is copied before remapping.

  // 1. Claim an unused page from the pool.
  auto new_offset = pool_.AllocatePage();
  if (!new_offset.ok()) return false;

  // 2. Copy the page content over (the page is readable).
  alignas(16) uint8_t scratch[kPageSize];
  std::memcpy(scratch, page_addr, kPageSize);
  if (!pool_.file().WriteAt(scratch, kPageSize, new_offset.value()).ok()) {
    return false;
  }

  // 3. Rewire the faulting virtual page to the new pool page, read-write.
  if (!vm::MapRegion::MapFixedShared(page_addr, pool_.fd(), kPageSize,
                                     new_offset.value(),
                                     PROT_READ | PROT_WRITE)
           .ok()) {
    return false;
  }
  page_offsets_[page] = new_offset.value();
  cow_faults_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t RewiredBuffer::CountMappingRuns() const {
  if (num_pages_ == 0) return 0;
  size_t runs = 1;
  for (size_t i = 1; i < num_pages_; ++i) {
    if (page_offsets_[i] !=
        page_offsets_[i - 1] + static_cast<off_t>(kPageSize)) {
      ++runs;
    }
  }
  return runs;
}

BufferStats RewiredBuffer::stats() const {
  BufferStats s;
  s.snapshots_taken = snapshots_taken_;
  s.cow_faults = cow_faults_.load(std::memory_order_relaxed);
  s.pool_pages = pool_.allocated_pages();
  return s;
}

}  // namespace anker::snapshot
