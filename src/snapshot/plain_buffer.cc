#include "snapshot/plain_buffer.h"

#include "vm/page.h"

namespace anker::snapshot {

PlainBuffer::PlainBuffer(vm::MapRegion region) : region_(std::move(region)) {
  data_ = region_.data();
  size_ = region_.size();
}

Result<std::unique_ptr<PlainBuffer>> PlainBuffer::Create(size_t size) {
  auto region = vm::MapRegion::MapAnonymous(vm::RoundUpToPage(size));
  if (!region.ok()) return region.status();
  return std::unique_ptr<PlainBuffer>(new PlainBuffer(region.TakeValue()));
}

}  // namespace anker::snapshot
