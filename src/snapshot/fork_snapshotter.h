#ifndef ANKER_SNAPSHOT_FORK_SNAPSHOTTER_H_
#define ANKER_SNAPSHOT_FORK_SNAPSHOTTER_H_

#include <cstdint>

#include "common/status.h"

namespace anker::snapshot {

/// Fork-based snapshotting (paper Section 3.2.2, classic HyPer): the child
/// process shares all physical memory with the parent, copy-on-write keeps
/// changes local. Always snapshots the *entire process*, independent of how
/// much data is actually needed — its key drawback.
///
/// Used only by benchmarks as a baseline: the engine never executes queries
/// in child processes.
class ForkSnapshotter {
 public:
  /// Forks the process and measures the creation latency of the snapshot
  /// (the fork call itself, which duplicates all VMAs and page tables).
  /// The child exits immediately; the parent reaps it. Returns the fork
  /// latency in nanoseconds.
  static Result<int64_t> MeasureSnapshotNanos();

  /// Forks, runs `fn` in the child against the (implicit) snapshot, exits
  /// the child with fn's return value, and reaps in the parent. Returns the
  /// child's exit code. Demonstrates that fork really does isolate the
  /// snapshot from parent writes.
  static Result<int> RunInSnapshot(int (*fn)(void* arg), void* arg);
};

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_FORK_SNAPSHOTTER_H_
