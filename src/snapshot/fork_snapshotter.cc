#include "snapshot/fork_snapshotter.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/timer.h"

namespace anker::snapshot {

Result<int64_t> ForkSnapshotter::MeasureSnapshotNanos() {
  Timer timer;
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child: the snapshot exists; exit without running atexit handlers or
    // flushing shared stdio buffers.
    ::_exit(0);
  }
  const int64_t nanos = timer.ElapsedNanos();
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return nanos;
}

Result<int> ForkSnapshotter::RunInSnapshot(int (*fn)(void* arg), void* arg) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    return Status::IoError(std::string("fork: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::_exit(fn(arg));
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  if (!WIFEXITED(status)) {
    return Status::Internal("snapshot child did not exit normally");
  }
  return WEXITSTATUS(status);
}

}  // namespace anker::snapshot
