#ifndef ANKER_SNAPSHOT_REWIRED_BUFFER_H_
#define ANKER_SNAPSHOT_REWIRED_BUFFER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/latch.h"
#include "snapshot/snapshotable_buffer.h"
#include "vm/fault_router.h"
#include "vm/map_region.h"
#include "vm/page_pool.h"

namespace anker::snapshot {

/// Rewired snapshotting (paper Section 3.2.3, the RUMA technique): the
/// buffer's physical memory is a memfd page pool; the writable view maps
/// pool pages page-wise via a user-maintained mapping table.
///
/// TakeSnapshot: a fresh virtual area is rewired to the same pool offsets —
/// one mmap call per *run* of consecutive offsets, i.e. per VMA. The source
/// is then mprotect'ed read-only so the first write to each page can be
/// detected.
///
/// Writes after a snapshot: SIGSEGV is caught, the page content is copied
/// to a freshly claimed pool page, the page is remapped (MAP_FIXED) to the
/// new offset read-write, and the mapping table is updated — manual
/// copy-on-write. Every such COW fragments the source into more VMAs, which
/// is exactly the degradation Table 1 / Figure 5a measure.
class RewiredBuffer : public SnapshotableBuffer, public vm::FaultHandler {
 public:
  static Result<std::unique_ptr<RewiredBuffer>> Create(size_t size);
  ~RewiredBuffer() override;

  Result<std::unique_ptr<SnapshotView>> TakeSnapshot() override;

  const char* name() const override { return "rewired"; }

  BufferStats stats() const override;

  /// Number of distinct mapping-table runs = number of VMAs the next
  /// snapshot has to rewire (lower bound on mmap calls).
  size_t CountMappingRuns() const;

  // vm::FaultHandler:
  bool HandleWriteFault(void* fault_addr) override;

 private:
  RewiredBuffer() = default;
  Status Init(size_t size);

  /// Rewires [first_page, first_page + npages) of `target` to the pool
  /// offsets recorded in the mapping table, one mmap per run.
  Status RewireRange(uint8_t* target, int prot, size_t* mmap_calls) const;

  vm::PagePool pool_;
  vm::MapRegion source_;              ///< The writable (OLTP) view.
  std::vector<off_t> page_offsets_;   ///< Virtual page -> pool offset.
  size_t num_pages_ = 0;
  bool protected_ = false;            ///< Source currently read-only?
  SpinLock fault_lock_;               ///< Serializes concurrent COW faults.
  std::atomic<size_t> cow_faults_{0};
  size_t snapshots_taken_ = 0;
};

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_REWIRED_BUFFER_H_
