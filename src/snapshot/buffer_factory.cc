#include "snapshot/physical_buffer.h"
#include "snapshot/plain_buffer.h"
#include "snapshot/rewired_buffer.h"
#include "snapshot/snapshotable_buffer.h"
#include "snapshot/vm_snapshot_buffer.h"

namespace anker::snapshot {

Result<std::unique_ptr<SnapshotableBuffer>> CreateBuffer(BufferBackend backend,
                                                         size_t size) {
  switch (backend) {
    case BufferBackend::kPlain: {
      auto buffer = PlainBuffer::Create(size);
      if (!buffer.ok()) return buffer.status();
      return std::unique_ptr<SnapshotableBuffer>(buffer.TakeValue().release());
    }
    case BufferBackend::kPhysical: {
      auto buffer = PhysicalBuffer::Create(size);
      if (!buffer.ok()) return buffer.status();
      return std::unique_ptr<SnapshotableBuffer>(buffer.TakeValue().release());
    }
    case BufferBackend::kRewired: {
      auto buffer = RewiredBuffer::Create(size);
      if (!buffer.ok()) return buffer.status();
      return std::unique_ptr<SnapshotableBuffer>(buffer.TakeValue().release());
    }
    case BufferBackend::kVmSnapshot: {
      auto buffer = VmSnapshotBuffer::Create(size);
      if (!buffer.ok()) return buffer.status();
      return std::unique_ptr<SnapshotableBuffer>(buffer.TakeValue().release());
    }
  }
  return Status::InvalidArgument("unknown buffer backend");
}

Result<BufferBackend> ParseBufferBackend(const std::string& name) {
  if (name == "plain") return BufferBackend::kPlain;
  if (name == "physical") return BufferBackend::kPhysical;
  if (name == "rewired") return BufferBackend::kRewired;
  if (name == "vm_snapshot") return BufferBackend::kVmSnapshot;
  return Status::InvalidArgument("unknown buffer backend: " + name);
}

const char* BufferBackendName(BufferBackend backend) {
  switch (backend) {
    case BufferBackend::kPlain:
      return "plain";
    case BufferBackend::kPhysical:
      return "physical";
    case BufferBackend::kRewired:
      return "rewired";
    case BufferBackend::kVmSnapshot:
      return "vm_snapshot";
  }
  return "unknown";
}

}  // namespace anker::snapshot
