#ifndef ANKER_SNAPSHOT_PLAIN_BUFFER_H_
#define ANKER_SNAPSHOT_PLAIN_BUFFER_H_

#include <memory>

#include "snapshot/snapshotable_buffer.h"
#include "vm/map_region.h"
#include "vm/page.h"

namespace anker::snapshot {

/// Plain anonymous memory without snapshot support. Used by the
/// homogeneous configurations of the engine, where OLAP transactions scan
/// the live, versioned representation directly.
class PlainBuffer : public SnapshotableBuffer {
 public:
  static Result<std::unique_ptr<PlainBuffer>> Create(size_t size);

  Result<std::unique_ptr<SnapshotView>> TakeSnapshot() override {
    return Status::NotSupported("PlainBuffer cannot snapshot");
  }

  /// Anonymous private pages: MADV_DONTNEED frees them and reads fault
  /// back as zeros.
  Status ReleaseRange(size_t offset, size_t len) override {
    return region_.DontNeed(offset, vm::RoundUpToPage(len));
  }

  bool SupportsSnapshots() const override { return false; }
  const char* name() const override { return "plain"; }

 private:
  explicit PlainBuffer(vm::MapRegion region);

  vm::MapRegion region_;
};

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_PLAIN_BUFFER_H_
