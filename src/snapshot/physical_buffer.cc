#include "snapshot/physical_buffer.h"

#include <cstring>

#include "vm/page.h"

namespace anker::snapshot {

namespace {

/// Snapshot view owning a deep copy of the buffer.
class PhysicalSnapshotView : public SnapshotView {
 public:
  explicit PhysicalSnapshotView(vm::MapRegion region)
      : SnapshotView(region.data(), region.size()),
        region_(std::move(region)) {}

 private:
  vm::MapRegion region_;
};

}  // namespace

PhysicalBuffer::PhysicalBuffer(vm::MapRegion region)
    : region_(std::move(region)) {
  data_ = region_.data();
  size_ = region_.size();
}

Result<std::unique_ptr<PhysicalBuffer>> PhysicalBuffer::Create(size_t size) {
  auto region = vm::MapRegion::MapAnonymous(vm::RoundUpToPage(size));
  if (!region.ok()) return region.status();
  return std::unique_ptr<PhysicalBuffer>(
      new PhysicalBuffer(region.TakeValue()));
}

Result<std::unique_ptr<SnapshotView>> PhysicalBuffer::TakeSnapshot() {
  auto copy = vm::MapRegion::MapAnonymous(size_);
  if (!copy.ok()) return copy.status();
  vm::MapRegion region = copy.TakeValue();
  std::memcpy(region.data(), data_, size_);
  ++snapshots_taken_;
  return std::unique_ptr<SnapshotView>(
      new PhysicalSnapshotView(std::move(region)));
}

}  // namespace anker::snapshot
