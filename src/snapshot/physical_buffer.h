#ifndef ANKER_SNAPSHOT_PHYSICAL_BUFFER_H_
#define ANKER_SNAPSHOT_PHYSICAL_BUFFER_H_

#include <memory>

#include "snapshot/snapshotable_buffer.h"
#include "vm/map_region.h"
#include "vm/page.h"

namespace anker::snapshot {

/// Eager physical snapshotting (paper Section 3.1): TakeSnapshot performs a
/// deep memcpy of the whole buffer into a fresh anonymous mapping. Simple,
/// fully separated at creation time, and linear in buffer size — the
/// baseline that virtual techniques beat.
class PhysicalBuffer : public SnapshotableBuffer {
 public:
  static Result<std::unique_ptr<PhysicalBuffer>> Create(size_t size);

  Result<std::unique_ptr<SnapshotView>> TakeSnapshot() override;

  /// The live image is anonymous private memory (snapshots are deep
  /// copies with their own pages), so MADV_DONTNEED safely frees it.
  Status ReleaseRange(size_t offset, size_t len) override {
    return region_.DontNeed(offset, vm::RoundUpToPage(len));
  }

  const char* name() const override { return "physical"; }

  BufferStats stats() const override {
    BufferStats s;
    s.snapshots_taken = snapshots_taken_;
    return s;
  }

 private:
  explicit PhysicalBuffer(vm::MapRegion region);

  vm::MapRegion region_;
  size_t snapshots_taken_ = 0;
};

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_PHYSICAL_BUFFER_H_
