#ifndef ANKER_SNAPSHOT_SNAPSHOTABLE_BUFFER_H_
#define ANKER_SNAPSHOT_SNAPSHOTABLE_BUFFER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace anker::snapshot {

/// A read-only, point-in-time view of a SnapshotableBuffer. The view stays
/// valid and immutable while the source buffer keeps being written; OLAP
/// scans run over data() in a tight loop. Destroying the view releases the
/// snapshot (its private pages / mappings).
class SnapshotView {
 public:
  virtual ~SnapshotView() = default;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Convenience typed read at a byte offset.
  uint64_t ReadU64(size_t offset) const {
    uint64_t v;
    __builtin_memcpy(&v, data_ + offset, sizeof(v));
    return v;
  }

 protected:
  SnapshotView(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_;
  size_t size_;
};

/// Statistics about a buffer's snapshotting behaviour, reported by benches.
struct BufferStats {
  size_t snapshots_taken = 0;
  size_t cow_faults = 0;        ///< Manual COW events (rewired backend).
  size_t dirty_pages_flushed = 0;  ///< Write-back volume (vm_snapshot).
  size_t forced_cow_pages = 0;  ///< Pages force-COWed in live views.
  size_t pool_pages = 0;        ///< Pool pages allocated (rewired backend).
  int64_t flush_nanos = 0;      ///< Total time in dirty write-back.
  int64_t map_nanos = 0;        ///< Total time creating snapshot mappings.
};

/// Abstract column-memory buffer with point-in-time snapshot support. The
/// concrete backend decides how snapshots are made:
///   PlainBuffer      - no snapshots (homogeneous configurations)
///   PhysicalBuffer   - eager memcpy                      [paper baseline]
///   RewiredBuffer    - memfd rewiring + SIGSEGV manual COW [paper baseline]
///   VmSnapshotBuffer - emulated vm_snapshot system call  [paper's system]
///
/// Write contract: all mutation must go through StoreU64/WriteSpan (or be
/// followed by MarkDirty) so backends that track dirtiness see every write.
/// Concurrent writers must be serialized by the caller (the engine commits
/// under a latch); concurrent readers of the current view are allowed.
class SnapshotableBuffer {
 public:
  virtual ~SnapshotableBuffer() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(SnapshotableBuffer);

  /// Up-to-date, writable representation (the "OLTP view").
  uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Atomic 8-byte read of the current representation. Safe against a
  /// concurrent StoreU64 to the same slot.
  uint64_t LoadU64(size_t offset) const {
    return __atomic_load_n(reinterpret_cast<uint64_t*>(data_ + offset),
                           __ATOMIC_ACQUIRE);
  }

  /// Atomic 8-byte write with dirty tracking.
  void StoreU64(size_t offset, uint64_t value) {
    MarkDirty(offset, sizeof(value));
    __atomic_store_n(reinterpret_cast<uint64_t*>(data_ + offset), value,
                     __ATOMIC_RELEASE);
  }

  /// Bulk write with dirty tracking (used by loaders).
  void WriteSpan(size_t offset, const void* src, size_t len) {
    MarkDirty(offset, len);
    __builtin_memcpy(data_ + offset, src, len);
  }

  /// Records that [offset, offset+len) was (or is about to be) modified.
  /// Backends that track dirtiness override this; the default is a no-op.
  virtual void MarkDirty(size_t /*offset*/, size_t /*len*/) {}

  /// Releases the physical memory behind [offset, offset+len) — the cold
  /// tier evicts a segment's slots after publishing them to an extent.
  /// After a successful release the range's contents are unspecified
  /// (typically zeros) and must be rewritten via WriteSpan before being
  /// read again; the caller's residency state machine enforces that.
  /// `offset` must be page aligned; `len` is rounded up to whole pages
  /// internally, and the caller guarantees no live data shares the
  /// rounded tail page. The default keeps the pages mapped and returns
  /// OK — always correct (the range merely stays physically resident),
  /// used by backends whose pages may be aliased by live snapshots.
  virtual Status ReleaseRange(size_t /*offset*/, size_t /*len*/) {
    return Status::OK();
  }

  /// Creates a point-in-time snapshot of the current contents.
  virtual Result<std::unique_ptr<SnapshotView>> TakeSnapshot() = 0;

  /// Whether TakeSnapshot is implemented (PlainBuffer returns false).
  virtual bool SupportsSnapshots() const { return true; }

  /// Backend name for bench output, e.g. "vm_snapshot".
  virtual const char* name() const = 0;

  virtual BufferStats stats() const { return BufferStats{}; }

 protected:
  SnapshotableBuffer() = default;

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// Backend selector used by engine configuration and benches.
enum class BufferBackend {
  kPlain,
  kPhysical,
  kRewired,
  kVmSnapshot,
};

/// Factory: creates and initializes a zeroed buffer of `size` bytes
/// (rounded up to whole pages) using the requested backend.
Result<std::unique_ptr<SnapshotableBuffer>> CreateBuffer(BufferBackend backend,
                                                         size_t size);

/// Parses a backend name ("plain", "physical", "rewired", "vm_snapshot").
Result<BufferBackend> ParseBufferBackend(const std::string& name);

/// Human-readable backend name.
const char* BufferBackendName(BufferBackend backend);

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_SNAPSHOTABLE_BUFFER_H_
