#include "snapshot/vm_snapshot_buffer.h"

#include <sys/mman.h>

#include <algorithm>
#include <cstring>

#include "common/macros.h"
#include "common/timer.h"
#include "vm/page.h"

namespace anker::snapshot {

using vm::kPageSize;

Result<std::unique_ptr<VmSnapshotBuffer>> VmSnapshotBuffer::Create(
    size_t size) {
  std::unique_ptr<VmSnapshotBuffer> buffer(new VmSnapshotBuffer());
  ANKER_RETURN_IF_ERROR(buffer->Init(vm::RoundUpToPage(size)));
  return buffer;
}

Status VmSnapshotBuffer::Init(size_t size) {
  auto file = vm::Memfd::Create("anker-vm-snapshot", size);
  if (!file.ok()) return file.status();
  file_ = file.TakeValue();
  num_pages_ = vm::PageCount(size);
  num_slots_ = vm::RoundUpToPage(size) / sizeof(uint64_t);
  dirty_.Resize(num_pages_);
  dirty_slots_.Resize(num_slots_);
  auto view = vm::MapRegion::MapPrivateFile(file_.fd(), size, /*offset=*/0,
                                            PROT_READ | PROT_WRITE);
  if (!view.ok()) return view.status();
  oltp_view_ = view.TakeValue();
  data_ = oltp_view_.data();
  size_ = oltp_view_.size();
  return Status::OK();
}

VmSnapshotBuffer::~VmSnapshotBuffer() {
  std::lock_guard<std::mutex> guard(views_mutex_);
  ANKER_CHECK_MSG(live_views_.empty(),
                  "VmSnapshotBuffer destroyed before its snapshot views");
}

void VmSnapshotBuffer::MarkDirty(size_t offset, size_t len) {
  if (len == 0) return;
  ANKER_CHECK(offset + len <= size_);
  const size_t first = vm::PageIndex(offset);
  const size_t last = vm::PageIndex(offset + len - 1);
  for (size_t p = first; p <= last; ++p) dirty_.Set(p);
  const size_t first_slot = offset / sizeof(uint64_t);
  const size_t last_slot = (offset + len - 1) / sizeof(uint64_t);
  for (size_t s = first_slot; s <= last_slot; ++s) dirty_slots_.Set(s);
}

Status VmSnapshotBuffer::ReleaseRange(size_t offset, size_t len) {
  if (len == 0) return Status::OK();
  ANKER_CHECK(vm::IsPageAligned(offset));
  const size_t rlen = vm::RoundUpToPage(len);
  ANKER_CHECK(offset + rlen <= size_);
  {
    std::lock_guard<std::mutex> guard(views_mutex_);
    // Live snapshot views alias the file's pages; punching them would
    // change data under a snapshot. Stay resident — still correct, the
    // release simply frees nothing this round.
    if (!live_views_.empty()) return Status::OK();
  }
  // The range's content becomes zeros in both the private view and the
  // file, so pending dirt in it has nothing left to flush.
  const size_t first_page = vm::PageIndex(offset);
  const size_t last_page = vm::PageIndex(offset + rlen - 1);
  for (size_t p = first_page; p <= last_page; ++p) dirty_.Clear(p);
  const size_t first_slot = offset / sizeof(uint64_t);
  const size_t end_slot = (offset + rlen) / sizeof(uint64_t);
  for (size_t s = first_slot; s < end_slot; ++s) dirty_slots_.Clear(s);
  ANKER_RETURN_IF_ERROR(oltp_view_.DontNeed(offset, rlen));
  return file_.PunchHole(static_cast<off_t>(offset), rlen);
}

Status VmSnapshotBuffer::FlushDirtyPages() {
  if (dirty_.count() == 0) return Status::OK();
  Timer flush_timer;

  // 1. Live snapshot views still resolve these pages from the file; give
  //    them private copies before the file content changes underneath.
  {
    std::lock_guard<std::mutex> guard(views_mutex_);
    for (VmSnapshotView* view : live_views_) {
      ANKER_RETURN_IF_ERROR(view->ForceCowPages(dirty_));
      forced_cow_pages_ += dirty_.count();
    }
  }

  // 2. Write the current content back to the file and 3. drop the now
  //    duplicated anonymous pages from the OLTP view so future reads hit
  //    the (identical) file pages and memory consumption stays bounded.
  //    Dense dirt (> 1/4 of the pages, the common case under a paper-style
  //    update stream) is flushed as ONE bulk write + ONE madvise: clean
  //    pages are rewritten with identical bytes, which no reader can
  //    observe, and the per-page syscall overhead disappears.
  if (dirty_.count() * 4 >= num_pages_) {
    // Dense: one bulk write (clean pages are rewritten with identical
    // bytes, unobservable) and one madvise.
    ANKER_RETURN_IF_ERROR(file_.WriteAt(data_, size_, /*offset=*/0));
    ANKER_RETURN_IF_ERROR(oltp_view_.DontNeed(0, size_));
  } else {
    // Sparse: write back only the modified 8-byte slots — the volume is
    // O(bytes written since the last snapshot), the closest a user-space
    // emulation gets to the real call's "no data copied at all".
    Status write_status = Status::OK();
    dirty_slots_.ForEachRun([&](size_t first_slot, size_t nslots) {
      if (!write_status.ok()) return;
      write_status = file_.WriteAt(
          data_ + first_slot * sizeof(uint64_t), nslots * sizeof(uint64_t),
          static_cast<off_t>(first_slot * sizeof(uint64_t)));
    });
    ANKER_RETURN_IF_ERROR(write_status);
    Status madvise_status = Status::OK();
    dirty_.ForEachRun([&](size_t first_page, size_t npages) {
      if (!madvise_status.ok()) return;
      madvise_status =
          oltp_view_.DontNeed(first_page * kPageSize, npages * kPageSize);
    });
    ANKER_RETURN_IF_ERROR(madvise_status);
  }

  dirty_pages_flushed_ += dirty_.count();
  dirty_.Reset();
  dirty_slots_.Reset();
  flush_nanos_ += flush_timer.ElapsedNanos();
  return Status::OK();
}

Result<std::unique_ptr<SnapshotView>> VmSnapshotBuffer::TakeSnapshot() {
  ANKER_RETURN_IF_ERROR(FlushDirtyPages());
  // The emulated system call: one mmap creates the shared, COW-isolated
  // duplicate of the whole area. MAP_POPULATE fills the PTEs eagerly,
  // matching the state the real vm_snapshot leaves behind (it copies the
  // source's PTEs), so scans on the snapshot pay no soft faults.
  Timer map_timer;
  auto region = vm::MapRegion::MapPrivateFile(file_.fd(), size_, /*offset=*/0,
                                              PROT_READ, /*populate=*/true);
  map_nanos_ += map_timer.ElapsedNanos();
  if (!region.ok()) return region.status();
  auto* view = new VmSnapshotView(this, region.TakeValue());
  {
    std::lock_guard<std::mutex> guard(views_mutex_);
    live_views_.push_back(view);
  }
  ++snapshots_taken_;
  return std::unique_ptr<SnapshotView>(view);
}

Status VmSnapshotBuffer::TakeSnapshotInto(VmSnapshotView* recycled) {
  ANKER_CHECK(recycled != nullptr && recycled->buffer_ == this);
  ANKER_RETURN_IF_ERROR(FlushDirtyPages());
  // Recycle the existing virtual memory area (vm_snapshot's dst_addr form):
  // a MAP_FIXED private mapping replaces the old snapshot in place.
  ANKER_RETURN_IF_ERROR(vm::MapRegion::MapFixedPrivate(
      recycled->region_.data(), file_.fd(), size_, /*offset=*/0, PROT_READ));
  ++snapshots_taken_;
  return Status::OK();
}

void VmSnapshotBuffer::UnregisterView(VmSnapshotView* view) {
  std::lock_guard<std::mutex> guard(views_mutex_);
  auto it = std::find(live_views_.begin(), live_views_.end(), view);
  ANKER_CHECK(it != live_views_.end());
  live_views_.erase(it);
}

size_t VmSnapshotBuffer::DirtyPageCount() const { return dirty_.count(); }

size_t VmSnapshotBuffer::LiveViewCount() const {
  std::lock_guard<std::mutex> guard(views_mutex_);
  return live_views_.size();
}

BufferStats VmSnapshotBuffer::stats() const {
  BufferStats s;
  s.snapshots_taken = snapshots_taken_;
  s.dirty_pages_flushed = dirty_pages_flushed_;
  s.forced_cow_pages = forced_cow_pages_;
  s.flush_nanos = flush_nanos_;
  s.map_nanos = map_nanos_;
  return s;
}

VmSnapshotView::~VmSnapshotView() { buffer_->UnregisterView(this); }

Status VmSnapshotView::ForceCowPages(const Bitmap& pages) {
  // Temporarily allow writes, rewrite each dirty page with its own bytes
  // (forcing the OS to materialize a private copy), then drop back to
  // read-only. Concurrent readers of the view observe identical values
  // throughout: every 8-byte word is rewritten with itself atomically.
  ANKER_RETURN_IF_ERROR(region_.Protect(PROT_READ | PROT_WRITE));
  pages.ForEachRun([&](size_t first_page, size_t npages) {
    const size_t nwords = npages * kPageSize / sizeof(uint64_t);
    for (size_t i = 0; i < nwords; i += kPageSize / sizeof(uint64_t)) {
      // One word per page is enough to trigger the copy-on-write; the OS
      // copies the whole page. Under TSan the self-rewrite is issued as
      // an atomic no-op RMW: scans on this view may race it by design
      // (same intentional-race class as RawSlotLoad), and the value
      // never changes, so only unintended races should be reported.
      uint64_t* word = reinterpret_cast<uint64_t*>(
          region_.data() + (first_page * kPageSize) + i * sizeof(uint64_t));
#ifdef ANKER_TSAN
      __atomic_fetch_add(word, 0, __ATOMIC_RELAXED);
#else
      volatile uint64_t* vword = word;
      *vword = *vword;
#endif
    }
  });
  return region_.Protect(PROT_READ);
}

}  // namespace anker::snapshot
