#ifndef ANKER_SNAPSHOT_VM_SNAPSHOT_BUFFER_H_
#define ANKER_SNAPSHOT_VM_SNAPSHOT_BUFFER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "common/bitmap.h"
#include "snapshot/snapshotable_buffer.h"
#include "vm/map_region.h"
#include "vm/memfd.h"

namespace anker::snapshot {

class VmSnapshotView;

/// User-space emulation of the paper's custom `vm_snapshot` system call
/// (Section 4). The real call duplicates VMAs and PTEs inside the kernel so
/// that source and snapshot share physical pages with OS-handled COW.
///
/// Emulation scheme (see docs/ARCHITECTURE.md §2):
///  - The column's committed-at-last-snapshot image lives in a memfd.
///  - The writable (OLTP) view is a single MAP_PRIVATE mapping of that
///    file: writes COW into anonymous pages handled entirely by the OS —
///    no mprotect, no signal handler (this is what makes writes ~6x
///    cheaper than rewiring in Figure 5b).
///  - The engine reports written ranges through MarkDirty (all writes flow
///    through the storage layer), so no fault tracking is needed.
///  - TakeSnapshot():
///      1. force-COW the dirty pages in every live snapshot view (they
///         still reference the stale file pages about to be overwritten);
///      2. write the modified bytes back to the memfd — at *slot* (8-byte)
///         granularity when dirt is sparse, so the copied volume is
///         O(bytes written), or as one bulk write when most pages are
///         dirty anyway;
///      3. drop the now-duplicated anonymous pages from the OLTP view
///         (madvise MADV_DONTNEED per run) so memory use stays flat;
///      4. map the new snapshot view: ONE read-only MAP_PRIVATE mmap with
///         MAP_POPULATE (the real system call copies PTEs, leaving the
///         snapshot fault-free too).
///    Cost: O(slots dirtied since the last snapshot), independent of the
///    buffer's lifetime write history — the property that makes Figure 5a
///    flat for vm_snapshot while rewiring degrades with VMA count.
///
/// Like the real system call, the snapshot can also be materialized into a
/// previously returned view's virtual memory area ("recycling",
/// Section 4.1.3) via TakeSnapshotInto.
class VmSnapshotBuffer : public SnapshotableBuffer {
 public:
  static Result<std::unique_ptr<VmSnapshotBuffer>> Create(size_t size);
  ~VmSnapshotBuffer() override;

  void MarkDirty(size_t offset, size_t len) override;

  /// Drops the range's private COW copies, punches the backing memfd
  /// pages, and clears its dirty tracking (the content becomes zeros —
  /// there is nothing left to flush). Refuses (returns OK without
  /// releasing) while snapshot views are live: their pages alias the
  /// file's. Caller holds the column latch exclusively, which also
  /// excludes TakeSnapshot and all dirty-tracking writers.
  Status ReleaseRange(size_t offset, size_t len) override;

  Result<std::unique_ptr<SnapshotView>> TakeSnapshot() override;

  /// Re-materializes the snapshot into `recycled`'s existing virtual memory
  /// area instead of allocating a new one (vm_snapshot's dst_addr form).
  Status TakeSnapshotInto(VmSnapshotView* recycled);

  const char* name() const override { return "vm_snapshot"; }

  BufferStats stats() const override;

  /// Pages currently marked dirty (will be flushed by the next snapshot).
  size_t DirtyPageCount() const;

  /// Number of live snapshot views (for tests).
  size_t LiveViewCount() const;

 private:
  friend class VmSnapshotView;

  VmSnapshotBuffer() = default;
  Status Init(size_t size);

  /// Steps 1-3 above; leaves the memfd holding the current content.
  Status FlushDirtyPages();

  void UnregisterView(VmSnapshotView* view);

  vm::Memfd file_;
  vm::MapRegion oltp_view_;
  size_t num_pages_ = 0;
  size_t num_slots_ = 0;
  Bitmap dirty_;        ///< Page granularity: view force-COW + madvise.
  Bitmap dirty_slots_;  ///< 8-byte granularity: minimal write-back volume.

  mutable std::mutex views_mutex_;
  std::vector<VmSnapshotView*> live_views_;

  size_t snapshots_taken_ = 0;
  size_t dirty_pages_flushed_ = 0;
  size_t forced_cow_pages_ = 0;
  int64_t flush_nanos_ = 0;
  int64_t map_nanos_ = 0;
};

/// Snapshot view produced by VmSnapshotBuffer. Unregisters itself from the
/// buffer on destruction; the buffer must outlive its views.
class VmSnapshotView : public SnapshotView {
 public:
  ~VmSnapshotView() override;

 private:
  friend class VmSnapshotBuffer;

  VmSnapshotView(VmSnapshotBuffer* buffer, vm::MapRegion region)
      : SnapshotView(region.data(), region.size()),
        buffer_(buffer),
        region_(std::move(region)) {}

  /// Force-COWs [page, page+1) so the view keeps the current file content
  /// even after the file page is overwritten. Rewrites the page's bytes
  /// with themselves under temporary PROT_WRITE.
  Status ForceCowPages(const Bitmap& pages);

  VmSnapshotBuffer* buffer_;
  vm::MapRegion region_;
};

}  // namespace anker::snapshot

#endif  // ANKER_SNAPSHOT_VM_SNAPSHOT_BUFFER_H_
