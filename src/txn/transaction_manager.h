#ifndef ANKER_TXN_TRANSACTION_MANAGER_H_
#define ANKER_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/active_txn_registry.h"
#include "mvcc/intent_table.h"
#include "mvcc/timestamp_oracle.h"
#include "txn/recent_committers.h"
#include "txn/transaction.h"

namespace anker::txn {

/// Processing model of the engine (paper Section 5.1's three
/// configurations).
enum class ProcessingMode {
  /// Single component, OLAP scans the live versioned data, commit-time
  /// read-set validation, background GC.
  kHomogeneousSerializable,
  /// Same, but without validation (write-write conflicts only).
  kHomogeneousSnapshotIsolation,
  /// OLTP on the up-to-date representation, OLAP on virtual snapshots,
  /// full serializability.
  kHeterogeneousSerializable,
};

const char* ProcessingModeName(ProcessingMode mode);

/// Counters exposed to benches and tests.
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts_ww = 0;          ///< First-committer-wins conflicts.
  uint64_t aborts_validation = 0;  ///< Precision-locking read-set failures.
  uint64_t user_aborts = 0;
};

/// MVCC transaction coordinator. Begin hands out start timestamps; Commit
/// runs the (partially sequential, mutex-protected) commit protocol:
///   1. draw commit_ts,
///   2. first-committer-wins write-write check,
///   3. precision-locking read-set validation (serializable modes),
///   4. materialize writes in place + push old values into version chains,
///   5. append the write set to the recent-committers list.
/// Aborts are cheap: local writes are simply discarded.
class TransactionManager {
 public:
  explicit TransactionManager(ProcessingMode mode);
  ANKER_DISALLOW_COPY_AND_MOVE(TransactionManager);

  ProcessingMode mode() const { return mode_; }
  IsolationLevel isolation() const {
    return mode_ == ProcessingMode::kHomogeneousSnapshotIsolation
               ? IsolationLevel::kSnapshotIsolation
               : IsolationLevel::kSerializable;
  }

  /// Starts a transaction of the given type.
  std::unique_ptr<Transaction> Begin(TxnType type);

  /// Commits: returns OK, or kAborted (local writes discarded, transaction
  /// finished either way — the caller may retry with a fresh Begin).
  Status Commit(Transaction* txn);

  /// Explicit abort (paper Fig. 1 step 3: discard local changes, no
  /// rollback).
  void Abort(Transaction* txn);

  /// Hook invoked (inside the commit section) with the running commit
  /// count; the engine uses it to trigger snapshot epochs every n commits.
  void SetCommitHook(std::function<void(uint64_t commits)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Durability integration (engine-installed when a WAL is configured).
  /// `sink` runs inside the commit critical section after the write set
  /// materialized: it serializes the redo record and returns its log
  /// sequence number — appends therefore happen in commit-timestamp
  /// order, which recovery replay depends on. `wait` runs after the
  /// critical section (so one commit's fsync never blocks the next
  /// committer) and returns only when the record is durable; under
  /// group_commit the commit acknowledgement is deferred on it, under
  /// lazy it is a no-op. A failed wait turns the commit Status into the
  /// IO error — the write set is already applied in memory, but the
  /// caller must not treat the transaction as durably committed.
  using DurabilitySink = std::function<uint64_t(
      mvcc::Timestamp commit_ts,
      const std::vector<Transaction::LocalWrite>& writes)>;
  using DurabilityWait = std::function<Status(uint64_t lsn)>;
  /// `max_writes` bounds one transaction's loggable write set (the WAL
  /// caps record sizes); an oversized transaction is rejected with a
  /// Status before the commit protocol starts, instead of aborting the
  /// process inside the critical section.
  void SetDurabilityHooks(DurabilitySink sink, DurabilityWait wait,
                          size_t max_writes = SIZE_MAX) {
    durability_sink_ = std::move(sink);
    durability_wait_ = std::move(wait);
    max_durable_writes_ = max_writes;
  }

  /// Recovery path: re-applies one logged commit through the normal
  /// materialization code (latches, version-chain pushes, visibility
  /// watermark) with its *original* commit timestamp. No validation, no
  /// hooks, no re-logging — the record already survived a crash once.
  void ReplayCommitted(const std::vector<Transaction::LocalWrite>& writes,
                       mvcc::Timestamp commit_ts);

  // --- Cross-shard two-phase commit (docs/SERVER.md "2PC surface") ------
  //
  // The router coordinates: PREPARE_TXN stages a write set as intents,
  // COMMIT_PREPARED materializes it, ABORT_PREPARED discards it, and
  // RESOLVE_INTENT asks the primary shard what happened. Writes are
  // applied at a LOCALLY drawn apply_ts >= the router's global commit_ts
  // (HLC metadata): every checkpoint/replay/GC invariant is then
  // identical to a normal commit's, and cross-shard atomicity comes from
  // the intents gating readers, not from equal timestamps.

  /// Durability sinks for the three 2PC record types, engine-installed
  /// alongside the commit sink (same in-critical-section contract).
  using PrepareSink = std::function<uint64_t(const mvcc::PreparedTxn& txn)>;
  using CommitPreparedSink = std::function<uint64_t(
      uint64_t gtid, mvcc::Timestamp commit_ts, mvcc::Timestamp apply_ts,
      const std::vector<mvcc::IntentWrite>& writes)>;
  using AbortPreparedSink =
      std::function<uint64_t(uint64_t gtid, mvcc::Timestamp abort_ts)>;
  void SetDistributedHooks(PrepareSink prepare, CommitPreparedSink commit,
                           AbortPreparedSink abort) {
    prepare_sink_ = std::move(prepare);
    commit_prepared_sink_ = std::move(commit);
    abort_prepared_sink_ = std::move(abort);
  }

  /// Phase one: stages `writes` as intents under this shard's commit
  /// mutex, draws a local prepare timestamp, and logs a kPrepare record.
  /// kResourceBusy on an intent conflict, kAborted if the gtid was
  /// already resolved as aborted (zombie fencing). On OK the staged rows
  /// are locked until the outcome arrives.
  Status PrepareDistributed(uint64_t gtid, uint32_t primary_shard,
                            const std::vector<Transaction::LocalWrite>& writes,
                            mvcc::Timestamp* prepare_ts,
                            uint64_t* durable_lsn);

  /// Phase two, commit: materializes the staged writes at a fresh local
  /// apply_ts >= commit_ts and records the outcome. Idempotent — a
  /// duplicate returns OK with *durable_lsn = 0. kAborted if the
  /// transaction was resolved as aborted, kNotFound for an unknown gtid.
  Status CommitPrepared(uint64_t gtid, mvcc::Timestamp commit_ts,
                        uint64_t* durable_lsn);

  /// Phase two, abort: discards the staged writes. Aborting an unknown
  /// gtid records a durable aborted tombstone (fences zombie prepares);
  /// aborting a committed gtid is kInvalidArgument; duplicates are OK.
  Status AbortPrepared(uint64_t gtid, uint64_t* durable_lsn);

  /// Outcome query serving RESOLVE_INTENT at the primary. For a pending
  /// transaction, `abort_pending` escalates: the caller (a reader whose
  /// router died) aborts it durably rather than waiting forever. An
  /// unknown gtid resolves as aborted (and leaves a durable tombstone) —
  /// its prepare never reached this shard, so it cannot have committed.
  Status ResolveOutcome(uint64_t gtid, bool abort_pending,
                        mvcc::TxnOutcome* outcome,
                        mvcc::Timestamp* commit_ts);

  /// Recovery twins (no logging, idempotent, ledger-aware).
  void ReplayPrepare(mvcc::PreparedTxn txn);
  void ReplayCommitPrepared(uint64_t gtid, mvcc::Timestamp commit_ts,
                            mvcc::Timestamp apply_ts,
                            const std::vector<Transaction::LocalWrite>& writes,
                            bool apply_writes);
  void ReplayAbortPrepared(uint64_t gtid, mvcc::Timestamp abort_ts);

  /// Intent table (reader-side lookups, checkpoint snapshot/restore).
  mvcc::IntentTable& intents() { return intents_; }
  const mvcc::IntentTable& intents() const { return intents_; }

  /// Restores the counters a checkpoint manifest carries, so a recovered
  /// engine continues the pre-crash numbering (snapshot-epoch cadence,
  /// txn ids) instead of restarting from zero.
  void RestoreDurableState(uint64_t commit_count, uint64_t next_txn_id);

  mvcc::TimestampOracle& oracle() { return oracle_; }
  mvcc::ActiveTxnRegistry& registry() { return registry_; }

  TxnStats stats() const;
  uint64_t committed_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }
  uint64_t next_txn_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

 private:
  ProcessingMode mode_;
  mvcc::TimestampOracle oracle_;
  mvcc::ActiveTxnRegistry registry_;

  /// Read-visibility watermark: the newest commit timestamp whose writes
  /// are all materialized. Begin() stamps transactions here (see the
  /// comment there); bumped at the end of the commit critical section.
  std::atomic<mvcc::Timestamp> visible_ts_{0};

  /// The paper's "list of recently committed transactions, that must be
  /// mutex protected ... to organize validation" — the commit mutex.
  std::mutex commit_mutex_;
  RecentCommitters recent_;

  std::function<void(uint64_t)> commit_hook_;
  DurabilitySink durability_sink_;
  DurabilityWait durability_wait_;
  size_t max_durable_writes_ = SIZE_MAX;

  mvcc::IntentTable intents_;
  PrepareSink prepare_sink_;
  CommitPreparedSink commit_prepared_sink_;
  AbortPreparedSink abort_prepared_sink_;

  /// Shared by AbortPrepared / ResolveOutcome / zombie fencing: discards
  /// pending intents (if any), logs kAbortPrepared, records the aborted
  /// outcome. Caller holds commit_mutex_.
  uint64_t AbortPreparedLocked(uint64_t gtid);

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> commit_count_{0};
  std::atomic<uint64_t> aborts_ww_{0};
  std::atomic<uint64_t> aborts_validation_{0};
  std::atomic<uint64_t> user_aborts_{0};
};

}  // namespace anker::txn

#endif  // ANKER_TXN_TRANSACTION_MANAGER_H_
