#ifndef ANKER_TXN_TRANSACTION_MANAGER_H_
#define ANKER_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/active_txn_registry.h"
#include "mvcc/timestamp_oracle.h"
#include "txn/recent_committers.h"
#include "txn/transaction.h"

namespace anker::txn {

/// Processing model of the engine (paper Section 5.1's three
/// configurations).
enum class ProcessingMode {
  /// Single component, OLAP scans the live versioned data, commit-time
  /// read-set validation, background GC.
  kHomogeneousSerializable,
  /// Same, but without validation (write-write conflicts only).
  kHomogeneousSnapshotIsolation,
  /// OLTP on the up-to-date representation, OLAP on virtual snapshots,
  /// full serializability.
  kHeterogeneousSerializable,
};

const char* ProcessingModeName(ProcessingMode mode);

/// Counters exposed to benches and tests.
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts_ww = 0;          ///< First-committer-wins conflicts.
  uint64_t aborts_validation = 0;  ///< Precision-locking read-set failures.
  uint64_t user_aborts = 0;
};

/// MVCC transaction coordinator. Begin hands out start timestamps; Commit
/// runs the (partially sequential, mutex-protected) commit protocol:
///   1. draw commit_ts,
///   2. first-committer-wins write-write check,
///   3. precision-locking read-set validation (serializable modes),
///   4. materialize writes in place + push old values into version chains,
///   5. append the write set to the recent-committers list.
/// Aborts are cheap: local writes are simply discarded.
class TransactionManager {
 public:
  explicit TransactionManager(ProcessingMode mode);
  ANKER_DISALLOW_COPY_AND_MOVE(TransactionManager);

  ProcessingMode mode() const { return mode_; }
  IsolationLevel isolation() const {
    return mode_ == ProcessingMode::kHomogeneousSnapshotIsolation
               ? IsolationLevel::kSnapshotIsolation
               : IsolationLevel::kSerializable;
  }

  /// Starts a transaction of the given type.
  std::unique_ptr<Transaction> Begin(TxnType type);

  /// Commits: returns OK, or kAborted (local writes discarded, transaction
  /// finished either way — the caller may retry with a fresh Begin).
  Status Commit(Transaction* txn);

  /// Explicit abort (paper Fig. 1 step 3: discard local changes, no
  /// rollback).
  void Abort(Transaction* txn);

  /// Hook invoked (inside the commit section) with the running commit
  /// count; the engine uses it to trigger snapshot epochs every n commits.
  void SetCommitHook(std::function<void(uint64_t commits)> hook) {
    commit_hook_ = std::move(hook);
  }

  /// Durability integration (engine-installed when a WAL is configured).
  /// `sink` runs inside the commit critical section after the write set
  /// materialized: it serializes the redo record and returns its log
  /// sequence number — appends therefore happen in commit-timestamp
  /// order, which recovery replay depends on. `wait` runs after the
  /// critical section (so one commit's fsync never blocks the next
  /// committer) and returns only when the record is durable; under
  /// group_commit the commit acknowledgement is deferred on it, under
  /// lazy it is a no-op. A failed wait turns the commit Status into the
  /// IO error — the write set is already applied in memory, but the
  /// caller must not treat the transaction as durably committed.
  using DurabilitySink = std::function<uint64_t(
      mvcc::Timestamp commit_ts,
      const std::vector<Transaction::LocalWrite>& writes)>;
  using DurabilityWait = std::function<Status(uint64_t lsn)>;
  /// `max_writes` bounds one transaction's loggable write set (the WAL
  /// caps record sizes); an oversized transaction is rejected with a
  /// Status before the commit protocol starts, instead of aborting the
  /// process inside the critical section.
  void SetDurabilityHooks(DurabilitySink sink, DurabilityWait wait,
                          size_t max_writes = SIZE_MAX) {
    durability_sink_ = std::move(sink);
    durability_wait_ = std::move(wait);
    max_durable_writes_ = max_writes;
  }

  /// Recovery path: re-applies one logged commit through the normal
  /// materialization code (latches, version-chain pushes, visibility
  /// watermark) with its *original* commit timestamp. No validation, no
  /// hooks, no re-logging — the record already survived a crash once.
  void ReplayCommitted(const std::vector<Transaction::LocalWrite>& writes,
                       mvcc::Timestamp commit_ts);

  /// Restores the counters a checkpoint manifest carries, so a recovered
  /// engine continues the pre-crash numbering (snapshot-epoch cadence,
  /// txn ids) instead of restarting from zero.
  void RestoreDurableState(uint64_t commit_count, uint64_t next_txn_id);

  mvcc::TimestampOracle& oracle() { return oracle_; }
  mvcc::ActiveTxnRegistry& registry() { return registry_; }

  TxnStats stats() const;
  uint64_t committed_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }
  uint64_t next_txn_id() const {
    return next_txn_id_.load(std::memory_order_relaxed);
  }

 private:
  ProcessingMode mode_;
  mvcc::TimestampOracle oracle_;
  mvcc::ActiveTxnRegistry registry_;

  /// Read-visibility watermark: the newest commit timestamp whose writes
  /// are all materialized. Begin() stamps transactions here (see the
  /// comment there); bumped at the end of the commit critical section.
  std::atomic<mvcc::Timestamp> visible_ts_{0};

  /// The paper's "list of recently committed transactions, that must be
  /// mutex protected ... to organize validation" — the commit mutex.
  std::mutex commit_mutex_;
  RecentCommitters recent_;

  std::function<void(uint64_t)> commit_hook_;
  DurabilitySink durability_sink_;
  DurabilityWait durability_wait_;
  size_t max_durable_writes_ = SIZE_MAX;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> commit_count_{0};
  std::atomic<uint64_t> aborts_ww_{0};
  std::atomic<uint64_t> aborts_validation_{0};
  std::atomic<uint64_t> user_aborts_{0};
};

}  // namespace anker::txn

#endif  // ANKER_TXN_TRANSACTION_MANAGER_H_
