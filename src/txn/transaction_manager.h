#ifndef ANKER_TXN_TRANSACTION_MANAGER_H_
#define ANKER_TXN_TRANSACTION_MANAGER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/active_txn_registry.h"
#include "mvcc/timestamp_oracle.h"
#include "txn/recent_committers.h"
#include "txn/transaction.h"

namespace anker::txn {

/// Processing model of the engine (paper Section 5.1's three
/// configurations).
enum class ProcessingMode {
  /// Single component, OLAP scans the live versioned data, commit-time
  /// read-set validation, background GC.
  kHomogeneousSerializable,
  /// Same, but without validation (write-write conflicts only).
  kHomogeneousSnapshotIsolation,
  /// OLTP on the up-to-date representation, OLAP on virtual snapshots,
  /// full serializability.
  kHeterogeneousSerializable,
};

const char* ProcessingModeName(ProcessingMode mode);

/// Counters exposed to benches and tests.
struct TxnStats {
  uint64_t commits = 0;
  uint64_t aborts_ww = 0;          ///< First-committer-wins conflicts.
  uint64_t aborts_validation = 0;  ///< Precision-locking read-set failures.
  uint64_t user_aborts = 0;
};

/// MVCC transaction coordinator. Begin hands out start timestamps; Commit
/// runs the (partially sequential, mutex-protected) commit protocol:
///   1. draw commit_ts,
///   2. first-committer-wins write-write check,
///   3. precision-locking read-set validation (serializable modes),
///   4. materialize writes in place + push old values into version chains,
///   5. append the write set to the recent-committers list.
/// Aborts are cheap: local writes are simply discarded.
class TransactionManager {
 public:
  explicit TransactionManager(ProcessingMode mode);
  ANKER_DISALLOW_COPY_AND_MOVE(TransactionManager);

  ProcessingMode mode() const { return mode_; }
  IsolationLevel isolation() const {
    return mode_ == ProcessingMode::kHomogeneousSnapshotIsolation
               ? IsolationLevel::kSnapshotIsolation
               : IsolationLevel::kSerializable;
  }

  /// Starts a transaction of the given type.
  std::unique_ptr<Transaction> Begin(TxnType type);

  /// Commits: returns OK, or kAborted (local writes discarded, transaction
  /// finished either way — the caller may retry with a fresh Begin).
  Status Commit(Transaction* txn);

  /// Explicit abort (paper Fig. 1 step 3: discard local changes, no
  /// rollback).
  void Abort(Transaction* txn);

  /// Hook invoked (inside the commit section) with the running commit
  /// count; the engine uses it to trigger snapshot epochs every n commits.
  void SetCommitHook(std::function<void(uint64_t commits)> hook) {
    commit_hook_ = std::move(hook);
  }

  mvcc::TimestampOracle& oracle() { return oracle_; }
  mvcc::ActiveTxnRegistry& registry() { return registry_; }

  TxnStats stats() const;
  uint64_t committed_count() const {
    return commit_count_.load(std::memory_order_relaxed);
  }

 private:
  ProcessingMode mode_;
  mvcc::TimestampOracle oracle_;
  mvcc::ActiveTxnRegistry registry_;

  /// Read-visibility watermark: the newest commit timestamp whose writes
  /// are all materialized. Begin() stamps transactions here (see the
  /// comment there); bumped at the end of the commit critical section.
  std::atomic<mvcc::Timestamp> visible_ts_{0};

  /// The paper's "list of recently committed transactions, that must be
  /// mutex protected ... to organize validation" — the commit mutex.
  std::mutex commit_mutex_;
  RecentCommitters recent_;

  std::function<void(uint64_t)> commit_hook_;

  std::atomic<uint64_t> next_txn_id_{1};
  std::atomic<uint64_t> commit_count_{0};
  std::atomic<uint64_t> aborts_ww_{0};
  std::atomic<uint64_t> aborts_validation_{0};
  std::atomic<uint64_t> user_aborts_{0};
};

}  // namespace anker::txn

#endif  // ANKER_TXN_TRANSACTION_MANAGER_H_
