#ifndef ANKER_TXN_TRANSACTION_H_
#define ANKER_TXN_TRANSACTION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "mvcc/timestamp_oracle.h"
#include "txn/predicate.h"

namespace anker::txn {

/// Isolation level of a configuration (paper Section 5.1).
enum class IsolationLevel {
  kSnapshotIsolation,
  kSerializable,
};

/// Transaction classification in the heterogeneous model.
enum class TxnType {
  kOltp,  ///< Short, modifying; runs on the up-to-date representation.
  kOlap,  ///< Long, read-only; runs on a snapshot (heterogeneous mode).
};

/// A transaction's private state: local (uncommitted) writes, read set and
/// predicate set for validation. Writes stay local until commit — aborts
/// simply discard them, no rollback needed (paper Fig. 1, step 3).
class Transaction {
 public:
  Transaction(uint64_t id, mvcc::Timestamp start_ts, uint64_t registry_serial,
              TxnType type)
      : id_(id),
        start_ts_(start_ts),
        registry_serial_(registry_serial),
        type_(type) {}
  ANKER_DISALLOW_COPY_AND_MOVE(Transaction);

  uint64_t id() const { return id_; }
  mvcc::Timestamp start_ts() const { return start_ts_; }
  uint64_t registry_serial() const { return registry_serial_; }
  TxnType type() const { return type_; }

  /// Read of `row` in `column` as of start_ts, seeing the transaction's
  /// own uncommitted writes first. Records the row in the read set.
  uint64_t Read(const storage::Column* column, uint64_t row);

  /// Buffers a write locally (invisible to others until commit). A second
  /// write to the same slot overwrites the first.
  void Write(storage::Column* column, uint64_t row, uint64_t new_raw);

  /// Records a predicate range the transaction filtered on (scans).
  void AddPredicate(const storage::Column* column, uint64_t lo, uint64_t hi);

  bool read_only() const { return writes_.empty(); }

  // Accessors for the transaction manager's commit protocol.
  struct LocalWrite {
    storage::Column* column;
    uint64_t row;
    uint64_t new_raw;
  };
  const std::vector<LocalWrite>& writes() const { return writes_; }
  const std::vector<PointRead>& point_reads() const { return point_reads_; }
  const std::vector<PredicateRange>& predicates() const { return predicates_; }

  /// WAL LSN of this transaction's commit record, set by the commit
  /// protocol once the record is appended (0 for read-only transactions
  /// or when durability is off). Clients use it as a read-your-writes
  /// token against replica applied watermarks.
  uint64_t durable_lsn() const { return durable_lsn_; }
  void set_durable_lsn(uint64_t lsn) { durable_lsn_ = lsn; }

 private:
  struct SlotKey {
    const void* column;
    uint64_t row;
    bool operator==(const SlotKey& other) const {
      return column == other.column && row == other.row;
    }
  };
  struct SlotKeyHash {
    size_t operator()(const SlotKey& key) const {
      return std::hash<const void*>()(key.column) ^
             std::hash<uint64_t>()(key.row * 0x9E3779B97F4A7C15ULL);
    }
  };

  uint64_t id_;
  mvcc::Timestamp start_ts_;
  uint64_t registry_serial_;
  TxnType type_;
  uint64_t durable_lsn_ = 0;

  std::vector<LocalWrite> writes_;
  std::unordered_map<SlotKey, size_t, SlotKeyHash> write_lookup_;
  std::vector<PointRead> point_reads_;
  std::vector<PredicateRange> predicates_;
};

}  // namespace anker::txn

#endif  // ANKER_TXN_TRANSACTION_H_
