#include "txn/recent_committers.h"

namespace anker::txn {

void RecentCommitters::Record(mvcc::Timestamp commit_ts,
                              std::vector<WriteRecord> writes) {
  ANKER_CHECK(entries_.empty() || entries_.back().commit_ts < commit_ts);
  entries_.push_back(Entry{commit_ts, std::move(writes)});
  while (entries_.size() > max_entries_) {
    trimmed_before_ = entries_.front().commit_ts + 1;
    entries_.pop_front();
  }
}

Status RecentCommitters::Validate(
    mvcc::Timestamp start_ts, const std::vector<PointRead>& point_reads,
    const std::vector<PredicateRange>& predicates) const {
  // If commits in (start_ts, trimmed_before_) were dropped, we cannot
  // prove the absence of an intersection -> conservative abort. With the
  // default capacity this only triggers for pathologically long
  // transactions.
  if (start_ts + 1 < trimmed_before_) {
    return Status::Aborted("validation window trimmed (long transaction)");
  }
  // Entries are ordered by commit_ts; binary search for the first commit
  // after the transaction's start.
  size_t lo = 0;
  size_t hi = entries_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (entries_[mid].commit_ts > start_ts) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (size_t i = lo; i < entries_.size(); ++i) {
    for (const WriteRecord& write : entries_[i].writes) {
      for (const PredicateRange& predicate : predicates) {
        if (Intersects(predicate, write)) {
          return Status::Aborted("predicate intersection with commit");
        }
      }
      for (const PointRead& read : point_reads) {
        if (Intersects(read, write)) {
          return Status::Aborted("stale point read");
        }
      }
    }
  }
  return Status::OK();
}

mvcc::Timestamp RecentCommitters::OldestRetained() const {
  if (entries_.empty()) return mvcc::kInfiniteTimestamp;
  return entries_.front().commit_ts;
}

void RecentCommitters::TrimOlderThan(mvcc::Timestamp watermark) {
  while (!entries_.empty() && entries_.front().commit_ts < watermark) {
    trimmed_before_ = entries_.front().commit_ts + 1;
    entries_.pop_front();
  }
}

}  // namespace anker::txn
