#include "txn/transaction_manager.h"

#include <algorithm>

namespace anker::txn {

const char* ProcessingModeName(ProcessingMode mode) {
  switch (mode) {
    case ProcessingMode::kHomogeneousSerializable:
      return "homogeneous-serializable";
    case ProcessingMode::kHomogeneousSnapshotIsolation:
      return "homogeneous-snapshot-isolation";
    case ProcessingMode::kHeterogeneousSerializable:
      return "heterogeneous-serializable";
  }
  return "unknown";
}

TransactionManager::TransactionManager(ProcessingMode mode) : mode_(mode) {}

std::unique_ptr<Transaction> TransactionManager::Begin(TxnType type) {
  // Start at the newest *fully applied* commit, not at a fresh oracle
  // tick: a fresh tick can exceed the timestamp of a commit whose writes
  // are still being materialized row by row, and a reader timestamped in
  // that window would see half of the commit (a torn transfer). The
  // watermark is bumped only after a commit's last write landed, so
  // everything at or below start_ts is complete.
  const mvcc::Timestamp start_ts =
      visible_ts_.load(std::memory_order_acquire);
  const uint64_t serial = registry_.Begin(start_ts);
  return std::make_unique<Transaction>(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed), start_ts, serial,
      type);
}

void TransactionManager::Abort(Transaction* txn) {
  // Discarding the local write set is all an abort takes.
  registry_.End(txn->registry_serial());
  user_aborts_.fetch_add(1, std::memory_order_relaxed);
}

Status TransactionManager::Commit(Transaction* txn) {
  // Read-only transactions see a consistent MVCC snapshot as of start_ts
  // and are serializable without validation (serialize them at their start
  // point).
  if (txn->read_only()) {
    registry_.End(txn->registry_serial());
    commit_count_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // The WAL caps one record's size; reject before the critical section
  // rather than CHECK-aborting the process inside it.
  if (durability_sink_ && txn->writes().size() > max_durable_writes_) {
    registry_.End(txn->registry_serial());
    user_aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "write set exceeds the WAL record size limit (" +
        std::to_string(txn->writes().size()) + " > " +
        std::to_string(max_durable_writes_) + " writes)");
  }

  uint64_t durable_lsn = 0;
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);

    // 1. First-committer-wins: a newer committed write to any slot in our
    //    write set means our update was based on a stale version. A slot
    //    locked by a prepared distributed transaction is busy — its
    //    outcome is undecided, so neither conflict-abort nor proceed is
    //    sound; the caller retries once the intent resolves.
    for (const Transaction::LocalWrite& write : txn->writes()) {
      mvcc::IntentInfo intent;
      if (intents_.Lookup(write.column, write.row, &intent)) {
        registry_.End(txn->registry_serial());
        aborts_ww_.fetch_add(1, std::memory_order_relaxed);
        return Status::ResourceBusy(
            "slot is locked by a prepared cross-shard transaction");
      }
      if (write.column->LastWriteTs(write.row, txn->start_ts()) >
          txn->start_ts()) {
        registry_.End(txn->registry_serial());
        aborts_ww_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted("write-write conflict");
      }
    }

    // 2. Read-set validation via precision locking (serializable only).
    if (isolation() == IsolationLevel::kSerializable) {
      const Status validation = recent_.Validate(
          txn->start_ts(), txn->point_reads(), txn->predicates());
      if (!validation.ok()) {
        registry_.End(txn->registry_serial());
        aborts_validation_.fetch_add(1, std::memory_order_relaxed);
        return validation;
      }
    }

    // 3. Materialize. Shared latches on every touched column make the
    //    commit atomic with respect to snapshot materialization (which
    //    drains updaters with the exclusive latch). Latches are acquired
    //    in a canonical order; snapshot creation takes one exclusive latch
    //    at a time, so no lock-order cycle exists.
    std::vector<storage::Column*> columns;
    columns.reserve(txn->writes().size());
    for (const Transaction::LocalWrite& write : txn->writes()) {
      columns.push_back(write.column);
    }
    std::sort(columns.begin(), columns.end());
    columns.erase(std::unique(columns.begin(), columns.end()),
                  columns.end());
    for (storage::Column* column : columns) column->latch().LockShared();

    const mvcc::Timestamp commit_ts = oracle_.Next();
    std::vector<WriteRecord> records;
    records.reserve(txn->writes().size());
    for (const Transaction::LocalWrite& write : txn->writes()) {
      // ApplyCommittedWrite hands back the pre-image: reading it via
      // ReadLatestRaw here would fault cold segments in through the
      // exclusive latch and deadlock against our own shared hold.
      const uint64_t old_raw = write.column->ApplyCommittedWrite(
          write.row, write.new_raw, commit_ts);
      records.push_back(
          WriteRecord{write.column, write.row, old_raw, write.new_raw});
    }

    for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
      (*it)->latch().UnlockShared();
    }

    // Every write of this commit is materialized: make it visible to new
    // readers (commits serialize under commit_mutex_, so the watermark is
    // monotonic).
    visible_ts_.store(commit_ts, std::memory_order_release);

    // 4. Emit the redo record. Still inside the critical section, so the
    //    log receives records in commit-timestamp order; the (possibly
    //    blocking) wait for the fsync happens after the lock is dropped.
    if (durability_sink_) {
      durable_lsn = durability_sink_(commit_ts, txn->writes());
      txn->set_durable_lsn(durable_lsn);
    }

    // 5. Publish the write set for later validators, then trim what no
    //    active transaction can need anymore.
    if (isolation() == IsolationLevel::kSerializable) {
      recent_.Record(commit_ts, std::move(records));
      recent_.TrimOlderThan(registry_.MinStartTs(commit_ts));
    }

    registry_.End(txn->registry_serial());
    const uint64_t commits =
        commit_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (commit_hook_) commit_hook_(commits);
  }

  // 6. Group commit: acknowledge only once the record is on disk. Other
  //    committers proceed through the critical section meanwhile and share
  //    the next fsync.
  if (durable_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(durable_lsn));
  }
  return Status::OK();
}

void TransactionManager::ReplayCommitted(
    const std::vector<Transaction::LocalWrite>& writes,
    mvcc::Timestamp commit_ts) {
  std::lock_guard<std::mutex> commit_guard(commit_mutex_);
  std::vector<storage::Column*> columns;
  columns.reserve(writes.size());
  for (const Transaction::LocalWrite& write : writes) {
    columns.push_back(write.column);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  for (storage::Column* column : columns) column->latch().LockShared();

  // Keep the logged timestamp: version chains and visibility must come
  // out exactly as they were when the record was written.
  oracle_.AdvanceTo(commit_ts);
  for (const Transaction::LocalWrite& write : writes) {
    write.column->ApplyCommittedWrite(write.row, write.new_raw, commit_ts);
  }

  for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
    (*it)->latch().UnlockShared();
  }
  visible_ts_.store(commit_ts, std::memory_order_release);
  commit_count_.fetch_add(1, std::memory_order_relaxed);
}

namespace {

std::vector<storage::Column*> SortedUniqueColumns(
    const std::vector<mvcc::IntentWrite>& writes) {
  std::vector<storage::Column*> columns;
  columns.reserve(writes.size());
  for (const mvcc::IntentWrite& write : writes) {
    columns.push_back(write.column);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

}  // namespace

Status TransactionManager::PrepareDistributed(
    uint64_t gtid, uint32_t primary_shard,
    const std::vector<Transaction::LocalWrite>& writes,
    mvcc::Timestamp* prepare_ts, uint64_t* durable_lsn) {
  *durable_lsn = 0;
  if (writes.empty()) {
    return Status::InvalidArgument("empty distributed write set");
  }
  if (prepare_sink_ && writes.size() > max_durable_writes_) {
    return Status::InvalidArgument(
        "write set exceeds the WAL record size limit");
  }
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);
    mvcc::PreparedTxn txn;
    txn.gtid = gtid;
    txn.primary_shard = primary_shard;
    // The router's EXEC_TXN writes are blind (no reads travel with the
    // prepare), so the snapshot stamp is the current watermark and the
    // first-committer-wins check against it is vacuous by construction:
    // nothing can have committed after a timestamp drawn under the same
    // mutex that serializes commits.
    txn.start_ts = visible_ts_.load(std::memory_order_acquire);
    txn.writes.reserve(writes.size());
    for (const Transaction::LocalWrite& write : writes) {
      txn.writes.push_back(
          mvcc::IntentWrite{write.column, write.row, write.new_raw});
    }
    txn.prepare_ts = oracle_.Next();
    *prepare_ts = txn.prepare_ts;
    const mvcc::PreparedTxn logged = txn;  // Place() consumes the struct.
    ANKER_RETURN_IF_ERROR(intents_.Place(std::move(txn)));
    if (prepare_sink_) *durable_lsn = prepare_sink_(logged);
  }
  // The prepare acknowledgement is a durability promise — the router
  // commits on the strength of it — so it waits for the fsync like a
  // commit acknowledgement does.
  if (*durable_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(*durable_lsn));
  }
  return Status::OK();
}

Status TransactionManager::CommitPrepared(uint64_t gtid,
                                          mvcc::Timestamp commit_ts,
                                          uint64_t* durable_lsn) {
  *durable_lsn = 0;
  if (commit_ts == 0) {
    return Status::InvalidArgument("commit timestamp must be positive");
  }
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);
    mvcc::Timestamp decided_ts = 0;
    switch (intents_.OutcomeOf(gtid, &decided_ts)) {
      case mvcc::TxnOutcome::kCommitted:
        return Status::OK();  // Duplicate COMMIT_PREPARED: already done.
      case mvcc::TxnOutcome::kAborted:
        return Status::Aborted("prepared transaction was aborted");
      case mvcc::TxnOutcome::kPending:
        break;
    }
    mvcc::PreparedTxn txn;
    if (!intents_.Remove(gtid, &txn)) {
      return Status::NotFound("unknown prepared transaction");
    }

    const std::vector<storage::Column*> columns =
        SortedUniqueColumns(txn.writes);
    for (storage::Column* column : columns) column->latch().LockShared();

    // Materialize at a locally drawn apply_ts >= the router's commit_ts,
    // NOT at commit_ts itself: the local oracle may already be past it,
    // and checkpoint/replay consistency ("skip iff apply_ts <= ckpt_ts")
    // only holds for timestamps issued by this shard's own monotonic
    // sequence. The global commit_ts travels as metadata in the WAL
    // record; atomicity across shards is the intents' job, not the
    // clocks'.
    oracle_.AdvanceTo(commit_ts - 1);
    const mvcc::Timestamp apply_ts = oracle_.Next();
    std::vector<WriteRecord> records;
    records.reserve(txn.writes.size());
    for (const mvcc::IntentWrite& write : txn.writes) {
      // Pre-image via ApplyCommittedWrite, not ReadLatestRaw: the read
      // path's cold fault-in takes the exclusive latch we hold shared.
      const uint64_t old_raw = write.column->ApplyCommittedWrite(
          write.row, write.new_raw, apply_ts);
      records.push_back(
          WriteRecord{write.column, write.row, old_raw, write.new_raw});
    }
    for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
      (*it)->latch().UnlockShared();
    }
    visible_ts_.store(apply_ts, std::memory_order_release);

    if (commit_prepared_sink_) {
      *durable_lsn =
          commit_prepared_sink_(gtid, commit_ts, apply_ts, txn.writes);
    }
    if (isolation() == IsolationLevel::kSerializable) {
      recent_.Record(apply_ts, std::move(records));
      recent_.TrimOlderThan(registry_.MinStartTs(apply_ts));
    }
    intents_.RecordOutcome(gtid, mvcc::TxnOutcome::kCommitted, commit_ts);
    const uint64_t commits =
        commit_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (commit_hook_) commit_hook_(commits);
  }
  if (*durable_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(*durable_lsn));
  }
  return Status::OK();
}

uint64_t TransactionManager::AbortPreparedLocked(uint64_t gtid) {
  mvcc::PreparedTxn txn;
  intents_.Remove(gtid, &txn);  // May be absent (unknown gtid): fine.
  const mvcc::Timestamp abort_ts = oracle_.Next();
  uint64_t lsn = 0;
  if (abort_prepared_sink_) lsn = abort_prepared_sink_(gtid, abort_ts);
  intents_.RecordOutcome(gtid, mvcc::TxnOutcome::kAborted, 0);
  return lsn;
}

Status TransactionManager::AbortPrepared(uint64_t gtid,
                                         uint64_t* durable_lsn) {
  *durable_lsn = 0;
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);
    switch (intents_.OutcomeOf(gtid, nullptr)) {
      case mvcc::TxnOutcome::kCommitted:
        // Never undo applied data: a commit decision is final.
        return Status::InvalidArgument(
            "prepared transaction already committed");
      case mvcc::TxnOutcome::kAborted:
        return Status::OK();  // Duplicate abort.
      case mvcc::TxnOutcome::kPending:
        break;
    }
    // Unknown gtids get a durable aborted tombstone too: the router died
    // before this shard's prepare landed, and the tombstone fences any
    // zombie PREPARE_TXN still in flight.
    *durable_lsn = AbortPreparedLocked(gtid);
  }
  if (*durable_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(*durable_lsn));
  }
  return Status::OK();
}

Status TransactionManager::ResolveOutcome(uint64_t gtid, bool abort_pending,
                                          mvcc::TxnOutcome* outcome,
                                          mvcc::Timestamp* commit_ts) {
  uint64_t abort_lsn = 0;
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);
    *commit_ts = 0;
    const mvcc::TxnOutcome decided = intents_.OutcomeOf(gtid, commit_ts);
    if (decided != mvcc::TxnOutcome::kPending) {
      *outcome = decided;
      return Status::OK();
    }
    mvcc::PreparedTxn txn;
    if (intents_.Get(gtid, &txn)) {
      if (!abort_pending) {
        *outcome = mvcc::TxnOutcome::kPending;  // Coordinator may be alive.
        return Status::OK();
      }
      // Escalation: the caller waited long enough to declare the
      // coordinator dead. Abort durably — the commit point is this
      // shard's ledger, so once the tombstone lands no COMMIT_PREPARED
      // can succeed.
      abort_lsn = AbortPreparedLocked(gtid);
      *outcome = mvcc::TxnOutcome::kAborted;
    } else {
      // Never prepared here (or the ledger already evicted a decided
      // entry — kMaxOutcomes is sized so no live resolution hits that).
      // The prepare cannot commit anymore once the tombstone is durable.
      abort_lsn = AbortPreparedLocked(gtid);
      *outcome = mvcc::TxnOutcome::kAborted;
    }
  }
  if (abort_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(abort_lsn));
  }
  return Status::OK();
}

void TransactionManager::ReplayPrepare(mvcc::PreparedTxn txn) {
  std::lock_guard<std::mutex> commit_guard(commit_mutex_);
  oracle_.AdvanceTo(txn.prepare_ts);
  if (intents_.OutcomeOf(txn.gtid, nullptr) != mvcc::TxnOutcome::kPending) {
    return;  // Decided later in the log (or in the manifest ledger).
  }
  const Status placed = intents_.Place(std::move(txn));
  (void)placed;  // Idempotent re-stage; conflicts cannot arise on replay.
}

void TransactionManager::ReplayCommitPrepared(
    uint64_t gtid, mvcc::Timestamp commit_ts, mvcc::Timestamp apply_ts,
    const std::vector<Transaction::LocalWrite>& writes, bool apply_writes) {
  std::lock_guard<std::mutex> commit_guard(commit_mutex_);
  mvcc::PreparedTxn txn;
  intents_.Remove(gtid, &txn);  // Clear the staged twin if present.
  intents_.RecordOutcome(gtid, mvcc::TxnOutcome::kCommitted, commit_ts);
  if (!apply_writes) return;  // Checkpoint image already contains them.

  std::vector<storage::Column*> columns;
  columns.reserve(writes.size());
  for (const Transaction::LocalWrite& write : writes) {
    columns.push_back(write.column);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  for (storage::Column* column : columns) column->latch().LockShared();
  oracle_.AdvanceTo(apply_ts);
  for (const Transaction::LocalWrite& write : writes) {
    write.column->ApplyCommittedWrite(write.row, write.new_raw, apply_ts);
  }
  for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
    (*it)->latch().UnlockShared();
  }
  visible_ts_.store(apply_ts, std::memory_order_release);
  commit_count_.fetch_add(1, std::memory_order_relaxed);
}

void TransactionManager::ReplayAbortPrepared(uint64_t gtid,
                                             mvcc::Timestamp abort_ts) {
  std::lock_guard<std::mutex> commit_guard(commit_mutex_);
  oracle_.AdvanceTo(abort_ts);
  mvcc::PreparedTxn txn;
  intents_.Remove(gtid, &txn);
  intents_.RecordOutcome(gtid, mvcc::TxnOutcome::kAborted, 0);
}

void TransactionManager::RestoreDurableState(uint64_t commit_count,
                                             uint64_t next_txn_id) {
  commit_count_.store(commit_count, std::memory_order_relaxed);
  uint64_t cur = next_txn_id_.load(std::memory_order_relaxed);
  if (cur < next_txn_id) {
    next_txn_id_.store(next_txn_id, std::memory_order_relaxed);
  }
  // The watermark tracks the newest fully applied commit; after a replay
  // that is wherever the oracle got advanced to.
  const mvcc::Timestamp current = oracle_.Current();
  mvcc::Timestamp seen = visible_ts_.load(std::memory_order_relaxed);
  if (seen < current) {
    visible_ts_.store(current, std::memory_order_release);
  }
}

TxnStats TransactionManager::stats() const {
  TxnStats s;
  s.commits = commit_count_.load(std::memory_order_relaxed);
  s.aborts_ww = aborts_ww_.load(std::memory_order_relaxed);
  s.aborts_validation = aborts_validation_.load(std::memory_order_relaxed);
  s.user_aborts = user_aborts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace anker::txn
