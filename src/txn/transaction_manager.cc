#include "txn/transaction_manager.h"

#include <algorithm>

namespace anker::txn {

const char* ProcessingModeName(ProcessingMode mode) {
  switch (mode) {
    case ProcessingMode::kHomogeneousSerializable:
      return "homogeneous-serializable";
    case ProcessingMode::kHomogeneousSnapshotIsolation:
      return "homogeneous-snapshot-isolation";
    case ProcessingMode::kHeterogeneousSerializable:
      return "heterogeneous-serializable";
  }
  return "unknown";
}

TransactionManager::TransactionManager(ProcessingMode mode) : mode_(mode) {}

std::unique_ptr<Transaction> TransactionManager::Begin(TxnType type) {
  // Start at the newest *fully applied* commit, not at a fresh oracle
  // tick: a fresh tick can exceed the timestamp of a commit whose writes
  // are still being materialized row by row, and a reader timestamped in
  // that window would see half of the commit (a torn transfer). The
  // watermark is bumped only after a commit's last write landed, so
  // everything at or below start_ts is complete.
  const mvcc::Timestamp start_ts =
      visible_ts_.load(std::memory_order_acquire);
  const uint64_t serial = registry_.Begin(start_ts);
  return std::make_unique<Transaction>(
      next_txn_id_.fetch_add(1, std::memory_order_relaxed), start_ts, serial,
      type);
}

void TransactionManager::Abort(Transaction* txn) {
  // Discarding the local write set is all an abort takes.
  registry_.End(txn->registry_serial());
  user_aborts_.fetch_add(1, std::memory_order_relaxed);
}

Status TransactionManager::Commit(Transaction* txn) {
  // Read-only transactions see a consistent MVCC snapshot as of start_ts
  // and are serializable without validation (serialize them at their start
  // point).
  if (txn->read_only()) {
    registry_.End(txn->registry_serial());
    commit_count_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }

  // The WAL caps one record's size; reject before the critical section
  // rather than CHECK-aborting the process inside it.
  if (durability_sink_ && txn->writes().size() > max_durable_writes_) {
    registry_.End(txn->registry_serial());
    user_aborts_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "write set exceeds the WAL record size limit (" +
        std::to_string(txn->writes().size()) + " > " +
        std::to_string(max_durable_writes_) + " writes)");
  }

  uint64_t durable_lsn = 0;
  {
    std::lock_guard<std::mutex> commit_guard(commit_mutex_);

    // 1. First-committer-wins: a newer committed write to any slot in our
    //    write set means our update was based on a stale version.
    for (const Transaction::LocalWrite& write : txn->writes()) {
      if (write.column->LastWriteTs(write.row, txn->start_ts()) >
          txn->start_ts()) {
        registry_.End(txn->registry_serial());
        aborts_ww_.fetch_add(1, std::memory_order_relaxed);
        return Status::Aborted("write-write conflict");
      }
    }

    // 2. Read-set validation via precision locking (serializable only).
    if (isolation() == IsolationLevel::kSerializable) {
      const Status validation = recent_.Validate(
          txn->start_ts(), txn->point_reads(), txn->predicates());
      if (!validation.ok()) {
        registry_.End(txn->registry_serial());
        aborts_validation_.fetch_add(1, std::memory_order_relaxed);
        return validation;
      }
    }

    // 3. Materialize. Shared latches on every touched column make the
    //    commit atomic with respect to snapshot materialization (which
    //    drains updaters with the exclusive latch). Latches are acquired
    //    in a canonical order; snapshot creation takes one exclusive latch
    //    at a time, so no lock-order cycle exists.
    std::vector<storage::Column*> columns;
    columns.reserve(txn->writes().size());
    for (const Transaction::LocalWrite& write : txn->writes()) {
      columns.push_back(write.column);
    }
    std::sort(columns.begin(), columns.end());
    columns.erase(std::unique(columns.begin(), columns.end()),
                  columns.end());
    for (storage::Column* column : columns) column->latch().LockShared();

    const mvcc::Timestamp commit_ts = oracle_.Next();
    std::vector<WriteRecord> records;
    records.reserve(txn->writes().size());
    for (const Transaction::LocalWrite& write : txn->writes()) {
      const uint64_t old_raw = write.column->ReadLatestRaw(write.row);
      write.column->ApplyCommittedWrite(write.row, write.new_raw, commit_ts);
      records.push_back(
          WriteRecord{write.column, write.row, old_raw, write.new_raw});
    }

    for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
      (*it)->latch().UnlockShared();
    }

    // Every write of this commit is materialized: make it visible to new
    // readers (commits serialize under commit_mutex_, so the watermark is
    // monotonic).
    visible_ts_.store(commit_ts, std::memory_order_release);

    // 4. Emit the redo record. Still inside the critical section, so the
    //    log receives records in commit-timestamp order; the (possibly
    //    blocking) wait for the fsync happens after the lock is dropped.
    if (durability_sink_) {
      durable_lsn = durability_sink_(commit_ts, txn->writes());
      txn->set_durable_lsn(durable_lsn);
    }

    // 5. Publish the write set for later validators, then trim what no
    //    active transaction can need anymore.
    if (isolation() == IsolationLevel::kSerializable) {
      recent_.Record(commit_ts, std::move(records));
      recent_.TrimOlderThan(registry_.MinStartTs(commit_ts));
    }

    registry_.End(txn->registry_serial());
    const uint64_t commits =
        commit_count_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (commit_hook_) commit_hook_(commits);
  }

  // 6. Group commit: acknowledge only once the record is on disk. Other
  //    committers proceed through the critical section meanwhile and share
  //    the next fsync.
  if (durable_lsn != 0 && durability_wait_) {
    ANKER_RETURN_IF_ERROR(durability_wait_(durable_lsn));
  }
  return Status::OK();
}

void TransactionManager::ReplayCommitted(
    const std::vector<Transaction::LocalWrite>& writes,
    mvcc::Timestamp commit_ts) {
  std::lock_guard<std::mutex> commit_guard(commit_mutex_);
  std::vector<storage::Column*> columns;
  columns.reserve(writes.size());
  for (const Transaction::LocalWrite& write : writes) {
    columns.push_back(write.column);
  }
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  for (storage::Column* column : columns) column->latch().LockShared();

  // Keep the logged timestamp: version chains and visibility must come
  // out exactly as they were when the record was written.
  oracle_.AdvanceTo(commit_ts);
  for (const Transaction::LocalWrite& write : writes) {
    write.column->ApplyCommittedWrite(write.row, write.new_raw, commit_ts);
  }

  for (auto it = columns.rbegin(); it != columns.rend(); ++it) {
    (*it)->latch().UnlockShared();
  }
  visible_ts_.store(commit_ts, std::memory_order_release);
  commit_count_.fetch_add(1, std::memory_order_relaxed);
}

void TransactionManager::RestoreDurableState(uint64_t commit_count,
                                             uint64_t next_txn_id) {
  commit_count_.store(commit_count, std::memory_order_relaxed);
  uint64_t cur = next_txn_id_.load(std::memory_order_relaxed);
  if (cur < next_txn_id) {
    next_txn_id_.store(next_txn_id, std::memory_order_relaxed);
  }
  // The watermark tracks the newest fully applied commit; after a replay
  // that is wherever the oracle got advanced to.
  const mvcc::Timestamp current = oracle_.Current();
  mvcc::Timestamp seen = visible_ts_.load(std::memory_order_relaxed);
  if (seen < current) {
    visible_ts_.store(current, std::memory_order_release);
  }
}

TxnStats TransactionManager::stats() const {
  TxnStats s;
  s.commits = commit_count_.load(std::memory_order_relaxed);
  s.aborts_ww = aborts_ww_.load(std::memory_order_relaxed);
  s.aborts_validation = aborts_validation_.load(std::memory_order_relaxed);
  s.user_aborts = user_aborts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace anker::txn
