#include "txn/transaction.h"

namespace anker::txn {

uint64_t Transaction::Read(const storage::Column* column, uint64_t row) {
  // Read-your-own-writes: the local write set wins over the database.
  auto it = write_lookup_.find(SlotKey{column, row});
  if (it != write_lookup_.end()) return writes_[it->second].new_raw;
  point_reads_.push_back(PointRead{column, row});
  return column->ReadVisibleRaw(row, start_ts_);
}

void Transaction::Write(storage::Column* column, uint64_t row,
                        uint64_t new_raw) {
  const SlotKey key{column, row};
  auto it = write_lookup_.find(key);
  if (it != write_lookup_.end()) {
    writes_[it->second].new_raw = new_raw;
    return;
  }
  write_lookup_.emplace(key, writes_.size());
  writes_.push_back(LocalWrite{column, row, new_raw});
}

void Transaction::AddPredicate(const storage::Column* column, uint64_t lo,
                               uint64_t hi) {
  predicates_.push_back(PredicateRange{column, lo, hi});
}

}  // namespace anker::txn
