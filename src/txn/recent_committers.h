#ifndef ANKER_TXN_RECENT_COMMITTERS_H_
#define ANKER_TXN_RECENT_COMMITTERS_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/timestamp_oracle.h"
#include "txn/predicate.h"

namespace anker::txn {

/// Bounded list of recently committed transactions and their write sets,
/// used for precision-locking validation under full serializability. The
/// paper notes this list must be mutex protected and makes the commit
/// phase partially sequential — the cause of the sub-linear scaling in
/// Figure 11. Here it is only ever accessed from within the transaction
/// manager's commit critical section, which provides that mutual
/// exclusion.
class RecentCommitters {
 public:
  explicit RecentCommitters(size_t max_entries = 1 << 16)
      : max_entries_(max_entries) {}
  ANKER_DISALLOW_COPY_AND_MOVE(RecentCommitters);

  /// Records the write set of a transaction that just committed.
  void Record(mvcc::Timestamp commit_ts, std::vector<WriteRecord> writes);

  /// Validates a committing transaction's read set against every
  /// transaction committed during its lifetime (commit_ts > start_ts):
  /// returns kAborted if any such write intersects a predicate range or a
  /// point read (stale reads -> not serializable). Also aborts
  /// conservatively when the list has been trimmed past start_ts and
  /// validation can no longer be complete.
  Status Validate(mvcc::Timestamp start_ts,
                  const std::vector<PointRead>& point_reads,
                  const std::vector<PredicateRange>& predicates) const;

  size_t size() const { return entries_.size(); }

  /// Oldest commit timestamp still retained (kInfiniteTimestamp if empty).
  mvcc::Timestamp OldestRetained() const;

  /// Drops entries older than `watermark` (no active transaction can need
  /// them). Called opportunistically from the commit path.
  void TrimOlderThan(mvcc::Timestamp watermark);

 private:
  struct Entry {
    mvcc::Timestamp commit_ts;
    std::vector<WriteRecord> writes;
  };

  size_t max_entries_;
  std::deque<Entry> entries_;  ///< Ordered by commit_ts ascending.
  mvcc::Timestamp trimmed_before_ = 0;  ///< All entries < this were dropped.
};

}  // namespace anker::txn

#endif  // ANKER_TXN_RECENT_COMMITTERS_H_
