#ifndef ANKER_TXN_PREDICATE_H_
#define ANKER_TXN_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "storage/column.h"
#include "storage/value.h"

namespace anker::txn {

/// One predicate range used for precision-locking validation (paper
/// Section 2.1, following HyPer/Weikum-Vossen): the transaction filtered
/// its reads on column `column` with value in [lo, hi] (typed comparison).
/// At commit, a write by a concurrently committed transaction whose old
/// *or* new value falls into the range would have changed this
/// transaction's reads — the transaction must abort.
struct PredicateRange {
  const storage::Column* column;
  uint64_t lo;
  uint64_t hi;

  bool Matches(uint64_t raw) const {
    return storage::RawInRange(column->type(), raw, lo, hi);
  }
};

/// A point read of one row (index lookups in the OLTP transactions).
struct PointRead {
  const storage::Column* column;
  uint64_t row;
};

/// One materialized write of a committed transaction, kept for validating
/// later committers (the "recently committed transactions" list).
struct WriteRecord {
  const storage::Column* column;
  uint64_t row;
  uint64_t old_raw;
  uint64_t new_raw;
};

/// True iff `write` intersects `predicate`: same column and either the
/// overwritten or the new value lies in the predicate range.
inline bool Intersects(const PredicateRange& predicate,
                       const WriteRecord& write) {
  if (predicate.column != write.column) return false;
  return predicate.Matches(write.old_raw) || predicate.Matches(write.new_raw);
}

/// True iff `write` touches the row of `read` (stale point read).
inline bool Intersects(const PointRead& read, const WriteRecord& write) {
  return read.column == write.column && read.row == write.row;
}

}  // namespace anker::txn

#endif  // ANKER_TXN_PREDICATE_H_
