#ifndef ANKER_VM_PAGE_H_
#define ANKER_VM_PAGE_H_

#include <cstddef>
#include <cstdint>

namespace anker::vm {

/// Small-page size used throughout the snapshotting subsystem. The paper
/// backs columns with 4 KiB pages to keep copy-on-write granularity minimal
/// (Section 3.3): with small pages, k uniformly distributed writes separate
/// only k pages from the snapshot instead of the whole column.
inline constexpr size_t kPageSize = 4096;

/// Rounds `bytes` up to the next multiple of the page size.
inline constexpr size_t RoundUpToPage(size_t bytes) {
  return (bytes + kPageSize - 1) & ~(kPageSize - 1);
}

/// True iff `bytes` is page aligned (vm_snapshot requires page-aligned
/// src/length, Section 4.1.1).
inline constexpr bool IsPageAligned(size_t bytes) {
  return (bytes & (kPageSize - 1)) == 0;
}

/// Page index containing byte offset `offset`.
inline constexpr size_t PageIndex(size_t offset) { return offset / kPageSize; }

/// Number of pages needed to hold `bytes`.
inline constexpr size_t PageCount(size_t bytes) {
  return RoundUpToPage(bytes) / kPageSize;
}

}  // namespace anker::vm

#endif  // ANKER_VM_PAGE_H_
