#include "vm/page_pool.h"

#include "vm/page.h"

namespace anker::vm {

Status PagePool::Init(const std::string& name, size_t initial_bytes) {
  auto file = Memfd::Create(name, RoundUpToPage(initial_bytes));
  if (!file.ok()) return file.status();
  file_ = file.TakeValue();
  return Status::OK();
}

Result<off_t> PagePool::AllocatePage() { return AllocatePages(1); }

Result<off_t> PagePool::AllocatePages(size_t n) {
  ANKER_CHECK(file_.valid());
  const size_t first = next_page_.fetch_add(n, std::memory_order_relaxed);
  const size_t end_byte = (first + n) * kPageSize;
  if (end_byte > file_.size()) {
    SpinLockGuard guard(grow_lock_);
    if (end_byte > file_.size()) {
      // Grow geometrically to amortize ftruncate calls.
      size_t target = file_.size() == 0 ? kPageSize : file_.size();
      while (target < end_byte) target *= 2;
      ANKER_RETURN_IF_ERROR(file_.Grow(target));
    }
  }
  return static_cast<off_t>(first * kPageSize);
}

}  // namespace anker::vm
