#ifndef ANKER_VM_FAULT_ROUTER_H_
#define ANKER_VM_FAULT_ROUTER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/macros.h"

namespace anker::vm {

/// Interface implemented by buffers that resolve write faults themselves
/// (the rewired baseline performs manual copy-on-write from a SIGSEGV
/// handler, Section 3.2.3 of the paper).
class FaultHandler {
 public:
  virtual ~FaultHandler() = default;

  /// Called from the signal handler when a write hit a read-only page in a
  /// registered range. Must resolve the fault (remap the page writable) and
  /// return true, or return false to fall through to the default action.
  /// Only async-signal-safe operations are allowed inside.
  virtual bool HandleWriteFault(void* fault_addr) = 0;
};

/// Process-wide SIGSEGV router. Buffers register their address ranges; a
/// fault inside a registered range is forwarded to its handler, anything
/// else is re-raised with the default disposition so genuine crashes still
/// crash. Handler installation is idempotent.
///
/// The range table is a fixed-capacity array of atomic slots so the signal
/// handler can scan it without taking locks; registration/unregistration
/// publish entries with release stores.
class FaultRouter {
 public:
  /// Returns the singleton router, installing the SIGSEGV handler on first
  /// use.
  static FaultRouter& Instance();

  /// Registers [addr, addr+len) with `handler`. Thread-safe.
  void RegisterRange(void* addr, size_t len, FaultHandler* handler);

  /// Unregisters a previously registered range (by exact start address).
  void UnregisterRange(void* addr);

  /// Number of live registered ranges (for tests).
  size_t NumRanges() const;

 private:
  FaultRouter();
  ANKER_DISALLOW_COPY_AND_MOVE(FaultRouter);

  /// Returns the handler owning `addr`, or nullptr.
  FaultHandler* Lookup(uintptr_t addr) const;

  static void SignalHandler(int signo, void* info, void* context);

  struct Slot {
    std::atomic<uintptr_t> start{0};
    std::atomic<uintptr_t> end{0};
    std::atomic<FaultHandler*> handler{nullptr};
  };

  static constexpr size_t kMaxRanges = 4096;
  Slot slots_[kMaxRanges];
  std::atomic<size_t> high_water_{0};
  std::mutex register_mutex_;  ///< Serializes Register/Unregister only.
};

}  // namespace anker::vm

#endif  // ANKER_VM_FAULT_ROUTER_H_
