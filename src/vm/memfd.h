#ifndef ANKER_VM_MEMFD_H_
#define ANKER_VM_MEMFD_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace anker::vm {

/// RAII wrapper around a memfd (anonymous main-memory file, the RUMA
/// "physical memory in user space" abstraction). The file is backed by
/// tmpfs pages and is the sharing substrate for rewired and emulated
/// vm_snapshot buffers.
class Memfd {
 public:
  Memfd() = default;
  ~Memfd();

  /// Move-only: owns the file descriptor.
  Memfd(Memfd&& other) noexcept;
  Memfd& operator=(Memfd&& other) noexcept;
  ANKER_DISALLOW_COPY(Memfd);

  /// Creates a memfd with the given debug name and size (rounded up to a
  /// whole number of pages).
  static Result<Memfd> Create(const std::string& name, size_t size);

  /// Grows the file to `new_size` bytes (page rounded). Shrinking is not
  /// supported.
  Status Grow(size_t new_size);

  /// Writes `len` bytes from `src` at `offset` (pwrite loop).
  Status WriteAt(const void* src, size_t len, off_t offset) const;

  /// Reads `len` bytes into `dst` from `offset` (pread loop).
  Status ReadAt(void* dst, size_t len, off_t offset) const;

  /// Deallocates the backing pages of [offset, offset+len) without
  /// changing the file size (fallocate PUNCH_HOLE|KEEP_SIZE). Subsequent
  /// reads of the range observe zeros; the tmpfs pages are freed — the
  /// reclaim primitive behind cold-segment eviction. Page aligned.
  Status PunchHole(off_t offset, size_t len) const;

  int fd() const { return fd_; }
  size_t size() const { return size_; }
  bool valid() const { return fd_ >= 0; }

 private:
  Memfd(int fd, size_t size) : fd_(fd), size_(size) {}

  int fd_ = -1;
  size_t size_ = 0;
};

}  // namespace anker::vm

#endif  // ANKER_VM_MEMFD_H_
