#include "vm/fault_router.h"

#include <signal.h>

#include <cstring>

namespace anker::vm {

namespace {

struct sigaction g_previous_action;

}  // namespace

FaultRouter& FaultRouter::Instance() {
  static FaultRouter* router = new FaultRouter();
  return *router;
}

FaultRouter::FaultRouter() {
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_flags = SA_SIGINFO | SA_NODEFER;
  action.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(
      &FaultRouter::SignalHandler);
  sigemptyset(&action.sa_mask);
  ANKER_CHECK(sigaction(SIGSEGV, &action, &g_previous_action) == 0);
}

void FaultRouter::RegisterRange(void* addr, size_t len, FaultHandler* handler) {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<std::mutex> guard(register_mutex_);
  for (size_t i = 0; i < kMaxRanges; ++i) {
    if (slots_[i].start.load(std::memory_order_relaxed) != 0) continue;
    // Publish end and handler before start: the signal handler reads start
    // first (acquire), so a non-zero start guarantees the rest is visible.
    slots_[i].end.store(start + len, std::memory_order_relaxed);
    slots_[i].handler.store(handler, std::memory_order_relaxed);
    slots_[i].start.store(start, std::memory_order_release);
    size_t hw = high_water_.load(std::memory_order_relaxed);
    if (hw < i + 1) high_water_.store(i + 1, std::memory_order_release);
    return;
  }
  ANKER_CHECK_MSG(false, "FaultRouter slot table exhausted");
}

void FaultRouter::UnregisterRange(void* addr) {
  const uintptr_t start = reinterpret_cast<uintptr_t>(addr);
  std::lock_guard<std::mutex> guard(register_mutex_);
  const size_t hw = high_water_.load(std::memory_order_acquire);
  for (size_t i = 0; i < hw; ++i) {
    if (slots_[i].start.load(std::memory_order_acquire) == start) {
      slots_[i].start.store(0, std::memory_order_release);
      slots_[i].handler.store(nullptr, std::memory_order_release);
      slots_[i].end.store(0, std::memory_order_release);
      return;
    }
  }
}

size_t FaultRouter::NumRanges() const {
  size_t count = 0;
  const size_t hw = high_water_.load(std::memory_order_acquire);
  for (size_t i = 0; i < hw; ++i) {
    if (slots_[i].start.load(std::memory_order_acquire) != 0) ++count;
  }
  return count;
}

FaultHandler* FaultRouter::Lookup(uintptr_t addr) const {
  const size_t hw = high_water_.load(std::memory_order_acquire);
  for (size_t i = 0; i < hw; ++i) {
    const uintptr_t start = slots_[i].start.load(std::memory_order_acquire);
    if (start == 0) continue;
    const uintptr_t end = slots_[i].end.load(std::memory_order_relaxed);
    if (addr >= start && addr < end) {
      return slots_[i].handler.load(std::memory_order_relaxed);
    }
  }
  return nullptr;
}

void FaultRouter::SignalHandler(int /*signo*/, void* info, void* /*context*/) {
  auto* siginfo = static_cast<siginfo_t*>(info);
  void* fault_addr = siginfo->si_addr;
  FaultRouter& router = Instance();
  FaultHandler* handler =
      router.Lookup(reinterpret_cast<uintptr_t>(fault_addr));
  if (handler != nullptr && handler->HandleWriteFault(fault_addr)) {
    return;  // Retry the faulting instruction.
  }
  // Not ours: restore default disposition and re-raise so the crash is
  // reported normally (core dump / test failure).
  signal(SIGSEGV, SIG_DFL);
  raise(SIGSEGV);
}

}  // namespace anker::vm
