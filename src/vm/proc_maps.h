#ifndef ANKER_VM_PROC_MAPS_H_
#define ANKER_VM_PROC_MAPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace anker::vm {

/// One parsed line of /proc/self/maps.
struct VmaInfo {
  uintptr_t start;
  uintptr_t end;
};

/// Reads the process's VMA list. Used by benchmarks to report how many VMAs
/// back a column (the quantity that dominates rewired-snapshot cost in
/// Table 1 / Figure 5a of the paper).
std::vector<VmaInfo> ReadProcMaps();

/// Counts VMAs overlapping [addr, addr+len).
size_t CountVmasInRange(const void* addr, size_t len);

/// Total number of VMAs in the process.
size_t CountVmas();

}  // namespace anker::vm

#endif  // ANKER_VM_PROC_MAPS_H_
