#include "vm/map_region.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>

#include "vm/page.h"

namespace anker::vm {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

MapRegion::~MapRegion() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

MapRegion::MapRegion(MapRegion&& other) noexcept
    : addr_(other.addr_), size_(other.size_) {
  other.addr_ = nullptr;
  other.size_ = 0;
}

MapRegion& MapRegion::operator=(MapRegion&& other) noexcept {
  if (this != &other) {
    if (addr_ != nullptr) ::munmap(addr_, size_);
    addr_ = other.addr_;
    size_ = other.size_;
    other.addr_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

Result<MapRegion> MapRegion::MapAnonymous(size_t size) {
  const size_t rounded = RoundUpToPage(size);
  void* addr = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (addr == MAP_FAILED) return ErrnoStatus("mmap(anonymous)");
  return MapRegion(addr, rounded);
}

Result<MapRegion> MapRegion::MapSharedFile(int fd, size_t size, off_t offset,
                                           int prot) {
  const size_t rounded = RoundUpToPage(size);
  void* addr = ::mmap(nullptr, rounded, prot, MAP_SHARED, fd, offset);
  if (addr == MAP_FAILED) return ErrnoStatus("mmap(shared file)");
  return MapRegion(addr, rounded);
}

Result<MapRegion> MapRegion::MapPrivateFile(int fd, size_t size, off_t offset,
                                            int prot, bool populate) {
  const size_t rounded = RoundUpToPage(size);
  const int flags = MAP_PRIVATE | (populate ? MAP_POPULATE : 0);
  void* addr = ::mmap(nullptr, rounded, prot, flags, fd, offset);
  if (addr == MAP_FAILED) return ErrnoStatus("mmap(private file)");
  return MapRegion(addr, rounded);
}

Status MapRegion::MapFixedShared(void* addr, int fd, size_t size, off_t offset,
                                 int prot) {
  void* got = ::mmap(addr, size, prot, MAP_SHARED | MAP_FIXED, fd, offset);
  if (got == MAP_FAILED) return ErrnoStatus("mmap(fixed shared)");
  ANKER_CHECK(got == addr);
  return Status::OK();
}

Status MapRegion::MapFixedPrivate(void* addr, int fd, size_t size,
                                  off_t offset, int prot) {
  void* got = ::mmap(addr, size, prot, MAP_PRIVATE | MAP_FIXED, fd, offset);
  if (got == MAP_FAILED) return ErrnoStatus("mmap(fixed private)");
  ANKER_CHECK(got == addr);
  return Status::OK();
}

Status MapRegion::Protect(int prot) { return ProtectRange(0, size_, prot); }

Status MapRegion::ProtectRange(size_t offset, size_t len, int prot) {
  ANKER_CHECK(IsPageAligned(offset) && IsPageAligned(len));
  ANKER_CHECK(offset + len <= size_);
  if (::mprotect(data() + offset, len, prot) != 0) {
    return ErrnoStatus("mprotect");
  }
  return Status::OK();
}

Status MapRegion::DontNeed(size_t offset, size_t len) {
  ANKER_CHECK(IsPageAligned(offset) && IsPageAligned(len));
  ANKER_CHECK(offset + len <= size_);
  if (::madvise(data() + offset, len, MADV_DONTNEED) != 0) {
    return ErrnoStatus("madvise(DONTNEED)");
  }
  return Status::OK();
}

void MapRegion::Release() {
  addr_ = nullptr;
  size_ = 0;
}

}  // namespace anker::vm
