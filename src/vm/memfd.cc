#include "vm/memfd.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "vm/page.h"

namespace anker::vm {

Memfd::~Memfd() {
  if (fd_ >= 0) ::close(fd_);
}

Memfd::Memfd(Memfd&& other) noexcept : fd_(other.fd_), size_(other.size_) {
  other.fd_ = -1;
  other.size_ = 0;
}

Memfd& Memfd::operator=(Memfd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    size_ = other.size_;
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Result<Memfd> Memfd::Create(const std::string& name, size_t size) {
  const int fd = ::memfd_create(name.c_str(), MFD_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(std::string("memfd_create: ") +
                           std::strerror(errno));
  }
  const size_t rounded = RoundUpToPage(size);
  if (rounded > 0 && ::ftruncate(fd, static_cast<off_t>(rounded)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("ftruncate: ") + std::strerror(err));
  }
  return Memfd(fd, rounded);
}

Status Memfd::Grow(size_t new_size) {
  const size_t rounded = RoundUpToPage(new_size);
  if (rounded < size_) {
    return Status::InvalidArgument("Memfd::Grow cannot shrink");
  }
  if (rounded == size_) return Status::OK();
  if (::ftruncate(fd_, static_cast<off_t>(rounded)) != 0) {
    return Status::IoError(std::string("ftruncate: ") + std::strerror(errno));
  }
  size_ = rounded;
  return Status::OK();
}

Status Memfd::WriteAt(const void* src, size_t len, off_t offset) const {
  const char* p = static_cast<const char*>(src);
  size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, p, remaining, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
    }
    p += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Memfd::ReadAt(void* dst, size_t len, off_t offset) const {
  char* p = static_cast<char*>(dst);
  size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, p, remaining, offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pread: ") + std::strerror(errno));
    }
    if (n == 0) return Status::OutOfRange("pread past end of memfd");
    p += n;
    offset += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Memfd::PunchHole(off_t offset, size_t len) const {
  ANKER_CHECK(IsPageAligned(static_cast<size_t>(offset)) &&
              IsPageAligned(len));
  ANKER_CHECK(static_cast<size_t>(offset) + len <= size_);
  if (len == 0) return Status::OK();
  if (::fallocate(fd_, FALLOC_FL_PUNCH_HOLE | FALLOC_FL_KEEP_SIZE, offset,
                  static_cast<off_t>(len)) != 0) {
    return Status::IoError(std::string("fallocate(PUNCH_HOLE): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace anker::vm
