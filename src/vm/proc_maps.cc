#include "vm/proc_maps.h"

#include <cstdio>
#include <cstdlib>

namespace anker::vm {

std::vector<VmaInfo> ReadProcMaps() {
  std::vector<VmaInfo> vmas;
  std::FILE* f = std::fopen("/proc/self/maps", "r");
  if (f == nullptr) return vmas;
  char line[512];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long start = 0;
    unsigned long long end = 0;
    if (std::sscanf(line, "%llx-%llx", &start, &end) == 2) {
      vmas.push_back(VmaInfo{static_cast<uintptr_t>(start),
                             static_cast<uintptr_t>(end)});
    }
  }
  std::fclose(f);
  return vmas;
}

size_t CountVmasInRange(const void* addr, size_t len) {
  const uintptr_t lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t hi = lo + len;
  size_t count = 0;
  for (const VmaInfo& vma : ReadProcMaps()) {
    if (vma.start < hi && vma.end > lo) ++count;
  }
  return count;
}

size_t CountVmas() { return ReadProcMaps().size(); }

}  // namespace anker::vm
