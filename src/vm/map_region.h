#ifndef ANKER_VM_MAP_REGION_H_
#define ANKER_VM_MAP_REGION_H_

#include <cstddef>
#include <cstdint>

#include "common/macros.h"
#include "common/status.h"

namespace anker::vm {

/// RAII wrapper around a single mmap()ed virtual memory area. This is the
/// user-space handle to one VMA (Section 3.2.1 of the paper): creation is
/// one mmap call, destruction one munmap.
class MapRegion {
 public:
  MapRegion() = default;
  ~MapRegion();

  MapRegion(MapRegion&& other) noexcept;
  MapRegion& operator=(MapRegion&& other) noexcept;
  ANKER_DISALLOW_COPY(MapRegion);

  /// Maps `size` bytes of private anonymous memory (read-write).
  static Result<MapRegion> MapAnonymous(size_t size);

  /// Maps `size` bytes of file `fd` at file offset `offset` with MAP_SHARED
  /// semantics: stores go to the file pages.
  static Result<MapRegion> MapSharedFile(int fd, size_t size, off_t offset,
                                         int prot);

  /// Maps `size` bytes of file `fd` at file offset `offset` with MAP_PRIVATE
  /// semantics: stores trigger OS copy-on-write into anonymous pages; the
  /// file is never modified through this mapping. This is the sharing
  /// primitive behind the emulated vm_snapshot. With `populate`, the page
  /// table entries are filled eagerly (MAP_POPULATE) — the same state the
  /// real vm_snapshot call leaves behind after copying the PTEs, so
  /// snapshot scans pay no per-page soft faults.
  static Result<MapRegion> MapPrivateFile(int fd, size_t size, off_t offset,
                                          int prot, bool populate = false);

  /// Remaps `size` bytes of `fd` at `offset` over [addr, addr+size) using
  /// MAP_FIXED (replacing whatever was there). Used by rewiring to redirect
  /// single pages and to recycle snapshot areas (Section 4.1.3).
  static Status MapFixedShared(void* addr, int fd, size_t size, off_t offset,
                               int prot);
  static Status MapFixedPrivate(void* addr, int fd, size_t size, off_t offset,
                                int prot);

  /// Changes protection of [data(), data()+size()).
  Status Protect(int prot);

  /// Changes protection of a sub-range; offset/len page aligned.
  Status ProtectRange(size_t offset, size_t len, int prot);

  /// madvise(MADV_DONTNEED) on a sub-range: drops private anonymous COW
  /// copies so subsequent reads fault back in from the backing file.
  Status DontNeed(size_t offset, size_t len);

  uint8_t* data() const { return static_cast<uint8_t*>(addr_); }
  size_t size() const { return size_; }
  bool valid() const { return addr_ != nullptr; }

  /// Releases ownership without unmapping (e.g. after a MAP_FIXED replaced
  /// the area page by page).
  void Release();

 private:
  MapRegion(void* addr, size_t size) : addr_(addr), size_(size) {}

  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace anker::vm

#endif  // ANKER_VM_MAP_REGION_H_
