#ifndef ANKER_VM_PAGE_POOL_H_
#define ANKER_VM_PAGE_POOL_H_

#include <atomic>
#include <cstddef>

#include "common/latch.h"
#include "common/macros.h"
#include "common/status.h"
#include "vm/memfd.h"

namespace anker::vm {

/// Page allocator over a memfd ("the pool for free pages", Section 3.2.3).
/// Rewired buffers claim unused pool pages during manual copy-on-write.
/// Allocation is a bump pointer with automatic file growth; the pool never
/// reuses pages while a buffer is alive (snapshots may still reference any
/// previously allocated offset).
class PagePool {
 public:
  PagePool() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(PagePool);

  /// Initializes the pool with an initial capacity in bytes.
  Status Init(const std::string& name, size_t initial_bytes);

  /// Allocates one page and returns its file offset. Grows the file when
  /// exhausted. Async-signal-safe apart from growth (growth only performs
  /// ftruncate, a plain syscall), so it is callable from the SIGSEGV-based
  /// COW handler.
  Result<off_t> AllocatePage();

  /// Allocates `n` consecutive pages, returning the offset of the first.
  Result<off_t> AllocatePages(size_t n);

  const Memfd& file() const { return file_; }
  int fd() const { return file_.fd(); }

  /// Number of pages handed out so far.
  size_t allocated_pages() const {
    return next_page_.load(std::memory_order_relaxed);
  }

 private:
  Memfd file_;
  std::atomic<size_t> next_page_{0};
  SpinLock grow_lock_;
};

}  // namespace anker::vm

#endif  // ANKER_VM_PAGE_POOL_H_
