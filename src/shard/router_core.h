#ifndef ANKER_SHARD_ROUTER_CORE_H_
#define ANKER_SHARD_ROUTER_CORE_H_

// The routing brain behind the router's wire front-end: one decoded
// request payload in, response frame(s) out. Kept free of sockets and
// epoll so tests can drive it directly against in-process shards.
//
// Routing rules (docs/SERVER.md has the client-facing contract):
//  - EXEC_TXN: decoded just far enough to find the owning shard(s).
//    Single-shard batches forward the ORIGINAL payload bytes verbatim —
//    one router->shard round trip (the pass-through fast path, counted
//    in passthrough_txns). Batches spanning shards run intent-based 2PC
//    (counted in twopc_txns): PREPARE_TXN fan-out stages durable write
//    intents on every participant, the router's TimestampOracle folds
//    the prepare stamps into one HLC commit stamp, and COMMIT_PREPARED
//    lands on the primary shard (lowest participating index — the
//    durable commit point) before fanning to the rest. A router death
//    mid-protocol leaves intents that readers resolve lazily through
//    the primary (see HandleRead). Writes touching replicated tables
//    are still refused.
//  - BEGIN is acknowledged locally; the session pins to the shard that
//    owns the first keyed operation, and every later op in the
//    transaction must land on the same shard. COMMIT/ABORT forward to
//    the pinned shard (an untouched transaction commits locally).
//  - READ outside a transaction routes to the owning shard
//    (replicated tables: any healthy shard). Row-id addressing is
//    refused for partitioned tables — row ids are shard-local.
//  - CREATE_TABLE / LOAD (replicated tables) and BUILD_INDEX /
//    DICT_DEFINE (all tables) fan out to every shard; the first failure
//    wins. CREATE_TABLE/LOAD of a partitioned table is refused: rows
//    are positional, so splitting a load is the loader's job (the
//    smoke harness loads shards directly).
//  - QUERY: PlanScatter (query/merge.h) classifies the plan;
//    single-shard plans forward to one healthy shard, scatterable plans
//    run on every shard and merge at the router, cross-shard plans
//    come back as a recoverable kNotSupported.
//  - A down shard surfaces as BUSY (kResourceBusy) for anything that
//    must reach it. Queries optionally tolerate missing shards
//    (allow_partial): the merged result then covers the live subset,
//    with the number of skipped shards reported in QUERY_DONE's
//    shards_missing field so clients can tell degraded from complete.
//  - Replication/operations surface (REPLICATE_HELLO, FETCH_CHECKPOINT,
//    WAIT_LSN, PROMOTE, CHECKPOINT_NOW, DIGEST, DECOMMISSION_REPLICA):
//    refused — those are per-node operator actions; connect to the
//    shard's engine server directly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "server/client.h"
#include "server/protocol.h"
#include "shard/backend_pool.h"
#include "shard/shard_map.h"
#include "shard/timestamp_oracle.h"

namespace anker::shard {

struct RouterCoreConfig {
  /// QUERY behavior when a shard is down: false = refuse with BUSY;
  /// true = merge over the reachable shards (results may under-count;
  /// the skipped-shard count travels back in QUERY_DONE).
  bool allow_partial = false;
  /// Router-side retry budget for shard BUSY responses, mirroring the
  /// client's RetryPolicy (the pooled backend clients keep budget 0 so
  /// the router owns the policy). BUSY is emitted before the shard runs
  /// an operation, so re-sending is always safe. 0 = surface BUSY.
  int busy_retry_budget = 4;
  int busy_backoff_initial_millis = 5;
  int busy_backoff_max_millis = 200;
  /// Attempts to resolve a read-blocking intent through its primary
  /// shard before escalating the transaction to a durable abort (the
  /// coordinating router is presumed dead at that point).
  int intent_resolve_attempts = 5;
};

class RouterCore {
 public:
  /// Per-client-session routing state. Owned by the front-end session;
  /// the one-request-at-a-time session discipline serializes access.
  struct SessionState {
    bool in_txn = false;
    /// Shard owning the open transaction; -1 until the first keyed op.
    int pinned_shard = -1;
    /// Live backend connection holding the open transaction.
    std::unique_ptr<server::Client> txn_client;
  };

  /// `map` and `pool` must outlive the core.
  RouterCore(const ShardMap* map, BackendPool* pool,
             RouterCoreConfig config);
  ANKER_DISALLOW_COPY_AND_MOVE(RouterCore);

  /// Handles one post-handshake request payload (opcode + body),
  /// appending complete response frame(s) to `out`. May block on
  /// backend IO — run on a worker thread.
  void Handle(SessionState* session, const std::string& payload,
              std::string* out);

  /// Session teardown (peer vanished): abort any pinned transaction on
  /// its shard and return the connection.
  void AbandonSession(SessionState* session);

  /// ROUTER_STATUS payload. Probing health touches the network.
  server::RouterStatusOkMsg StatusSnapshot();

  const ShardMap& map() const { return *map_; }

 private:
  void HandleTxnOp(SessionState* session, server::Op op,
                   const std::string& payload, std::string* out);
  void HandleRead(SessionState* session, const std::string& payload,
                  std::string* out);
  void HandleExecTxn(SessionState* session, const std::string& payload,
                     std::string* out);
  void HandleQuery(const std::string& payload, std::string* out);
  void HandleFanout(server::Op op, const std::string& payload,
                    std::string* out);
  void HandleListTables(const std::string& payload, std::string* out);

  /// Owning shard for a batch of writes; negative = refused (response
  /// already appended).
  int ShardForWrites(const std::vector<server::PointWrite>& writes,
                     std::string* out);
  /// Splits a write batch by owning shard. False = refused (replicated
  /// table or row-id addressing; response already appended).
  bool PartitionWrites(
      const std::vector<server::PointWrite>& writes,
      std::vector<std::pair<size_t, std::vector<server::PointWrite>>>* groups,
      std::string* out);
  /// Runs a multi-shard EXEC_TXN as intent-based 2PC.
  void TwoPhaseCommit(
      const std::vector<std::pair<size_t, std::vector<server::PointWrite>>>&
          groups,
      std::string* out);
  /// Best-effort ABORT_PREPARED fan-out to `groups` (phase-one unwind).
  /// Unknown gtids are fenced with durable tombstones, so shards whose
  /// prepare never arrived are safe to abort too.
  void AbortPreparedFanout(
      uint64_t gtid,
      const std::vector<std::pair<size_t, std::vector<server::PointWrite>>>&
          groups);
  /// Forwards a READ, resolving kIntentPending responses through the
  /// intent's primary shard (lazy resolution for dead coordinators)
  /// and retrying. Same contract as ForwardVerbatim.
  bool ForwardReadResolving(server::Client* client, size_t shard,
                            const std::string& payload, std::string* out);
  /// One resolution round: asks `primary_shard` for the outcome of
  /// `gtid` and applies it at `holder` (the shard whose intent blocked
  /// the read). OK with `*decided=false` while still pending.
  Status ResolveIntentOnce(uint64_t gtid, size_t primary_shard,
                           server::Client* holder, bool abort_pending,
                           bool* decided);
  /// Pins `session` to `shard`, opening the backend transaction.
  /// False = refused/failed (response already appended).
  bool EnsurePinned(SessionState* session, size_t shard, std::string* out);
  /// Round-trips `payload` on `client`, forwarding the raw response
  /// verbatim. False on transport failure (client is poisoned — the
  /// caller must discard it; a BUSY/error response is still `true`).
  bool ForwardVerbatim(server::Client* client, const std::string& payload,
                       std::string* out);
  /// Acquires any healthy shard, round-robin so any-shard traffic
  /// (replicated reads, single-shard queries) spreads the load.
  Result<std::pair<size_t, std::unique_ptr<server::Client>>> AcquireAny();

  void RespondStatus(const Status& status, std::string* out);
  void RespondError(server::WireError code, const std::string& message,
                    std::string* out);

  const ShardMap* map_;
  BackendPool* pool_;
  const RouterCoreConfig config_;

  /// Round-robin start point for AcquireAny (wraps modulo shards).
  std::atomic<size_t> any_cursor_{0};

  std::atomic<uint64_t> passthrough_txns_{0};
  std::atomic<uint64_t> scatter_queries_{0};
  std::atomic<uint64_t> single_shard_queries_{0};
  std::atomic<uint64_t> fanout_ops_{0};
  std::atomic<uint64_t> twopc_txns_{0};
  std::atomic<uint64_t> intent_resolutions_{0};

  /// HLC for cross-shard commit stamps (see timestamp_oracle.h).
  TimestampOracle oracle_;
  /// Global transaction ids: wall-clock-seeded base + counter. A
  /// collision with a fenced gtid from a previous router incarnation is
  /// refused by the shard's tombstone and surfaces as a retryable
  /// abort, so uniqueness is best-effort by construction.
  const uint64_t gtid_base_;
  std::atomic<uint64_t> gtid_counter_{0};
};

}  // namespace anker::shard

#endif  // ANKER_SHARD_ROUTER_CORE_H_
