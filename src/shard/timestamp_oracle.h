#ifndef ANKER_SHARD_TIMESTAMP_ORACLE_H_
#define ANKER_SHARD_TIMESTAMP_ORACLE_H_

// Hybrid-logical-clock commit stamp for the router's 2PC coordinator.
//
// Each shard runs its own local MVCC clock; a cross-shard commit needs
// one global stamp that is (a) larger than every participating shard's
// prepare stamp, so CommitPrepared's AdvanceTo never moves a shard
// clock backwards, and (b) monotone across the transactions one router
// coordinates, so its commit order is reconstructible from stamps.
// The classic HLC merge gives both: observe every prepare stamp, then
// tick past the maximum seen so far.
//
// The stamp is METADATA, not a global serialization point: each shard
// materializes the writes at its own local apply stamp (see
// TransactionManager::CommitPrepared), and atomicity comes from intents
// gating readers until phase two lands. Two routers coordinating
// disjoint transactions therefore need no shared oracle.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace anker::shard {

class TimestampOracle {
 public:
  TimestampOracle() = default;
  ANKER_DISALLOW_COPY_AND_MOVE(TimestampOracle);

  /// Fold an observed remote stamp (a shard's prepare_ts) into the
  /// clock. Cheap and lock-free; call once per prepare ack.
  void Observe(uint64_t remote_ts) {
    uint64_t seen = clock_.load(std::memory_order_relaxed);
    while (seen < remote_ts &&
           !clock_.compare_exchange_weak(seen, remote_ts,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Issue the next commit stamp: strictly greater than every stamp
  /// observed or issued before this call.
  uint64_t Next() { return clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Convenience for the 2PC hot path: Observe + Next in one call.
  uint64_t CommitStamp(uint64_t max_prepare_ts) {
    Observe(max_prepare_ts);
    return Next();
  }

  uint64_t now() const { return clock_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> clock_{0};
};

}  // namespace anker::shard

#endif  // ANKER_SHARD_TIMESTAMP_ORACLE_H_
