#ifndef ANKER_SHARD_ROUTER_SERVER_H_
#define ANKER_SHARD_ROUTER_SERVER_H_

// anker_router's wire front-end: the same epoll session server shape as
// src/server/server.h (one event-loop thread owns every socket, frames
// and the HELLO handshake happen on the loop, blocking work runs on a
// worker pool) — but where the engine server dispatches into
// engine::Database, this one dispatches into RouterCore, whose "engine"
// is a fleet of backend shard connections.
//
// Differences from the engine server worth knowing:
//  - HELLO_OK advertises kHelloFlagRouter and the active shard map's
//    digest, so a client can tell a router from a shard and pin the
//    topology it loaded against.
//  - Every post-handshake request except PING dispatches (it may block
//    on backend IO); the same one-in-flight-per-session rule keeps
//    responses in request order.
//  - There is no transaction object here — the session owns a
//    RouterCore::SessionState (pinned shard + live backend connection),
//    and a vanished peer aborts its pinned transaction on the shard.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "server/protocol.h"
#include "shard/router_core.h"

namespace anker::shard {

struct RouterServerConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 binds ephemeral; read back with port().
  std::string auth_token;
  size_t max_sessions = 1024;
  /// Dispatched requests running at once across all sessions; beyond
  /// this the client gets BUSY (explicit backpressure). Also sizes the
  /// worker pool.
  size_t max_inflight = 64;
  size_t max_pipeline = 64;
  int idle_timeout_millis = 0;
};

class RouterServer {
 public:
  /// `core` must outlive the server.
  RouterServer(RouterCore* core, RouterServerConfig config);
  ~RouterServer();
  ANKER_DISALLOW_COPY_AND_MOVE(RouterServer);

  Status Start();
  /// Graceful: stop accepting, drain in-flight work and outboxes,
  /// abort orphaned pinned transactions, join. Idempotent.
  void Shutdown();

  uint16_t port() const { return port_; }

 private:
  struct Session;

  void EventLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Session>& session);
  void IngestFrames(const std::shared_ptr<Session>& session);
  void PumpSession(const std::shared_ptr<Session>& session);
  void FlushOutbox(const std::shared_ptr<Session>& session);
  void CloseSession(const std::shared_ptr<Session>& session);
  void Respond(const std::shared_ptr<Session>& session,
               std::string_view payload);
  void RespondError(const std::shared_ptr<Session>& session, server::Op op,
                    server::WireError code, const std::string& message);
  /// True = handled inline; false = dispatched (session now busy).
  bool ExecuteRequest(const std::shared_ptr<Session>& session,
                      const std::string& payload);
  void RunDispatched(std::shared_ptr<Session> session, std::string payload);
  void WakeLoop();

  RouterCore* core_;
  RouterServerConfig config_;

  std::unique_ptr<ThreadPool> workers_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread loop_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unordered_map<int, std::shared_ptr<Session>> sessions_;

  std::mutex completed_mutex_;
  std::vector<std::shared_ptr<Session>> completed_;

  std::atomic<size_t> inflight_{0};
};

}  // namespace anker::shard

#endif  // ANKER_SHARD_ROUTER_SERVER_H_
