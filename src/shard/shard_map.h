#ifndef ANKER_SHARD_SHARD_MAP_H_
#define ANKER_SHARD_SHARD_MAP_H_

// The router's static, versioned shard topology: which backend engine
// servers exist and how tables spread across them. Loaded from a small
// line-based config file:
//
//   # comment, blank lines ignored
//   version 3
//   shard 127.0.0.1:7101
//   shard 127.0.0.1:7102
//   table lineitem partition l_orderkey
//   table nation replicated
//
// Tables not named in the file are replicated (every shard holds the
// full copy); `partition` tables are hash-split on one key column:
// shard = Mix64(key) % num_shards. Mix64 is the splitmix64 finalizer —
// a fixed, platform-independent bijection, so routing is deterministic
// across router restarts and reimplementable by loaders (the smoke
// harness splits TPC-H rows with the same function in Python).
//
// Reload discipline: the map is static for a running router except for
// explicit operator reloads, which must keep the shard count (moving a
// key's home requires data migration this slice does not do) and must
// increase the version. `digest()` is a canonical-form FNV-1a over the
// topology; HELLO_OK carries it so clients can pin what they loaded
// against.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/merge.h"

namespace anker::shard {

struct ShardEndpoint {
  std::string host;
  uint16_t port = 0;
};

class ShardMap {
 public:
  /// Parses the config text. InvalidArgument on syntax errors, missing
  /// or non-positive version, zero shards, duplicate table entries.
  static Result<ShardMap> Parse(const std::string& text);
  static Result<ShardMap> LoadFile(const std::string& path);

  /// Reload gate: `next` must keep this map's shard count (rehoming
  /// keys needs data migration) and strictly increase the version.
  Status ValidateReload(const ShardMap& next) const;

  /// splitmix64 finalizer: the fixed hash behind key -> shard.
  static uint64_t Mix64(uint64_t key);

  size_t ShardFor(uint64_t key) const {
    return static_cast<size_t>(Mix64(key) % shards_.size());
  }

  /// Partition key column for `table`; nullptr when replicated.
  const std::string* PartitionKey(const std::string& table) const;

  uint32_t version() const { return version_; }
  size_t num_shards() const { return shards_.size(); }
  const std::vector<ShardEndpoint>& shards() const { return shards_; }
  /// Table -> partition key, in the shape PlanScatter consumes.
  const query::PartitionMap& partitioned() const { return partitioned_; }

  /// Canonical serialization (sorted, normalized) the digest hashes.
  std::string Canonical() const;
  /// FNV-1a over Canonical(); advertised in the router's HELLO_OK.
  uint64_t digest() const;

 private:
  uint32_t version_ = 0;
  std::vector<ShardEndpoint> shards_;
  query::PartitionMap partitioned_;
  /// Tables pinned `replicated` explicitly — semantically the default,
  /// tracked only to refuse duplicate/conflicting table lines.
  std::set<std::string> replicated_marks_;
};

}  // namespace anker::shard

#endif  // ANKER_SHARD_SHARD_MAP_H_
