#include "shard/router_core.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "query/merge.h"

namespace anker::shard {

namespace {

using server::Op;
using server::WireError;

std::string OpOnly(Op op) {
  std::string payload;
  payload.push_back(static_cast<char>(op));
  return payload;
}

/// Streams a complete query result as the wire frames the engine server
/// would send: n QUERY_BATCH frames followed by QUERY_DONE.
void AppendResultFrames(const query::QueryResult& result, std::string* out) {
  std::string response;
  for (size_t begin = 0; begin < result.rows.size();
       begin += server::kQueryBatchRows) {
    const size_t end =
        std::min(begin + server::kQueryBatchRows, result.rows.size());
    response.clear();
    server::EncodeQueryBatch(result, begin, end, &response);
    server::EncodeFrame(response, out);
  }
  response.clear();
  server::EncodeQueryDone(result, &response);
  server::EncodeFrame(response, out);
}

bool IsOkResponse(const std::string& payload) {
  return !payload.empty() && static_cast<Op>(payload[0]) == Op::kOk;
}

bool IsBusyResponse(const std::string& payload) {
  return !payload.empty() && static_cast<Op>(payload[0]) == Op::kBusy;
}

/// Wall-clock-seeded base for global transaction ids: the high bits
/// change across router incarnations so a restarted router's counter
/// does not replay a predecessor's gtids (collisions would only cost a
/// retryable abort anyway — the shard's tombstone refuses them).
uint64_t GtidBase() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  return micros << 20;  // Room for ~1M transactions per microsecond tick.
}

}  // namespace

RouterCore::RouterCore(const ShardMap* map, BackendPool* pool,
                       RouterCoreConfig config)
    : map_(map), pool_(pool), config_(config), gtid_base_(GtidBase()) {
  ANKER_CHECK(map_ != nullptr && pool_ != nullptr);
  ANKER_CHECK(map_->num_shards() == pool_->num_shards());
}

void RouterCore::RespondError(WireError code, const std::string& message,
                              std::string* out) {
  std::string payload;
  // BUSY keeps its dedicated opcode so client-side retry loops engage.
  const Op op = code == WireError::kResourceBusy ? Op::kBusy : Op::kErr;
  server::EncodeErr(op, {code, message}, &payload);
  server::EncodeFrame(payload, out);
}

void RouterCore::RespondStatus(const Status& status, std::string* out) {
  if (status.ok()) {
    server::EncodeFrame(OpOnly(Op::kOk), out);
  } else {
    RespondError(server::WireErrorFor(status), status.message(), out);
  }
}

bool RouterCore::ForwardVerbatim(server::Client* client,
                                 const std::string& payload,
                                 std::string* out) {
  // Router-side BUSY absorption, mirroring Client::RetryPolicy: the
  // shard emits BUSY from admission control *before* running anything,
  // so re-sending the same bytes is safe for every op that reaches
  // here. The pooled clients keep a zero budget — the router owns the
  // backoff so one overloaded shard doesn't multiply retries per hop.
  int backoff_millis = config_.busy_backoff_initial_millis;
  for (int attempt = 0;; ++attempt) {
    auto response = client->RoundTrip(payload);
    if (!response.ok()) return false;
    if (!IsBusyResponse(response.value()) ||
        attempt >= config_.busy_retry_budget) {
      server::EncodeFrame(response.value(), out);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_millis));
    backoff_millis =
        std::min(backoff_millis * 2, config_.busy_backoff_max_millis);
  }
}

Result<std::pair<size_t, std::unique_ptr<server::Client>>>
RouterCore::AcquireAny() {
  Status last = Status::ResourceBusy("no shards configured");
  // Round-robin start point: any-shard work (replicated reads,
  // single-shard queries, LIST_TABLES) spreads across healthy
  // backends instead of piling onto shard 0.
  const size_t shards = pool_->num_shards();
  const size_t start =
      any_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < shards; ++i) {
    const size_t shard = (start + i) % shards;
    auto client = pool_->Acquire(shard);
    if (client.ok()) return std::make_pair(shard, std::move(client.value()));
    last = client.status();
  }
  return last;
}

void RouterCore::Handle(SessionState* session, const std::string& payload,
                        std::string* out) {
  if (payload.empty() ||
      !server::IsRequestOp(static_cast<uint8_t>(payload[0]))) {
    RespondError(WireError::kNotSupported, "unknown or non-request opcode",
                 out);
    return;
  }
  const Op op = static_cast<Op>(payload[0]);
  switch (op) {
    case Op::kPing:
      server::EncodeFrame(OpOnly(Op::kPong), out);
      return;
    case Op::kHello:
      RespondError(WireError::kProtocolError,
                   "HELLO must be the first frame, exactly once", out);
      return;
    case Op::kBegin:
    case Op::kCommit:
    case Op::kAbort:
      HandleTxnOp(session, op, payload, out);
      return;
    case Op::kRead:
      HandleRead(session, payload, out);
      return;
    case Op::kWrite:
    case Op::kWriteBatch: {
      std::vector<server::PointWrite> writes;
      const std::string_view body(payload.data() + 1, payload.size() - 1);
      Status decoded;
      if (op == Op::kWrite) {
        server::PointWrite write;
        decoded = server::DecodeWrite(body, &write);
        if (decoded.ok()) writes.push_back(std::move(write));
      } else {
        decoded = server::DecodeWriteBatch(body, &writes);
      }
      if (!decoded.ok()) {
        RespondError(WireError::kProtocolError, "malformed request body",
                     out);
        return;
      }
      if (!session->in_txn) {
        RespondError(WireError::kInvalidArgument,
                     "no open transaction (BEGIN first)", out);
        return;
      }
      const int shard = ShardForWrites(writes, out);
      if (shard < 0) return;
      if (!EnsurePinned(session, static_cast<size_t>(shard), out)) return;
      if (!ForwardVerbatim(session->txn_client.get(), payload, out)) {
        pool_->Discard(std::move(session->txn_client));
        session->in_txn = false;
        session->pinned_shard = -1;
        RespondError(WireError::kResourceBusy,
                     "shard connection lost; transaction aborted", out);
      }
      return;
    }
    case Op::kExecTxn:
      HandleExecTxn(session, payload, out);
      return;
    case Op::kQuery:
      HandleQuery(payload, out);
      return;
    case Op::kCreateTable:
    case Op::kLoad:
    case Op::kBuildIndex:
    case Op::kDictDefine:
      HandleFanout(op, payload, out);
      return;
    case Op::kListTables:
      HandleListTables(payload, out);
      return;
    case Op::kRouterStatus: {
      std::string response;
      server::EncodeRouterStatusOk(StatusSnapshot(), &response);
      server::EncodeFrame(response, out);
      return;
    }
    default:
      // Replication / per-node operations surface: these act on one
      // node's WAL, checkpoints or role — meaningless through a router.
      RespondError(WireError::kNotSupported,
                   "not served by the router; connect to the shard's "
                   "engine server directly",
                   out);
      return;
  }
}

void RouterCore::HandleTxnOp(SessionState* session, Op op,
                             const std::string& payload, std::string* out) {
  if (op == Op::kBegin) {
    if (session->in_txn) {
      RespondError(WireError::kInvalidArgument,
                   "transaction already open (no nesting)", out);
      return;
    }
    // Acknowledged locally; the session pins to a shard at its first
    // keyed operation (a BEGIN alone costs no backend round trip).
    session->in_txn = true;
    session->pinned_shard = -1;
    RespondStatus(Status::OK(), out);
    return;
  }
  if (!session->in_txn) {
    RespondError(WireError::kInvalidArgument, "no open transaction", out);
    return;
  }
  if (session->txn_client == nullptr) {
    // Untouched transaction: nothing reached any shard.
    session->in_txn = false;
    if (op == Op::kCommit) {
      std::string response;
      server::EncodeCommitOk(0, &response);
      server::EncodeFrame(response, out);
    } else {
      RespondStatus(Status::OK(), out);
    }
    return;
  }
  const size_t shard = static_cast<size_t>(session->pinned_shard);
  const bool forwarded =
      ForwardVerbatim(session->txn_client.get(), payload, out);
  if (forwarded) {
    pool_->Release(shard, std::move(session->txn_client));
    if (op == Op::kCommit) passthrough_txns_.fetch_add(1);
  } else {
    pool_->Discard(std::move(session->txn_client));
    RespondStatus(
        op == Op::kCommit
            ? Status::IoError(
                  "shard connection lost; commit outcome unknown")
            : Status::OK(),  // A lost ABORT aborted anyway (server-side).
        out);
  }
  session->in_txn = false;
  session->pinned_shard = -1;
  return;
}

void RouterCore::HandleRead(SessionState* session, const std::string& payload,
                            std::string* out) {
  server::PointReadMsg msg;
  const std::string_view body(payload.data() + 1, payload.size() - 1);
  if (!server::DecodePointRead(body, &msg).ok()) {
    RespondError(WireError::kProtocolError, "malformed request body", out);
    return;
  }
  const std::string* partition_key = map_->PartitionKey(msg.table);
  if (partition_key != nullptr && !msg.by_key) {
    RespondError(WireError::kNotSupported,
                 "row ids are shard-local; address partitioned tables "
                 "by key through the router",
                 out);
    return;
  }

  if (session->in_txn) {
    if (partition_key == nullptr) {
      // Replicated table inside a transaction: read it on the pinned
      // shard (any copy is equivalent; the pinned one sees txn writes
      // to partitioned tables alongside).
      if (session->txn_client == nullptr) {
        auto any = AcquireAny();
        if (!any.ok()) {
          RespondStatus(any.status(), out);
          return;
        }
        // Pin here too: later keyed ops must agree with this read's
        // transactional view.
        session->pinned_shard = static_cast<int>(any.value().first);
        session->txn_client = std::move(any.value().second);
        auto begun = session->txn_client->RoundTrip(OpOnly(Op::kBegin));
        if (!begun.ok() || !IsOkResponse(begun.value())) {
          pool_->Discard(std::move(session->txn_client));
          session->in_txn = false;
          session->pinned_shard = -1;
          RespondError(WireError::kResourceBusy,
                       "shard refused transaction open", out);
          return;
        }
      }
    } else {
      const size_t shard = map_->ShardFor(msg.key);
      if (!EnsurePinned(session, shard, out)) return;
    }
    if (!ForwardReadResolving(session->txn_client.get(),
                              static_cast<size_t>(session->pinned_shard),
                              payload, out)) {
      pool_->Discard(std::move(session->txn_client));
      session->in_txn = false;
      session->pinned_shard = -1;
      RespondError(WireError::kResourceBusy,
                   "shard connection lost; transaction aborted", out);
    }
    return;
  }

  // Auto-commit read: one round trip to the owning (or any) shard.
  size_t shard = 0;
  std::unique_ptr<server::Client> client;
  if (partition_key != nullptr) {
    shard = map_->ShardFor(msg.key);
    auto acquired = pool_->Acquire(shard);
    if (!acquired.ok()) {
      RespondStatus(acquired.status(), out);
      return;
    }
    client = std::move(acquired.value());
  } else {
    auto any = AcquireAny();
    if (!any.ok()) {
      RespondStatus(any.status(), out);
      return;
    }
    shard = any.value().first;
    client = std::move(any.value().second);
  }
  if (ForwardReadResolving(client.get(), shard, payload, out)) {
    pool_->Release(shard, std::move(client));
  } else {
    pool_->Discard(std::move(client));
    RespondError(WireError::kResourceBusy, "shard connection lost", out);
  }
}

bool RouterCore::ForwardReadResolving(server::Client* client, size_t shard,
                                      const std::string& payload,
                                      std::string* out) {
  (void)shard;
  int backoff_millis = config_.busy_backoff_initial_millis;
  for (int attempt = 0; attempt <= config_.intent_resolve_attempts;
       ++attempt) {
    auto response = client->RoundTrip(payload);
    if (!response.ok()) return false;
    if (IsBusyResponse(response.value()) &&
        attempt < config_.busy_retry_budget) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_millis));
      backoff_millis =
          std::min(backoff_millis * 2, config_.busy_backoff_max_millis);
      continue;
    }
    if (response.value().empty() ||
        static_cast<Op>(response.value()[0]) != Op::kIntentPending) {
      server::EncodeFrame(response.value(), out);
      return true;
    }
    // The read landed on an unresolved 2PC intent: its coordinating
    // router may be gone, so this router resolves on the reader's
    // behalf — ask the primary shard for the outcome, apply it at the
    // holding shard, retry the read. The final attempt escalates a
    // still-undecided transaction to a durable abort (the coordinator
    // is presumed dead; the primary's tombstone fences it).
    server::IntentPendingMsg pending;
    const std::string_view body =
        std::string_view(response.value()).substr(1);
    if (!server::DecodeIntentPending(body, &pending).ok()) {
      server::EncodeFrame(response.value(), out);
      return true;
    }
    const bool escalate = attempt + 1 >= config_.intent_resolve_attempts;
    bool decided = false;
    const Status resolved = ResolveIntentOnce(
        pending.gtid, pending.primary_shard, client, escalate, &decided);
    if (!resolved.ok() || !decided) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_millis));
      backoff_millis =
          std::min(backoff_millis * 2, config_.busy_backoff_max_millis);
    }
  }
  RespondError(WireError::kResourceBusy,
               "read blocked by an unresolved write intent", out);
  return true;
}

Status RouterCore::ResolveIntentOnce(uint64_t gtid, size_t primary_shard,
                                     server::Client* holder,
                                     bool abort_pending, bool* decided) {
  *decided = false;
  if (primary_shard >= pool_->num_shards()) {
    return Status::InvalidArgument("intent names an unknown primary shard");
  }
  auto primary = pool_->Acquire(primary_shard);
  if (!primary.ok()) return primary.status();
  uint8_t outcome = 0;
  uint64_t commit_ts = 0;
  const Status resolved =
      primary.value()->ResolveIntent(gtid, abort_pending, &outcome,
                                     &commit_ts);
  if (resolved.code() == StatusCode::kIoError) {
    pool_->Discard(std::move(primary.value()));
  } else {
    pool_->Release(primary_shard, std::move(primary.value()));
  }
  if (!resolved.ok()) return resolved;
  if (outcome == 0) return Status::OK();  // Still undecided.
  *decided = true;
  intent_resolutions_.fetch_add(1);
  // Land the outcome at the shard whose intent blocked the read; both
  // phase-two ops are idempotent, so racing another resolver is fine.
  return outcome == 1 ? holder->CommitPrepared(gtid, commit_ts, nullptr)
                      : holder->AbortPrepared(gtid);
}

int RouterCore::ShardForWrites(const std::vector<server::PointWrite>& writes,
                               std::string* out) {
  int shard = -1;
  for (const server::PointWrite& write : writes) {
    const std::string* partition_key = map_->PartitionKey(write.table);
    if (partition_key == nullptr) {
      RespondError(WireError::kNotSupported,
                   "writes to replicated tables are not routable (every "
                   "shard holds a copy); load them out of band",
                   out);
      return -1;
    }
    if (!write.by_key) {
      RespondError(WireError::kNotSupported,
                   "row ids are shard-local; address partitioned tables "
                   "by key through the router",
                   out);
      return -1;
    }
    const int owner = static_cast<int>(map_->ShardFor(write.key));
    if (shard == -1) shard = owner;
    if (owner != shard) {
      RespondError(WireError::kNotSupported,
                   "transaction spans shards " + std::to_string(shard) +
                       " and " + std::to_string(owner) +
                       "; cross-shard 2PC is not supported yet",
                   out);
      return -1;
    }
  }
  return shard;
}

bool RouterCore::EnsurePinned(SessionState* session, size_t shard,
                              std::string* out) {
  if (session->txn_client != nullptr) {
    if (session->pinned_shard == static_cast<int>(shard)) return true;
    RespondError(WireError::kNotSupported,
                 "transaction is pinned to shard " +
                     std::to_string(session->pinned_shard) +
                     " but this operation belongs to shard " +
                     std::to_string(shard) +
                     "; cross-shard 2PC is not supported yet",
                 out);
    return false;
  }
  auto client = pool_->Acquire(shard);
  if (!client.ok()) {
    RespondStatus(client.status(), out);
    return false;
  }
  auto begun = client.value()->RoundTrip(OpOnly(Op::kBegin));
  if (!begun.ok() || !IsOkResponse(begun.value())) {
    pool_->Discard(std::move(client.value()));
    RespondError(WireError::kResourceBusy, "shard refused transaction open",
                 out);
    return false;
  }
  session->pinned_shard = static_cast<int>(shard);
  session->txn_client = std::move(client.value());
  return true;
}

void RouterCore::HandleExecTxn(SessionState* session,
                               const std::string& payload, std::string* out) {
  std::vector<server::PointWrite> writes;
  const std::string_view body(payload.data() + 1, payload.size() - 1);
  if (!server::DecodeWriteBatch(body, &writes).ok()) {
    RespondError(WireError::kProtocolError, "malformed request body", out);
    return;
  }
  if (session->in_txn) {
    RespondError(WireError::kInvalidArgument,
                 "EXEC_TXN is auto-commit; a transaction is open on this "
                 "session",
                 out);
    return;
  }
  if (writes.empty()) {
    // An empty transaction commits vacuously; no shard needs to hear
    // about it (LSN 0 = "wrote nothing", same as the engine server).
    std::string response;
    server::EncodeCommitOk(0, &response);
    server::EncodeFrame(response, out);
    return;
  }
  std::vector<std::pair<size_t, std::vector<server::PointWrite>>> groups;
  if (!PartitionWrites(writes, &groups, out)) return;
  if (groups.size() > 1) {
    TwoPhaseCommit(groups, out);
    return;
  }
  const size_t shard = groups.front().first;
  auto client = pool_->Acquire(shard);
  if (!client.ok()) {
    RespondStatus(client.status(), out);
    return;
  }
  // The pass-through fast path: the ORIGINAL request bytes go to the
  // owning shard and its response comes back verbatim — one
  // router->shard round trip, no re-encode.
  if (ForwardVerbatim(client.value().get(), payload, out)) {
    pool_->Release(shard, std::move(client.value()));
    passthrough_txns_.fetch_add(1);
  } else {
    pool_->Discard(std::move(client.value()));
    RespondStatus(Status::IoError(
                      "shard connection lost; transaction outcome unknown"),
                  out);
  }
}

bool RouterCore::PartitionWrites(
    const std::vector<server::PointWrite>& writes,
    std::vector<std::pair<size_t, std::vector<server::PointWrite>>>* groups,
    std::string* out) {
  groups->clear();
  for (const server::PointWrite& write : writes) {
    const std::string* partition_key = map_->PartitionKey(write.table);
    if (partition_key == nullptr) {
      RespondError(WireError::kNotSupported,
                   "writes to replicated tables are not routable (every "
                   "shard holds a copy); load them out of band",
                   out);
      return false;
    }
    if (!write.by_key) {
      RespondError(WireError::kNotSupported,
                   "row ids are shard-local; address partitioned tables "
                   "by key through the router",
                   out);
      return false;
    }
    const size_t owner = map_->ShardFor(write.key);
    auto group = std::find_if(
        groups->begin(), groups->end(),
        [owner](const auto& entry) { return entry.first == owner; });
    if (group == groups->end()) {
      groups->emplace_back(owner, std::vector<server::PointWrite>{});
      group = std::prev(groups->end());
    }
    group->second.push_back(write);
  }
  // Primary shard = lowest participating index: every router derives
  // the same commit point from the same write set, so a reader's lazy
  // resolution and the coordinator always agree on where the outcome
  // lives.
  std::sort(groups->begin(), groups->end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return true;
}

void RouterCore::AbortPreparedFanout(
    uint64_t gtid,
    const std::vector<std::pair<size_t, std::vector<server::PointWrite>>>&
        groups) {
  // Best-effort: every participant gets ABORT_PREPARED. A shard whose
  // prepare never landed fences the gtid with a durable tombstone, so a
  // delayed PREPARE_TXN racing this abort is refused rather than
  // resurrecting the transaction. Unreachable shards are left for lazy
  // reader-driven resolution.
  for (const auto& [shard, writes] : groups) {
    (void)writes;
    auto client = pool_->Acquire(shard);
    if (!client.ok()) continue;
    const Status aborted = client.value()->AbortPrepared(gtid);
    if (aborted.ok() || aborted.code() != StatusCode::kIoError) {
      pool_->Release(shard, std::move(client.value()));
    } else {
      pool_->Discard(std::move(client.value()));
    }
  }
}

void RouterCore::TwoPhaseCommit(
    const std::vector<std::pair<size_t, std::vector<server::PointWrite>>>&
        groups,
    std::string* out) {
  anker::FaultInjector& faults = anker::FaultInjector::Instance();
  const uint64_t gtid = gtid_base_ + gtid_counter_.fetch_add(1) + 1;
  const uint32_t primary_shard = static_cast<uint32_t>(groups.front().first);

  // Phase one: stage durable write intents on every participant. Each
  // ack carries the shard's prepare stamp, folded into the HLC.
  std::vector<std::unique_ptr<server::Client>> clients(groups.size());
  uint64_t max_prepare_ts = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    const auto& [shard, writes] = groups[i];
    auto acquired = pool_->Acquire(shard);
    Status prepared = acquired.status();
    if (prepared.ok()) {
      clients[i] = std::move(acquired.value());
      uint64_t prepare_ts = 0;
      int backoff_millis = config_.busy_backoff_initial_millis;
      for (int attempt = 0;; ++attempt) {
        // PREPARE_TXN is idempotent (a duplicate staged gtid acks OK),
        // so BUSY — emitted before the shard does any work — retries
        // the same way every other forwarded op does.
        prepared = clients[i]->PrepareTxn(gtid, primary_shard, writes,
                                          &prepare_ts, nullptr);
        if (prepared.code() != StatusCode::kResourceBusy ||
            attempt >= config_.busy_retry_budget) {
          break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_millis));
        backoff_millis =
            std::min(backoff_millis * 2, config_.busy_backoff_max_millis);
      }
      if (prepared.ok()) max_prepare_ts = std::max(max_prepare_ts, prepare_ts);
    }
    if (!prepared.ok()) {
      // Unwind: nothing is decided until the primary's COMMIT_PREPARED
      // is durable, so aborting here is always correct.
      for (size_t j = 0; j < clients.size(); ++j) {
        if (clients[j] == nullptr) continue;
        pool_->Release(groups[j].first, std::move(clients[j]));
      }
      AbortPreparedFanout(gtid, groups);
      RespondStatus(
          prepared.code() == StatusCode::kIoError
              ? Status::ResourceBusy("shard " +
                                     std::to_string(groups[i].first) +
                                     " unreachable during prepare; "
                                     "transaction aborted")
              : prepared,
          out);
      return;
    }
    faults.MaybeKill("2pc.prepare.post");
  }

  // Decision: one HLC stamp above every prepare stamp. Nothing durable
  // records it yet — a crash before the primary's ack below aborts the
  // transaction (lazy resolution escalates undecided intents to abort).
  const uint64_t commit_ts = oracle_.CommitStamp(max_prepare_ts);

  // Phase two: the primary shard (groups.front()) is the commit point —
  // its durable COMMIT_PREPARED record decides the transaction. The
  // remaining participants are then told best-effort; any that miss the
  // memo are healed by reader-driven resolution through the primary.
  uint64_t primary_lsn = 0;
  for (size_t i = 0; i < groups.size(); ++i) {
    faults.MaybeKill("2pc.commit.pre");
    uint64_t lsn = 0;
    Status committed = Status::OK();
    int backoff_millis = config_.busy_backoff_initial_millis;
    for (int attempt = 0;; ++attempt) {
      committed = clients[i]->CommitPrepared(gtid, commit_ts, &lsn);
      if (committed.code() != StatusCode::kResourceBusy ||
          attempt >= config_.busy_retry_budget) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_millis));
      backoff_millis =
          std::min(backoff_millis * 2, config_.busy_backoff_max_millis);
    }
    if (committed.code() == StatusCode::kIoError) {
      pool_->Discard(std::move(clients[i]));
    }
    if (i == 0) {
      if (!committed.ok()) {
        // The commit point did not ack. Transport loss leaves the
        // outcome genuinely unknown (the record may be durable), so
        // intents stay for lazy resolution; a clean refusal means the
        // transaction never committed — unwind it.
        for (size_t j = 1; j < clients.size(); ++j) {
          if (clients[j] != nullptr) {
            pool_->Release(groups[j].first, std::move(clients[j]));
          }
        }
        if (committed.code() == StatusCode::kIoError) {
          RespondStatus(
              Status::IoError("primary shard connection lost; "
                              "transaction outcome unknown"),
              out);
        } else {
          AbortPreparedFanout(gtid, groups);
          RespondStatus(committed, out);
        }
        return;
      }
      primary_lsn = lsn;
    }
    if (clients[i] != nullptr) {
      pool_->Release(groups[i].first, std::move(clients[i]));
    }
    // A failed secondary after the primary's ack does NOT fail the
    // transaction — it is committed; the straggler's intents resolve
    // lazily.
  }

  twopc_txns_.fetch_add(1);
  // The LSN is the primary shard's commit record: read-your-writes
  // waits (WAIT_LSN) against the commit point, where the outcome lives.
  std::string response;
  server::EncodeCommitOk(primary_lsn, &response);
  server::EncodeFrame(response, out);
}

void RouterCore::HandleQuery(const std::string& payload, std::string* out) {
  server::QueryMsg msg;
  const std::string_view body(payload.data() + 1, payload.size() - 1);
  if (!server::DecodeQuery(body, &msg).ok()) {
    RespondError(WireError::kProtocolError, "malformed request body", out);
    return;
  }
  const query::ScatterPlan plan =
      query::PlanScatter(msg.query, map_->partitioned());

  if (plan.mode == query::ScatterMode::kUnsupported) {
    RespondError(WireError::kNotSupported,
                 "cross-shard query: " + plan.reason, out);
    return;
  }

  if (plan.mode == query::ScatterMode::kSingleShard) {
    // Replicated-only plan: any one healthy shard holds the answer.
    auto any = AcquireAny();
    if (!any.ok()) {
      RespondStatus(any.status(), out);
      return;
    }
    auto result = any.value().second->Query(msg.query, msg.params);
    if (!result.ok()) {
      // The client may be poisoned (mid-stream failure); drop it.
      pool_->Discard(std::move(any.value().second));
      RespondStatus(result.status(), out);
      return;
    }
    pool_->Release(any.value().first, std::move(any.value().second));
    AppendResultFrames(result.value(), out);
    single_shard_queries_.fetch_add(1);
    return;
  }

  // Scatter: every shard runs plan.shard_query; the router merges.
  std::vector<query::QueryResult> parts;
  uint32_t skipped = 0;
  for (size_t shard = 0; shard < pool_->num_shards(); ++shard) {
    auto client = pool_->Acquire(shard);
    if (!client.ok()) {
      if (config_.allow_partial) {
        ++skipped;  // Merge over the live subset.
        continue;
      }
      RespondStatus(client.status(), out);
      return;
    }
    auto result = client.value()->Query(plan.shard_query, msg.params);
    if (!result.ok()) {
      pool_->Discard(std::move(client.value()));
      const StatusCode code = result.status().code();
      if (config_.allow_partial && (code == StatusCode::kIoError ||
                                    code == StatusCode::kResourceBusy)) {
        ++skipped;  // Shard died mid-query / is overloaded: skip it.
        continue;
      }
      RespondStatus(result.status(), out);
      return;
    }
    pool_->Release(shard, std::move(client.value()));
    parts.push_back(std::move(result.value()));
  }
  if (parts.empty()) {
    RespondError(WireError::kResourceBusy, "no shard reachable", out);
    return;
  }
  query::QueryResult merged;
  const Status merged_ok =
      query::MergeShardResults(plan, std::move(parts), &merged);
  if (!merged_ok.ok()) {
    RespondStatus(merged_ok, out);
    return;
  }
  // Degraded results are wire-visible: QUERY_DONE carries the count of
  // shards whose rows are absent, so a client can never mistake a
  // partial SUM/COUNT for the complete answer.
  merged.shards_missing = skipped;
  AppendResultFrames(merged, out);
  scatter_queries_.fetch_add(1);
}

void RouterCore::HandleFanout(Op op, const std::string& payload,
                              std::string* out) {
  const std::string_view body(payload.data() + 1, payload.size() - 1);
  // Partitioned-table schema/load ops are the loader's job: rows are
  // positional per shard, so the router cannot split them faithfully.
  if (op == Op::kCreateTable) {
    server::CreateTableMsg msg;
    if (!server::DecodeCreateTable(body, &msg).ok()) {
      RespondError(WireError::kProtocolError, "malformed request body", out);
      return;
    }
    if (map_->PartitionKey(msg.name) != nullptr) {
      RespondError(WireError::kNotSupported,
                   "create partitioned tables on each shard directly "
                   "(per-shard row counts differ)",
                   out);
      return;
    }
  } else if (op == Op::kLoad) {
    server::LoadMsg msg;
    if (!server::DecodeLoad(body, &msg).ok()) {
      RespondError(WireError::kProtocolError, "malformed request body", out);
      return;
    }
    if (map_->PartitionKey(msg.table) != nullptr) {
      RespondError(WireError::kNotSupported,
                   "loads are positional; split partitioned-table loads "
                   "at the loader",
                   out);
      return;
    }
  }

  // All shards must apply DDL/loads: a partial fan-out would fork the
  // replicated schema, so the first unreachable shard fails the op.
  for (size_t shard = 0; shard < pool_->num_shards(); ++shard) {
    auto client = pool_->Acquire(shard);
    if (!client.ok()) {
      RespondStatus(client.status(), out);
      return;
    }
    auto response = client.value()->RoundTrip(payload);
    if (!response.ok()) {
      pool_->Discard(std::move(client.value()));
      RespondError(WireError::kResourceBusy,
                   "shard " + std::to_string(shard) +
                       " connection lost during fan-out",
                   out);
      return;
    }
    pool_->Release(shard, std::move(client.value()));
    if (!IsOkResponse(response.value())) {
      // First failure wins; its response travels back verbatim.
      server::EncodeFrame(response.value(), out);
      return;
    }
  }
  server::EncodeFrame(OpOnly(Op::kOk), out);
  fanout_ops_.fetch_add(1);
}

void RouterCore::HandleListTables(const std::string& payload,
                                  std::string* out) {
  auto any = AcquireAny();
  if (!any.ok()) {
    RespondStatus(any.status(), out);
    return;
  }
  if (ForwardVerbatim(any.value().second.get(), payload, out)) {
    pool_->Release(any.value().first, std::move(any.value().second));
  } else {
    pool_->Discard(std::move(any.value().second));
    RespondError(WireError::kResourceBusy, "shard connection lost", out);
  }
}

void RouterCore::AbandonSession(SessionState* session) {
  if (session->txn_client != nullptr) {
    auto aborted = session->txn_client->RoundTrip(OpOnly(Op::kAbort));
    if (aborted.ok() && IsOkResponse(aborted.value())) {
      pool_->Release(static_cast<size_t>(session->pinned_shard),
                     std::move(session->txn_client));
    } else {
      pool_->Discard(std::move(session->txn_client));
    }
  }
  session->in_txn = false;
  session->pinned_shard = -1;
}

server::RouterStatusOkMsg RouterCore::StatusSnapshot() {
  server::RouterStatusOkMsg msg;
  msg.shard_count = static_cast<uint32_t>(map_->num_shards());
  msg.healthy_shards = static_cast<uint32_t>(pool_->CountHealthy());
  msg.shard_map_version = map_->version();
  msg.shard_map_digest = map_->digest();
  msg.allow_partial = config_.allow_partial;
  msg.passthrough_txns = passthrough_txns_.load();
  msg.scatter_queries = scatter_queries_.load();
  msg.single_shard_queries = single_shard_queries_.load();
  msg.fanout_ops = fanout_ops_.load();
  msg.twopc_txns = twopc_txns_.load();
  msg.intent_resolutions = intent_resolutions_.load();
  return msg;
}

}  // namespace anker::shard
