#include "shard/router_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace anker::shard {

namespace {

using Clock = std::chrono::steady_clock;
using server::Op;
using server::WireError;

constexpr int kTickMillis = 100;

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

struct RouterServer::Session {
  int fd = -1;
  enum class State { kAwaitHello, kReady } state = State::kAwaitHello;

  std::string inbox;
  std::string outbox;
  bool want_write = false;

  std::deque<std::string> pending;
  bool busy = false;
  std::string dispatched_response;

  bool close_after_flush = false;
  bool closed = false;

  /// Pinned shard + live backend transaction connection. Touched by the
  /// loop thread and the worker running this session's dispatched op,
  /// never concurrently: `busy` serializes them.
  RouterCore::SessionState routing;

  Clock::time_point last_active = Clock::now();
};

RouterServer::RouterServer(RouterCore* core, RouterServerConfig config)
    : core_(core), config_(std::move(config)) {
  ANKER_CHECK(core_ != nullptr);
  if (config_.max_pipeline == 0) config_.max_pipeline = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 1;
}

RouterServer::~RouterServer() { Shutdown(); }

Status RouterServer::Start() {
  ANKER_CHECK_MSG(!running_.load(), "RouterServer::Start called twice");

  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::IoError(ErrnoMessage("socket"));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError(ErrnoMessage("bind"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 128) < 0) {
    const Status status = Status::IoError(ErrnoMessage("listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status = Status::IoError(ErrnoMessage("epoll/eventfd"));
    Shutdown();
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  workers_ = std::make_unique<ThreadPool>(config_.max_inflight);

  running_.store(true);
  stopping_.store(false);
  loop_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void RouterServer::Shutdown() {
  if (running_.load()) {
    stopping_.store(true);
    WakeLoop();
    if (loop_.joinable()) loop_.join();
    running_.store(false);
  }
  while (inflight_.load() != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  workers_.reset();
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void RouterServer::WakeLoop() {
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void RouterServer::EventLoop() {
  std::vector<epoll_event> events(64);
  bool listener_open = true;
  Clock::time_point stopping_since{};
  while (true) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), kTickMillis);
    if (n < 0 && errno != EINTR) break;

    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      if (fd == wake_fd_) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      std::shared_ptr<Session> session = it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseSession(session);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushOutbox(session);
      if ((events[i].events & EPOLLIN) != 0 && !session->closed) {
        HandleReadable(session);
      }
    }

    std::vector<std::shared_ptr<Session>> completed;
    {
      std::lock_guard<std::mutex> guard(completed_mutex_);
      completed.swap(completed_);
    }
    for (const std::shared_ptr<Session>& session : completed) {
      session->busy = false;
      if (session->closed) {
        // Peer vanished while its op ran; release the routing state the
        // worker owned (aborts a pinned transaction on its shard).
        core_->AbandonSession(&session->routing);
        continue;
      }
      session->outbox.append(session->dispatched_response);
      session->dispatched_response.clear();
      FlushOutbox(session);
      if (!session->closed) PumpSession(session);
    }

    if (config_.idle_timeout_millis > 0) {
      const auto deadline =
          Clock::now() -
          std::chrono::milliseconds(config_.idle_timeout_millis);
      std::vector<std::shared_ptr<Session>> idle;
      for (const auto& [sfd, session] : sessions_) {
        if (!session->busy && session->last_active < deadline) {
          idle.push_back(session);
        }
      }
      for (const std::shared_ptr<Session>& session : idle) {
        CloseSession(session);
      }
    }

    if (stopping_.load()) {
      if (listener_open) {
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        listener_open = false;
        stopping_since = Clock::now();
      }
      const bool force =
          Clock::now() - stopping_since > std::chrono::seconds(5);
      std::vector<std::shared_ptr<Session>> drainable;
      for (const auto& [sfd, session] : sessions_) {
        if (!session->busy) drainable.push_back(session);
      }
      for (const std::shared_ptr<Session>& session : drainable) {
        FlushOutbox(session);
        if (session->closed) continue;
        if (session->outbox.empty() || force) {
          CloseSession(session);
        } else {
          session->close_after_flush = true;
        }
      }
      if (sessions_.empty() && inflight_.load() == 0) break;
    }
  }
}

void RouterServer::HandleAccept() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;
    if (stopping_.load() || sessions_.size() >= config_.max_sessions) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      continue;
    }
    sessions_[fd] = std::move(session);
  }
}

void RouterServer::HandleReadable(const std::shared_ptr<Session>& session) {
  char chunk[65536];
  while (true) {
    const ssize_t n = ::read(session->fd, chunk, sizeof(chunk));
    if (n > 0) {
      session->inbox.append(chunk, static_cast<size_t>(n));
      session->last_active = Clock::now();
      continue;
    }
    if (n == 0) {
      CloseSession(session);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseSession(session);
    return;
  }
  IngestFrames(session);
  if (!session->closed) PumpSession(session);
  if (!session->closed) FlushOutbox(session);
}

void RouterServer::IngestFrames(const std::shared_ptr<Session>& session) {
  size_t offset = 0;
  while (true) {
    std::string_view rest(session->inbox.data() + offset,
                          session->inbox.size() - offset);
    std::string_view payload;
    size_t consumed = 0;
    const server::FrameStatus status =
        server::DecodeFrame(rest, &payload, &consumed);
    if (status == server::FrameStatus::kNeedMore) break;
    if (status == server::FrameStatus::kCorrupt) {
      CloseSession(session);
      return;
    }
    if (session->pending.size() >= config_.max_pipeline) {
      RespondError(session, Op::kErr, WireError::kProtocolError,
                   "pipeline window exceeded");
      session->close_after_flush = true;
      break;
    }
    session->pending.emplace_back(payload);
    offset += consumed;
  }
  session->inbox.erase(0, offset);
}

void RouterServer::PumpSession(const std::shared_ptr<Session>& session) {
  while (!session->busy && !session->closed &&
         !session->close_after_flush && !session->pending.empty()) {
    const std::string payload = std::move(session->pending.front());
    session->pending.pop_front();
    session->last_active = Clock::now();
    ExecuteRequest(session, payload);
  }
  if (!session->closed) FlushOutbox(session);
}

void RouterServer::Respond(const std::shared_ptr<Session>& session,
                           std::string_view payload) {
  server::EncodeFrame(payload, &session->outbox);
}

void RouterServer::RespondError(const std::shared_ptr<Session>& session,
                                Op op, WireError code,
                                const std::string& message) {
  std::string payload;
  server::EncodeErr(op, {code, message}, &payload);
  Respond(session, payload);
}

void RouterServer::FlushOutbox(const std::shared_ptr<Session>& session) {
  while (!session->outbox.empty()) {
    const ssize_t n = ::send(session->fd, session->outbox.data(),
                             session->outbox.size(), MSG_NOSIGNAL);
    if (n > 0) {
      session->outbox.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!session->want_write) {
        session->want_write = true;
        epoll_event ev{};
        ev.events = EPOLLIN | EPOLLOUT;
        ev.data.fd = session->fd;
        ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseSession(session);
    return;
  }
  if (session->want_write) {
    session->want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = session->fd;
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, session->fd, &ev);
  }
  if (session->close_after_flush) CloseSession(session);
}

void RouterServer::CloseSession(const std::shared_ptr<Session>& session) {
  if (session->closed) return;
  session->closed = true;
  // The worker owns routing state while busy; the completion handler
  // sees closed == true and abandons it then.
  if (!session->busy) core_->AbandonSession(&session->routing);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, session->fd, nullptr);
  ::close(session->fd);
  sessions_.erase(session->fd);
}

bool RouterServer::ExecuteRequest(const std::shared_ptr<Session>& session,
                                  const std::string& payload) {
  if (payload.empty() ||
      !server::IsRequestOp(static_cast<uint8_t>(payload[0]))) {
    RespondError(session, Op::kErr, WireError::kNotSupported,
                 "unknown or non-request opcode");
    return true;
  }
  const Op op = static_cast<Op>(payload[0]);
  const std::string_view body(payload.data() + 1, payload.size() - 1);

  if (session->state == Session::State::kAwaitHello) {
    if (op != Op::kHello) {
      RespondError(session, Op::kErr, WireError::kProtocolError,
                   "first frame must be HELLO");
      session->close_after_flush = true;
      return true;
    }
    server::HelloMsg hello;
    const Status decoded = server::DecodeHello(body, &hello);
    if (!decoded.ok() || hello.version != server::kProtocolVersion ||
        hello.auth_token != config_.auth_token) {
      const char* why = !decoded.ok() ? "malformed HELLO"
                        : hello.version != server::kProtocolVersion
                            ? "unsupported protocol version"
                            : "authentication failed";
      RespondError(session, Op::kErr, WireError::kBadHandshake, why);
      session->close_after_flush = true;
      return true;
    }
    server::HelloOkMsg ok;
    ok.server_info = "anker-router";
    ok.flags = server::kHelloFlagRouter;
    ok.shard_map_digest = core_->map().digest();
    std::string response;
    server::EncodeHelloOk(ok, &response);
    Respond(session, response);
    session->state = Session::State::kReady;
    return true;
  }

  if (op == Op::kPing) {
    std::string response;
    response.push_back(static_cast<char>(Op::kPong));
    Respond(session, response);
    return true;
  }

  // Everything else may block on backend IO: dispatch. Same admission
  // control as the engine server — beyond the inflight budget, BUSY.
  if (inflight_.load() >= config_.max_inflight) {
    RespondError(session, Op::kBusy, WireError::kResourceBusy,
                 "router at max_inflight; retry");
    return true;
  }
  inflight_.fetch_add(1);
  session->busy = true;
  workers_->Submit([this, session, payload]() mutable {
    RunDispatched(session, payload);
  });
  return false;
}

void RouterServer::RunDispatched(std::shared_ptr<Session> session,
                                 std::string payload) {
  session->dispatched_response.clear();
  core_->Handle(&session->routing, payload, &session->dispatched_response);
  {
    std::lock_guard<std::mutex> guard(completed_mutex_);
    completed_.push_back(std::move(session));
  }
  WakeLoop();
  // Last touch of `this`: Shutdown() spins on inflight_ before teardown.
  inflight_.fetch_sub(1);
}

}  // namespace anker::shard
