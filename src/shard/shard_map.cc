#include "shard/shard_map.h"

#include <fstream>
#include <sstream>

namespace anker::shard {

namespace {

/// Strips a trailing comment and surrounding whitespace.
std::string CleanLine(std::string line) {
  const size_t hash = line.find('#');
  if (hash != std::string::npos) line.erase(hash);
  const size_t begin = line.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const size_t end = line.find_last_not_of(" \t\r");
  return line.substr(begin, end - begin + 1);
}

Status ParseEndpoint(const std::string& text, ShardEndpoint* out) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return Status::InvalidArgument("shard endpoint must be host:port: " +
                                   text);
  }
  out->host = text.substr(0, colon);
  uint64_t port = 0;
  for (size_t i = colon + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad shard port: " + text);
    }
    port = port * 10 + static_cast<uint64_t>(c - '0');
    if (port > 65535) return Status::InvalidArgument("bad shard port: " + text);
  }
  if (port == 0) return Status::InvalidArgument("bad shard port: " + text);
  out->port = static_cast<uint16_t>(port);
  return Status::OK();
}

}  // namespace

uint64_t ShardMap::Mix64(uint64_t key) {
  // splitmix64 finalizer (public domain, Vigna): fixed constants, no
  // platform dependence — the routing function is part of the protocol.
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Result<ShardMap> ShardMap::Parse(const std::string& text) {
  ShardMap map;
  bool saw_version = false;
  std::istringstream lines(text);
  std::string raw;
  size_t lineno = 0;
  while (std::getline(lines, raw)) {
    ++lineno;
    const std::string line = CleanLine(std::move(raw));
    if (line.empty()) continue;
    std::istringstream words(line);
    std::string keyword;
    words >> keyword;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument("shard map line " +
                                     std::to_string(lineno) + ": " + why);
    };
    if (keyword == "version") {
      uint64_t version = 0;
      if (!(words >> version) || version == 0 || version > UINT32_MAX) {
        return bad("version must be a positive 32-bit integer");
      }
      if (saw_version) return bad("duplicate version line");
      saw_version = true;
      map.version_ = static_cast<uint32_t>(version);
    } else if (keyword == "shard") {
      std::string endpoint_text;
      if (!(words >> endpoint_text)) return bad("shard needs host:port");
      ShardEndpoint endpoint;
      const Status parsed = ParseEndpoint(endpoint_text, &endpoint);
      if (!parsed.ok()) return bad(parsed.message());
      map.shards_.push_back(std::move(endpoint));
    } else if (keyword == "table") {
      std::string table, kind;
      if (!(words >> table >> kind)) {
        return bad("table needs: <name> partition <col> | <name> replicated");
      }
      // Replicated is the default; the entry just pins it explicitly.
      // Either way a duplicate entry is a config bug worth refusing.
      static const std::string kReplicatedSentinel;
      std::string key;
      if (kind == "partition") {
        if (!(words >> key) || key.empty()) {
          return bad("partition needs a key column");
        }
      } else if (kind != "replicated") {
        return bad("unknown table kind: " + kind);
      }
      if (map.partitioned_.count(table) != 0 ||
          map.replicated_marks_.count(table) != 0) {
        return bad("duplicate table entry: " + table);
      }
      if (kind == "partition") {
        map.partitioned_[table] = key;
      } else {
        map.replicated_marks_.insert(table);
      }
    } else {
      return bad("unknown keyword: " + keyword);
    }
    std::string trailing;
    if (words >> trailing) return bad("trailing tokens: " + trailing);
  }
  if (!saw_version) {
    return Status::InvalidArgument("shard map has no version line");
  }
  if (map.shards_.empty()) {
    return Status::InvalidArgument("shard map names no shards");
  }
  return map;
}

Result<ShardMap> ShardMap::LoadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::IoError("cannot read shard map: " + path);
  std::ostringstream text;
  text << file.rdbuf();
  return Parse(text.str());
}

Status ShardMap::ValidateReload(const ShardMap& next) const {
  if (next.num_shards() != num_shards()) {
    return Status::InvalidArgument(
        "shard map reload changes the shard count (" +
        std::to_string(num_shards()) + " -> " +
        std::to_string(next.num_shards()) +
        "); rehoming keys requires data migration");
  }
  if (next.version() <= version()) {
    return Status::InvalidArgument(
        "shard map reload must increase the version (" +
        std::to_string(version()) + " -> " +
        std::to_string(next.version()) + ")");
  }
  return Status::OK();
}

const std::string* ShardMap::PartitionKey(const std::string& table) const {
  const auto it = partitioned_.find(table);
  return it == partitioned_.end() ? nullptr : &it->second;
}

std::string ShardMap::Canonical() const {
  std::string out = "version " + std::to_string(version_) + "\n";
  for (const ShardEndpoint& shard : shards_) {
    out += "shard " + shard.host + ":" + std::to_string(shard.port) + "\n";
  }
  // partitioned_ is an ordered map: name order is already canonical.
  // Explicit `replicated` marks are semantic no-ops and stay out.
  for (const auto& [table, key] : partitioned_) {
    out += "table " + table + " partition " + key + "\n";
  }
  return out;
}

uint64_t ShardMap::digest() const {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a.
  for (const char c : Canonical()) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace anker::shard
