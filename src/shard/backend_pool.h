#ifndef ANKER_SHARD_BACKEND_POOL_H_
#define ANKER_SHARD_BACKEND_POOL_H_

// Per-shard connection pools for the router's backend side. Each shard
// keeps a small free-list of connected Clients; Acquire hands one out
// (dialing a fresh connection when the list is empty), Release returns
// a healthy one, Discard drops a connection whose transport failed.
//
// Shard-down handling: a failed dial opens a capped-exponential-backoff
// window during which further Acquires fail fast with kResourceBusy —
// the router maps that to a BUSY wire response, so writes against a
// down shard surface as the same recoverable backpressure clients
// already retry on. The first dial after the window either heals the
// shard (backoff resets) or extends it.
//
// Thread safety: fully thread-safe; workers acquire concurrently (a
// scatter-gather holds one connection per shard at once). The dial
// itself runs outside the lock so a slow connect never blocks other
// shards' traffic.

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "server/client.h"
#include "shard/shard_map.h"

namespace anker::shard {

struct BackendPoolConfig {
  /// Options for every backend connection (auth token, IO timeout). The
  /// busy_retry_budget should stay 0: BUSY must travel back to the real
  /// client, which owns the retry policy.
  server::ClientOptions client;
  int backoff_initial_millis = 50;
  int backoff_max_millis = 2000;
  /// Idle connections kept per shard; extras are closed on Release.
  size_t max_idle_per_shard = 8;
};

class BackendPool {
 public:
  BackendPool(std::vector<ShardEndpoint> shards, BackendPoolConfig config);
  ANKER_DISALLOW_COPY_AND_MOVE(BackendPool);

  size_t num_shards() const { return shards_.size(); }
  const ShardEndpoint& endpoint(size_t shard) const { return shards_[shard]; }

  /// A pooled connection or a fresh dial. kResourceBusy while the shard
  /// is inside its reconnect-backoff window or the dial fails (which
  /// opens/extends the window).
  Result<std::unique_ptr<server::Client>> Acquire(size_t shard);

  /// Returns a connection that completed its work normally.
  void Release(size_t shard, std::unique_ptr<server::Client> client);

  /// Drops a connection whose transport failed mid-operation. The next
  /// Acquire re-dials immediately (one failure on an established
  /// connection does not open the backoff window — the dial verdict
  /// does).
  void Discard(std::unique_ptr<server::Client> client);

  /// Health probe: a pooled/fresh connection answering PING. Cheap when
  /// the shard is inside backoff (fails fast without touching the
  /// network).
  bool ProbeHealthy(size_t shard);

  /// Shards currently answering PING (drives ROUTER_STATUS).
  size_t CountHealthy();

 private:
  using Clock = std::chrono::steady_clock;

  struct Backend {
    std::mutex mutex;
    std::vector<std::unique_ptr<server::Client>> idle;
    int dial_failures = 0;          ///< Consecutive; resets on success.
    Clock::time_point retry_after;  ///< Backoff gate while failing.
  };

  const std::vector<ShardEndpoint> shards_;
  const BackendPoolConfig config_;
  std::vector<std::unique_ptr<Backend>> backends_;
};

}  // namespace anker::shard

#endif  // ANKER_SHARD_BACKEND_POOL_H_
