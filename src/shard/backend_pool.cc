#include "shard/backend_pool.h"

#include <algorithm>
#include <string>
#include <utility>

namespace anker::shard {

BackendPool::BackendPool(std::vector<ShardEndpoint> shards,
                         BackendPoolConfig config)
    : shards_(std::move(shards)), config_(std::move(config)) {
  ANKER_CHECK(!shards_.empty());
  backends_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    backends_.push_back(std::make_unique<Backend>());
  }
}

Result<std::unique_ptr<server::Client>> BackendPool::Acquire(size_t shard) {
  ANKER_CHECK(shard < backends_.size());
  Backend& backend = *backends_[shard];
  {
    std::lock_guard<std::mutex> guard(backend.mutex);
    if (!backend.idle.empty()) {
      std::unique_ptr<server::Client> client =
          std::move(backend.idle.back());
      backend.idle.pop_back();
      return client;
    }
    if (backend.dial_failures > 0 && Clock::now() < backend.retry_after) {
      return Status::ResourceBusy(
          "shard " + std::to_string(shard) + " (" + shards_[shard].host +
          ":" + std::to_string(shards_[shard].port) +
          ") is down; reconnect backoff in effect");
    }
  }

  // Dial outside the lock: a slow or timing-out connect must not stall
  // other workers' traffic to this shard (they will dial their own).
  auto dialed = server::Client::Connect(shards_[shard].host,
                                        shards_[shard].port, config_.client);
  std::lock_guard<std::mutex> guard(backend.mutex);
  if (dialed.ok()) {
    backend.dial_failures = 0;
    return std::move(dialed.value());
  }
  ++backend.dial_failures;
  const int shift = std::min(backend.dial_failures - 1, 16);
  const int64_t backoff =
      std::min(static_cast<int64_t>(config_.backoff_initial_millis) << shift,
               static_cast<int64_t>(config_.backoff_max_millis));
  backend.retry_after = Clock::now() + std::chrono::milliseconds(backoff);
  return Status::ResourceBusy("shard " + std::to_string(shard) + " (" +
                              shards_[shard].host + ":" +
                              std::to_string(shards_[shard].port) +
                              ") unreachable: " + dialed.status().message());
}

void BackendPool::Release(size_t shard,
                         std::unique_ptr<server::Client> client) {
  ANKER_CHECK(shard < backends_.size());
  if (client == nullptr) return;
  Backend& backend = *backends_[shard];
  std::lock_guard<std::mutex> guard(backend.mutex);
  if (backend.idle.size() < config_.max_idle_per_shard) {
    backend.idle.push_back(std::move(client));
  }
  // else: destructor closes the surplus connection.
}

void BackendPool::Discard(std::unique_ptr<server::Client> client) {
  client.reset();
}

bool BackendPool::ProbeHealthy(size_t shard) {
  auto client = Acquire(shard);
  if (!client.ok()) return false;
  const Status pinged = client.value()->Ping();
  if (pinged.ok()) {
    Release(shard, std::move(client.value()));
    return true;
  }
  return false;
}

size_t BackendPool::CountHealthy() {
  size_t healthy = 0;
  for (size_t shard = 0; shard < backends_.size(); ++shard) {
    if (ProbeHealthy(shard)) ++healthy;
  }
  return healthy;
}

}  // namespace anker::shard
