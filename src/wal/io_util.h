#ifndef ANKER_WAL_IO_UTIL_H_
#define ANKER_WAL_IO_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace anker::wal {

/// mkdir -p for one path (creates missing intermediate components).
Status EnsureDir(const std::string& path);

bool PathExists(const std::string& path);

/// write(2) loop handling short writes and EINTR.
Status WriteFully(int fd, const void* data, size_t len);

/// fdatasync wrapper with a Status result.
Status SyncFd(int fd);

/// Opens `dir`, fsyncs it, closes it — makes directory entries (created,
/// renamed or unlinked files) durable.
Status SyncDir(const std::string& dir);

/// Reads a whole file into `out`. NotFound if the file does not exist.
Status ReadFile(const std::string& path, std::string* out);

/// Durably replaces `path` with `contents`: write to a sibling temp file,
/// fsync it, rename over `path`, fsync the directory. The visible file is
/// always either the old or the new version, never a torn mix — this is
/// how CURRENT flips between checkpoints.
Status AtomicWriteFile(const std::string& path, const std::string& contents);

/// Names of directory entries (not recursive, no "."/"..").
Status ListDir(const std::string& dir, std::vector<std::string>* names);

/// Deletes a file; NotFound is not an error.
Status RemoveFile(const std::string& path);

/// rm -rf for a directory tree (used to drop obsolete checkpoints).
Status RemoveDirRecursive(const std::string& path);

}  // namespace anker::wal

#endif  // ANKER_WAL_IO_UTIL_H_
