#include "wal/io_util.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace anker::wal {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " '" + path + "': " + ::strerror(errno));
}

}  // namespace

Status EnsureDir(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      prefix.push_back(path[i]);
      continue;
    }
    if (i < path.size()) prefix.push_back('/');
    if (prefix.empty() || prefix == "/") continue;
    std::string entry = prefix;
    while (!entry.empty() && entry.back() == '/') entry.pop_back();
    if (::mkdir(entry.c_str(), 0755) != 0) {
      if (errno != EEXIST) return Errno("mkdir", entry);
    } else {
      // The new directory's entry is only durable once its parent is
      // synced — without this, a crash before the first checkpoint can
      // take the whole wal/ directory (and with it acknowledged
      // commits) with it.
      const size_t slash = entry.find_last_of('/');
      const std::string parent =
          slash == std::string::npos ? "."
          : slash == 0               ? "/"
                                     : entry.substr(0, slash);
      ANKER_RETURN_IF_ERROR(SyncDir(parent));
    }
  }
  return Status::OK();
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status WriteFully(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + ::strerror(errno));
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SyncFd(int fd) {
  if (::fdatasync(fd) != 0) {
    return Status::IoError(std::string("fdatasync: ") + ::strerror(errno));
  }
  return Status::OK();
}

Status SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("open dir", dir);
  Status s = Status::OK();
  if (::fsync(fd) != 0) {
    s = Errno("fsync dir", dir);
  }
  ::close(fd);
  return s;
}

Status ReadFile(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return Errno("open", path);
  }
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("read", path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    out->append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Errno("open", tmp);
  Status s = WriteFully(fd, contents.data(), contents.size());
  if (s.ok()) s = SyncFd(fd);
  ::close(fd);
  if (!s.ok()) {
    ::unlink(tmp.c_str());
    return s;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status r = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return r;
  }
  const size_t slash = path.find_last_of('/');
  return SyncDir(slash == std::string::npos ? "." : path.substr(0, slash));
}

Status ListDir(const std::string& dir, std::vector<std::string>* names) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Errno("opendir", dir);
  names->clear();
  for (;;) {
    errno = 0;
    struct dirent* entry = ::readdir(d);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(d);
      if (err != 0) return Errno("readdir", dir);
      return Status::OK();
    }
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names->push_back(name);
  }
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return Status::OK();
    return Errno("lstat", path);
  }
  if (!S_ISDIR(st.st_mode)) return RemoveFile(path);
  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(ListDir(path, &names));
  for (const std::string& name : names) {
    ANKER_RETURN_IF_ERROR(RemoveDirRecursive(path + "/" + name));
  }
  if (::rmdir(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("rmdir", path);
  }
  return Status::OK();
}

}  // namespace anker::wal
