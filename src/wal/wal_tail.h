#ifndef ANKER_WAL_WAL_TAIL_H_
#define ANKER_WAL_WAL_TAIL_H_

// Incremental WAL tail reader: the primary-side half of WAL shipping.
// A WalTailer follows the live log directory that a LogWriter is
// appending to, delivering raw record payloads (with their LSNs) in log
// order — including across segment rotations — without any coordination
// with the writer beyond two published watermarks:
//
//  - durable_lsn: records are only delivered once durable (the writer
//    publishes durable_lsn_ after the bytes hit the disk, so a record at
//    or below it is fully written and CRC-valid by the time the tailer
//    can observe the watermark). Shipping only durable records is what
//    keeps a restarted primary from ever being *behind* its replicas.
//  - retain_lsn (LogWriter::SetRetainLsn): checkpoint truncation keeps
//    every segment a registered tail still needs. A tailer that finds its
//    resume point truncated anyway (replica offline across checkpoints)
//    reports OutOfRange — the subscriber must re-bootstrap from a
//    checkpoint, not limp on with a hole.
//
// Thread model: one WalTailer per subscriber, driven from that
// subscriber's streaming thread. It holds one open fd and never writes.

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "wal/wal_format.h"

namespace anker::wal {

/// One shipped record: the frame's LSN plus the raw payload bytes
/// (re-framed by the replica's own LogWriter on arrival).
struct TailRecord {
  uint64_t lsn = 0;
  std::string payload;
};

class WalTailer {
 public:
  explicit WalTailer(std::string wal_dir);
  ~WalTailer();
  ANKER_DISALLOW_COPY_AND_MOVE(WalTailer);

  /// Positions the tail so the next delivered record is the first one
  /// with lsn >= start_lsn. `durable_next_lsn` is one past the owning
  /// LogWriter's durable watermark (durable_lsn() + 1) — the durable
  /// prefix is exactly what is on disk, which is what tells "nothing to
  /// ship yet" apart from "the records you need were truncated":
  ///  - start_lsn beyond every durable record and == durable_next_lsn:
  ///    positioned at the live end, OK (appended-but-unflushed records
  ///    surface on later Polls);
  ///  - start_lsn below the oldest record still on disk: OutOfRange (the
  ///    caller must re-bootstrap from a checkpoint);
  ///  - start_lsn above durable_next_lsn: OutOfRange (the follower
  ///    claims records this log never made durable — divergence, e.g.
  ///    after a promotion elsewhere; only durable records are ever
  ///    shipped, so an honest follower can never be here. Resyncing from
  ///    a checkpoint is the only safe answer).
  Status Seek(uint64_t start_lsn, uint64_t durable_next_lsn);

  /// Reads forward from the current position, appending up to
  /// `max_bytes` worth of records with lsn <= durable_limit to `out`.
  /// Returns OK with zero appended records when fully caught up (live
  /// tail). Handles segment rotation transparently. IoError means the
  /// durable prefix failed its own checksums — real corruption, not a
  /// race; OutOfRange means a needed segment vanished (see retain_lsn
  /// above).
  Status Poll(uint64_t durable_limit, size_t max_bytes,
              std::vector<TailRecord>* out);

  /// LSN of the next record this tail expects to deliver.
  uint64_t next_lsn() const { return next_lsn_; }

 private:
  /// Lists wal-*.log segments as sorted (seq, path) pairs.
  Status ListSegments(std::vector<std::pair<uint64_t, std::string>>* out);
  /// Opens segment `seq` and validates its header; positions after it.
  Status OpenSegmentFile(uint64_t seq, const std::string& path);
  void CloseFile();
  /// Reads one frame at offset_. Outcomes:
  ///  kOk      — *record filled, offset_ advanced;
  ///  kAtEnd   — clean end of written bytes (maybe rotation, maybe live);
  ///  kBeyond  — next record's lsn exceeds `durable_limit` (stop here).
  enum class FrameRead { kOk, kAtEnd, kBeyond };
  Status ReadFrame(uint64_t durable_limit, TailRecord* record,
                   FrameRead* outcome);

  const std::string wal_dir_;
  int fd_ = -1;
  uint64_t seq_ = 0;        ///< Segment currently open (0 = none).
  uint64_t offset_ = 0;     ///< Next unread byte in that segment.
  uint64_t next_lsn_ = 1;   ///< Next LSN to deliver (skip filter).
};

}  // namespace anker::wal

#endif  // ANKER_WAL_WAL_TAIL_H_
