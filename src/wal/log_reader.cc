#include "wal/log_reader.h"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "wal/crc32c.h"
#include "wal/io_util.h"

namespace anker::wal {

namespace {

bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  unsigned long long parsed = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log%n", &parsed, &consumed) != 1 ||
      consumed != static_cast<int>(name.size())) {
    return false;
  }
  *seq = parsed;
  return true;
}

/// Parses one segment image. Valid records are appended to `records`
/// (paired with their LSN); `*valid_bytes` receives the length of the
/// trustworthy prefix. LSNs must be strictly increasing — `*prev_lsn`
/// carries the last accepted LSN across segments, and a regression is
/// treated like any other corruption at that point. Returns true iff the
/// whole file parsed cleanly (header and every frame).
bool ParseSegment(const std::string& data, uint64_t expected_seq,
                  uint64_t* prev_lsn,
                  std::vector<std::pair<uint64_t, WalRecord>>* records,
                  size_t* valid_bytes) {
  *valid_bytes = 0;
  std::string_view in(data);
  uint64_t magic = 0;
  uint32_t version = 0, pad = 0;
  uint64_t seq = 0;
  if (!GetU64(&in, &magic) || !GetU32(&in, &version) || !GetU32(&in, &pad) ||
      !GetU64(&in, &seq) || magic != kSegmentMagic ||
      version != kWalFormatVersion || seq != expected_seq) {
    return false;
  }
  *valid_bytes = kSegmentHeaderBytes;
  for (;;) {
    if (in.empty()) return true;  // Clean end at a record boundary.
    std::string_view frame = in;
    uint32_t len = 0, masked_crc = 0;
    uint64_t lsn = 0;
    if (!GetU32(&frame, &len) || !GetU32(&frame, &masked_crc) ||
        !GetU64(&frame, &lsn)) {
      return false;
    }
    if (len > kMaxRecordBytes || frame.size() < len) return false;
    // The CRC covers the LSN and the payload (everything after the CRC
    // word itself).
    const char* crc_begin = in.data() + 8;
    if (Crc32c(0, crc_begin, 8 + len) != UnmaskCrc(masked_crc)) {
      return false;
    }
    if (lsn <= *prev_lsn) return false;
    WalRecord record;
    if (!DecodeRecord(frame.substr(0, len), &record).ok()) return false;
    *prev_lsn = lsn;
    records->emplace_back(lsn, std::move(record));
    in.remove_prefix(kRecordFrameBytes + len);
    *valid_bytes += kRecordFrameBytes + len;
  }
}

Status TruncateFile(const std::string& path, size_t bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(bytes)) != 0) {
    return Status::IoError("cannot truncate torn WAL tail of " + path);
  }
  return Status::OK();
}

}  // namespace

Result<LogScanResult> LogReader::Scan(const std::string& wal_dir,
                                      const RecordFn& fn, bool repair) {
  LogScanResult result;
  if (!PathExists(wal_dir)) return result;

  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(ListDir(wal_dir, &names));
  std::vector<std::pair<uint64_t, std::string>> segments;
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) {
      segments.emplace_back(seq, wal_dir + "/" + name);
    }
  }
  std::sort(segments.begin(), segments.end());
  if (segments.empty()) return result;
  result.next_segment_seq = segments.back().first + 1;

  uint64_t prev_lsn = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    const bool is_last = (i + 1 == segments.size());
    std::string data;
    ANKER_RETURN_IF_ERROR(ReadFile(segments[i].second, &data));

    std::vector<std::pair<uint64_t, WalRecord>> records;
    size_t valid_bytes = 0;
    const bool clean = ParseSegment(data, segments[i].first, &prev_lsn,
                                    &records, &valid_bytes);
    if (!clean && !is_last) {
      char msg[256];
      std::snprintf(msg, sizeof(msg),
                    "WAL segment %" PRIu64
                    " is corrupt at byte %zu but newer segments exist; "
                    "refusing to recover past a mid-log hole",
                    segments[i].first, valid_bytes);
      return Status::IoError(msg);
    }

    PriorSegment prior;
    prior.seq = segments[i].first;
    prior.path = segments[i].second;
    prior.has_records = !records.empty();
    for (const auto& [lsn, record] : records) {
      if (record.type == RecordType::kCommit) {
        result.max_commit_ts = std::max(result.max_commit_ts,
                                        record.commit_ts);
        prior.max_commit_ts = std::max(prior.max_commit_ts,
                                       record.commit_ts);
      }
      result.max_lsn = std::max(result.max_lsn, lsn);
      prior.max_lsn = std::max(prior.max_lsn, lsn);
      ANKER_RETURN_IF_ERROR(fn(lsn, record));
      ++result.records_read;
    }
    ++result.segments_read;

    bool file_removed = false;
    if (!clean) {
      result.torn_tail = true;
      if (repair) {
        if (valid_bytes < kSegmentHeaderBytes) {
          // Not even the header survived: drop the file entirely so the
          // next scan does not trip over a headerless segment.
          ANKER_RETURN_IF_ERROR(RemoveFile(segments[i].second));
          file_removed = true;
        } else {
          ANKER_RETURN_IF_ERROR(
              TruncateFile(segments[i].second, valid_bytes));
        }
        ANKER_RETURN_IF_ERROR(SyncDir(wal_dir));
      }
    }
    if (!file_removed) result.segments.push_back(std::move(prior));
  }
  return result;
}

}  // namespace anker::wal
