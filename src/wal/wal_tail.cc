#include "wal/wal_tail.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "wal/crc32c.h"
#include "wal/io_util.h"

namespace anker::wal {

namespace {

bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  unsigned long long parsed = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "wal-%llu.log%n", &parsed, &consumed) != 1 ||
      consumed != static_cast<int>(name.size())) {
    return false;
  }
  *seq = parsed;
  return true;
}

/// pread that retries EINTR; returns bytes read (short at EOF) or -1.
ssize_t PreadFully(int fd, void* buf, size_t len, uint64_t offset) {
  size_t done = 0;
  char* p = static_cast<char*>(buf);
  while (done < len) {
    const ssize_t n =
        ::pread(fd, p + done, len - done, static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) break;
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

WalTailer::WalTailer(std::string wal_dir) : wal_dir_(std::move(wal_dir)) {}

WalTailer::~WalTailer() { CloseFile(); }

void WalTailer::CloseFile() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalTailer::ListSegments(
    std::vector<std::pair<uint64_t, std::string>>* out) {
  out->clear();
  if (!PathExists(wal_dir_)) return Status::OK();
  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(ListDir(wal_dir_, &names));
  for (const std::string& name : names) {
    uint64_t seq = 0;
    if (ParseSegmentName(name, &seq)) {
      out->emplace_back(seq, wal_dir_ + "/" + name);
    }
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

Status WalTailer::OpenSegmentFile(uint64_t seq, const std::string& path) {
  CloseFile();
  fd_ = ::open(path.c_str(), O_RDONLY);
  if (fd_ < 0) {
    // The segment the tail needs is gone: truncated away while this
    // follower was behind. Only a checkpoint re-bootstrap can close the
    // hole.
    return Status::OutOfRange("WAL tail segment truncated: " + path);
  }
  char header[kSegmentHeaderBytes];
  const ssize_t n = PreadFully(fd_, header, sizeof(header), 0);
  if (n != static_cast<ssize_t>(sizeof(header)) ||
      LoadU64(header) != kSegmentMagic ||
      LoadU32(header + 8) != kWalFormatVersion ||
      LoadU64(header + 16) != seq) {
    CloseFile();
    return Status::IoError("WAL tail: bad segment header in " + path);
  }
  seq_ = seq;
  offset_ = kSegmentHeaderBytes;
  return Status::OK();
}

Status WalTailer::ReadFrame(uint64_t durable_limit, TailRecord* record,
                            FrameRead* outcome) {
  char head[kRecordFrameBytes];
  const ssize_t n = PreadFully(fd_, head, sizeof(head), offset_);
  if (n < 0) return Status::IoError("WAL tail: pread failed");
  if (n < static_cast<ssize_t>(sizeof(head))) {
    // End of the written bytes. A live writer only appends whole frames
    // per batch, but a reader can observe a batch mid-write; either way
    // there is nothing deliverable here yet.
    *outcome = FrameRead::kAtEnd;
    return Status::OK();
  }
  const uint32_t len = LoadU32(head);
  const uint32_t masked_crc = LoadU32(head + 4);
  const uint64_t lsn = LoadU64(head + 8);
  if (lsn > durable_limit) {
    // Written (or mid-write garbage) but not yet durable: never ship it.
    *outcome = FrameRead::kBeyond;
    return Status::OK();
  }
  if (len > kMaxRecordBytes) {
    return Status::IoError("WAL tail: implausible record length");
  }
  // CRC covers the LSN word + payload; rebuild the covered bytes.
  std::string covered;
  covered.reserve(8 + len);
  covered.append(head + 8, 8);
  covered.resize(8 + len);
  const ssize_t body = PreadFully(fd_, covered.data() + 8, len,
                                  offset_ + kRecordFrameBytes);
  if (body < 0) return Status::IoError("WAL tail: pread failed");
  if (body < static_cast<ssize_t>(len)) {
    // A durable record is never torn; a partially visible one belongs to
    // an in-flight batch whose durable_lsn has not been published — but
    // we already checked lsn <= durable_limit above, so the only benign
    // explanation is a garbage LSN in mid-write bytes. Wait it out.
    *outcome = FrameRead::kAtEnd;
    return Status::OK();
  }
  if (Crc32c(0, covered.data(), covered.size()) != UnmaskCrc(masked_crc)) {
    if (lsn == next_lsn_) {
      // The durable record this tail is due to deliver fails its own
      // checksum: real corruption on the primary's disk.
      return Status::IoError("WAL tail: checksum mismatch at durable LSN " +
                             std::to_string(lsn));
    }
    // Garbage bytes beyond the durable prefix that happened to parse as
    // a plausible header. Not deliverable, not (yet) an error.
    *outcome = FrameRead::kAtEnd;
    return Status::OK();
  }
  record->lsn = lsn;
  record->payload = covered.substr(8);
  offset_ += kRecordFrameBytes + len;
  *outcome = FrameRead::kOk;
  return Status::OK();
}

Status WalTailer::Seek(uint64_t start_lsn, uint64_t durable_next_lsn) {
  ANKER_CHECK(start_lsn >= 1);
  if (start_lsn > durable_next_lsn) {
    return Status::OutOfRange(
        "follower is ahead of this log (divergent history)");
  }
  next_lsn_ = start_lsn;

  std::vector<std::pair<uint64_t, std::string>> segments;
  ANKER_RETURN_IF_ERROR(ListSegments(&segments));
  if (segments.empty()) {
    // No segments yet (writer racing its first OpenSegment); Poll will
    // discover them.
    CloseFile();
    seq_ = 0;
    offset_ = 0;
    if (start_lsn != durable_next_lsn) {
      return Status::OutOfRange("WAL history truncated before requested LSN");
    }
    return Status::OK();
  }

  // Pick the newest segment whose first record is at or below start_lsn.
  // Segments hold contiguous LSN ranges, so that segment (if any)
  // contains the resume point.
  ssize_t target = -1;
  uint64_t oldest_first = 0;  // Oldest record LSN on disk (0 = none).
  for (size_t i = 0; i < segments.size(); ++i) {
    ANKER_RETURN_IF_ERROR(
        OpenSegmentFile(segments[i].first, segments[i].second));
    char head[kRecordFrameBytes];
    const ssize_t n = PreadFully(fd_, head, sizeof(head), offset_);
    if (n < static_cast<ssize_t>(sizeof(head))) continue;  // No records.
    const uint64_t first_lsn = LoadU64(head + 8);
    if (oldest_first == 0) oldest_first = first_lsn;
    if (first_lsn <= start_lsn) target = static_cast<ssize_t>(i);
  }

  if (target < 0) {
    if (oldest_first != 0) {
      CloseFile();
      return Status::OutOfRange("WAL history truncated before requested LSN");
    }
    // No records anywhere: valid only when the caller resumes exactly at
    // the durable end (anything older was truncated away — the durable
    // prefix always lives on disk).
    if (start_lsn != durable_next_lsn) {
      CloseFile();
      return Status::OutOfRange("WAL history truncated before requested LSN");
    }
    return OpenSegmentFile(segments.back().first, segments.back().second);
  }

  ANKER_RETURN_IF_ERROR(OpenSegmentFile(segments[static_cast<size_t>(target)].first,
                                        segments[static_cast<size_t>(target)].second));
  // Walk frames until the resume point; Poll's lsn < next_lsn_ skip
  // handles anything this coarse walk leaves behind.
  for (;;) {
    char head[kRecordFrameBytes];
    const ssize_t n = PreadFully(fd_, head, sizeof(head), offset_);
    if (n < static_cast<ssize_t>(sizeof(head))) break;  // Tail of segment.
    const uint32_t len = LoadU32(head);
    const uint64_t lsn = LoadU64(head + 8);
    if (len > kMaxRecordBytes) break;  // Mid-write garbage; stop here.
    if (lsn >= start_lsn) break;
    offset_ += kRecordFrameBytes + len;
  }
  return Status::OK();
}

Status WalTailer::Poll(uint64_t durable_limit, size_t max_bytes,
                       std::vector<TailRecord>* out) {
  if (fd_ < 0) {
    std::vector<std::pair<uint64_t, std::string>> segments;
    ANKER_RETURN_IF_ERROR(ListSegments(&segments));
    if (segments.empty()) return Status::OK();
    ANKER_RETURN_IF_ERROR(
        OpenSegmentFile(segments.front().first, segments.front().second));
  }
  size_t bytes = 0;
  while (bytes < max_bytes) {
    TailRecord record;
    FrameRead outcome = FrameRead::kAtEnd;
    ANKER_RETURN_IF_ERROR(ReadFrame(durable_limit, &record, &outcome));
    if (outcome == FrameRead::kBeyond) return Status::OK();
    if (outcome == FrameRead::kAtEnd) {
      // Maybe the writer rotated: the successor segment only exists once
      // this one was closed at a record boundary.
      std::vector<std::pair<uint64_t, std::string>> segments;
      ANKER_RETURN_IF_ERROR(ListSegments(&segments));
      const uint64_t next_seq = seq_ + 1;
      bool advanced = false;
      for (const auto& [seq, path] : segments) {
        if (seq == next_seq) {
          ANKER_RETURN_IF_ERROR(OpenSegmentFile(seq, path));
          advanced = true;
          break;
        }
      }
      if (!advanced) return Status::OK();  // Live tail; nothing more yet.
      continue;
    }
    if (record.lsn < next_lsn_) continue;  // Already delivered; skip.
    if (record.lsn != next_lsn_) {
      return Status::IoError("WAL tail: LSN discontinuity (have " +
                             std::to_string(next_lsn_) + ", found " +
                             std::to_string(record.lsn) + ")");
    }
    bytes += record.payload.size() + kRecordFrameBytes;
    next_lsn_ = record.lsn + 1;
    out->push_back(std::move(record));
  }
  return Status::OK();
}

}  // namespace anker::wal
