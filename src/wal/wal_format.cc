#include "wal/wal_format.h"

#include <cstring>

namespace anker::wal {

const char* DurabilityModeName(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kLazy:
      return "lazy";
    case DurabilityMode::kGroupCommit:
      return "group_commit";
  }
  return "unknown";
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool GetU8(std::string_view* in, uint8_t* v) {
  if (in->size() < 1) return false;
  *v = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  return true;
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return false;
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  }
  *v = r;
  in->remove_prefix(4);
  return true;
}

bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < 8) return false;
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<uint8_t>((*in)[i])) << (8 * i);
  }
  *v = r;
  in->remove_prefix(8);
  return true;
}

bool GetString(std::string_view* in, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(in, &len)) return false;
  if (in->size() < len) return false;
  s->assign(in->data(), len);
  in->remove_prefix(len);
  return true;
}

void EncodeCommit(mvcc::Timestamp commit_ts,
                  const std::vector<RedoWrite>& writes, std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kCommit));
  PutU64(out, commit_ts);
  PutU32(out, static_cast<uint32_t>(writes.size()));
  for (const RedoWrite& w : writes) {
    PutU32(out, w.table_id);
    PutU32(out, w.column_id);
    PutU64(out, w.row);
    PutU64(out, w.value);
  }
}

void EncodeCreateTable(uint32_t table_id, const std::string& name,
                       uint64_t num_rows,
                       const std::vector<storage::ColumnDef>& schema,
                       std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kCreateTable));
  PutU32(out, table_id);
  PutString(out, name);
  PutU64(out, num_rows);
  PutU32(out, static_cast<uint32_t>(schema.size()));
  for (const storage::ColumnDef& def : schema) {
    PutString(out, def.name);
    PutU8(out, static_cast<uint8_t>(def.type));
  }
}

namespace {

void PutRedoWrites(const std::vector<RedoWrite>& writes, std::string* out) {
  PutU32(out, static_cast<uint32_t>(writes.size()));
  for (const RedoWrite& w : writes) {
    PutU32(out, w.table_id);
    PutU32(out, w.column_id);
    PutU64(out, w.row);
    PutU64(out, w.value);
  }
}

/// Decodes a count-prefixed redo write-set that must consume the REST of
/// the payload exactly (every record type stores its write-set last).
bool GetRedoWritesDrained(std::string_view* payload,
                          std::vector<RedoWrite>* writes) {
  uint32_t n = 0;
  if (!GetU32(payload, &n)) return false;
  // The count must be consistent with the bytes that actually follow
  // (24 per write) before it sizes an allocation — a corrupt count
  // that slips past the CRC must fail as IoError, not as bad_alloc.
  if (static_cast<size_t>(n) * 24 != payload->size()) return false;
  writes->clear();
  writes->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    RedoWrite w;
    if (!GetU32(payload, &w.table_id) || !GetU32(payload, &w.column_id) ||
        !GetU64(payload, &w.row) || !GetU64(payload, &w.value)) {
      return false;
    }
    writes->push_back(w);
  }
  return true;
}

}  // namespace

void EncodePrepare(uint64_t gtid, uint32_t primary_shard,
                   mvcc::Timestamp start_ts, mvcc::Timestamp prepare_ts,
                   const std::vector<RedoWrite>& writes, std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kPrepare));
  PutU64(out, gtid);
  PutU32(out, primary_shard);
  PutU64(out, start_ts);
  PutU64(out, prepare_ts);
  PutRedoWrites(writes, out);
}

void EncodeCommitPrepared(uint64_t gtid, mvcc::Timestamp commit_ts,
                          mvcc::Timestamp apply_ts,
                          const std::vector<RedoWrite>& writes,
                          std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kCommitPrepared));
  PutU64(out, gtid);
  PutU64(out, commit_ts);
  PutU64(out, apply_ts);
  PutRedoWrites(writes, out);
}

void EncodeAbortPrepared(uint64_t gtid, mvcc::Timestamp abort_ts,
                         std::string* out) {
  PutU8(out, static_cast<uint8_t>(RecordType::kAbortPrepared));
  PutU64(out, gtid);
  PutU64(out, abort_ts);
}

Status DecodeRecord(std::string_view payload, WalRecord* record) {
  const Status malformed = Status::IoError("malformed WAL record payload");
  uint8_t type = 0;
  if (!GetU8(&payload, &type)) return malformed;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kCommit: {
      record->type = RecordType::kCommit;
      if (!GetU64(&payload, &record->commit_ts)) return malformed;
      if (!GetRedoWritesDrained(&payload, &record->writes)) return malformed;
      break;
    }
    case RecordType::kPrepare: {
      record->type = RecordType::kPrepare;
      if (!GetU64(&payload, &record->gtid) ||
          !GetU32(&payload, &record->primary_shard) ||
          !GetU64(&payload, &record->start_ts) ||
          !GetU64(&payload, &record->prepare_ts)) {
        return malformed;
      }
      if (!GetRedoWritesDrained(&payload, &record->writes)) return malformed;
      break;
    }
    case RecordType::kCommitPrepared: {
      record->type = RecordType::kCommitPrepared;
      if (!GetU64(&payload, &record->gtid) ||
          !GetU64(&payload, &record->commit_ts) ||
          !GetU64(&payload, &record->apply_ts)) {
        return malformed;
      }
      if (!GetRedoWritesDrained(&payload, &record->writes)) return malformed;
      break;
    }
    case RecordType::kAbortPrepared: {
      record->type = RecordType::kAbortPrepared;
      if (!GetU64(&payload, &record->gtid) ||
          !GetU64(&payload, &record->apply_ts)) {
        return malformed;
      }
      break;
    }
    case RecordType::kCreateTable: {
      record->type = RecordType::kCreateTable;
      uint32_t ncols = 0;
      if (!GetU32(&payload, &record->table_id) ||
          !GetString(&payload, &record->table_name) ||
          !GetU64(&payload, &record->num_rows) || !GetU32(&payload, &ncols)) {
        return malformed;
      }
      // Each column entry is at least 5 bytes (length-prefixed name +
      // type); bound the count before it sizes an allocation.
      if (static_cast<size_t>(ncols) * 5 > payload.size()) return malformed;
      record->schema.clear();
      record->schema.reserve(ncols);
      for (uint32_t i = 0; i < ncols; ++i) {
        storage::ColumnDef def;
        uint8_t vt = 0;
        if (!GetString(&payload, &def.name) || !GetU8(&payload, &vt)) {
          return malformed;
        }
        def.type = static_cast<storage::ValueType>(vt);
        record->schema.push_back(std::move(def));
      }
      break;
    }
    default:
      return Status::IoError("unknown WAL record type " +
                             std::to_string(type));
  }
  if (!payload.empty()) return malformed;  // Trailing bytes: not our record.
  return Status::OK();
}

}  // namespace anker::wal
