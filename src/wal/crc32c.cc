#include "wal/crc32c.h"

#include <array>

namespace anker::wal {

namespace {

/// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  // table[k][b]: CRC contribution of byte b seen k positions before the
  // end of an 8-byte group (slicing-by-8).
  std::array<std::array<uint32_t, 256>, 8> t;

  Tables() {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = b;
      for (int i = 0; i < 8; ++i) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (size_t k = 1; k < 8; ++k) {
      for (uint32_t b = 0; b < 256; ++b) {
        const uint32_t prev = t[k - 1][b];
        t[k][b] = (prev >> 8) ^ t[0][prev & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;
  return kTables;
}

}  // namespace

uint32_t Crc32c(uint32_t seed, const void* data, size_t len) {
  const Tables& tb = tables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;

  // Byte-at-a-time until 8-byte alignment.
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --len;
  }

  // Slicing-by-8 over the aligned middle.
  while (len >= 8) {
    uint64_t word;
    __builtin_memcpy(&word, p, 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    word = __builtin_bswap64(word);
#endif
    word ^= crc;
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    p += 8;
    len -= 8;
  }

  while (len > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
    --len;
  }
  return ~crc;
}

}  // namespace anker::wal
