#ifndef ANKER_WAL_CHECKPOINT_H_
#define ANKER_WAL_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/intent_table.h"
#include "mvcc/timestamp_oracle.h"
#include "storage/column.h"
#include "storage/extent.h"
#include "storage/hash_index.h"
#include "storage/segment_storage.h"
#include "storage/table.h"
#include "wal/wal_format.h"

namespace anker::wal {

/// Everything recovery needs to rebuild one table before replay: schema,
/// dictionary contents and primary-index shape. Column *data* lives in
/// per-column files next to the manifest.
struct CheckpointTableMeta {
  std::string name;
  uint64_t num_rows = 0;
  std::vector<storage::ColumnDef> schema;
  /// (column name, dictionary entries in code order), sorted by column
  /// name so manifests are byte-deterministic.
  std::vector<std::pair<std::string, std::vector<std::string>>> dictionaries;
  bool has_primary_index = false;
  uint64_t index_entries = 0;
};

/// A prepared-but-undecided cross-shard transaction captured by a
/// checkpoint: column data never holds intents (they are invisible by
/// construction), so the manifest must carry them or a restart would
/// silently drop the locks — and with them atomicity.
struct CheckpointPreparedTxn {
  uint64_t gtid = 0;
  uint32_t primary_shard = 0;
  mvcc::Timestamp start_ts = 0;
  mvcc::Timestamp prepare_ts = 0;
  std::vector<RedoWrite> writes;
};

/// One decided entry of the intent table's outcome ledger (FIFO order is
/// preserved so a restore rebuilds the same eviction sequence).
struct CheckpointTxnOutcome {
  uint64_t gtid = 0;
  uint8_t outcome = 0;  ///< mvcc::TxnOutcome.
  mvcc::Timestamp commit_ts = 0;
};

/// Manifest of one checkpoint. `checkpoint_ts` is the snapshot timestamp
/// the column images are consistent at; recovery replays exactly the WAL
/// records with commit_ts > checkpoint_ts on top. Tables appear in
/// table-id order — ids are implicit positions, which is what keeps WAL
/// ColumnRefs stable across restarts.
struct CheckpointManifest {
  mvcc::Timestamp checkpoint_ts = 0;
  uint64_t commit_count = 0;
  uint64_t next_txn_id = 1;
  /// Highest WAL LSN guaranteed covered by this image: every record with
  /// lsn <= wal_lsn is either a commit at or below checkpoint_ts or a
  /// schema record for a table in `tables`. A replica bootstrapping from
  /// this checkpoint resumes the log stream at wal_lsn + 1; recovery
  /// also uses it to keep LSNs monotonic when the whole log was
  /// truncated away.
  uint64_t wal_lsn = 0;
  std::vector<CheckpointTableMeta> tables;
  /// 2PC state (appended after the tables section; absent in pre-2PC
  /// manifests, which decode with both vectors empty).
  std::vector<CheckpointPreparedTxn> prepared;
  std::vector<CheckpointTxnOutcome> outcomes;
  /// Cold-tier section (v3; v2 manifests decode with the defaults below).
  /// Extent-id allocator watermark — recovery seeds the store past it so a
  /// restart never reuses an id a stale reference could still name.
  uint64_t next_extent_id = 1;
  /// Every extent id some column file of this checkpoint references.
  /// Doubles as the prune keep-set: an extent outside this list (and not
  /// live in a tiered column) is garbage after the checkpoint flips.
  std::vector<uint64_t> extents;
};

/// Streams one checkpoint into `<data_dir>/ckpt-<ts>.tmp/`, then publishes
/// it atomically: fsync every file, rename the directory to its final
/// name, flip `<data_dir>/CURRENT` (write-temp + rename + dir fsync) and
/// prune older checkpoints. A crash at any point leaves either the old
/// checkpoint current or the new one — never a half-written mix, because
/// nothing references the new directory until CURRENT points at it.
class CheckpointWriter {
 public:
  explicit CheckpointWriter(std::string data_dir);
  ANKER_DISALLOW_COPY_AND_MOVE(CheckpointWriter);

  Status Begin(mvcc::Timestamp checkpoint_ts);

  /// Column data from a contiguous snapshot image (clean snapshot: the
  /// buffer view itself is the consistent state — zero-copy stream).
  Status WriteColumnRaw(uint32_t table_id, uint32_t column_id,
                        const uint64_t* data, size_t num_rows);

  /// Column data resolved row by row (versioned snapshot columns, or live
  /// reads under the homogeneous modes).
  Status WriteColumnResolved(uint32_t table_id, uint32_t column_id,
                             size_t num_rows,
                             const std::function<uint64_t(size_t)>& read);

  /// Incremental column image: instead of the slot bytes, the file holds
  /// references to published extents — one per segment, contiguous from
  /// row 0. Unchanged segments reuse the extent already on disk, so the
  /// checkpoint's data volume is O(changed segments), not O(table).
  Status WriteColumnExtents(
      uint32_t table_id, uint32_t column_id,
      const std::vector<storage::SegmentExtentRef>& refs);

  Status WriteIndex(uint32_t table_id, const storage::HashIndex& index);

  /// Writes the manifest and publishes the checkpoint.
  Status Finish(const CheckpointManifest& manifest);

  /// Removes the temp directory after a failure (best effort).
  void Abort();

  /// Final directory name, e.g. "ckpt-41".
  const std::string& dir_name() const { return dir_name_; }

 private:
  Status WriteBlob(const std::string& path, uint32_t magic,
                   const std::function<Status(int fd, uint32_t* crc)>& body,
                   uint64_t item_count);

  const std::string data_dir_;
  std::string dir_name_;
  std::string tmp_path_;
  bool begun_ = false;
};

/// Reads a checkpoint back. The manifest is trusted only after its CRC
/// checks out; every column/index file carries its own checksum, verified
/// while loading.
class CheckpointReader {
 public:
  /// NotFound when `data_dir` has no CURRENT pointer (fresh directory).
  static Result<CheckpointManifest> ReadManifest(const std::string& data_dir,
                                                 std::string* ckpt_path);

  /// Loads column data into `column` via its load path (timestamp-0
  /// values; version chains start empty after recovery). A plain (ACL1)
  /// file is copied slot by slot; an extent-ref (ACL2) file resolves each
  /// reference through `extents` (required then — an extent-backed column
  /// with a null store is a recovery error). When `refs_out` is non-null
  /// it receives the resolved references (empty for plain files) so the
  /// caller can re-seed segment residency bookkeeping.
  static Status LoadColumn(const std::string& ckpt_path, uint32_t table_id,
                           uint32_t column_id, storage::Column* column,
                           storage::ExtentStore* extents = nullptr,
                           std::vector<storage::SegmentExtentRef>* refs_out =
                               nullptr);

  static Status LoadIndex(const std::string& ckpt_path, uint32_t table_id,
                          uint64_t expected_entries,
                          storage::HashIndex* index);
};

}  // namespace anker::wal

#endif  // ANKER_WAL_CHECKPOINT_H_
