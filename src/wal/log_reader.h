#ifndef ANKER_WAL_LOG_READER_H_
#define ANKER_WAL_LOG_READER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "wal/wal_format.h"

namespace anker::wal {

/// One scanned segment, as the log writer needs it to take ownership of
/// pre-existing files: without this hand-off, checkpoint truncation (which
/// walks the writer's closed-segment list) would never delete segments
/// written before a recovery, and the log would grow across restarts.
struct PriorSegment {
  uint64_t seq = 0;
  std::string path;
  /// Newest commit timestamp among the segment's records (0 when it only
  /// carries schema records — always safely covered by the next
  /// checkpoint, which snapshots every recovered table).
  mvcc::Timestamp max_commit_ts = 0;
  /// Newest LSN in the segment (0 when empty). Checkpoint truncation may
  /// only delete a segment once every LSN in it is at or below the
  /// replication retention floor (LogWriter::SetRetainLsn).
  uint64_t max_lsn = 0;
  bool has_records = false;
};

/// Outcome of a full log scan.
struct LogScanResult {
  uint64_t segments_read = 0;
  uint64_t records_read = 0;
  /// True when the newest segment ended in a torn or corrupt record (the
  /// expected shape after a crash mid-append). The valid prefix before the
  /// tear was delivered; everything after it is gone by design.
  bool torn_tail = false;
  /// Sequence number the log writer should continue with.
  uint64_t next_segment_seq = 1;
  /// Newest commit timestamp seen across all delivered records.
  mvcc::Timestamp max_commit_ts = 0;
  /// Newest LSN seen across all delivered records (0 for an empty log).
  /// The writer resumes at max_lsn + 1 so LSNs never repeat.
  uint64_t max_lsn = 0;
  /// Surviving segment files in sequence order (post-repair).
  std::vector<PriorSegment> segments;
};

/// Reads every WAL segment in sequence order and delivers decoded records
/// in log order. Trust model:
///  - a record is delivered only if its length is plausible, its CRC32C
///    matches and its payload decodes;
///  - a bad record (or truncated frame, or half-written segment header) in
///    the NEWEST segment is a torn tail: the scan stops cleanly before it,
///    and with `repair` the tail is physically truncated so the tear can
///    never be misread as mid-log corruption by a later scan;
///  - the same condition in any OLDER segment means real corruption —
///    records that were once acknowledged would silently vanish while
///    newer segments replay — and fails the scan with IoError.
class LogReader {
 public:
  using RecordFn = std::function<Status(uint64_t lsn, const WalRecord&)>;

  /// Scans `wal_dir` (missing directory = empty log). Invokes `fn` for
  /// every valid record; a non-OK return aborts the scan with that status.
  static Result<LogScanResult> Scan(const std::string& wal_dir,
                                    const RecordFn& fn, bool repair);
};

}  // namespace anker::wal

#endif  // ANKER_WAL_LOG_READER_H_
