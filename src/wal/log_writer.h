#ifndef ANKER_WAL_LOG_WRITER_H_
#define ANKER_WAL_LOG_WRITER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "mvcc/timestamp_oracle.h"
#include "wal/log_reader.h"
#include "wal/wal_format.h"

namespace anker::wal {

struct LogWriterOptions {
  DurabilityMode mode = DurabilityMode::kGroupCommit;
  /// Segments rotate once they exceed this many bytes (record boundaries
  /// are never split across segments).
  size_t segment_bytes = 8u << 20;
  /// Background flush cadence: the only syncer under lazy durability, a
  /// mop-up for unacknowledged appends under group commit.
  int flush_interval_millis = 5;
};

/// Append-only segmented redo log with leader-based group commit.
///
/// Thread model: Append is called from the commit critical section (the
/// transaction manager serializes committers, so records land in commit-
/// timestamp order — recovery depends on that) and only frames and copies
/// the payload; even the record CRC is computed later, at flush time.
/// Durability happens in two places:
///  - WaitDurable (group commit): the first waiter whose record is not
///    yet durable elects itself *leader* via a CAS on `flushing_` — it
///    takes the whole pending buffer, checksums it, writes, rotates full
///    segments and fsyncs on the calling thread, then publishes the
///    durable LSN and wakes any sleeping followers. No handoff to another
///    thread means no context-switch round trip on the commit path;
///    commits that arrive while the leader's sync is in flight batch into
///    the next leader's flush.
///  - A background flusher wakes every flush_interval_millis and drains
///    whatever nobody is waiting on (lazy commits, schema records).
///
/// Synchronization is deliberately commit-path-friendly: the append
/// buffer is guarded by a spinlock (hold times are a few hundred
/// nanoseconds, and a futex sleep here would put the *commit mutex
/// holder* to sleep, taxing every transaction in the system); the
/// condition variable and its mutex are touched only by followers that
/// exhausted their spin budget and by the cadence flusher.
///
/// IO failures are sticky: the first failed write/fsync poisons the
/// writer and every subsequent WaitDurable/Sync returns the error instead
/// of acknowledging commits that never reached the disk.
class LogWriter {
 public:
  LogWriter(std::string wal_dir, LogWriterOptions options);
  ~LogWriter();
  ANKER_DISALLOW_COPY_AND_MOVE(LogWriter);

  /// Creates the WAL directory if needed, opens segment `first_segment_seq`
  /// for appending and starts the flusher. Recovery passes the sequence
  /// after the highest existing segment plus the surviving pre-crash
  /// segments (from the recovery scan) so checkpoint truncation owns and
  /// eventually deletes them, and `first_lsn` one past the highest LSN
  /// ever issued (scan max_lsn and checkpoint wal_lsn) so LSNs stay
  /// strictly increasing across restarts; a fresh database passes 1, 1
  /// and nothing.
  Status Open(uint64_t first_segment_seq,
              const std::vector<PriorSegment>& existing = {},
              uint64_t first_lsn = 1);

  /// Buffers one framed record; returns its LSN (strictly increasing,
  /// durable in the frame itself since WAL format v2). `max_ts` is the
  /// newest commit timestamp in the record; the writer tracks it per
  /// segment so checkpoint truncation knows which segments a checkpoint
  /// fully covers. Runs inside the commit critical section — pure memory
  /// work, no locks that sleep.
  uint64_t Append(std::string_view payload, mvcc::Timestamp max_ts);

  /// Replica-side append: buffers a record shipped from the primary under
  /// the primary's LSN, keeping the local log LSN-identical to the
  /// primary's so a replica restart resumes the stream from its own scan
  /// and promotion needs no renumbering. `lsn` must exceed every LSN
  /// appended so far (the apply loop filters duplicates); CHECK-enforced
  /// because a regression here would corrupt the log's monotonicity
  /// invariant, not just one record.
  void AppendReplicated(std::string_view payload, mvcc::Timestamp max_ts,
                        uint64_t lsn);

  /// Blocks until everything up to `lsn` is on disk: leads the flush
  /// itself when no flush is in flight, otherwise spins briefly and then
  /// sleeps. Returns OK once durable, or the sticky IO error.
  Status WaitDurable(uint64_t lsn);

  /// Flushes and fsyncs everything appended so far (blocking).
  Status Sync();

  /// Checkpoint truncation: syncs, rotates to a fresh segment, then
  /// deletes every closed segment whose newest record is covered by the
  /// checkpoint (max_ts <= ckpt_ts) AND acknowledged by every connected
  /// replica (max_lsn <= the SetRetainLsn floor).
  Status TruncateThrough(mvcc::Timestamp ckpt_ts);

  /// Replication retention floor: segments holding any record with
  /// lsn > `lsn` survive checkpoint truncation, so the slowest connected
  /// replica can always resume its tail from disk. UINT64_MAX (the
  /// default) means "no replicas — truncate freely".
  void SetRetainLsn(uint64_t lsn) {
    retain_lsn_.store(lsn, std::memory_order_release);
  }
  uint64_t retain_lsn() const {
    return retain_lsn_.load(std::memory_order_acquire);
  }

  uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }
  uint64_t appended_lsn() const;
  /// Cumulative flush+fsync count (observability: group-commit benches
  /// report commits-per-sync).
  uint64_t sync_count() const {
    return sync_count_.load(std::memory_order_relaxed);
  }
  Status io_status() const;

  /// Stops the flusher after a final flush+fsync. Idempotent; also run by
  /// the destructor.
  void Stop();

 private:
  /// Test-and-set spinlock for the append buffer. Hold times are bounded
  /// by one payload memcpy; see the class comment for why sleeping is
  /// unacceptable here.
  class SpinLock {
   public:
    void lock() {
      while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
    void unlock() { flag_.clear(std::memory_order_release); }

   private:
    std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
  };

  struct Segment {
    uint64_t seq = 0;
    std::string path;
    mvcc::Timestamp max_ts = 0;
    uint64_t max_lsn = 0;
    bool has_records = false;
  };

  /// One buffered record's bookkeeping: its end offset within pending_,
  /// its newest commit timestamp and its LSN (per-segment LSN ranges feed
  /// the replication retention floor).
  struct PendingRecord {
    size_t end = 0;
    mvcc::Timestamp max_ts = 0;
    uint64_t lsn = 0;
  };

  void FlusherLoop();

  /// Leader election + flush: CASes flushing_, drains the pending buffer,
  /// checksums, writes, fsyncs, publishes durable_lsn_ and notifies.
  /// Returns false when another leader holds the flush (caller becomes a
  /// follower), true when it led (possibly over an empty buffer).
  bool TryLeadFlush();

  /// Writes `data` into the current segment, rotating at record
  /// boundaries. Caller holds file_mutex_. `boundaries` holds the byte
  /// offsets (within `data`) where records end, with each record's
  /// max_ts and LSN.
  Status WriteAndMaybeRotate(const std::string& data,
                             const std::vector<PendingRecord>& boundaries);
  Status OpenSegment(uint64_t seq);
  Status CloseSegment();

  const std::string wal_dir_;
  const LogWriterOptions options_;

  // Append buffer (buffer_lock_).
  mutable SpinLock buffer_lock_;
  std::string pending_;
  std::vector<PendingRecord> pending_boundaries_;
  /// Drained batch buffers cycle back here so Append never reallocates
  /// once warm (an alloc inside the commit section would tax every txn).
  std::string spare_;
  std::vector<PendingRecord> spare_boundaries_;
  uint64_t next_lsn_ = 1;
  uint64_t buffered_lsn_ = 0;  ///< Last LSN sitting in pending_.

  // Lock-free state.
  std::atomic<uint64_t> durable_lsn_{0};
  std::atomic<uint64_t> retain_lsn_{UINT64_MAX};
  std::atomic<bool> flushing_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> sync_count_{0};

  // Cold path: sleeping followers + cadence flusher + sticky IO error.
  mutable std::mutex wait_mutex_;
  std::condition_variable durable_cv_;
  std::condition_variable flusher_cv_;
  Status io_status_;

  // File state (file_mutex_; serialized leaders + TruncateThrough).
  std::mutex file_mutex_;
  int fd_ = -1;
  Segment current_;
  size_t current_bytes_ = 0;
  std::vector<Segment> closed_;

  std::thread flusher_;
  bool opened_ = false;
};

}  // namespace anker::wal

#endif  // ANKER_WAL_LOG_WRITER_H_
