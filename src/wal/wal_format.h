#ifndef ANKER_WAL_WAL_FORMAT_H_
#define ANKER_WAL_WAL_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "mvcc/timestamp_oracle.h"
#include "storage/table.h"

namespace anker::wal {

/// Durability policy of a database instance (DatabaseConfig::durability).
enum class DurabilityMode {
  /// No write-ahead log. Checkpoints may still be taken explicitly, but a
  /// crash loses everything after the last one.
  kOff,
  /// Commits append redo records but return without waiting for the disk;
  /// a background flusher syncs every few milliseconds. A crash may lose
  /// the most recent acknowledged commits (bounded by the flush interval),
  /// but recovery always yields a transaction-consistent prefix.
  kLazy,
  /// Commits block until their redo record is fsynced. A dedicated flusher
  /// batches everything that arrived while the previous fsync ran into the
  /// next one (group commit), so concurrent commit streams share syncs.
  kGroupCommit,
};

const char* DurabilityModeName(DurabilityMode mode);

/// Stable identity of a column inside the WAL: tables are numbered in
/// creation order (checkpoint manifests and kCreateTable records preserve
/// that order across restarts), columns by their position in the schema.
struct ColumnRef {
  uint32_t table_id = 0;
  uint32_t column_id = 0;
};

/// One slot overwrite of a committed transaction (redo only — the paper's
/// engine never needs undo: uncommitted writes live in transaction-local
/// buffers and are discarded on abort, so the log holds committed state
/// exclusively).
struct RedoWrite {
  uint32_t table_id = 0;
  uint32_t column_id = 0;
  uint64_t row = 0;
  uint64_t value = 0;
};

enum class RecordType : uint8_t {
  kCommit = 1,       ///< Redo write-set of one committed transaction.
  kCreateTable = 2,  ///< Schema of a table created after the last checkpoint.
  /// Phase one of a cross-shard transaction: the write-set is staged as
  /// intents (locked, invisible) and must survive a crash so the router
  /// — or a later reader via RESOLVE_INTENT — can finish the job.
  kPrepare = 3,
  /// Phase two: the prepared write-set became visible. Carries the full
  /// redo write-set again so replay never depends on the matching
  /// kPrepare still being in the log (checkpoints prune aggressively).
  kCommitPrepared = 4,
  /// Phase two, abort flavor: the prepared intents were discarded.
  kAbortPrepared = 5,
};

/// Decoded WAL record (tagged by `type`; only the matching member is set).
struct WalRecord {
  RecordType type = RecordType::kCommit;

  // kCommit (and kCommitPrepared: the global commit timestamp)
  mvcc::Timestamp commit_ts = 0;
  std::vector<RedoWrite> writes;  ///< kCommit, kPrepare, kCommitPrepared.

  // kCreateTable
  uint32_t table_id = 0;
  std::string table_name;
  uint64_t num_rows = 0;
  std::vector<storage::ColumnDef> schema;

  // kPrepare / kCommitPrepared / kAbortPrepared
  uint64_t gtid = 0;           ///< Router-issued global transaction id.
  uint32_t primary_shard = 0;  ///< kPrepare: where the outcome is decided.
  mvcc::Timestamp start_ts = 0;    ///< kPrepare: local snapshot stamp.
  mvcc::Timestamp prepare_ts = 0;  ///< kPrepare: local prepare stamp.
  /// kCommitPrepared: the shard-local timestamp the writes materialized
  /// at (>= commit_ts). Replay skips on apply_ts like a normal commit.
  /// kAbortPrepared reuses this field for the local abort stamp.
  mvcc::Timestamp apply_ts = 0;
};

// --- Little-endian encode/decode primitives -------------------------------
// Shared by the log and the checkpoint manifest; appended to std::string
// buffers so one commit's serialization is a single allocation-free append
// chain once the buffer has warmed up.

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);

bool GetU8(std::string_view* in, uint8_t* v);
bool GetU32(std::string_view* in, uint32_t* v);
bool GetU64(std::string_view* in, uint64_t* v);
bool GetString(std::string_view* in, std::string* s);

// --- Record payloads ------------------------------------------------------

/// Appends the payload (no frame) of a kCommit record to `out`.
void EncodeCommit(mvcc::Timestamp commit_ts,
                  const std::vector<RedoWrite>& writes, std::string* out);

/// Appends the payload of a kCreateTable record to `out`.
void EncodeCreateTable(uint32_t table_id, const std::string& name,
                       uint64_t num_rows,
                       const std::vector<storage::ColumnDef>& schema,
                       std::string* out);

/// Appends the payload of a kPrepare record to `out`.
void EncodePrepare(uint64_t gtid, uint32_t primary_shard,
                   mvcc::Timestamp start_ts, mvcc::Timestamp prepare_ts,
                   const std::vector<RedoWrite>& writes, std::string* out);

/// Appends the payload of a kCommitPrepared record to `out`.
void EncodeCommitPrepared(uint64_t gtid, mvcc::Timestamp commit_ts,
                          mvcc::Timestamp apply_ts,
                          const std::vector<RedoWrite>& writes,
                          std::string* out);

/// Appends the payload of a kAbortPrepared record to `out`.
void EncodeAbortPrepared(uint64_t gtid, mvcc::Timestamp abort_ts,
                         std::string* out);

/// Decodes a record payload. Returns IoError on malformed input (recovery
/// treats a decode failure like a checksum failure: the log is not
/// trustworthy past this point).
Status DecodeRecord(std::string_view payload, WalRecord* record);

// --- On-disk framing constants --------------------------------------------

/// Segment file header: magic, format version, sequence number.
inline constexpr uint64_t kSegmentMagic = 0x314C4157524B4E41ULL;  // "ANKRWAL1"
/// v2: every record frame carries its LSN, making LSNs durable and
/// strictly increasing across restarts — the watermark WAL shipping
/// resumes from and commit acknowledgements hand to clients as
/// read-your-writes tokens.
inline constexpr uint32_t kWalFormatVersion = 2;
inline constexpr size_t kSegmentHeaderBytes = 8 + 4 + 4 + 8;  // magic,ver,pad,seq

/// Record frame: u32 payload length, u32 masked CRC32C(lsn + payload),
/// u64 lsn, payload. The CRC covers the LSN so a torn or bit-flipped LSN
/// can never be mistaken for a valid replication watermark.
inline constexpr size_t kRecordFrameBytes = 16;
/// Upper bound on one record's payload; anything larger in a length field
/// is treated as corruption, which keeps a torn length word from sending
/// the reader on a gigabyte-sized goose chase.
inline constexpr uint32_t kMaxRecordBytes = 1u << 26;

}  // namespace anker::wal

#endif  // ANKER_WAL_WAL_FORMAT_H_
