#ifndef ANKER_WAL_CRC32C_H_
#define ANKER_WAL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace anker::wal {

/// CRC-32C (Castagnoli) over `data[0..len)`, extending `seed` (pass 0 for
/// a fresh checksum). Used to frame every WAL record and checkpoint file:
/// recovery trusts nothing it cannot checksum. Software slicing-by-8;
/// throughput is a few GB/s, far above what the log writer ever sustains.
uint32_t Crc32c(uint32_t seed, const void* data, size_t len);

/// Masked variant stored on disk. Storing the raw CRC of a payload that
/// itself embeds CRCs (e.g. a checkpoint manifest listing column file
/// checksums) weakens the check; the rotation+offset mask (RocksDB/LevelDB
/// trick) breaks that correlation.
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8u;
}
inline uint32_t UnmaskCrc(uint32_t masked) {
  const uint32_t rot = masked - 0xa282ead8u;
  return (rot << 15) | (rot >> 17);
}

}  // namespace anker::wal

#endif  // ANKER_WAL_CRC32C_H_
