#include "wal/log_writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/fault_injector.h"
#include "wal/crc32c.h"
#include "wal/io_util.h"

namespace anker::wal {

namespace {

std::string SegmentName(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%08llu.log",
                static_cast<unsigned long long>(seq));
  return buf;
}

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

/// On a single-CPU host, spinning for the leader's fsync burns the only
/// core the leader needs, and groups can never form behind an in-flight
/// sync (nothing runs concurrently). Yielding instead lets every runnable
/// committer append its record first, so the next leader's one fsync
/// covers them all.
const bool kSingleCpu = std::thread::hardware_concurrency() <= 1;

}  // namespace

LogWriter::LogWriter(std::string wal_dir, LogWriterOptions options)
    : wal_dir_(std::move(wal_dir)), options_(options) {}

LogWriter::~LogWriter() { Stop(); }

Status LogWriter::Open(uint64_t first_segment_seq,
                       const std::vector<PriorSegment>& existing,
                       uint64_t first_lsn) {
  ANKER_CHECK(!opened_);
  ANKER_CHECK(first_lsn >= 1);
  ANKER_RETURN_IF_ERROR(EnsureDir(wal_dir_));
  {
    std::lock_guard<std::mutex> file_guard(file_mutex_);
    // Adopt surviving pre-crash segments as closed: checkpoint truncation
    // walks closed_, and without this the old files would outlive every
    // checkpoint and accumulate across restarts.
    for (const PriorSegment& prior : existing) {
      ANKER_CHECK(prior.seq < first_segment_seq);
      closed_.push_back(Segment{prior.seq, prior.path, prior.max_commit_ts,
                                prior.max_lsn, prior.has_records});
    }
    ANKER_RETURN_IF_ERROR(OpenSegment(first_segment_seq));
  }
  next_lsn_ = first_lsn;
  // Everything below first_lsn was recovered from disk, so it is durable
  // by definition. Leaving the watermarks at 0 would make a restarted
  // primary report durable_lsn=0 and refuse to ship its recovered tail
  // to replicas until the next fresh commit.
  buffered_lsn_ = first_lsn - 1;
  durable_lsn_.store(first_lsn - 1, std::memory_order_release);
  opened_ = true;
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::OK();
}

uint64_t LogWriter::Append(std::string_view payload, mvcc::Timestamp max_ts) {
  ANKER_CHECK(opened_);
  ANKER_CHECK(payload.size() <= kMaxRecordBytes);
  FaultInjector::Instance().MaybeKill("wal.append");
  buffer_lock_.lock();
  const uint64_t lsn = next_lsn_++;
  PutU32(&pending_, static_cast<uint32_t>(payload.size()));
  PutU32(&pending_, 0);  // CRC placeholder — filled in at flush time.
  PutU64(&pending_, lsn);
  pending_.append(payload.data(), payload.size());
  pending_boundaries_.push_back(PendingRecord{pending_.size(), max_ts, lsn});
  buffered_lsn_ = lsn;
  buffer_lock_.unlock();
  // No flusher wake-up: under group commit the waiter flushes itself
  // (leader), under lazy durability the background cadence handles it.
  return lsn;
}

void LogWriter::AppendReplicated(std::string_view payload,
                                 mvcc::Timestamp max_ts, uint64_t lsn) {
  ANKER_CHECK(opened_);
  ANKER_CHECK(payload.size() <= kMaxRecordBytes);
  buffer_lock_.lock();
  ANKER_CHECK_MSG(lsn >= next_lsn_, "replicated LSN would regress the log");
  next_lsn_ = lsn + 1;
  PutU32(&pending_, static_cast<uint32_t>(payload.size()));
  PutU32(&pending_, 0);  // CRC placeholder — filled in at flush time.
  PutU64(&pending_, lsn);
  pending_.append(payload.data(), payload.size());
  pending_boundaries_.push_back(PendingRecord{pending_.size(), max_ts, lsn});
  buffered_lsn_ = lsn;
  buffer_lock_.unlock();
}

bool LogWriter::TryLeadFlush() {
  bool expected = false;
  if (!flushing_.compare_exchange_strong(expected, true,
                                         std::memory_order_acquire)) {
    return false;
  }

  // Poisoned writers never flush again: a later successful batch would
  // advance durable_lsn_ past the failed batch's records, acknowledging
  // commits whose bytes form a hole in the segment. Once io_status_ is
  // set, durable_lsn_ is frozen and every waiter gets the error.
  {
    std::lock_guard<std::mutex> wait_guard(wait_mutex_);
    if (!io_status_.ok()) {
      flushing_.store(false, std::memory_order_release);
      durable_cv_.notify_all();
      return true;
    }
  }

  buffer_lock_.lock();
  std::string batch = std::move(pending_);
  std::vector<PendingRecord> boundaries = std::move(pending_boundaries_);
  pending_ = std::move(spare_);
  pending_boundaries_ = std::move(spare_boundaries_);
  pending_.clear();
  pending_boundaries_.clear();
  const uint64_t batch_lsn = buffered_lsn_;
  buffer_lock_.unlock();

  if (batch.empty()) {
    // Nothing to do: a previous leader drained the buffer (and published
    // its LSN before dropping the flag, so callers re-checking
    // durable_lsn_ make progress).
    buffer_lock_.lock();
    spare_ = std::move(batch);
    spare_boundaries_ = std::move(boundaries);
    buffer_lock_.unlock();
    flushing_.store(false, std::memory_order_release);
    return true;
  }

  // Checksum every record in the batch — off the commit path, in the
  // shadow of whatever the committers are doing next. The CRC covers the
  // LSN word and the payload (bytes 8.. of the frame).
  size_t start = 0;
  for (const PendingRecord& record : boundaries) {
    const size_t crc_off = start + 8;
    const uint32_t crc =
        MaskCrc(Crc32c(0, batch.data() + crc_off, record.end - crc_off));
    for (int i = 0; i < 4; ++i) {
      batch[start + 4 + i] = static_cast<char>(crc >> (8 * i));
    }
    start = record.end;
  }

  FaultInjector::Instance().MaybeKill("wal.flush.pre");
  Status s;
  {
    std::lock_guard<std::mutex> file_guard(file_mutex_);
    s = WriteAndMaybeRotate(batch, boundaries);
    // Group-commit segments are opened O_DSYNC: the write itself is the
    // sync, saving one syscall on every flush.
    if (s.ok() && options_.mode != DurabilityMode::kGroupCommit) {
      s = SyncFd(fd_);
    }
  }
  FaultInjector::Instance().MaybeKill("wal.flush.post");
  sync_count_.fetch_add(1, std::memory_order_relaxed);

  if (s.ok()) {
    // Leaders are serialized by flushing_, and batch LSNs are monotonic,
    // so a plain store is safe — and it must happen *before* the flag
    // drop below, or a successor leader could observe an empty buffer
    // while this batch looks non-durable.
    durable_lsn_.store(batch_lsn, std::memory_order_release);
  } else {
    std::lock_guard<std::mutex> wait_guard(wait_mutex_);
    if (io_status_.ok()) io_status_ = s;
  }

  // Return the drained buffers for reuse.
  batch.clear();
  boundaries.clear();
  buffer_lock_.lock();
  spare_ = std::move(batch);
  spare_boundaries_ = std::move(boundaries);
  buffer_lock_.unlock();

  flushing_.store(false, std::memory_order_release);
  {
    // Empty critical section: pairs with the follower's predicate check
    // under wait_mutex_, closing the missed-wakeup window.
    std::lock_guard<std::mutex> wait_guard(wait_mutex_);
  }
  durable_cv_.notify_all();
  return true;
}

Status LogWriter::WaitDurable(uint64_t lsn) {
  if (kSingleCpu) {
    // Batch formation by scheduling: give every runnable committer a
    // chance to append before anyone pays for a flush.
    std::this_thread::yield();
  }
  for (;;) {
    if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
      return Status::OK();
    }
    if (TryLeadFlush()) {
      // We led: our record is durable now — unless IO is failing, which
      // is the only way a completed flush leaves the LSN behind.
      if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
        return Status::OK();
      }
      const Status io = io_status();
      if (!io.ok()) return io;
      continue;
    }

    if (kSingleCpu) {
      // Spinning would stall the leader itself; hand it the core.
      std::this_thread::yield();
      continue;
    }
    // Follower: the leader's flush is microseconds on a fast device —
    // spin briefly before paying a sleep/wake round trip.
    for (int spin = 0; spin < 1024; ++spin) {
      if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
        return Status::OK();
      }
      CpuRelax();
    }

    std::unique_lock<std::mutex> wait_guard(wait_mutex_);
    if (!io_status_.ok()) return io_status_;
    if (durable_lsn_.load(std::memory_order_acquire) >= lsn) {
      return Status::OK();
    }
    if (flushing_.load(std::memory_order_acquire)) {
      // Timed: belt-and-braces against any wake/publish race; the
      // predicate loop above re-checks everything on wake.
      durable_cv_.wait_for(wait_guard, std::chrono::milliseconds(1));
    }
  }
}

Status LogWriter::Sync() {
  buffer_lock_.lock();
  const uint64_t target = buffered_lsn_;
  buffer_lock_.unlock();
  while (durable_lsn_.load(std::memory_order_acquire) < target) {
    {
      std::lock_guard<std::mutex> wait_guard(wait_mutex_);
      if (!io_status_.ok()) return io_status_;
    }
    if (!TryLeadFlush()) std::this_thread::yield();
  }
  return io_status();
}

uint64_t LogWriter::appended_lsn() const {
  buffer_lock_.lock();
  const uint64_t lsn = next_lsn_ - 1;
  buffer_lock_.unlock();
  return lsn;
}

Status LogWriter::io_status() const {
  std::lock_guard<std::mutex> guard(wait_mutex_);
  return io_status_;
}

void LogWriter::Stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wait_guard(wait_mutex_);
    flusher_cv_.notify_one();
    durable_cv_.notify_all();
  }
  if (flusher_.joinable()) flusher_.join();
  std::lock_guard<std::mutex> file_guard(file_mutex_);
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void LogWriter::FlusherLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> wait_guard(wait_mutex_);
      // Pure cadence: commits never wake the flusher. Under group commit
      // the waiters flush themselves; this loop mops up records nobody
      // acknowledged (lazy commits, schema records, stragglers).
      flusher_cv_.wait_for(
          wait_guard,
          std::chrono::milliseconds(options_.flush_interval_millis),
          [&] { return stop_.load(std::memory_order_acquire); });
    }
    buffer_lock_.lock();
    const bool has_pending = !pending_.empty();
    buffer_lock_.unlock();
    if (has_pending) TryLeadFlush();
  }
  // Shutdown drain: everything buffered must reach the disk before the
  // writer closes, even if a leader is mid-flush right now.
  for (;;) {
    buffer_lock_.lock();
    const bool has_pending = !pending_.empty();
    buffer_lock_.unlock();
    if (!has_pending && !flushing_.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> wait_guard(wait_mutex_);
      if (!io_status_.ok() && !flushing_.load(std::memory_order_acquire)) {
        return;  // Poisoned: nothing more will ever reach the disk.
      }
    }
    if (!TryLeadFlush()) std::this_thread::yield();
  }
}

Status LogWriter::WriteAndMaybeRotate(
    const std::string& data, const std::vector<PendingRecord>& boundaries) {
  size_t written = 0;
  size_t record = 0;
  while (record < boundaries.size()) {
    // Rotate between records once the segment is over budget. A single
    // record larger than segment_bytes still lands whole in one segment.
    if (current_.has_records && current_bytes_ >= options_.segment_bytes) {
      ANKER_RETURN_IF_ERROR(CloseSegment());
      ANKER_RETURN_IF_ERROR(OpenSegment(current_.seq + 1));
    }
    // Largest run of records that fits the remaining budget (at least one).
    size_t run_end = record;
    mvcc::Timestamp run_max_ts = 0;
    uint64_t run_max_lsn = 0;
    while (run_end < boundaries.size()) {
      const size_t bytes_through = boundaries[run_end].end - written;
      if (run_end > record &&
          current_bytes_ + bytes_through > options_.segment_bytes) {
        break;
      }
      run_max_ts = std::max(run_max_ts, boundaries[run_end].max_ts);
      run_max_lsn = std::max(run_max_lsn, boundaries[run_end].lsn);
      ++run_end;
      if (current_bytes_ + bytes_through >= options_.segment_bytes) break;
    }
    const size_t end_offset = boundaries[run_end - 1].end;
    ANKER_RETURN_IF_ERROR(
        WriteFully(fd_, data.data() + written, end_offset - written));
    current_bytes_ += end_offset - written;
    current_.max_ts = std::max(current_.max_ts, run_max_ts);
    current_.max_lsn = std::max(current_.max_lsn, run_max_lsn);
    current_.has_records = true;
    written = end_offset;
    record = run_end;
  }
  return Status::OK();
}

Status LogWriter::OpenSegment(uint64_t seq) {
  const std::string path = wal_dir_ + "/" + SegmentName(seq);
  int flags = O_CREAT | O_TRUNC | O_WRONLY;
  if (options_.mode == DurabilityMode::kGroupCommit) flags |= O_DSYNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IoError("cannot create WAL segment " + path);
  }
  current_ = Segment{seq, path, 0, 0, false};
  std::string header;
  PutU64(&header, kSegmentMagic);
  PutU32(&header, kWalFormatVersion);
  PutU32(&header, 0);  // padding / reserved
  PutU64(&header, seq);
  ANKER_CHECK(header.size() == kSegmentHeaderBytes);
  ANKER_RETURN_IF_ERROR(WriteFully(fd_, header.data(), header.size()));
  current_bytes_ = header.size();
  // The file name itself must be durable before any record in it is
  // acknowledged; the first batch fsyncs the data, this covers the entry.
  return SyncDir(wal_dir_);
}

Status LogWriter::CloseSegment() {
  ANKER_RETURN_IF_ERROR(SyncFd(fd_));
  ::close(fd_);
  fd_ = -1;
  closed_.push_back(current_);
  return Status::OK();
}

Status LogWriter::TruncateThrough(mvcc::Timestamp ckpt_ts) {
  ANKER_RETURN_IF_ERROR(Sync());
  std::lock_guard<std::mutex> file_guard(file_mutex_);
  // Start a fresh segment so the current one becomes eligible next time.
  if (current_.has_records) {
    ANKER_RETURN_IF_ERROR(CloseSegment());
    ANKER_RETURN_IF_ERROR(OpenSegment(current_.seq + 1));
  }
  // Replication retention: a segment whose newest LSN is above the floor
  // still feeds some replica's tail — covered-by-checkpoint or not, it
  // must stay on disk until every connected replica acknowledges past it.
  const uint64_t retain = retain_lsn_.load(std::memory_order_acquire);
  bool removed = false;
  for (auto it = closed_.begin(); it != closed_.end();) {
    const bool ckpt_covered = !it->has_records || it->max_ts <= ckpt_ts;
    const bool replicas_past = !it->has_records || it->max_lsn <= retain;
    if (ckpt_covered && replicas_past) {
      ANKER_RETURN_IF_ERROR(RemoveFile(it->path));
      it = closed_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  if (removed) return SyncDir(wal_dir_);
  return Status::OK();
}

}  // namespace anker::wal
