#include "wal/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "wal/crc32c.h"
#include "wal/io_util.h"
#include "wal/wal_format.h"

namespace anker::wal {

namespace {

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ != __ORDER_LITTLE_ENDIAN__
#error "checkpoint blob format assumes a little-endian host"
#endif

constexpr uint32_t kColumnMagic = 0x314C4341u;    // "ACL1"
// Incremental column image: extent references instead of slot bytes.
constexpr uint32_t kColumnExtMagic = 0x324C4341u;  // "ACL2"
constexpr uint32_t kIndexMagic = 0x31584941u;     // "AIX1"
// v2 ("ANKRMFT2"): manifests carry the covered WAL LSN (wal_lsn) so
// replicas know where to resume the log stream after a bootstrap.
constexpr uint64_t kManifestMagicV2 = 0x3254464D524B4E41ULL;  // "ANKRMFT2"
// v3 ("ANKRMFT3"): adds the cold-tier section (extent-id watermark and
// referenced-extent list) after the 2PC section. v2 still decodes.
constexpr uint64_t kManifestMagic = 0x3354464D524B4E41ULL;  // "ANKRMFT3"
constexpr size_t kExtentRefBytes = 8 + 8 + 8 + 4 + 4;
constexpr size_t kBlobHeaderBytes = 4 + 4 + 8;

std::string CheckpointDirName(mvcc::Timestamp ts) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt-%llu",
                static_cast<unsigned long long>(ts));
  return buf;
}

std::string ColumnFileName(uint32_t table_id, uint32_t column_id) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "t%u.c%u", table_id, column_id);
  return buf;
}

std::string IndexFileName(uint32_t table_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%u.idx", table_id);
  return buf;
}

void EncodeManifest(const CheckpointManifest& m, std::string* out) {
  PutU64(out, kManifestMagic);
  PutU64(out, m.checkpoint_ts);
  PutU64(out, m.commit_count);
  PutU64(out, m.next_txn_id);
  PutU64(out, m.wal_lsn);
  PutU32(out, static_cast<uint32_t>(m.tables.size()));
  for (const CheckpointTableMeta& t : m.tables) {
    PutString(out, t.name);
    PutU64(out, t.num_rows);
    PutU32(out, static_cast<uint32_t>(t.schema.size()));
    for (const storage::ColumnDef& def : t.schema) {
      PutString(out, def.name);
      PutU8(out, static_cast<uint8_t>(def.type));
    }
    PutU32(out, static_cast<uint32_t>(t.dictionaries.size()));
    for (const auto& [column, entries] : t.dictionaries) {
      PutString(out, column);
      PutU32(out, static_cast<uint32_t>(entries.size()));
      for (const std::string& entry : entries) PutString(out, entry);
    }
    PutU8(out, t.has_primary_index ? 1 : 0);
    PutU64(out, t.index_entries);
  }
  // 2PC section (always written by this version; older manifests simply
  // end here and decode with empty vectors).
  PutU32(out, static_cast<uint32_t>(m.prepared.size()));
  for (const CheckpointPreparedTxn& p : m.prepared) {
    PutU64(out, p.gtid);
    PutU32(out, p.primary_shard);
    PutU64(out, p.start_ts);
    PutU64(out, p.prepare_ts);
    PutU32(out, static_cast<uint32_t>(p.writes.size()));
    for (const RedoWrite& w : p.writes) {
      PutU32(out, w.table_id);
      PutU32(out, w.column_id);
      PutU64(out, w.row);
      PutU64(out, w.value);
    }
  }
  PutU32(out, static_cast<uint32_t>(m.outcomes.size()));
  for (const CheckpointTxnOutcome& o : m.outcomes) {
    PutU64(out, o.gtid);
    PutU8(out, o.outcome);
    PutU64(out, o.commit_ts);
  }
  // v3 cold-tier section.
  PutU64(out, m.next_extent_id);
  PutU32(out, static_cast<uint32_t>(m.extents.size()));
  for (const uint64_t id : m.extents) PutU64(out, id);
}

Status DecodeManifest(std::string_view in, CheckpointManifest* m) {
  const Status malformed = Status::IoError("malformed checkpoint manifest");
  uint64_t magic = 0;
  uint32_t ntables = 0;
  if (!GetU64(&in, &magic) ||
      (magic != kManifestMagic && magic != kManifestMagicV2) ||
      !GetU64(&in, &m->checkpoint_ts) || !GetU64(&in, &m->commit_count) ||
      !GetU64(&in, &m->next_txn_id) || !GetU64(&in, &m->wal_lsn) ||
      !GetU32(&in, &ntables)) {
    return malformed;
  }
  const bool has_extent_section = magic == kManifestMagic;
  m->tables.clear();
  m->tables.reserve(ntables);
  for (uint32_t i = 0; i < ntables; ++i) {
    CheckpointTableMeta t;
    uint32_t ncols = 0;
    if (!GetString(&in, &t.name) || !GetU64(&in, &t.num_rows) ||
        !GetU32(&in, &ncols)) {
      return malformed;
    }
    t.schema.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      storage::ColumnDef def;
      uint8_t vt = 0;
      if (!GetString(&in, &def.name) || !GetU8(&in, &vt)) return malformed;
      def.type = static_cast<storage::ValueType>(vt);
      t.schema.push_back(std::move(def));
    }
    uint32_t ndicts = 0;
    if (!GetU32(&in, &ndicts)) return malformed;
    for (uint32_t d = 0; d < ndicts; ++d) {
      std::string column;
      uint32_t nentries = 0;
      if (!GetString(&in, &column) || !GetU32(&in, &nentries)) {
        return malformed;
      }
      std::vector<std::string> entries;
      entries.reserve(nentries);
      for (uint32_t e = 0; e < nentries; ++e) {
        std::string entry;
        if (!GetString(&in, &entry)) return malformed;
        entries.push_back(std::move(entry));
      }
      t.dictionaries.emplace_back(std::move(column), std::move(entries));
    }
    uint8_t has_index = 0;
    if (!GetU8(&in, &has_index) || !GetU64(&in, &t.index_entries)) {
      return malformed;
    }
    t.has_primary_index = has_index != 0;
    m->tables.push_back(std::move(t));
  }
  m->prepared.clear();
  m->outcomes.clear();
  m->next_extent_id = 1;
  m->extents.clear();
  if (in.empty()) {
    // Pre-2PC manifest: no trailing sections (only possible under v2).
    return has_extent_section ? malformed : Status::OK();
  }
  uint32_t nprepared = 0;
  if (!GetU32(&in, &nprepared)) return malformed;
  m->prepared.reserve(nprepared);
  for (uint32_t i = 0; i < nprepared; ++i) {
    CheckpointPreparedTxn p;
    uint32_t nwrites = 0;
    if (!GetU64(&in, &p.gtid) || !GetU32(&in, &p.primary_shard) ||
        !GetU64(&in, &p.start_ts) || !GetU64(&in, &p.prepare_ts) ||
        !GetU32(&in, &nwrites)) {
      return malformed;
    }
    p.writes.reserve(nwrites);
    for (uint32_t w = 0; w < nwrites; ++w) {
      RedoWrite write;
      if (!GetU32(&in, &write.table_id) || !GetU32(&in, &write.column_id) ||
          !GetU64(&in, &write.row) || !GetU64(&in, &write.value)) {
        return malformed;
      }
      p.writes.push_back(write);
    }
    m->prepared.push_back(std::move(p));
  }
  uint32_t noutcomes = 0;
  if (!GetU32(&in, &noutcomes)) return malformed;
  m->outcomes.reserve(noutcomes);
  for (uint32_t i = 0; i < noutcomes; ++i) {
    CheckpointTxnOutcome o;
    if (!GetU64(&in, &o.gtid) || !GetU8(&in, &o.outcome) ||
        !GetU64(&in, &o.commit_ts)) {
      return malformed;
    }
    m->outcomes.push_back(o);
  }
  if (has_extent_section) {
    uint32_t nextents = 0;
    if (!GetU64(&in, &m->next_extent_id) || !GetU32(&in, &nextents)) {
      return malformed;
    }
    m->extents.reserve(nextents);
    for (uint32_t i = 0; i < nextents; ++i) {
      uint64_t id = 0;
      if (!GetU64(&in, &id)) return malformed;
      m->extents.push_back(id);
    }
  }
  if (!in.empty()) return malformed;
  return Status::OK();
}

/// Reads a blob file written by CheckpointWriter::WriteBlob, verifies its
/// CRC, and returns the magic, item count and body bytes — callers that
/// accept more than one format (LoadColumn: ACL1 or ACL2) branch on the
/// magic after the integrity check.
Status ParseBlob(const std::string& path, uint32_t* magic_out,
                 uint64_t* items_out, std::string* body) {
  std::string data;
  ANKER_RETURN_IF_ERROR(ReadFile(path, &data));
  std::string_view in(data);
  uint32_t magic = 0, pad = 0;
  uint64_t items = 0;
  if (!GetU32(&in, &magic) || !GetU32(&in, &pad) || !GetU64(&in, &items) ||
      in.size() < 4) {
    return Status::IoError("checkpoint blob header mismatch: " + path);
  }
  const size_t body_bytes = in.size() - 4;
  const uint32_t crc = Crc32c(0, in.data(), body_bytes);
  std::string_view trailer = in.substr(body_bytes);
  uint32_t masked = 0;
  if (!GetU32(&trailer, &masked) || UnmaskCrc(masked) != crc) {
    return Status::IoError("checkpoint blob checksum mismatch: " + path);
  }
  *magic_out = magic;
  *items_out = items;
  body->assign(in.data(), body_bytes);
  return Status::OK();
}

/// ParseBlob plus the strict single-format checks: expected magic, item
/// count, and exact body size.
Status ReadBlob(const std::string& path, uint32_t expected_magic,
                uint64_t expected_items, size_t item_bytes,
                std::string* body) {
  uint32_t magic = 0;
  uint64_t items = 0;
  ANKER_RETURN_IF_ERROR(ParseBlob(path, &magic, &items, body));
  if (magic != expected_magic || items != expected_items) {
    return Status::IoError("checkpoint blob header mismatch: " + path);
  }
  if (body->size() != items * item_bytes) {
    return Status::IoError("checkpoint blob size mismatch: " + path);
  }
  return Status::OK();
}

}  // namespace

CheckpointWriter::CheckpointWriter(std::string data_dir)
    : data_dir_(std::move(data_dir)) {}

Status CheckpointWriter::Begin(mvcc::Timestamp checkpoint_ts) {
  ANKER_CHECK(!begun_);
  ANKER_RETURN_IF_ERROR(EnsureDir(data_dir_));
  // Two checkpoints can legitimately share a timestamp: bulk loads and
  // table creates change state without drawing commit timestamps, so a
  // homogeneous-mode re-checkpoint may pin the same ckpt_ts with fresher
  // data. Uniquify the directory; CURRENT decides which one is live and
  // Finish() prunes the loser.
  dir_name_ = CheckpointDirName(checkpoint_ts);
  for (int suffix = 1; PathExists(data_dir_ + "/" + dir_name_); ++suffix) {
    dir_name_ =
        CheckpointDirName(checkpoint_ts) + "." + std::to_string(suffix);
  }
  tmp_path_ = data_dir_ + "/" + dir_name_ + ".tmp";
  // A stale .tmp from a crashed checkpoint is dead weight; start over.
  ANKER_RETURN_IF_ERROR(RemoveDirRecursive(tmp_path_));
  ANKER_RETURN_IF_ERROR(EnsureDir(tmp_path_));
  begun_ = true;
  return Status::OK();
}

Status CheckpointWriter::WriteBlob(
    const std::string& path, uint32_t magic,
    const std::function<Status(int fd, uint32_t* crc)>& body,
    uint64_t item_count) {
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return Status::IoError("cannot create checkpoint file " + path);
  std::string header;
  PutU32(&header, magic);
  PutU32(&header, 0);
  PutU64(&header, item_count);
  ANKER_CHECK(header.size() == kBlobHeaderBytes);
  Status s = WriteFully(fd, header.data(), header.size());
  uint32_t crc = 0;
  if (s.ok()) s = body(fd, &crc);
  if (s.ok()) {
    std::string trailer;
    PutU32(&trailer, MaskCrc(crc));
    s = WriteFully(fd, trailer.data(), trailer.size());
  }
  if (s.ok()) s = SyncFd(fd);
  ::close(fd);
  return s;
}

Status CheckpointWriter::WriteColumnRaw(uint32_t table_id, uint32_t column_id,
                                        const uint64_t* data,
                                        size_t num_rows) {
  ANKER_CHECK(begun_);
  const std::string path =
      tmp_path_ + "/" + ColumnFileName(table_id, column_id);
  return WriteBlob(
      path, kColumnMagic,
      [&](int fd, uint32_t* crc) {
        *crc = Crc32c(0, data, num_rows * sizeof(uint64_t));
        return WriteFully(fd, data, num_rows * sizeof(uint64_t));
      },
      num_rows);
}

Status CheckpointWriter::WriteColumnResolved(
    uint32_t table_id, uint32_t column_id, size_t num_rows,
    const std::function<uint64_t(size_t)>& read) {
  ANKER_CHECK(begun_);
  const std::string path =
      tmp_path_ + "/" + ColumnFileName(table_id, column_id);
  return WriteBlob(
      path, kColumnMagic,
      [&](int fd, uint32_t* crc) {
        constexpr size_t kChunkRows = 1 << 16;
        std::vector<uint64_t> chunk;
        chunk.reserve(std::min(num_rows, kChunkRows));
        for (size_t row = 0; row < num_rows;) {
          chunk.clear();
          const size_t end = std::min(num_rows, row + kChunkRows);
          for (; row < end; ++row) chunk.push_back(read(row));
          *crc = Crc32c(*crc, chunk.data(), chunk.size() * sizeof(uint64_t));
          ANKER_RETURN_IF_ERROR(
              WriteFully(fd, chunk.data(), chunk.size() * sizeof(uint64_t)));
        }
        return Status::OK();
      },
      num_rows);
}

Status CheckpointWriter::WriteColumnExtents(
    uint32_t table_id, uint32_t column_id,
    const std::vector<storage::SegmentExtentRef>& refs) {
  ANKER_CHECK(begun_);
  const std::string path =
      tmp_path_ + "/" + ColumnFileName(table_id, column_id);
  return WriteBlob(
      path, kColumnExtMagic,
      [&](int fd, uint32_t* crc) {
        std::string body;
        body.reserve(refs.size() * kExtentRefBytes);
        for (const storage::SegmentExtentRef& ref : refs) {
          PutU64(&body, ref.extent_id);
          PutU64(&body, ref.row_begin);
          PutU64(&body, ref.row_count);
          PutU32(&body, ref.crc);
          PutU32(&body, 0);  // pad: record stays 32 bytes, 8-aligned
        }
        *crc = Crc32c(0, body.data(), body.size());
        return WriteFully(fd, body.data(), body.size());
      },
      refs.size());
}

Status CheckpointWriter::WriteIndex(uint32_t table_id,
                                    const storage::HashIndex& index) {
  ANKER_CHECK(begun_);
  const std::string path = tmp_path_ + "/" + IndexFileName(table_id);
  return WriteBlob(
      path, kIndexMagic,
      [&](int fd, uint32_t* crc) {
        constexpr size_t kChunkEntries = 1 << 15;
        std::vector<uint64_t> chunk;
        Status s = Status::OK();
        index.ForEach([&](uint64_t key, uint64_t row) {
          if (!s.ok()) return;
          chunk.push_back(key);
          chunk.push_back(row);
          if (chunk.size() >= 2 * kChunkEntries) {
            *crc =
                Crc32c(*crc, chunk.data(), chunk.size() * sizeof(uint64_t));
            s = WriteFully(fd, chunk.data(),
                           chunk.size() * sizeof(uint64_t));
            chunk.clear();
          }
        });
        if (s.ok() && !chunk.empty()) {
          *crc = Crc32c(*crc, chunk.data(), chunk.size() * sizeof(uint64_t));
          s = WriteFully(fd, chunk.data(), chunk.size() * sizeof(uint64_t));
        }
        return s;
      },
      index.size());
}

Status CheckpointWriter::Finish(const CheckpointManifest& manifest) {
  ANKER_CHECK(begun_);
  std::string payload;
  EncodeManifest(manifest, &payload);
  std::string framed;
  PutU32(&framed, static_cast<uint32_t>(payload.size()));
  PutU32(&framed, MaskCrc(Crc32c(0, payload.data(), payload.size())));
  framed += payload;

  const std::string manifest_path = tmp_path_ + "/MANIFEST";
  {
    const int fd =
        ::open(manifest_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) {
      return Status::IoError("cannot create " + manifest_path);
    }
    Status s = WriteFully(fd, framed.data(), framed.size());
    if (s.ok()) s = SyncFd(fd);
    ::close(fd);
    ANKER_RETURN_IF_ERROR(s);
  }
  ANKER_RETURN_IF_ERROR(SyncDir(tmp_path_));

  const std::string final_path = data_dir_ + "/" + dir_name_;
  FaultInjector::Instance().MaybeKill("ckpt.publish.pre");
  if (::rename(tmp_path_.c_str(), final_path.c_str()) != 0) {
    return Status::IoError("cannot publish checkpoint " + final_path);
  }
  ANKER_RETURN_IF_ERROR(SyncDir(data_dir_));

  // Point CURRENT at the new checkpoint; only now is it live.
  ANKER_RETURN_IF_ERROR(
      AtomicWriteFile(data_dir_ + "/CURRENT", dir_name_ + "\n"));
  FaultInjector::Instance().MaybeKill("ckpt.publish.post");

  // Prune every other checkpoint (and stale temp directories).
  std::vector<std::string> names;
  ANKER_RETURN_IF_ERROR(ListDir(data_dir_, &names));
  for (const std::string& name : names) {
    if (name.rfind("ckpt-", 0) == 0 && name != dir_name_) {
      ANKER_RETURN_IF_ERROR(RemoveDirRecursive(data_dir_ + "/" + name));
    }
  }
  begun_ = false;
  return SyncDir(data_dir_);
}

void CheckpointWriter::Abort() {
  if (!begun_) return;
  RemoveDirRecursive(tmp_path_);
  begun_ = false;
}

Result<CheckpointManifest> CheckpointReader::ReadManifest(
    const std::string& data_dir, std::string* ckpt_path) {
  std::string current;
  const Status s = ReadFile(data_dir + "/CURRENT", &current);
  if (s.IsNotFound()) {
    return Status::NotFound("no checkpoint in " + data_dir);
  }
  ANKER_RETURN_IF_ERROR(s);
  while (!current.empty() &&
         (current.back() == '\n' || current.back() == '\r')) {
    current.pop_back();
  }
  if (current.empty() || current.find('/') != std::string::npos) {
    return Status::IoError("corrupt CURRENT in " + data_dir);
  }
  const std::string path = data_dir + "/" + current;

  std::string framed;
  ANKER_RETURN_IF_ERROR(ReadFile(path + "/MANIFEST", &framed));
  std::string_view in(framed);
  uint32_t len = 0, masked = 0;
  if (!GetU32(&in, &len) || !GetU32(&in, &masked) || in.size() != len) {
    return Status::IoError("corrupt checkpoint manifest frame: " + path);
  }
  if (Crc32c(0, in.data(), in.size()) != UnmaskCrc(masked)) {
    return Status::IoError("checkpoint manifest checksum mismatch: " + path);
  }
  CheckpointManifest manifest;
  ANKER_RETURN_IF_ERROR(DecodeManifest(in, &manifest));
  if (ckpt_path != nullptr) *ckpt_path = path;
  return manifest;
}

Status CheckpointReader::LoadColumn(
    const std::string& ckpt_path, uint32_t table_id, uint32_t column_id,
    storage::Column* column, storage::ExtentStore* extents,
    std::vector<storage::SegmentExtentRef>* refs_out) {
  if (refs_out != nullptr) refs_out->clear();
  const std::string path =
      ckpt_path + "/" + ColumnFileName(table_id, column_id);
  std::string body;
  uint32_t magic = 0;
  uint64_t items = 0;
  ANKER_RETURN_IF_ERROR(ParseBlob(path, &magic, &items, &body));
  const size_t num_rows = column->num_rows();

  if (magic == kColumnMagic) {
    if (items != num_rows || body.size() != items * sizeof(uint64_t)) {
      return Status::IoError("checkpoint blob size mismatch: " + path);
    }
    for (size_t row = 0; row < num_rows; ++row) {
      uint64_t raw;
      std::memcpy(&raw, body.data() + row * sizeof(uint64_t),
                  sizeof(uint64_t));
      column->LoadValue(row, raw);
    }
    return Status::OK();
  }

  if (magic != kColumnExtMagic) {
    return Status::IoError("checkpoint blob header mismatch: " + path);
  }
  if (body.size() != items * kExtentRefBytes) {
    return Status::IoError("checkpoint blob size mismatch: " + path);
  }
  if (extents == nullptr) {
    return Status::IoError("extent-backed column " + path +
                           " but no extent store (data_dir misconfigured?)");
  }
  std::string_view in(body);
  uint64_t next_row = 0;
  std::vector<uint64_t> slots;
  for (uint64_t i = 0; i < items; ++i) {
    storage::SegmentExtentRef ref;
    uint32_t pad = 0;
    if (!GetU64(&in, &ref.extent_id) || !GetU64(&in, &ref.row_begin) ||
        !GetU64(&in, &ref.row_count) || !GetU32(&in, &ref.crc) ||
        !GetU32(&in, &pad) || pad != 0) {
      return Status::IoError("malformed extent reference in " + path);
    }
    // References must tile the column contiguously from row 0; anything
    // else means the file and the column disagree about geometry.
    if (ref.row_begin != next_row || ref.row_count == 0 ||
        ref.row_begin + ref.row_count > num_rows) {
      return Status::IoError("extent reference coverage gap in " + path);
    }
    next_row = ref.row_begin + ref.row_count;
    slots.clear();
    ANKER_RETURN_IF_ERROR(extents->Load(ref.extent_id, ref.crc,
                                        ref.row_count, &slots,
                                        &ref.file_bytes));
    for (uint64_t r = 0; r < ref.row_count; ++r) {
      column->LoadValue(ref.row_begin + r, slots[r]);
    }
    if (refs_out != nullptr) refs_out->push_back(ref);
  }
  if (next_row != num_rows) {
    return Status::IoError("extent reference coverage gap in " + path);
  }
  return Status::OK();
}

Status CheckpointReader::LoadIndex(const std::string& ckpt_path,
                                   uint32_t table_id,
                                   uint64_t expected_entries,
                                   storage::HashIndex* index) {
  std::string body;
  ANKER_RETURN_IF_ERROR(ReadBlob(ckpt_path + "/" + IndexFileName(table_id),
                                 kIndexMagic, expected_entries,
                                 2 * sizeof(uint64_t), &body));
  for (uint64_t i = 0; i < expected_entries; ++i) {
    uint64_t key, row;
    std::memcpy(&key, body.data() + i * 16, 8);
    std::memcpy(&row, body.data() + i * 16 + 8, 8);
    ANKER_RETURN_IF_ERROR(index->Insert(key, row));
  }
  return Status::OK();
}

}  // namespace anker::wal
