#include "wal/wal_format.h"

#include <gtest/gtest.h>

#include "wal/crc32c.h"

namespace anker::wal {
namespace {

TEST(Crc32cTest, KnownVector) {
  // The canonical CRC-32C check value: crc of the ASCII digits 1..9.
  const char digits[] = "123456789";
  EXPECT_EQ(Crc32c(0, digits, 9), 0xE3069283u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data.push_back(static_cast<char>(i * 37));
  const uint32_t whole = Crc32c(0, data.data(), data.size());
  uint32_t split = Crc32c(0, data.data(), 123);
  split = Crc32c(split, data.data() + 123, data.size() - 123);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskRoundTrips) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);
  }
}

TEST(WalFormatTest, CommitRoundTrip) {
  std::vector<RedoWrite> writes = {
      {0, 3, 17, 0xDEADBEEFULL},
      {2, 0, 9999999, ~0ULL},
      {1, 1, 0, 0},
  };
  std::string payload;
  EncodeCommit(/*commit_ts=*/4242, writes, &payload);

  WalRecord record;
  ASSERT_TRUE(DecodeRecord(payload, &record).ok());
  EXPECT_EQ(record.type, RecordType::kCommit);
  EXPECT_EQ(record.commit_ts, 4242u);
  ASSERT_EQ(record.writes.size(), writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    EXPECT_EQ(record.writes[i].table_id, writes[i].table_id);
    EXPECT_EQ(record.writes[i].column_id, writes[i].column_id);
    EXPECT_EQ(record.writes[i].row, writes[i].row);
    EXPECT_EQ(record.writes[i].value, writes[i].value);
  }
}

TEST(WalFormatTest, CreateTableRoundTrip) {
  std::vector<storage::ColumnDef> schema = {
      {"balance", storage::ValueType::kInt64},
      {"price", storage::ValueType::kDouble},
      {"flag", storage::ValueType::kDict32},
  };
  std::string payload;
  EncodeCreateTable(7, "accounts", 4096, schema, &payload);

  WalRecord record;
  ASSERT_TRUE(DecodeRecord(payload, &record).ok());
  EXPECT_EQ(record.type, RecordType::kCreateTable);
  EXPECT_EQ(record.table_id, 7u);
  EXPECT_EQ(record.table_name, "accounts");
  EXPECT_EQ(record.num_rows, 4096u);
  ASSERT_EQ(record.schema.size(), schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    EXPECT_EQ(record.schema[i].name, schema[i].name);
    EXPECT_EQ(record.schema[i].type, schema[i].type);
  }
}

TEST(WalFormatTest, DecodeRejectsTruncationAtEveryOffset) {
  std::vector<RedoWrite> writes = {{1, 2, 3, 4}, {5, 6, 7, 8}};
  std::string payload;
  EncodeCommit(99, writes, &payload);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WalRecord record;
    EXPECT_FALSE(
        DecodeRecord(std::string_view(payload.data(), cut), &record).ok())
        << "prefix of length " << cut << " decoded";
  }
}

TEST(WalFormatTest, DecodeRejectsTrailingGarbage) {
  std::string payload;
  EncodeCommit(1, {{0, 0, 0, 0}}, &payload);
  payload.push_back('\0');
  WalRecord record;
  EXPECT_FALSE(DecodeRecord(payload, &record).ok());
}

TEST(WalFormatTest, DecodeRejectsUnknownType) {
  std::string payload;
  PutU8(&payload, 0x7F);
  WalRecord record;
  EXPECT_FALSE(DecodeRecord(payload, &record).ok());
}

TEST(WalFormatTest, DecodeRejectsInflatedCounts) {
  // A count field inconsistent with the actual payload bytes must fail as
  // a malformed record, never size an allocation (a crafted CRC-valid
  // record must not crash recovery with bad_alloc).
  std::string commit;
  PutU8(&commit, static_cast<uint8_t>(RecordType::kCommit));
  PutU64(&commit, 1);
  PutU32(&commit, 0xFFFFFFFFu);  // Claims 4B writes, carries none.
  WalRecord record;
  EXPECT_FALSE(DecodeRecord(commit, &record).ok());

  std::string create;
  PutU8(&create, static_cast<uint8_t>(RecordType::kCreateTable));
  PutU32(&create, 0);
  PutString(&create, "t");
  PutU64(&create, 8);
  PutU32(&create, 0x40000000u);  // Claims a billion columns.
  EXPECT_FALSE(DecodeRecord(create, &record).ok());
}

TEST(WalFormatTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU8(&buf, 0xAB);
  PutU32(&buf, 0x12345678u);
  PutU64(&buf, 0xDEADBEEFCAFEF00DULL);
  PutString(&buf, "hello");
  std::string_view in(buf);
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  std::string s;
  ASSERT_TRUE(GetU8(&in, &u8));
  ASSERT_TRUE(GetU32(&in, &u32));
  ASSERT_TRUE(GetU64(&in, &u64));
  ASSERT_TRUE(GetString(&in, &s));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0x12345678u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(in.empty());
}

}  // namespace
}  // namespace anker::wal
