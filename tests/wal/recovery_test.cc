// End-to-end durability: checkpoint + WAL replay must reproduce, bit for
// bit, the state an uninterrupted in-memory run reaches. Every test drives
// a durable Database and a twin with durability off through identical
// transactions and compares ContentDigest after recovery.
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "wal/io_util.h"

namespace anker::engine {
namespace {

constexpr size_t kRows = 512;

std::vector<storage::ColumnDef> TestSchema() {
  return {{"balance", storage::ValueType::kInt64},
          {"price", storage::ValueType::kDouble},
          {"tag", storage::ValueType::kDict32}};
}

class RecoveryTest : public ::testing::TestWithParam<txn::ProcessingMode> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_recovery_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { wal::RemoveDirRecursive(dir_); }

  DatabaseConfig DurableConfig(wal::DurabilityMode mode) {
    DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
    config.durability = mode;
    config.data_dir = dir_;
    config.wal_segment_bytes = 1 << 12;  // Tiny segments: exercise rotation.
    return config;
  }

  static storage::Table* MakeTable(Database* db) {
    auto table = db->CreateTable("ledger", TestSchema(), kRows);
    EXPECT_TRUE(table.ok());
    return table.value();
  }

  static void LoadBase(storage::Table* table) {
    storage::Dictionary* dict = table->GetDictionary("tag");
    const uint32_t codes[] = {dict->GetOrAdd("red"), dict->GetOrAdd("green"),
                              dict->GetOrAdd("blue")};
    table->CreatePrimaryIndex(kRows);
    for (size_t row = 0; row < kRows; ++row) {
      table->GetColumn("balance")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(1000 + row)));
      table->GetColumn("price")->LoadValue(
          row, storage::EncodeDouble(0.5 * static_cast<double>(row)));
      table->GetColumn("tag")->LoadValue(
          row, storage::EncodeDict(codes[row % 3]));
      EXPECT_TRUE(table->primary_index()
                      ->Insert(row * 7 + 1, row)
                      .ok());
    }
  }

  /// Deterministic update stream: transaction i rewrites three slots.
  static void RunTxns(Database* db, storage::Table* table, int from,
                      int to) {
    storage::Column* balance = table->GetColumn("balance");
    storage::Column* price = table->GetColumn("price");
    for (int i = from; i < to; ++i) {
      auto txn = db->BeginOltp();
      const uint64_t row = static_cast<uint64_t>(i * 31 % kRows);
      const uint64_t row2 = static_cast<uint64_t>((i * 17 + 5) % kRows);
      txn->Write(balance, row, storage::EncodeInt64(1'000'000 + i));
      txn->Write(balance, row2, storage::EncodeInt64(2'000'000 - i));
      txn->Write(price, row, storage::EncodeDouble(static_cast<double>(i)));
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
  }

  /// The reference: same load, same transactions, no durability.
  uint64_t ReferenceDigest(int txns) {
    DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
    Database db(config);
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    RunTxns(&db, table, 0, txns);
    return db.ContentDigest();
  }

  std::string dir_;
};

TEST_P(RecoveryTest, CheckpointThenReplayEquivalence) {
  const uint64_t expected = ReferenceDigest(300);
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());  // Bootstrap: makes the load durable.
    RunTxns(&db, table, 0, 120);
    ASSERT_TRUE(db.Checkpoint().ok());  // Mid-stream checkpoint.
    RunTxns(&db, table, 120, 300);      // Tail only in the WAL.
  }
  auto reopened = Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened.value()->ContentDigest(), expected);
}

TEST_P(RecoveryTest, TornTailRecoversToLastIntactCommit) {
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());
    RunTxns(&db, table, 0, 200);
  }
  // Simulate a crash mid-append: garbage on the newest segment's tail.
  std::vector<std::string> names;
  ASSERT_TRUE(wal::ListDir(dir_ + "/wal", &names).ok());
  std::sort(names.begin(), names.end());
  const std::string newest = dir_ + "/wal/" + names.back();
  std::string data;
  ASSERT_TRUE(wal::ReadFile(newest, &data).ok());
  data.append("\x13\x00\x00\x00garbage-half-record", 23);
  FILE* f = fopen(newest.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(fwrite(data.data(), 1, data.size(), f), data.size());
  fclose(f);

  auto reopened =
      Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // All 200 commits were intact; the garbage was a never-acknowledged tail.
  EXPECT_EQ(reopened.value()->ContentDigest(), ReferenceDigest(200));
}

TEST_P(RecoveryTest, RecoversWithoutAnyCheckpoint) {
  // A table created after the last checkpoint (here: no checkpoint at
  // all) is rebuilt from its kCreateTable record; transactional writes
  // replay on the zero-initialized image.
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    storage::Column* balance = table->GetColumn("balance");
    for (size_t row = 0; row < kRows; ++row) {
      auto txn = db.BeginOltp();
      txn->Write(balance, row, storage::EncodeInt64(static_cast<int64_t>(row)));
      ASSERT_TRUE(db.Commit(txn.get()).ok());
    }
  }
  auto reopened =
      Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database* db = reopened.value().get();
  ASSERT_TRUE(db->catalog().HasTable("ledger"));
  storage::Column* balance =
      db->catalog().GetTable("ledger")->GetColumn("balance");
  for (size_t row = 0; row < kRows; ++row) {
    EXPECT_EQ(storage::DecodeInt64(balance->ReadLatestRaw(row)),
              static_cast<int64_t>(row));
  }
}

TEST_P(RecoveryTest, OracleAndWatermarkRestored) {
  mvcc::Timestamp pre_crash_ts = 0;
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());
    RunTxns(&db, table, 0, 50);
    pre_crash_ts = db.txn_manager().oracle().Current();
  }
  auto reopened =
      Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(reopened.ok());
  Database* db = reopened.value().get();
  // New transactions must start above everything that was replayed…
  EXPECT_GE(db->txn_manager().oracle().Current(), pre_crash_ts);
  auto txn = db->BeginOltp();
  EXPECT_GE(txn->start_ts(), pre_crash_ts);
  // …and still be able to read and commit.
  storage::Table* table = db->catalog().GetTable("ledger");
  txn->Write(table->GetColumn("balance"), 0, storage::EncodeInt64(-1));
  EXPECT_TRUE(db->Commit(txn.get()).ok());
  EXPECT_EQ(storage::DecodeInt64(
                table->GetColumn("balance")->ReadLatestRaw(0)),
            -1);
}

TEST_P(RecoveryTest, CheckpointTruncatesCoveredSegments) {
  Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
  storage::Table* table = MakeTable(&db);
  LoadBase(table);
  ASSERT_TRUE(db.Checkpoint().ok());
  RunTxns(&db, table, 0, 400);  // Tiny segments: many rotations.
  std::vector<std::string> before;
  ASSERT_TRUE(wal::ListDir(dir_ + "/wal", &before).ok());
  ASSERT_GT(before.size(), 2u);

  auto ckpt = db.Checkpoint();
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  std::vector<std::string> after;
  ASSERT_TRUE(wal::ListDir(dir_ + "/wal", &after).ok());
  EXPECT_LT(after.size(), before.size())
      << "checkpoint must delete fully covered segments";

  // Only the latest checkpoint directory survives.
  std::vector<std::string> top;
  ASSERT_TRUE(wal::ListDir(dir_, &top).ok());
  int checkpoints = 0;
  for (const std::string& name : top) {
    if (name.rfind("ckpt-", 0) == 0) ++checkpoints;
  }
  EXPECT_EQ(checkpoints, 1);
}

TEST_P(RecoveryTest, CheckpointAfterReopenTruncatesPreCrashSegments) {
  // Segments written before a crash must be adopted by the recovered
  // writer: the first post-recovery checkpoint covers all their records
  // and deletes them, instead of letting the log grow across restarts.
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());
    RunTxns(&db, table, 0, 300);  // Tiny segments: several files.
  }
  std::vector<std::string> before;
  ASSERT_TRUE(wal::ListDir(dir_ + "/wal", &before).ok());
  ASSERT_GT(before.size(), 2u);

  auto reopened =
      Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value()->Checkpoint().ok());
  std::vector<std::string> after;
  ASSERT_TRUE(wal::ListDir(dir_ + "/wal", &after).ok());
  // Everything the checkpoint covers is gone; only the writer's fresh
  // segments remain.
  EXPECT_LE(after.size(), 2u)
      << "pre-crash segments survived a covering checkpoint";
}

TEST_P(RecoveryTest, LazyModeRecoversSyncedPrefix) {
  const uint64_t expected = ReferenceDigest(100);
  {
    Database db(DurableConfig(wal::DurabilityMode::kLazy));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());
    RunTxns(&db, table, 0, 100);
    // Lazy commits do not wait; force the flush the background cadence
    // would have done, then "crash" (destructor also drains, but the test
    // wants the sync explicit).
    ASSERT_TRUE(db.log_writer()->Sync().ok());
  }
  auto reopened = Database::Open(DurableConfig(wal::DurabilityMode::kLazy));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->ContentDigest(), expected);
}

TEST_P(RecoveryTest, RepeatedReopenIsStable) {
  const uint64_t expected = ReferenceDigest(150);
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    storage::Table* table = MakeTable(&db);
    LoadBase(table);
    ASSERT_TRUE(db.Checkpoint().ok());
    RunTxns(&db, table, 0, 150);
  }
  for (int round = 0; round < 3; ++round) {
    auto reopened =
        Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
    ASSERT_TRUE(reopened.ok()) << "round " << round;
    EXPECT_EQ(reopened.value()->ContentDigest(), expected)
        << "round " << round;
  }
}

TEST_P(RecoveryTest, OpenEmptyDirectoryYieldsEmptyDatabase) {
  auto opened =
      Database::Open(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value()->catalog().num_tables(), 0u);
  // And it is immediately usable.
  storage::Table* table = MakeTable(opened.value().get());
  ASSERT_NE(table, nullptr);
}

TEST_P(RecoveryTest, FreshConstructorRefusesExistingState) {
  {
    Database db(DurableConfig(wal::DurabilityMode::kGroupCommit));
    MakeTable(&db);
  }
  EXPECT_DEATH(
      { Database db2(DurableConfig(wal::DurabilityMode::kGroupCommit)); },
      "Database::Open");
  // The validating factory reports the same condition recoverably.
  auto created = Database::Create(DurableConfig(wal::DurabilityMode::kGroupCommit));
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kAlreadyExists);
}

TEST_P(RecoveryTest, ValidateRejectsDurabilityWithoutDataDir) {
  DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
  config.durability = wal::DurabilityMode::kGroupCommit;
  EXPECT_FALSE(config.Validate().ok());
  config.data_dir = dir_;
  EXPECT_TRUE(config.Validate().ok());
  config.durability = wal::DurabilityMode::kOff;
  config.data_dir.clear();
  config.checkpoint_interval_commits = 100;
  EXPECT_FALSE(config.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, RecoveryTest,
    ::testing::Values(txn::ProcessingMode::kHeterogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSerializable),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      return info.param == txn::ProcessingMode::kHeterogeneousSerializable
                 ? "heterogeneous"
                 : "homogeneous";
    });

}  // namespace
}  // namespace anker::engine
