// WAL tailing under the conditions replication actually meets: live
// appends, segment rotation mid-tail, resume points landing mid-segment,
// and checkpoint truncation racing an active tail (the retention floor
// is what keeps the race benign).
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wal/io_util.h"
#include "wal/log_writer.h"
#include "wal/wal_tail.h"

namespace anker::wal {
namespace {

class WalTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_tail_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    wal_dir_ = dir_ + "/wal";
  }
  void TearDown() override { RemoveDirRecursive(dir_); }

  static std::string Payload(int i) {
    std::string payload;
    EncodeCommit(static_cast<mvcc::Timestamp>(i),
                 {{0, 0, static_cast<uint64_t>(i), 1000ULL + i}}, &payload);
    return payload;
  }

  /// Appends records ts/value = lo..hi and syncs.
  static void AppendRange(LogWriter* writer, int lo, int hi) {
    for (int i = lo; i <= hi; ++i) {
      writer->Append(Payload(i), static_cast<mvcc::Timestamp>(i));
    }
    ASSERT_TRUE(writer->Sync().ok());
  }

  std::string dir_;
  std::string wal_dir_;
};

TEST_F(WalTailTest, DeliversDurableRecordsInOrder) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 20);

  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(1, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  ASSERT_EQ(got.size(), 20u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].lsn, i + 1);
    EXPECT_EQ(got[i].payload, Payload(static_cast<int>(i) + 1));
  }
  // Caught up: another poll delivers nothing.
  got.clear();
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  EXPECT_TRUE(got.empty());
  writer.Stop();
}

TEST_F(WalTailTest, NeverShipsBeyondTheDurableWatermark) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kLazy;
  options.flush_interval_millis = 10000;  // Effectively never.
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  for (int i = 1; i <= 5; ++i) {
    writer.Append(Payload(i), static_cast<mvcc::Timestamp>(i));
  }
  // Buffered but not flushed: nothing is durable, nothing ships.
  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(1, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  EXPECT_TRUE(got.empty());

  ASSERT_TRUE(writer.Sync().ok());
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  EXPECT_EQ(got.size(), 5u);
  writer.Stop();
}

TEST_F(WalTailTest, FollowsAcrossSegmentRotation) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  options.segment_bytes = 256;  // Tiny: rotate every few records.
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());

  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(1, writer.durable_lsn() + 1).ok());

  // Interleave appends with polls so the tail crosses rotation points
  // while the writer is live — exactly the replication steady state.
  uint64_t delivered = 0;
  for (int batch = 0; batch < 10; ++batch) {
    AppendRange(&writer, batch * 20 + 1, batch * 20 + 20);
    std::vector<TailRecord> got;
    ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
    for (const TailRecord& r : got) {
      EXPECT_EQ(r.lsn, delivered + 1);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 200u);

  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(wal_dir_, &names).ok());
  EXPECT_GT(names.size(), 3u) << "expected multiple segments";
  writer.Stop();
}

TEST_F(WalTailTest, ResumeLandsMidSegment) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 10);  // One segment, ten records.

  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(6, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got.front().lsn, 6u);
  EXPECT_EQ(got.back().lsn, 10u);
  writer.Stop();
}

TEST_F(WalTailTest, ResumeInMiddleSegmentOfRotatedLog) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  options.segment_bytes = 256;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 100);

  // Resume from every tenth LSN: each lands in some interior segment.
  for (uint64_t start = 11; start <= 91; start += 10) {
    WalTailer tail(wal_dir_);
    ASSERT_TRUE(tail.Seek(start, writer.durable_lsn() + 1).ok())
        << "start " << start;
    std::vector<TailRecord> got;
    ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
    ASSERT_EQ(got.size(), 100 - start + 1) << "start " << start;
    EXPECT_EQ(got.front().lsn, start);
    EXPECT_EQ(got.back().lsn, 100u);
  }
  writer.Stop();
}

TEST_F(WalTailTest, ResumeAtLiveEndAndAheadOfWriter) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 4);

  // Exactly at the live end: fine, waits for new records.
  WalTailer at_end(wal_dir_);
  ASSERT_TRUE(at_end.Seek(5, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(at_end.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  EXPECT_TRUE(got.empty());
  AppendRange(&writer, 5, 6);
  ASSERT_TRUE(at_end.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  EXPECT_EQ(got.size(), 2u);

  // Beyond the live end: the follower claims history this log never
  // wrote — divergence, not a wait.
  WalTailer ahead(wal_dir_);
  EXPECT_EQ(ahead.Seek(42, writer.durable_lsn() + 1).code(),
            StatusCode::kOutOfRange);
  writer.Stop();
}

TEST_F(WalTailTest, TruncationRespectsTheRetentionFloor) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  options.segment_bytes = 256;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 100);

  // A replica acked through LSN 30: truncation must keep every segment
  // holding records past 30, no matter how far the checkpoint got.
  writer.SetRetainLsn(30);
  ASSERT_TRUE(writer.TruncateThrough(/*ckpt_ts=*/100).ok());

  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(31, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got.front().lsn, 31u);
  EXPECT_EQ(got.back().lsn, 100u);

  // Floor lifted (replica caught up / unregistered): the next truncation
  // is free to drop history, and a stale resume point must be refused —
  // the subscriber re-bootstraps from a checkpoint instead of limping on
  // with a hole.
  writer.SetRetainLsn(UINT64_MAX);
  ASSERT_TRUE(writer.TruncateThrough(/*ckpt_ts=*/100).ok());
  WalTailer stale(wal_dir_);
  EXPECT_EQ(stale.Seek(1, writer.durable_lsn() + 1).code(),
            StatusCode::kOutOfRange);
  writer.Stop();
}

TEST_F(WalTailTest, TruncationRacingAnActiveTail) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  options.segment_bytes = 256;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  AppendRange(&writer, 1, 50);

  // The tail has consumed half the log when a checkpoint truncates. The
  // floor (its acked LSN) keeps everything it still needs on disk.
  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(1, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), 25 * 64, &got).ok());
  ASSERT_FALSE(got.empty());
  const uint64_t acked = got.back().lsn;
  ASSERT_LT(acked, 50u);

  writer.SetRetainLsn(acked);
  ASSERT_TRUE(writer.TruncateThrough(/*ckpt_ts=*/50).ok());
  AppendRange(&writer, 51, 60);

  // The tail continues across the truncation without a gap.
  for (;;) {
    std::vector<TailRecord> more;
    ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &more).ok());
    if (more.empty()) break;
    for (const TailRecord& r : more) {
      EXPECT_EQ(r.lsn, got.back().lsn + 1);
      got.push_back(r);
    }
  }
  EXPECT_EQ(got.back().lsn, 60u);
  writer.Stop();
}

TEST_F(WalTailTest, EmptyLogSeeksOnlyAtTheLiveEnd) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());  // Segment exists, zero records.

  WalTailer tail(wal_dir_);
  EXPECT_TRUE(tail.Seek(1, writer.durable_lsn() + 1).ok());
  // Claiming older history against an empty log is a truncation hole.
  WalTailer stale(wal_dir_);
  EXPECT_EQ(stale.Seek(1, /*durable_next_lsn=*/7).code(),
            StatusCode::kOutOfRange);
  writer.Stop();
}

TEST_F(WalTailTest, ReplicatedAppendsPreserveForeignLsns) {
  // A replica's log mirrors the primary's LSNs; a tail over *that* log
  // (cascading reads, promotion) must see the original numbering.
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1, {}, /*first_lsn=*/41).ok());
  for (int i = 0; i < 5; ++i) {
    writer.AppendReplicated(Payload(i + 1),
                            static_cast<mvcc::Timestamp>(i + 1),
                            /*lsn=*/41 + static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(writer.Sync().ok());
  EXPECT_EQ(writer.appended_lsn(), 45u);

  WalTailer tail(wal_dir_);
  ASSERT_TRUE(tail.Seek(41, writer.durable_lsn() + 1).ok());
  std::vector<TailRecord> got;
  ASSERT_TRUE(tail.Poll(writer.durable_lsn(), SIZE_MAX, &got).ok());
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got.front().lsn, 41u);
  EXPECT_EQ(got.back().lsn, 45u);
  writer.Stop();
}

}  // namespace
}  // namespace anker::wal
