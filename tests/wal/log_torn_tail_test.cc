// The log reader's trust model under fire: a crashed append may leave a
// torn record at the end of the newest segment, and recovery must stop
// cleanly at the last intact record — for *every* possible tear point.
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "wal/io_util.h"
#include "wal/log_reader.h"
#include "wal/log_writer.h"

namespace anker::wal {
namespace {

class TornTailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_wal_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
    wal_dir_ = dir_ + "/wal";
  }
  void TearDown() override { RemoveDirRecursive(dir_); }

  /// Writes `n` commit records (commit_ts = 1..n, one write each) and
  /// returns the bytes of the single segment produced.
  std::string WriteLog(int n) {
    LogWriterOptions options;
    options.mode = DurabilityMode::kGroupCommit;
    LogWriter writer(wal_dir_, options);
    EXPECT_TRUE(writer.Open(1).ok());
    for (int i = 1; i <= n; ++i) {
      std::string payload;
      EncodeCommit(static_cast<mvcc::Timestamp>(i),
                   {{0, 0, static_cast<uint64_t>(i), 1000ULL + i}},
                   &payload);
      writer.Append(payload, static_cast<mvcc::Timestamp>(i));
    }
    EXPECT_TRUE(writer.Sync().ok());
    writer.Stop();
    std::string data;
    EXPECT_TRUE(ReadFile(wal_dir_ + "/wal-00000001.log", &data).ok());
    return data;
  }

  void WriteSegmentBytes(const std::string& name, const std::string& data) {
    EXPECT_TRUE(EnsureDir(wal_dir_).ok());
    FILE* f = std::fopen((wal_dir_ + "/" + name).c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(data.data(), 1, data.size(), f), data.size());
    std::fclose(f);
  }

  /// Scans without repair; returns (delivered record count, torn_tail).
  std::pair<uint64_t, bool> ScanCount(Status* status = nullptr) {
    uint64_t count = 0;
    auto result = LogReader::Scan(
        wal_dir_, [&](uint64_t, const WalRecord&) {
          ++count;
          return Status::OK();
        },
        /*repair=*/false);
    if (status != nullptr) {
      *status = result.status();
    } else {
      EXPECT_TRUE(result.ok()) << result.status().ToString();
    }
    if (!result.ok()) return {count, false};
    return {count, result.value().torn_tail};
  }

  std::string dir_;
  std::string wal_dir_;
};

TEST_F(TornTailTest, CleanLogScansFully) {
  WriteLog(10);
  const auto [count, torn] = ScanCount();
  EXPECT_EQ(count, 10u);
  EXPECT_FALSE(torn);
}

TEST_F(TornTailTest, ChoppedAtEveryByteOffsetOfLastRecord) {
  const std::string full = WriteLog(5);
  // Locate the start of the last record: re-write logs with 4 records to
  // learn the prefix length.
  RemoveDirRecursive(wal_dir_);
  const std::string prefix4 = WriteLog(4);
  ASSERT_LT(prefix4.size(), full.size());
  // Sanity: the 5-record image extends the 4-record image.
  ASSERT_EQ(full.compare(0, prefix4.size(), prefix4), 0);

  for (size_t cut = prefix4.size(); cut < full.size(); ++cut) {
    RemoveDirRecursive(wal_dir_);
    WriteSegmentBytes("wal-00000001.log", full.substr(0, cut));
    const auto [count, torn] = ScanCount();
    EXPECT_EQ(count, 4u) << "cut at byte " << cut;
    // Cutting exactly at the record boundary leaves a clean 4-record log;
    // any byte into the last record is a tear.
    EXPECT_EQ(torn, cut != prefix4.size()) << "cut at byte " << cut;
  }
}

TEST_F(TornTailTest, ChoppedInsideHeader) {
  const std::string full = WriteLog(3);
  for (size_t cut = 0; cut < kSegmentHeaderBytes; ++cut) {
    RemoveDirRecursive(wal_dir_);
    WriteSegmentBytes("wal-00000001.log", full.substr(0, cut));
    const auto [count, torn] = ScanCount();
    EXPECT_EQ(count, 0u) << "cut at byte " << cut;
    EXPECT_TRUE(torn) << "cut at byte " << cut;
  }
}

TEST_F(TornTailTest, CrcCorruptionStopsDelivery) {
  const std::string full = WriteLog(6);
  RemoveDirRecursive(wal_dir_);
  const size_t prefix3 = WriteLog(3).size();
  // Flip one payload byte of record 4 (just past its 8-byte frame).
  std::string corrupt = full;
  corrupt[prefix3 + kRecordFrameBytes + 2] ^= 0x40;
  RemoveDirRecursive(wal_dir_);
  WriteSegmentBytes("wal-00000001.log", corrupt);
  const auto [count, torn] = ScanCount();
  EXPECT_EQ(count, 3u);
  EXPECT_TRUE(torn);
}

TEST_F(TornTailTest, CorruptionInNonLastSegmentIsAnError) {
  const std::string seg1 = WriteLog(4);
  // Fabricate a valid second segment so segment 1 is no longer the tail.
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  {
    LogWriter writer(wal_dir_ + "2", options);
    ASSERT_TRUE(writer.Open(2).ok());
    std::string payload;
    EncodeCommit(50, {{0, 0, 1, 2}}, &payload);
    writer.Append(payload, 50);
    ASSERT_TRUE(writer.Sync().ok());
    writer.Stop();
  }
  std::string seg2;
  ASSERT_TRUE(ReadFile(wal_dir_ + "2/wal-00000002.log", &seg2).ok());
  RemoveDirRecursive(wal_dir_ + "2");
  WriteSegmentBytes("wal-00000002.log", seg2);

  // Truncate segment 1 mid-record: now it is a mid-log hole.
  WriteSegmentBytes("wal-00000001.log",
                    seg1.substr(0, seg1.size() - 3));
  Status status;
  ScanCount(&status);
  EXPECT_FALSE(status.ok());
}

TEST_F(TornTailTest, RepairTruncatesTheTear) {
  const std::string full = WriteLog(5);
  RemoveDirRecursive(wal_dir_);
  WriteSegmentBytes("wal-00000001.log", full.substr(0, full.size() - 7));

  uint64_t count = 0;
  auto result = LogReader::Scan(
      wal_dir_, [&](uint64_t, const WalRecord&) {
        ++count;
        return Status::OK();
      },
      /*repair=*/true);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(count, 4u);
  EXPECT_TRUE(result.value().torn_tail);

  // After repair the log is clean: a second scan sees no tear.
  const auto [count2, torn2] = ScanCount();
  EXPECT_EQ(count2, 4u);
  EXPECT_FALSE(torn2);
}

TEST_F(TornTailTest, SegmentRotationPreservesAllRecords) {
  LogWriterOptions options;
  options.mode = DurabilityMode::kGroupCommit;
  options.segment_bytes = 256;  // Tiny: force many rotations.
  LogWriter writer(wal_dir_, options);
  ASSERT_TRUE(writer.Open(1).ok());
  const int kRecords = 200;
  for (int i = 1; i <= kRecords; ++i) {
    std::string payload;
    EncodeCommit(static_cast<mvcc::Timestamp>(i),
                 {{0, 0, static_cast<uint64_t>(i), 7ULL}}, &payload);
    writer.Append(payload, static_cast<mvcc::Timestamp>(i));
  }
  ASSERT_TRUE(writer.Sync().ok());
  writer.Stop();

  std::vector<std::string> names;
  ASSERT_TRUE(ListDir(wal_dir_, &names).ok());
  EXPECT_GT(names.size(), 3u) << "expected multiple segments";

  mvcc::Timestamp last_ts = 0;
  uint64_t last_lsn = 0;
  auto result = LogReader::Scan(
      wal_dir_,
      [&](uint64_t lsn, const WalRecord& record) {
        // Replay order must be commit order, across segment boundaries,
        // and LSNs must march in lockstep.
        EXPECT_GT(record.commit_ts, last_ts);
        EXPECT_EQ(lsn, last_lsn + 1);
        last_ts = record.commit_ts;
        last_lsn = lsn;
        return Status::OK();
      },
      /*repair=*/false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().records_read, static_cast<uint64_t>(kRecords));
  EXPECT_FALSE(result.value().torn_tail);
  EXPECT_EQ(result.value().next_segment_seq,
            result.value().segments_read + 1);
}

TEST_F(TornTailTest, EmptyAndMissingDirectories) {
  const auto [count0, torn0] = ScanCount();  // wal dir never created
  EXPECT_EQ(count0, 0u);
  EXPECT_FALSE(torn0);
  ASSERT_TRUE(EnsureDir(wal_dir_).ok());
  const auto [count1, torn1] = ScanCount();  // exists but empty
  EXPECT_EQ(count1, 0u);
  EXPECT_FALSE(torn1);
}

}  // namespace
}  // namespace anker::wal
