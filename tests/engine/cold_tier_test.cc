// The cold tier end to end at engine level: spill + transparent read-back,
// the incremental checkpoint path (unchanged segments referenced by extent
// id, dirty segments republished), recovery resolving the manifest's
// extent section, and the config validation around the new knobs.
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "wal/io_util.h"

namespace anker::engine {
namespace {

constexpr size_t kRows = 6000;
constexpr size_t kSegmentRows = 1024;

class ColdTierTest : public ::testing::TestWithParam<txn::ProcessingMode> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_cold_tier_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { wal::RemoveDirRecursive(dir_); }

  DatabaseConfig ColdConfig(uint64_t budget = 1) {
    DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
    config.durability = wal::DurabilityMode::kGroupCommit;
    config.data_dir = dir_;
    config.cold_budget_bytes = budget;
    config.cold_segment_rows = kSegmentRows;
    return config;
  }

  static storage::Table* Load(Database* db) {
    auto created = db->CreateTable("ledger",
                                   {{"balance", storage::ValueType::kInt64},
                                    {"price", storage::ValueType::kDouble}},
                                   kRows);
    EXPECT_TRUE(created.ok());
    storage::Table* table = created.value();
    for (size_t row = 0; row < kRows; ++row) {
      table->GetColumn("balance")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row % 97)));
      table->GetColumn("price")->LoadValue(
          row, storage::EncodeDouble(0.25 * static_cast<double>(row)));
    }
    return table;
  }

  std::string dir_;
};

TEST_P(ColdTierTest, SpillAndReadBackIsLossless) {
  auto db = std::make_unique<Database>(ColdConfig());
  storage::Table* table = Load(db.get());
  db->Start();
  const uint64_t digest_before = db->ContentDigest();

  ASSERT_TRUE(db->SpillColdData().ok());
  ColdTierStats stats = db->cold_stats();
  EXPECT_GT(stats.cold_bytes, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u) << "a version-free, unpinned load "
                                         "must spill completely";

  // Point reads fault segments back in transparently.
  EXPECT_EQ(storage::DecodeInt64(
                table->GetColumn("balance")->ReadLatestRaw(5000)),
            5000 % 97);
  EXPECT_EQ(db->ContentDigest(), digest_before);
  EXPECT_GT(db->cold_stats().counters.segment_fault_ins, 0u);
  db->Stop();
}

TEST_P(ColdTierTest, CheckpointsAreIncrementalOverUnchangedSegments) {
  // The incremental path needs a clean heterogeneous snapshot; the
  // homogeneous modes read through live MVCC and always resolve in full.
  const bool hetero =
      GetParam() == txn::ProcessingMode::kHeterogeneousSerializable;
  auto db = std::make_unique<Database>(ColdConfig(1ull << 40));
  storage::Table* table = Load(db.get());
  db->Start();

  auto first = db->Checkpoint();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value().data_bytes_written, 0u)
      << "the first checkpoint has nothing to reuse";

  // No writes since: the second checkpoint must reference every column
  // extent by id and rewrite no column bytes at all.
  auto second = db->Checkpoint();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  if (hetero) {
    EXPECT_EQ(second.value().data_bytes_written, 0u);
    EXPECT_GT(second.value().extent_bytes_reused, 0u);
  } else {
    EXPECT_EQ(second.value().data_bytes_written,
              first.value().data_bytes_written);
    EXPECT_EQ(second.value().extent_bytes_reused, 0u);
  }
  if (!hetero) {
    db->Stop();
    return;
  }

  // Dirty one segment of one column (LoadValue: no version chain, so the
  // next snapshot stays clean): the third checkpoint republishes only
  // that segment and references everything else by id.
  table->GetColumn("balance")->LoadValue(42, storage::EncodeInt64(777));
  auto third = db->Checkpoint();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_GT(third.value().data_bytes_written, 0u);
  EXPECT_LT(third.value().data_bytes_written,
            first.value().data_bytes_written / 2);
  EXPECT_GT(third.value().extent_bytes_reused, 0u);
  db->Stop();
}

TEST_P(ColdTierTest, RecoveryResolvesExtentBackedCheckpoints) {
  uint64_t digest = 0;
  {
    auto db = std::make_unique<Database>(ColdConfig());
    storage::Table* table = Load(db.get());
    db->Start();
    // Mixed residency at checkpoint time: spill all, then dirty a few
    // rows so some segments are hot again.
    ASSERT_TRUE(db->SpillColdData().ok());
    for (int i = 0; i < 5; ++i) {
      auto txn = db->BeginOltp();
      txn->Write(table->GetColumn("price"),
                 static_cast<uint64_t>(i * 1100),
                 storage::EncodeDouble(9000.0 + i));
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    ASSERT_TRUE(db->Checkpoint().status().ok());
    // Post-checkpoint WAL tail on top of the extent-backed image.
    auto txn = db->BeginOltp();
    txn->Write(table->GetColumn("balance"), 9,
               storage::EncodeInt64(-12345));
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    digest = db->ContentDigest();
    db->Stop();
  }
  auto reopened = Database::Open(ColdConfig());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  Database* db = reopened.value().get();
  db->Start();
  EXPECT_EQ(db->ContentDigest(), digest);

  if (GetParam() == txn::ProcessingMode::kHeterogeneousSerializable) {
    // The recovered segments must remember their extents. The first
    // post-recovery checkpoint seals the versions WAL replay created
    // (forcing the resolved path); the one after sees a clean snapshot
    // again and must reuse every extent replay left untouched.
    ASSERT_TRUE(db->Checkpoint().status().ok());
    auto again = db->Checkpoint();
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    EXPECT_GT(again.value().extent_bytes_reused, 0u);
  }
  db->Stop();
}

TEST_P(ColdTierTest, ValidateRejectsBadColdKnobs) {
  DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
  config.cold_budget_bytes = 1;
  EXPECT_FALSE(config.Validate().ok()) << "budget without data_dir";
  config.data_dir = dir_;
  EXPECT_TRUE(config.Validate().ok());
  config.cold_segment_rows = 1000;  // Not a power of two.
  EXPECT_FALSE(config.Validate().ok());
  config.cold_segment_rows = 512;  // Below the floor.
  EXPECT_FALSE(config.Validate().ok());
  config.cold_segment_rows = 1 << 25;  // Above kMaxExtentRows.
  EXPECT_FALSE(config.Validate().ok());
  config.cold_segment_rows = 4096;
  EXPECT_TRUE(config.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ColdTierTest,
    ::testing::Values(txn::ProcessingMode::kHeterogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      return info.param == txn::ProcessingMode::kHeterogeneousSerializable
                 ? "heterogeneous"
                 : "homogeneous";
    });

}  // namespace
}  // namespace anker::engine
