// Whole-stack consistency tests: concurrent balance transfers conserve a
// global total; every read-consistent view of the database (OLAP snapshot
// or live MVCC read) must therefore sum to exactly that total at any time.
// A single torn read, lost update, stale chain resolution or snapshot that
// mixes two epochs breaks the invariant.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "engine/database.h"
#include "storage/value.h"

namespace anker::engine {
namespace {

constexpr size_t kAccounts = 8192;
constexpr int64_t kInitialBalance = 1000;

class ConsistencyTest : public ::testing::TestWithParam<txn::ProcessingMode> {
 protected:
  void SetUp() override {
    DatabaseConfig config = DatabaseConfig::ForMode(GetParam());
    config.snapshot_interval_commits = 500;  // high-frequency epochs
    config.gc_interval_millis = 20;
    db_ = std::make_unique<Database>(config);
    db_->Start();
    auto table = db_->CreateTable(
        "accounts", {{"balance", storage::ValueType::kInt64}}, kAccounts);
    ASSERT_TRUE(table.ok());
    balance_ = table.value()->GetColumn("balance");
    for (size_t row = 0; row < kAccounts; ++row) {
      balance_->LoadValue(row, storage::EncodeInt64(kInitialBalance));
    }
  }

  /// One random transfer; returns true if committed.
  bool Transfer(Rng* rng) {
    auto txn = db_->BeginOltp();
    const uint64_t from = rng->NextBounded(kAccounts);
    uint64_t to = rng->NextBounded(kAccounts);
    if (to == from) to = (to + 1) % kAccounts;
    const int64_t amount = rng->NextInRange(1, 50);
    const int64_t from_balance =
        storage::DecodeInt64(txn->Read(balance_, from));
    const int64_t to_balance = storage::DecodeInt64(txn->Read(balance_, to));
    txn->Write(balance_, from, storage::EncodeInt64(from_balance - amount));
    txn->Write(balance_, to, storage::EncodeInt64(to_balance + amount));
    return db_->Commit(txn.get()).ok();
  }

  /// Sums all balances through a consistent OLAP view.
  int64_t OlapTotal() {
    auto ctx = db_->BeginOlap({balance_});
    EXPECT_TRUE(ctx.ok());
    const ColumnReader reader = ctx.value()->Reader(balance_);
    ScanDriver driver({&reader});
    int64_t total = 0;
    driver.Fold<int64_t>(
        &total,
        [](int64_t& acc, const auto& row) {
          acc += storage::DecodeInt64(row.Col(0));
        },
        [](int64_t& into, int64_t&& from) { into += from; });
    EXPECT_TRUE(db_->FinishOlap(ctx.TakeValue()).ok());
    return total;
  }

  std::unique_ptr<Database> db_;
  storage::Column* balance_ = nullptr;
};

TEST_P(ConsistencyTest, SequentialTransfersConserveTotal) {
  Rng rng(1);
  int committed = 0;
  for (int i = 0; i < 2000; ++i) {
    if (Transfer(&rng)) ++committed;
  }
  EXPECT_GT(committed, 1500);
  EXPECT_EQ(OlapTotal(),
            static_cast<int64_t>(kAccounts) * kInitialBalance);
}

TEST_P(ConsistencyTest, ConcurrentTransfersConserveTotal) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::vector<std::thread> workers;
  std::atomic<int> committed{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 100);
      for (int i = 0; i < kPerThread; ++i) {
        if (Transfer(&rng)) committed.fetch_add(1);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_GT(committed.load(), kThreads * kPerThread / 2);
  EXPECT_EQ(OlapTotal(),
            static_cast<int64_t>(kAccounts) * kInitialBalance);
}

TEST_P(ConsistencyTest, EverySnapshotDuringChurnSeesExactTotal) {
  // The strongest check: while transfers churn on background threads,
  // repeated OLAP reads must see the invariant total *every single time*.
  // Any snapshot mixing two commits' halves, or a scan leaking a
  // too-new/too-old version, shows up as an off-by-amount total.
  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(t + 7);
      while (!stop.load(std::memory_order_relaxed)) {
        (void)Transfer(&rng);
      }
    });
  }
  const int64_t expected =
      static_cast<int64_t>(kAccounts) * kInitialBalance;
  for (int round = 0; round < 30; ++round) {
    ASSERT_EQ(OlapTotal(), expected) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& worker : workers) worker.join();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConsistencyTest,
    ::testing::Values(txn::ProcessingMode::kHomogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                      txn::ProcessingMode::kHeterogeneousSerializable),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      switch (info.param) {
        case txn::ProcessingMode::kHomogeneousSerializable:
          return "HomogeneousSerializable";
        case txn::ProcessingMode::kHomogeneousSnapshotIsolation:
          return "HomogeneousSnapshotIsolation";
        case txn::ProcessingMode::kHeterogeneousSerializable:
          return "HeterogeneousSerializable";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace anker::engine
