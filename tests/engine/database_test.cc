#include "engine/database.h"

#include <gtest/gtest.h>

#include "wal/io_util.h"

#include "storage/value.h"

namespace anker::engine {
namespace {

using storage::ColumnDef;
using storage::ValueType;

std::vector<ColumnDef> TestSchema() {
  return {{"k", ValueType::kInt64}, {"v", ValueType::kInt64}};
}

class DatabaseModeTest
    : public ::testing::TestWithParam<txn::ProcessingMode> {};

TEST_P(DatabaseModeTest, OltpCommitVisibleToNextTxn) {
  Database db(DatabaseConfig::ForMode(GetParam()));
  db.Start();
  auto table = db.CreateTable("t", TestSchema(), 1000);
  ASSERT_TRUE(table.ok());
  storage::Column* v = table.value()->GetColumn("v");

  auto writer = db.BeginOltp();
  writer->Write(v, 1, 11);
  ASSERT_TRUE(db.Commit(writer.get()).ok());

  auto reader = db.BeginOltp();
  EXPECT_EQ(reader->Read(v, 1), 11u);
  db.Abort(reader.get());
}

TEST_P(DatabaseModeTest, OlapSeesConsistentData) {
  Database db(DatabaseConfig::ForMode(GetParam()));
  db.Start();
  auto table = db.CreateTable("t", TestSchema(), 1000);
  ASSERT_TRUE(table.ok());
  storage::Column* v = table.value()->GetColumn("v");
  for (size_t row = 0; row < 1000; ++row) v->LoadValue(row, 2);

  auto ctx = db.BeginOlap({v});
  ASSERT_TRUE(ctx.ok());
  const ColumnReader reader = ctx.value()->Reader(v);
  double sum = ScanColumnSum(reader, /*as_double=*/false, nullptr);
  EXPECT_DOUBLE_EQ(sum, 2000.0);
  ASSERT_TRUE(db.FinishOlap(ctx.TakeValue()).ok());
}

TEST_P(DatabaseModeTest, OlapIsolatedFromLaterCommits) {
  Database db(DatabaseConfig::ForMode(GetParam()));
  db.Start();
  auto table = db.CreateTable("t", TestSchema(), 100);
  ASSERT_TRUE(table.ok());
  storage::Column* v = table.value()->GetColumn("v");

  auto ctx = db.BeginOlap({v});
  ASSERT_TRUE(ctx.ok());

  // Commit a write after the OLAP transaction began.
  auto writer = db.BeginOltp();
  writer->Write(v, 0, 777);
  ASSERT_TRUE(db.Commit(writer.get()).ok());

  const ColumnReader reader = ctx.value()->Reader(v);
  EXPECT_EQ(reader.Get(0), 0u);  // pre-commit state
  ASSERT_TRUE(db.FinishOlap(ctx.TakeValue()).ok());

  auto ctx2 = db.BeginOlap({v});
  ASSERT_TRUE(ctx2.ok());
  // Heterogeneous: a fresh epoch must have been triggered for the value to
  // appear; trigger manually via the snapshot interval = commits hook not
  // yet reached, so force one.
  if (db.config().heterogeneous()) {
    db.snapshot_manager()->TriggerEpoch();
    ASSERT_TRUE(db.FinishOlap(ctx2.TakeValue()).ok());
    auto ctx3 = db.BeginOlap({v});
    ASSERT_TRUE(ctx3.ok());
    EXPECT_EQ(ctx3.value()->Reader(v).Get(0), 777u);
    ASSERT_TRUE(db.FinishOlap(ctx3.TakeValue()).ok());
  } else {
    EXPECT_EQ(ctx2.value()->Reader(v).Get(0), 777u);
    ASSERT_TRUE(db.FinishOlap(ctx2.TakeValue()).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, DatabaseModeTest,
    ::testing::Values(txn::ProcessingMode::kHomogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                      txn::ProcessingMode::kHeterogeneousSerializable),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      switch (info.param) {
        case txn::ProcessingMode::kHomogeneousSerializable:
          return "HomogeneousSerializable";
        case txn::ProcessingMode::kHomogeneousSnapshotIsolation:
          return "HomogeneousSnapshotIsolation";
        case txn::ProcessingMode::kHeterogeneousSerializable:
          return "HeterogeneousSerializable";
      }
      return "Unknown";
    });

TEST(DatabaseTest, SnapshotEpochTriggeredEveryNCommits) {
  DatabaseConfig config =
      DatabaseConfig::ForMode(txn::ProcessingMode::kHeterogeneousSerializable);
  config.snapshot_interval_commits = 5;
  Database db(config);
  db.Start();
  auto table = db.CreateTable("t", TestSchema(), 100);
  ASSERT_TRUE(table.ok());
  storage::Column* v = table.value()->GetColumn("v");

  auto ctx = db.BeginOlap({v});
  ASSERT_TRUE(ctx.ok());
  const mvcc::Timestamp first_epoch = ctx.value()->read_ts();
  ASSERT_TRUE(db.FinishOlap(ctx.TakeValue()).ok());

  for (int i = 0; i < 5; ++i) {
    auto txn = db.BeginOltp();
    txn->Write(v, static_cast<uint64_t>(i), 9);
    ASSERT_TRUE(db.Commit(txn.get()).ok());
  }

  auto ctx2 = db.BeginOlap({v});
  ASSERT_TRUE(ctx2.ok());
  EXPECT_GT(ctx2.value()->read_ts(), first_epoch);
  ASSERT_TRUE(db.FinishOlap(ctx2.TakeValue()).ok());
}

TEST(DatabaseTest, HomogeneousGcRunsInBackground) {
  DatabaseConfig config =
      DatabaseConfig::ForMode(txn::ProcessingMode::kHomogeneousSerializable);
  config.gc_interval_millis = 5;
  Database db(config);
  db.Start();
  auto table = db.CreateTable("t", TestSchema(), 100);
  ASSERT_TRUE(table.ok());
  storage::Column* v = table.value()->GetColumn("v");
  for (int i = 0; i < 20; ++i) {
    auto txn = db.BeginOltp();
    txn->Write(v, 0, static_cast<uint64_t>(i));
    ASSERT_TRUE(db.Commit(txn.get()).ok());
  }
  // Wait for the GC thread to unlink the dead versions.
  for (int i = 0; i < 200 && db.garbage_collector()->total_unlinked() < 10;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(db.garbage_collector()->total_unlinked(), 10u);
  db.Stop();
}

TEST(DatabaseTest, HeterogeneousRequiresSnapshotBackend) {
  DatabaseConfig config;
  config.mode = txn::ProcessingMode::kHeterogeneousSerializable;
  config.backend = snapshot::BufferBackend::kPlain;
  // The constructor treats an invalid configuration as a programming
  // error; Database::Create is the recoverable path.
  EXPECT_DEATH(Database db(config), "snapshot-capable");
  auto created = Database::Create(config);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, ConfigValidateRejectsMismatchedModeBackendPairs) {
  // Homogeneous baselines never snapshot: a copy-on-write backend would
  // only add fault-handling cost and skew comparisons; rejected.
  for (txn::ProcessingMode mode :
       {txn::ProcessingMode::kHomogeneousSerializable,
        txn::ProcessingMode::kHomogeneousSnapshotIsolation}) {
    for (snapshot::BufferBackend backend :
         {snapshot::BufferBackend::kPhysical,
          snapshot::BufferBackend::kRewired,
          snapshot::BufferBackend::kVmSnapshot}) {
      DatabaseConfig config;
      config.mode = mode;
      config.backend = backend;
      EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
    }
  }
  // Every ForMode default validates, and heterogeneous accepts any
  // snapshot-capable backend.
  for (txn::ProcessingMode mode :
       {txn::ProcessingMode::kHomogeneousSerializable,
        txn::ProcessingMode::kHomogeneousSnapshotIsolation,
        txn::ProcessingMode::kHeterogeneousSerializable}) {
    EXPECT_TRUE(DatabaseConfig::ForMode(mode).Validate().ok());
  }
  DatabaseConfig hetero;
  hetero.mode = txn::ProcessingMode::kHeterogeneousSerializable;
  hetero.backend = snapshot::BufferBackend::kPhysical;
  EXPECT_TRUE(hetero.Validate().ok());
  auto created = Database::Create(hetero);
  ASSERT_TRUE(created.ok());
  EXPECT_NE(created.value(), nullptr);
}

TEST(DatabaseTest, ConfigValidateRejectsUncreatableDataDir) {
  // An uncreatable data_dir (here: nested under a file) must come back
  // as a recoverable InvalidArgument from Validate/Create/Open — not as
  // an IO failure deep inside the engine. A creatable one is mkdir -p'd
  // by the probe itself.
  const std::string base = ::testing::TempDir() + "anker_validate_probe";
  FILE* file = std::fopen(base.c_str(), "w");
  ASSERT_NE(file, nullptr);
  std::fclose(file);

  DatabaseConfig config;  // Heterogeneous default.
  config.durability = wal::DurabilityMode::kGroupCommit;
  config.data_dir = base + "/db";  // Parent is a regular file.
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Database::Create(config).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Database::Open(config).status().code(),
            StatusCode::kInvalidArgument);
  std::remove(base.c_str());

  config.data_dir = ::testing::TempDir() + "anker_validate_ok/nested/dir";
  EXPECT_TRUE(config.Validate().ok());  // Created on the spot (mkdir -p).
  EXPECT_TRUE(wal::PathExists(config.data_dir));
  wal::RemoveDirRecursive(::testing::TempDir() + "anker_validate_ok");
}

}  // namespace
}  // namespace anker::engine
