// Engine-level WAL shipping: a primary Database's log tailed into a
// replica Database via ApplyReplicated. This is the replication data
// plane without any sockets — the server wraps exactly this loop.
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "storage/value.h"
#include "wal/io_util.h"
#include "wal/wal_tail.h"

namespace anker::engine {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_repl_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { wal::RemoveDirRecursive(dir_); }

  DatabaseConfig Config(const std::string& subdir) const {
    DatabaseConfig config =
        DatabaseConfig::ForMode(txn::ProcessingMode::kHeterogeneousSerializable);
    config.durability = wal::DurabilityMode::kGroupCommit;
    config.data_dir = dir_ + "/" + subdir;
    config.wal_segment_bytes = 4096;  // Exercise rotation.
    return config;
  }

  static void MakeTable(Database* db) {
    auto table = db->CreateTable(
        "acct", {{"bal", storage::ValueType::kInt64}}, 64);
    ASSERT_TRUE(table.ok()) << table.status().ToString();
  }

  static void CommitN(Database* db, int n, uint64_t base) {
    storage::Table* table = db->catalog().GetTable("acct");
    ASSERT_NE(table, nullptr);
    storage::Column* bal = table->GetColumn("bal");
    for (int i = 0; i < n; ++i) {
      auto txn = db->BeginOltp();
      txn->Write(bal, static_cast<uint64_t>(i % 64), base + i);
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
  }

  /// Ships everything durable on `primary` into `replica`; returns the
  /// number of records applied.
  static int ShipAll(Database* primary, Database* replica) {
    wal::WalTailer tail(primary->wal_dir());
    wal::LogWriter* log = primary->log_writer();
    EXPECT_TRUE(log->Sync().ok());
    EXPECT_TRUE(
        tail.Seek(replica->applied_lsn() + 1, log->durable_lsn() + 1).ok());
    int applied = 0;
    for (;;) {
      std::vector<wal::TailRecord> batch;
      EXPECT_TRUE(tail.Poll(log->durable_lsn(), SIZE_MAX, &batch).ok());
      if (batch.empty()) break;
      for (const wal::TailRecord& r : batch) {
        const Status s = replica->ApplyReplicated(r.lsn, r.payload);
        EXPECT_TRUE(s.ok()) << s.ToString();
        ++applied;
      }
    }
    return applied;
  }

  std::string dir_;
};

TEST_F(ReplicationTest, ShipsSchemaAndCommitsAndConverges) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());
  CommitN(primary.get(), 200, 1000);

  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok());
  auto replica = replica_r.TakeValue();
  const int applied = ShipAll(primary.get(), replica.get());
  EXPECT_GT(applied, 200);  // create-table + commits

  EXPECT_EQ(primary->ContentDigest(), replica->ContentDigest());
  EXPECT_EQ(replica->applied_lsn(), primary->log_writer()->appended_lsn());
}

TEST_F(ReplicationTest, ReplicaRestartResumesFromItsOwnLog) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());
  CommitN(primary.get(), 50, 1000);

  uint64_t applied_before = 0;
  {
    auto replica_r = Database::Open(Config("replica"));
    ASSERT_TRUE(replica_r.ok());
    auto replica = replica_r.TakeValue();
    ShipAll(primary.get(), replica.get());
    // The local mirror is flushed before "crash": only durable local
    // records survive, exactly like the primary's own log.
    ASSERT_TRUE(replica->log_writer()->Sync().ok());
    applied_before = replica->applied_lsn();
  }

  CommitN(primary.get(), 50, 5000);

  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok());
  auto replica = replica_r.TakeValue();
  // Recovery replayed the mirrored log: the watermark is where it was.
  EXPECT_EQ(replica->applied_lsn(), applied_before);
  ShipAll(primary.get(), replica.get());
  EXPECT_EQ(primary->ContentDigest(), replica->ContentDigest());
}

TEST_F(ReplicationTest, ReplicaTakesItsOwnCheckpointsAndRecoversFromThem) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());
  CommitN(primary.get(), 80, 1000);

  {
    auto replica_r = Database::Open(Config("replica"));
    ASSERT_TRUE(replica_r.ok());
    auto replica = replica_r.TakeValue();
    ShipAll(primary.get(), replica.get());
    auto ckpt = replica->Checkpoint();
    ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
    // Deliberately do NOT sync the local log after the checkpoint: the
    // manifest's wal_lsn alone must carry the watermark forward.
  }

  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok());
  auto replica = replica_r.TakeValue();
  EXPECT_EQ(primary->ContentDigest(), replica->ContentDigest());
  // And the stream resumes without a gap.
  CommitN(primary.get(), 20, 9000);
  ShipAll(primary.get(), replica.get());
  EXPECT_EQ(primary->ContentDigest(), replica->ContentDigest());
}

TEST_F(ReplicationTest, BootstrapFromFetchedCheckpoint) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());
  CommitN(primary.get(), 120, 1000);
  auto ckpt = primary->Checkpoint();
  ASSERT_TRUE(ckpt.ok());
  CommitN(primary.get(), 30, 7000);  // Tail past the checkpoint.

  // Simulate FETCH_CHECKPOINT: copy the checkpoint directory + CURRENT
  // into an empty replica data_dir (no WAL files travel).
  const std::string replica_dir = dir_ + "/replica";
  ASSERT_TRUE(wal::EnsureDir(replica_dir).ok());
  const std::string ckpt_name =
      ckpt.value().directory.substr(ckpt.value().directory.rfind('/') + 1);
  ASSERT_EQ(::system(("cp -r '" + ckpt.value().directory + "' '" +
                      replica_dir + "/" + ckpt_name + "' && cp '" +
                      primary->config().data_dir + "/CURRENT' '" +
                      replica_dir + "/CURRENT'")
                         .c_str()),
            0);

  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok()) << replica_r.status().ToString();
  auto replica = replica_r.TakeValue();
  // The manifest watermark positions the stream resume point.
  EXPECT_GT(replica->applied_lsn(), 0u);
  ShipAll(primary.get(), replica.get());
  EXPECT_EQ(primary->ContentDigest(), replica->ContentDigest());
}

TEST_F(ReplicationTest, WaitAppliedLsnGatesReadYourWrites) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());
  CommitN(primary.get(), 10, 1000);

  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok());
  auto replica = replica_r.TakeValue();

  const uint64_t token = primary->log_writer()->appended_lsn();
  // Not shipped yet: the wait must time out recoverably, not block.
  const Status timeout = replica->WaitAppliedLsn(token, /*timeout_millis=*/20);
  EXPECT_TRUE(timeout.IsResourceBusy()) << timeout.ToString();

  ShipAll(primary.get(), replica.get());
  EXPECT_TRUE(replica->WaitAppliedLsn(token, /*timeout_millis=*/1000).ok());
}

TEST_F(ReplicationTest, HostileStreamBytesAreRecoverable) {
  auto replica_r = Database::Open(Config("replica"));
  ASSERT_TRUE(replica_r.ok());
  auto replica = replica_r.TakeValue();

  // Garbage payload at the expected LSN: recoverable decode error.
  EXPECT_FALSE(replica->ApplyReplicated(1, "\x07garbage").ok());
  // LSN gap (stream skipped ahead): refused, not applied.
  std::string payload;
  wal::EncodeCommit(5, {{0, 0, 0, 1}}, &payload);
  EXPECT_FALSE(replica->ApplyReplicated(40, payload).ok());
  // Redo against a table that does not exist: recoverable.
  EXPECT_FALSE(replica->ApplyReplicated(1, payload).ok());
  EXPECT_EQ(replica->applied_lsn(), 0u);
}

TEST_F(ReplicationTest, SyncAckWaiterGatesCommitAcks) {
  auto primary_r = Database::Open(Config("primary"));
  ASSERT_TRUE(primary_r.ok());
  auto primary = primary_r.TakeValue();
  MakeTable(primary.get());

  // A waiter that refuses: commits report the uncertainty instead of
  // acknowledging (the record IS durable locally — only the ack is
  // withheld).
  primary->SetReplicationWaiter([](uint64_t) {
    return Status::ResourceBusy("no replica ack");
  });
  storage::Table* table = primary->catalog().GetTable("acct");
  storage::Column* bal = table->GetColumn("bal");
  {
    auto txn = primary->BeginOltp();
    txn->Write(bal, 0, 42);
    const Status s = primary->Commit(txn.get());
    EXPECT_TRUE(s.IsResourceBusy()) << s.ToString();
    EXPECT_GT(txn->durable_lsn(), 0u);
  }
  // Cleared: acks flow again, and the token is the commit's LSN.
  primary->SetReplicationWaiter(nullptr);
  {
    auto txn = primary->BeginOltp();
    txn->Write(bal, 1, 43);
    ASSERT_TRUE(primary->Commit(txn.get()).ok());
    EXPECT_EQ(txn->durable_lsn(), primary->log_writer()->appended_lsn());
  }
}

}  // namespace
}  // namespace anker::engine
