#include "engine/snapshot_manager.h"

#include <gtest/gtest.h>

#include "vm/page.h"

namespace anker::engine {
namespace {

struct Fixture {
  Fixture() {
    auto buffer = snapshot::CreateBuffer(
        snapshot::BufferBackend::kVmSnapshot, vm::kPageSize);
    ANKER_CHECK(buffer.ok());
    column_a = std::make_unique<storage::Column>(
        "a", storage::ValueType::kInt64, buffer.TakeValue(), 512);
    auto buffer_b = snapshot::CreateBuffer(
        snapshot::BufferBackend::kVmSnapshot, vm::kPageSize);
    ANKER_CHECK(buffer_b.ok());
    column_b = std::make_unique<storage::Column>(
        "b", storage::ValueType::kInt64, buffer_b.TakeValue(), 512);
    manager = std::make_unique<SnapshotManager>(&oracle, &registry);
  }

  mvcc::TimestampOracle oracle;
  mvcc::ActiveTxnRegistry registry;
  std::unique_ptr<storage::Column> column_a;
  std::unique_ptr<storage::Column> column_b;
  std::unique_ptr<SnapshotManager> manager;
};

TEST(SnapshotManagerTest, FirstAcquireCreatesEpochOnDemand) {
  Fixture f;
  auto handle = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(f.manager->LiveEpochCount(), 1u);
  EXPECT_EQ(f.manager->total_materializations(), 1u);
  const storage::ColumnSnapshot& snap =
      handle.value()->GetColumn(f.column_a.get());
  EXPECT_EQ(snap.epoch_ts, handle.value()->epoch_ts());
}

TEST(SnapshotManagerTest, LazyMaterializationPerColumn) {
  Fixture f;
  auto h1 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(f.manager->total_materializations(), 1u);
  // Second acquire on the same epoch adds only the missing column.
  auto h2 = f.manager->Acquire({f.column_a.get(), f.column_b.get()});
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(f.manager->total_materializations(), 2u);
  EXPECT_EQ(f.manager->LiveEpochCount(), 1u);
}

TEST(SnapshotManagerTest, TriggerAdvancesEpoch) {
  Fixture f;
  auto h1 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h1.ok());
  const mvcc::Timestamp first_ts = h1.value()->epoch_ts();

  f.column_a->ApplyCommittedWrite(0, 42, f.oracle.Next());
  f.manager->TriggerEpoch();

  auto h2 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h2.ok());
  EXPECT_GT(h2.value()->epoch_ts(), first_ts);
  EXPECT_EQ(f.manager->LiveEpochCount(), 2u);

  // The fresh snapshot sees the write; the old one does not.
  EXPECT_EQ(h2.value()->GetColumn(f.column_a.get()).view->ReadU64(0), 42u);
  EXPECT_EQ(h1.value()->GetColumn(f.column_a.get()).view->ReadU64(0), 0u);
}

TEST(SnapshotManagerTest, OldEpochRetiredWhenUnreferenced) {
  Fixture f;
  auto h1 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h1.ok());
  f.manager->TriggerEpoch();
  auto h2 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(f.manager->LiveEpochCount(), 2u);

  // Releasing the old epoch's only handle retires it (Fig. 1 step 8).
  h1 = Result<std::unique_ptr<SnapshotHandle>>(Status::Internal("drop"));
  EXPECT_EQ(f.manager->LiveEpochCount(), 1u);
}

TEST(SnapshotManagerTest, NewestEpochKeptWarm) {
  Fixture f;
  auto h = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h.ok());
  h = Result<std::unique_ptr<SnapshotHandle>>(Status::Internal("drop"));
  // The newest (only) epoch stays for the next arrival.
  EXPECT_EQ(f.manager->LiveEpochCount(), 1u);
  auto again = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(f.manager->total_materializations(), 1u);  // reused
}

TEST(SnapshotManagerTest, SharedEpochRefcounting) {
  Fixture f;
  auto h1 = f.manager->Acquire({f.column_a.get()});
  auto h2 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1.value()->epoch_ts(), h2.value()->epoch_ts());
  f.manager->TriggerEpoch();
  auto h3 = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h3.ok());
  EXPECT_EQ(f.manager->LiveEpochCount(), 2u);
  h1 = Result<std::unique_ptr<SnapshotHandle>>(Status::Internal("drop"));
  EXPECT_EQ(f.manager->LiveEpochCount(), 2u);  // h2 still pins the old epoch
  h2 = Result<std::unique_ptr<SnapshotHandle>>(Status::Internal("drop"));
  EXPECT_EQ(f.manager->LiveEpochCount(), 1u);
}

TEST(SnapshotManagerTest, ChainsHandedOverToEpoch) {
  Fixture f;
  f.column_a->LoadValue(0, 1);
  f.column_a->ApplyCommittedWrite(0, 2, f.oracle.Next());
  f.manager->TriggerEpoch();
  auto h = f.manager->Acquire({f.column_a.get()});
  ASSERT_TRUE(h.ok());
  const storage::ColumnSnapshot& snap = h.value()->GetColumn(f.column_a.get());
  ASSERT_NE(snap.chains, nullptr);
  EXPECT_EQ(snap.chains->TotalVersions(), 1u);
  // Live column has a fresh chain segment after the handover.
  EXPECT_EQ(f.column_a->versions()->current()->TotalVersions(), 0u);
}

}  // namespace
}  // namespace anker::engine
