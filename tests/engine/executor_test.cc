#include "engine/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.h"
#include "storage/value.h"
#include "vm/page.h"

namespace anker::engine {
namespace {

std::unique_ptr<storage::Column> MakeColumn(size_t rows) {
  auto buffer = snapshot::CreateBuffer(
      snapshot::BufferBackend::kVmSnapshot,
      vm::RoundUpToPage(rows * sizeof(uint64_t)));
  EXPECT_TRUE(buffer.ok());
  auto column = std::make_unique<storage::Column>(
      "c", storage::ValueType::kInt64, buffer.TakeValue(), rows);
  for (size_t row = 0; row < rows; ++row) {
    column->LoadValue(row, storage::EncodeInt64(static_cast<int64_t>(row)));
  }
  return column;
}

TEST(ColumnReaderTest, LiveReaderResolvesVersions) {
  auto column = MakeColumn(100);
  column->ApplyCommittedWrite(5, 999, /*commit_ts=*/10);
  const ColumnReader old_reader = ColumnReader::ForLive(column.get(), 5);
  const ColumnReader new_reader = ColumnReader::ForLive(column.get(), 10);
  EXPECT_EQ(old_reader.Get(5), 5u);    // pre-commit value
  EXPECT_EQ(new_reader.Get(5), 999u);  // post-commit value
  EXPECT_EQ(old_reader.Get(6), 6u);    // untouched row
}

TEST(ColumnReaderTest, SnapshotReaderResolvesHandedOverChains) {
  auto column = MakeColumn(100);
  // Epoch triggered at ts 4; a commit at ts 6 lands before materialization.
  column->ApplyCommittedWrite(5, 999, /*commit_ts=*/6);
  auto snap = column->MaterializeSnapshot(/*epoch_ts=*/4, /*seal_ts=*/8,
                                          /*min_active_ts=*/100);
  ASSERT_TRUE(snap.ok());
  const ColumnReader reader =
      ColumnReader::ForSnapshot(snap.value(), column->num_rows());
  // Reading at the epoch ts must resolve past the ts-6 commit.
  EXPECT_EQ(reader.Get(5), 5u);
  EXPECT_EQ(reader.Get(6), 6u);
}

TEST(ScanDriverTest, SumOverUnversionedColumnIsTight) {
  auto column = MakeColumn(5000);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), 100);
  ScanStats stats;
  const double sum = ScanColumnSum(reader, /*as_double=*/false, &stats);
  EXPECT_DOUBLE_EQ(sum, 5000.0 * 4999.0 / 2.0);
  EXPECT_EQ(stats.resolved_rows, 0u);
  EXPECT_GT(stats.tight_rows, 0u);
}

TEST(ScanDriverTest, RelevantVersionsUseHintedPath) {
  auto column = MakeColumn(4 * mvcc::kRowsPerBlock);
  // Version a single row in block 1 at ts 50; a reader at ts 10 must
  // resolve it (versions newer than the reader are relevant).
  const size_t victim = mvcc::kRowsPerBlock + 10;
  column->ApplyCommittedWrite(victim, 0, /*commit_ts=*/50);

  const ColumnReader reader = ColumnReader::ForLive(column.get(), 10);
  ScanStats stats;
  const double sum = ScanColumnSum(reader, /*as_double=*/false, &stats);
  // The old reader resolves the victim's pre-commit value: sum unchanged.
  const double n = 4.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(sum, n * (n - 1.0) / 2.0);
  EXPECT_EQ(stats.tight_rows, 3 * mvcc::kRowsPerBlock);
  EXPECT_EQ(stats.hinted_rows, mvcc::kRowsPerBlock);
}

TEST(ScanDriverTest, LiveFreshReaderStillChecksChains) {
  // The homogeneous baseline checks timestamps per record inside versioned
  // ranges even when the reader is newer than every version — that is the
  // per-row cost Figures 7/9 measure.
  auto column = MakeColumn(4 * mvcc::kRowsPerBlock);
  const size_t victim = mvcc::kRowsPerBlock + 10;
  column->ApplyCommittedWrite(victim, 0, /*commit_ts=*/50);

  const ColumnReader reader = ColumnReader::ForLive(column.get(), 100);
  ScanStats stats;
  const double sum = ScanColumnSum(reader, /*as_double=*/false, &stats);
  const double expected =
      (4.0 * mvcc::kRowsPerBlock) * (4.0 * mvcc::kRowsPerBlock - 1.0) / 2.0 -
      static_cast<double>(victim);  // victim now reads 0
  EXPECT_DOUBLE_EQ(sum, expected);
  EXPECT_EQ(stats.tight_rows, 3 * mvcc::kRowsPerBlock);
  EXPECT_EQ(stats.hinted_rows, mvcc::kRowsPerBlock);
}

TEST(ScanDriverTest, SnapshotReaderSkipsIrrelevantChains) {
  // Snapshot readers prove blocks version-free from the block max_ts: the
  // handed-over chains predate the epoch, so the scan is fully tight —
  // "without considering the version chains at all" (paper, Fig. 1).
  auto column = MakeColumn(4 * mvcc::kRowsPerBlock);
  const size_t victim = mvcc::kRowsPerBlock + 10;
  column->ApplyCommittedWrite(victim, 0, /*commit_ts=*/50);
  auto snap = column->MaterializeSnapshot(/*epoch_ts=*/100, /*seal_ts=*/101,
                                          /*min_active_ts=*/1);
  ASSERT_TRUE(snap.ok());
  ASSERT_NE(snap.value().chains, nullptr);

  const ColumnReader reader =
      ColumnReader::ForSnapshot(snap.value(), column->num_rows());
  ScanStats stats;
  const double sum = ScanColumnSum(reader, /*as_double=*/false, &stats);
  const double expected =
      (4.0 * mvcc::kRowsPerBlock) * (4.0 * mvcc::kRowsPerBlock - 1.0) / 2.0 -
      static_cast<double>(victim);
  EXPECT_DOUBLE_EQ(sum, expected);
  EXPECT_EQ(stats.tight_rows, 4 * mvcc::kRowsPerBlock);
  EXPECT_EQ(stats.hinted_rows, 0u);
  EXPECT_EQ(stats.resolved_rows, 0u);
}

TEST(ScanDriverTest, OldReaderSeesOldValuesInVersionedBlock) {
  auto column = MakeColumn(2 * mvcc::kRowsPerBlock);
  column->ApplyCommittedWrite(3, 333, /*commit_ts=*/50);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), /*ts=*/10);
  ScanStats stats;
  const double sum = ScanColumnSum(reader, /*as_double=*/false, &stats);
  // The old reader resolves the pre-commit value 3 -> sum unchanged.
  const double n = 2.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(sum, n * (n - 1.0) / 2.0);
}

TEST(ScanDriverTest, MultiColumnFold) {
  auto col_a = MakeColumn(3000);
  auto col_b = MakeColumn(3000);
  const ColumnReader a = ColumnReader::ForLive(col_a.get(), 100);
  const ColumnReader b = ColumnReader::ForLive(col_b.get(), 100);
  ScanDriver driver({&a, &b});
  uint64_t matches = 0;
  driver.Fold<uint64_t>(
      &matches,
      [](uint64_t& acc, const auto& row) {
        if (row.Col(0) == row.Col(1)) ++acc;  // always equal here
      },
      [](uint64_t& total, uint64_t&& local) { total += local; });
  EXPECT_EQ(matches, 3000u);
}

TEST(ScanDriverTest, MismatchedRowCountsDie) {
  auto col_a = MakeColumn(100);
  auto col_b = MakeColumn(200);
  const ColumnReader a = ColumnReader::ForLive(col_a.get(), 1);
  const ColumnReader b = ColumnReader::ForLive(col_b.get(), 1);
  EXPECT_DEATH(ScanDriver({&a, &b}), "CHECK");
}

TEST(ScanDriverTest, HintedSplitResolvesPerColumnRanges) {
  // Two columns with disjoint versioned ranges in the same block: the
  // resolve range is their union, but each column only resolves inside its
  // own [first, last] hint; everything else reads raw.
  auto col_a = MakeColumn(2 * mvcc::kRowsPerBlock);
  auto col_b = MakeColumn(2 * mvcc::kRowsPerBlock);
  for (size_t row = 10; row <= 20; ++row) {
    col_a->ApplyCommittedWrite(row, storage::EncodeInt64(-1), /*ts=*/50);
  }
  for (size_t row = 900; row <= 910; ++row) {
    col_b->ApplyCommittedWrite(row, storage::EncodeInt64(-2), /*ts=*/60);
  }
  const ColumnReader a = ColumnReader::ForLive(col_a.get(), /*ts=*/10);
  const ColumnReader b = ColumnReader::ForLive(col_b.get(), /*ts=*/10);
  ScanDriver driver({&a, &b});
  struct Acc {
    double sum_a = 0;
    double sum_b = 0;
  };
  Acc total{};
  ScanStats stats;
  driver.Fold<Acc>(
      &total,
      [](Acc& acc, const auto& row) {
        acc.sum_a += static_cast<double>(storage::DecodeInt64(row.Col(0)));
        acc.sum_b += static_cast<double>(storage::DecodeInt64(row.Col(1)));
      },
      [](Acc& into, Acc&& from) {
        into.sum_a += from.sum_a;
        into.sum_b += from.sum_b;
      },
      &stats);
  // The ts-10 reader resolves every versioned row to its pre-commit value:
  // both sums equal the undisturbed arithmetic series.
  const double n = 2.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(total.sum_a, n * (n - 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(total.sum_b, n * (n - 1.0) / 2.0);
  EXPECT_EQ(stats.hinted_rows, mvcc::kRowsPerBlock);
  EXPECT_EQ(stats.tight_rows, mvcc::kRowsPerBlock);
}

TEST(ScanDriverTest, InjectedCommitBetweenClassifyAndValidateRetriesSafely) {
  // Deterministic seqlock race: a commit lands after ClassifyBlock chose
  // the tight kernel and before BlockStable validated it. The scan must
  // fall back to the safe kernel for that block and still produce the
  // fold result for its read timestamp.
  auto column = MakeColumn(2 * mvcc::kRowsPerBlock);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), /*ts=*/10);
  ScanDriver driver({&reader});

  ScanOptions options;
  bool injected = false;
  options.on_block_classified = [&](size_t block) {
    if (block == 0 && !injected) {
      injected = true;
      column->ApplyCommittedWrite(5, storage::EncodeInt64(-777),
                                  /*commit_ts=*/50);
    }
  };

  double total = 0.0;
  ScanStats stats;
  driver.Fold<double>(
      &total,
      [](double& acc, const auto& row) {
        acc += static_cast<double>(storage::DecodeInt64(row.Col(0)));
      },
      [](double& into, double&& from) { into += from; }, &stats, options);

  ASSERT_TRUE(injected);
  // The ts-10 reader resolves row 5's pre-commit value through the chain
  // the committer published: the sum is exactly the loaded series.
  const double n = 2.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(total, n * (n - 1.0) / 2.0);
  EXPECT_EQ(stats.seqlock_retries, 1u);
  EXPECT_EQ(stats.resolved_rows, mvcc::kRowsPerBlock);  // block 0, redone
  EXPECT_EQ(stats.tight_rows, mvcc::kRowsPerBlock);     // block 1, stable
}

TEST(ScanDriverTest, ParallelFoldMatchesSerialResult) {
  auto column = MakeColumn(64 * mvcc::kRowsPerBlock);
  // Sprinkle versions over a few blocks so every kernel participates.
  for (size_t block : {3u, 17u, 42u}) {
    for (size_t i = 0; i < 5; ++i) {
      const size_t row = block * mvcc::kRowsPerBlock + 100 + i * 7;
      column->ApplyCommittedWrite(row, storage::EncodeInt64(-9), /*ts=*/50);
    }
  }
  const ColumnReader reader = ColumnReader::ForLive(column.get(), /*ts=*/10);

  ScanStats serial_stats;
  const double serial =
      ScanColumnSum(reader, /*as_double=*/false, &serial_stats);

  ThreadPool pool(4);
  ScanOptions options;
  options.pool = &pool;
  options.max_threads = 4;
  options.morsel_blocks = 4;
  ScanStats parallel_stats;
  const double parallel =
      ScanColumnSum(reader, /*as_double=*/false, &parallel_stats, options);

  EXPECT_DOUBLE_EQ(parallel, serial);
  EXPECT_EQ(parallel_stats.tight_rows, serial_stats.tight_rows);
  EXPECT_EQ(parallel_stats.hinted_rows, serial_stats.hinted_rows);
  EXPECT_EQ(parallel_stats.resolved_rows, serial_stats.resolved_rows);
}

TEST(ScanDriverTest, ParallelMultiColumnGroupByMatchesSerial) {
  auto col_key = MakeColumn(32 * mvcc::kRowsPerBlock);
  auto col_val = MakeColumn(32 * mvcc::kRowsPerBlock);
  const ColumnReader key = ColumnReader::ForLive(col_key.get(), 100);
  const ColumnReader val = ColumnReader::ForLive(col_val.get(), 100);
  ScanDriver driver({&key, &val});

  struct Acc {
    double sums[8] = {0};
    uint64_t rows = 0;
  };
  auto row_fn = [](Acc& acc, const auto& row) {
    ++acc.rows;
    acc.sums[storage::DecodeInt64(row.Col(0)) & 7] +=
        static_cast<double>(storage::DecodeInt64(row.Col(1)));
  };
  auto merge_fn = [](Acc& into, Acc&& from) {
    into.rows += from.rows;
    for (int i = 0; i < 8; ++i) into.sums[i] += from.sums[i];
  };

  Acc serial{};
  driver.Fold<Acc>(&serial, row_fn, merge_fn);

  ThreadPool pool(3);
  ScanOptions options;
  options.pool = &pool;
  options.max_threads = 3;
  options.morsel_blocks = 2;
  Acc parallel{};
  driver.Fold<Acc>(&parallel, row_fn, merge_fn, nullptr, options);

  EXPECT_EQ(parallel.rows, serial.rows);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(parallel.sums[i], serial.sums[i]) << "group " << i;
  }
}

TEST(ScanDriverTest, ConcurrentCommitsNeverLeakFutureValues) {
  // Scanner at ts=T races with a committer writing at ts>T; the fold must
  // never observe a post-T value (seqlock retry + chain resolution).
  auto column = MakeColumn(8 * mvcc::kRowsPerBlock);
  const size_t rows = column->num_rows();
  std::atomic<bool> stop{false};

  // Bounded commit volume: an unbounded tight loop would allocate version
  // nodes faster than the scans retire (no GC in this test) and OOM the
  // process on a small machine.
  constexpr uint64_t kMaxCommits = 400000;
  std::thread committer([&] {
    uint64_t ts = 1000;
    Rng rng(99);
    while (!stop.load(std::memory_order_relaxed) &&
           ts < 1000 + kMaxCommits) {
      const size_t row = rng.NextBounded(rows);
      column->ApplyCommittedWrite(
          row, storage::EncodeInt64(-1), ts++);
    }
  });

  // All commits use ts >= 1000; scanning at ts=10 must always return the
  // loaded values whose sum is fixed.
  const double expected =
      static_cast<double>(rows) * (static_cast<double>(rows) - 1.0) / 2.0;
  for (int round = 0; round < 20; ++round) {
    const ColumnReader reader = ColumnReader::ForLive(column.get(), 10);
    const double sum = ScanColumnSum(reader, /*as_double=*/false, nullptr);
    ASSERT_DOUBLE_EQ(sum, expected) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  committer.join();
}

// ---- FoldBlockwise: the blockwise sibling the query layer builds on ----

double BlockwiseSum(const ScanDriver& driver, ScanStats* stats = nullptr,
                    const ScanOptions& options = ScanOptions()) {
  double total = 0.0;
  driver.FoldBlockwise<double>(
      &total,
      [](double& acc, const ScanBlock& block) {
        for (size_t i = 0; i < block.rows; ++i) {
          acc += static_cast<double>(
              storage::DecodeInt64(block.cols[0][i]));
        }
      },
      [](double& into, double&& from) { into += from; }, stats, options);
  return total;
}

TEST(FoldBlockwiseTest, TightBlocksExposeRawSpans) {
  auto column = MakeColumn(3 * mvcc::kRowsPerBlock + 123);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), 100);
  ScanDriver driver({&reader});
  ScanStats stats;
  const double n = 3.0 * mvcc::kRowsPerBlock + 123;
  EXPECT_DOUBLE_EQ(BlockwiseSum(driver, &stats), n * (n - 1.0) / 2.0);
  EXPECT_EQ(stats.tight_rows, static_cast<size_t>(n));
  EXPECT_EQ(stats.hinted_rows, 0u);
  EXPECT_EQ(stats.resolved_rows, 0u);
}

TEST(FoldBlockwiseTest, VersionedBlocksAreStagedAndResolved) {
  auto column = MakeColumn(4 * mvcc::kRowsPerBlock);
  // Version rows in block 1; an old reader must see pre-commit values.
  const size_t victim = mvcc::kRowsPerBlock + 10;
  column->ApplyCommittedWrite(victim, storage::EncodeInt64(-1000),
                              /*commit_ts=*/50);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), 10);
  ScanDriver driver({&reader});
  ScanStats stats;
  const double n = 4.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(BlockwiseSum(driver, &stats), n * (n - 1.0) / 2.0);
  EXPECT_EQ(stats.hinted_rows, mvcc::kRowsPerBlock);
  EXPECT_EQ(stats.tight_rows, 3 * mvcc::kRowsPerBlock);
}

TEST(FoldBlockwiseTest, NewReaderSeesCommittedValueThroughStaging) {
  auto column = MakeColumn(2 * mvcc::kRowsPerBlock);
  column->ApplyCommittedWrite(7, storage::EncodeInt64(1000000),
                              /*commit_ts=*/50);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), 60);
  ScanDriver driver({&reader});
  const double n = 2.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(BlockwiseSum(driver),
                   n * (n - 1.0) / 2.0 - 7.0 + 1000000.0);
}

TEST(FoldBlockwiseTest, InjectedCommitRetriesBlockSafely) {
  auto column = MakeColumn(2 * mvcc::kRowsPerBlock);
  const ColumnReader reader = ColumnReader::ForLive(column.get(), /*ts=*/10);
  ScanDriver driver({&reader});

  ScanOptions options;
  bool injected = false;
  options.on_block_classified = [&](size_t block) {
    if (block == 0 && !injected) {
      injected = true;
      column->ApplyCommittedWrite(5, storage::EncodeInt64(-777),
                                  /*commit_ts=*/50);
    }
  };
  ScanStats stats;
  const double n = 2.0 * mvcc::kRowsPerBlock;
  EXPECT_DOUBLE_EQ(BlockwiseSum(driver, &stats, options),
                   n * (n - 1.0) / 2.0);
  ASSERT_TRUE(injected);
  EXPECT_EQ(stats.seqlock_retries, 1u);
  EXPECT_EQ(stats.resolved_rows, mvcc::kRowsPerBlock);
}

TEST(FoldBlockwiseTest, ParallelMatchesSerial) {
  auto column = MakeColumn(64 * mvcc::kRowsPerBlock);
  for (size_t block : {3u, 17u, 42u}) {
    for (size_t i = 0; i < 5; ++i) {
      const size_t row = block * mvcc::kRowsPerBlock + 100 + i * 7;
      column->ApplyCommittedWrite(row, storage::EncodeInt64(-9), /*ts=*/50);
    }
  }
  const ColumnReader reader = ColumnReader::ForLive(column.get(), 60);
  ScanDriver driver({&reader});
  const double serial = BlockwiseSum(driver);

  ThreadPool pool(4);
  ScanOptions options;
  options.pool = &pool;
  options.max_threads = 4;
  options.morsel_blocks = 4;
  EXPECT_DOUBLE_EQ(BlockwiseSum(driver, nullptr, options), serial);
}

}  // namespace
}  // namespace anker::engine
