// Shard map invariants the router's correctness hangs off: the routing
// hash is a fixed public function (deterministic across restarts and
// reimplementable by loaders), keys spread evenly enough that no shard
// silently becomes the hot one, and the reload gate refuses topology
// changes that would re-home keys without a data migration.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/shard_map.h"

namespace anker::shard {
namespace {

ShardMap MustParse(const std::string& text) {
  auto parsed = ShardMap::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return parsed.TakeValue();
}

TEST(ShardMapTest, ParsesFullConfig) {
  const ShardMap map = MustParse(
      "# topology for the smoke cluster\n"
      "version 3\n"
      "shard 127.0.0.1:7101   # first\n"
      "shard 127.0.0.1:7102\n"
      "\n"
      "table lineitem partition l_orderkey\n"
      "table nation replicated\n");
  EXPECT_EQ(map.version(), 3u);
  ASSERT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.shards()[0].host, "127.0.0.1");
  EXPECT_EQ(map.shards()[1].port, 7102);
  ASSERT_NE(map.PartitionKey("lineitem"), nullptr);
  EXPECT_EQ(*map.PartitionKey("lineitem"), "l_orderkey");
  // Replicated — both the explicit mark and the unlisted default.
  EXPECT_EQ(map.PartitionKey("nation"), nullptr);
  EXPECT_EQ(map.PartitionKey("never_mentioned"), nullptr);
}

TEST(ShardMapTest, RejectsMalformedConfigs) {
  const char* hostile[] = {
      "shard 127.0.0.1:7101\n",                        // No version.
      "version 0\nshard h:1\n",                        // Version 0.
      "version 1\nversion 2\nshard h:1\n",             // Duplicate version.
      "version 1\n",                                   // No shards.
      "version 1\nshard localhost\n",                  // No port.
      "version 1\nshard h:0\n",                        // Port 0.
      "version 1\nshard h:99999\n",                    // Port overflow.
      "version 1\nshard h:12x4\n",                     // Non-digit port.
      "version 1\nshard h:1\ntable t partition\n",     // Missing key.
      "version 1\nshard h:1\ntable t sharded k\n",     // Unknown kind.
      "version 1\nshard h:1\ntable t partition a\ntable t replicated\n",
      "version 1\nshard h:1\ntable t replicated\ntable t replicated\n",
      "version 1\nshard h:1 extra\n",                  // Trailing tokens.
      "version 1\nshard h:1\nbogus line\n",            // Unknown keyword.
  };
  for (const char* text : hostile) {
    EXPECT_FALSE(ShardMap::Parse(text).ok()) << "accepted:\n" << text;
  }
}

TEST(ShardMapTest, Mix64MatchesFixedVectors) {
  // The routing hash is part of the protocol: these vectors pin the
  // exact splitmix64-finalizer output so a refactor can't silently
  // re-home every key (scripts/router_smoke.py re-implements the same
  // function in Python and must agree).
  EXPECT_EQ(ShardMap::Mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(ShardMap::Mix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(ShardMap::Mix64(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(ShardMap::Mix64(0xDEADBEEFULL), 0x4adfb90f68c9eb9bULL);
}

TEST(ShardMapTest, RoutingIsDeterministicAcrossInstances) {
  const std::string text =
      "version 1\nshard a:1\nshard b:2\nshard c:3\n"
      "table t partition k\n";
  const ShardMap first = MustParse(text);
  const ShardMap second = MustParse(text);
  for (uint64_t key = 0; key < 1000; ++key) {
    ASSERT_EQ(first.ShardFor(key), second.ShardFor(key)) << key;
    ASSERT_LT(first.ShardFor(key), 3u);
  }
}

TEST(ShardMapTest, HashDistributionIsRoughlyUniform) {
  const ShardMap map = MustParse(
      "version 1\nshard a:1\nshard b:2\nshard c:3\n");
  // Sequential keys are the adversarial-but-realistic input (TPC-H
  // orderkeys); a multiplicative-hash bias would show up here.
  std::vector<size_t> counts(3, 0);
  const size_t kKeys = 30000;
  for (uint64_t key = 1; key <= kKeys; ++key) ++counts[map.ShardFor(key)];
  for (size_t shard = 0; shard < counts.size(); ++shard) {
    const double share = static_cast<double>(counts[shard]) / kKeys;
    EXPECT_GT(share, 0.30) << "shard " << shard << " starved";
    EXPECT_LT(share, 0.37) << "shard " << shard << " overloaded";
  }
}

TEST(ShardMapTest, ReloadGateRejectsShardCountChangesAndStaleVersions) {
  const ShardMap current =
      MustParse("version 2\nshard a:1\nshard b:2\n");
  // Adding or removing a shard re-homes keys: refused.
  EXPECT_FALSE(current
                   .ValidateReload(MustParse(
                       "version 3\nshard a:1\nshard b:2\nshard c:3\n"))
                   .ok());
  EXPECT_FALSE(
      current.ValidateReload(MustParse("version 3\nshard a:1\n")).ok());
  // Same or lower version: refused (stale config pushed twice).
  EXPECT_FALSE(current
                   .ValidateReload(MustParse("version 2\nshard a:1\nshard b:2\n"))
                   .ok());
  EXPECT_FALSE(current
                   .ValidateReload(MustParse("version 1\nshard a:1\nshard b:2\n"))
                   .ok());
  // Same count, higher version: the one legal reload shape.
  EXPECT_TRUE(current
                  .ValidateReload(MustParse(
                      "version 3\nshard a:1\nshard x:9\n"
                      "table t partition k\n"))
                  .ok());
}

TEST(ShardMapTest, DigestCoversTopologyButNotReplicatedMarks) {
  const ShardMap base = MustParse(
      "version 1\nshard a:1\nshard b:2\ntable t partition k\n");
  // An explicit `replicated` mark is a semantic no-op: same digest.
  const ShardMap marked = MustParse(
      "version 1\nshard a:1\nshard b:2\ntable t partition k\n"
      "table nation replicated\n");
  EXPECT_EQ(base.digest(), marked.digest());
  // Version, endpoints, and partitioning all perturb the digest.
  EXPECT_NE(base.digest(),
            MustParse("version 2\nshard a:1\nshard b:2\n"
                      "table t partition k\n")
                .digest());
  EXPECT_NE(base.digest(),
            MustParse("version 1\nshard a:1\nshard b:3\n"
                      "table t partition k\n")
                .digest());
  EXPECT_NE(base.digest(),
            MustParse("version 1\nshard a:1\nshard b:2\n"
                      "table t partition other\n")
                .digest());
}

}  // namespace
}  // namespace anker::shard
