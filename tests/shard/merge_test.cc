// Scatter planning + partial merging (query/merge.h): the classifier
// must route each plan shape to the cheapest safe mode — and refuse,
// recoverably, anything that genuinely needs rows from two shards in
// one operator — and the mergers must reproduce the single-node result
// bit-for-bit on exact-arithmetic workloads.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/merge.h"
#include "query/query.h"
#include "storage/value.h"

namespace anker::query {
namespace {

PartitionMap LineitemOrders() {
  return {{"lineitem", "l_orderkey"}, {"orders", "o_orderkey"}};
}

// ---- classification -------------------------------------------------------

TEST(ScatterPlanTest, ReplicatedOnlyIsSingleShard) {
  WireQuery q;
  q.table = "nation";
  q.aggs.push_back(Sum(Col("n_regionkey")).As("s"));
  const ScatterPlan plan = PlanScatter(q, LineitemOrders());
  EXPECT_EQ(plan.mode, ScatterMode::kSingleShard);
}

TEST(ScatterPlanTest, GroupByPartitionKeyIsConcat) {
  // Q18 shape: lineitem grouped on its own partition key — every group
  // lives whole on one shard, so shard top-k survives the merge.
  WireQuery q;
  q.table = "lineitem";
  q.aggs.push_back(Sum(Col("l_quantity")).As("qty"));
  q.group_by.push_back("l_orderkey");
  q.order_by.push_back({"qty", /*desc=*/true});
  q.limit = 100;
  const ScatterPlan plan = PlanScatter(q, LineitemOrders());
  ASSERT_EQ(plan.mode, ScatterMode::kConcat) << plan.reason;
  // Shards run the ORIGINAL query (including their local top-k).
  EXPECT_EQ(plan.shard_query.limit, 100);
  ASSERT_EQ(plan.shard_query.order_by.size(), 1u);
  // The router re-sorts and re-limits the union.
  ASSERT_EQ(plan.order_by.size(), 1u);
  EXPECT_TRUE(plan.order_by[0].desc);
  EXPECT_EQ(plan.limit, 100);
}

TEST(ScatterPlanTest, GlobalAggregateFallsBackToPartials) {
  // Q6 shape: one global SUM over the partitioned table.
  WireQuery q;
  q.table = "lineitem";
  q.aggs.push_back(Sum(Col("l_extendedprice") * Col("l_discount")).As("rev"));
  const ScatterPlan plan = PlanScatter(q, LineitemOrders());
  ASSERT_EQ(plan.mode, ScatterMode::kPartialAgg) << plan.reason;
  ASSERT_EQ(plan.agg_kinds.size(), 1u);
  EXPECT_EQ(plan.agg_kinds[0], AggKind::kSum);
  EXPECT_FALSE(plan.hidden_count);  // No AVG -> no hidden count.
  EXPECT_EQ(plan.shard_query.aggs.size(), 1u);
}

TEST(ScatterPlanTest, NestedAggregateRefusalIsNotRepairable) {
  const PartitionMap layout = LineitemOrders();
  // MAX over a sub-query that itself computes a global SUM of the
  // partitioned table. The shard query would evaluate the nested SUM
  // over one partition only, so merging the shard MAXes would be
  // silently wrong — this must stay kUnsupported, never kPartialAgg,
  // even though the root has aggregates and the refusal reason reads
  // the same as the repairable root-level one.
  WireQuery nested;
  nested.sub = std::make_shared<WireQuery>();
  nested.sub->table = "lineitem";
  nested.sub->aggs.push_back(Sum(Col("l_quantity")).As("total"));
  nested.aggs.push_back(Max(Col("total")).As("m"));
  const ScatterPlan plan = PlanScatter(nested, layout);
  EXPECT_EQ(plan.mode, ScatterMode::kUnsupported);
  EXPECT_FALSE(plan.reason.empty());

  // Same shape with a non-aligned GROUP BY inside the sub-query.
  WireQuery grouped;
  grouped.sub = std::make_shared<WireQuery>();
  grouped.sub->table = "lineitem";
  grouped.sub->aggs.push_back(Sum(Col("l_quantity")).As("qty"));
  grouped.sub->group_by.push_back("l_suppkey");  // Not the partition key.
  grouped.aggs.push_back(Max(Col("qty")).As("m"));
  EXPECT_EQ(PlanScatter(grouped, layout).mode, ScatterMode::kUnsupported);

  // The aggregate refusal hiding inside a JOIN input is just as
  // unrepairable: the build side's partials would feed the join.
  WireQuery joined;
  joined.table = "nation";
  WireJoin join;
  join.input.sub = std::make_shared<WireQuery>();
  join.input.sub->table = "lineitem";
  join.input.sub->aggs.push_back(Sum(Col("l_quantity")).As("qty"));
  join.probe_keys = {"n_nationkey"};
  join.build_keys = {"qty"};
  joined.joins.push_back(join);
  joined.aggs.push_back(Count().As("c"));
  EXPECT_EQ(PlanScatter(joined, layout).mode, ScatterMode::kUnsupported);

  // Control: a partitioned but aggregate-free sub-query feeding a root
  // aggregate IS the repairable shape — the flag must survive the
  // nesting, not just the flat case.
  WireQuery repairable;
  repairable.sub = std::make_shared<WireQuery>();
  repairable.sub->table = "lineitem";
  repairable.sub->filter = Col("l_quantity") > I64(10);
  repairable.aggs.push_back(Sum(Col("l_extendedprice")).As("rev"));
  EXPECT_EQ(PlanScatter(repairable, layout).mode,
            ScatterMode::kPartialAgg);
}

TEST(ScatterPlanTest, AvgRewritesToSumPlusHiddenCount) {
  // Q1 shape: grouped on a NON-aligned column with an AVG in the mix.
  WireQuery q;
  q.table = "lineitem";
  q.aggs.push_back(Sum(Col("l_quantity")).As("sum_qty"));
  q.aggs.push_back(Avg(Col("l_quantity")).As("avg_qty"));
  q.aggs.push_back(Count().As("count_order"));
  q.group_by.push_back("l_returnflag");
  q.order_by.push_back({"l_returnflag", false});
  const ScatterPlan plan = PlanScatter(q, LineitemOrders());
  ASSERT_EQ(plan.mode, ScatterMode::kPartialAgg) << plan.reason;
  EXPECT_TRUE(plan.hidden_count);
  // Shard query: AVG became SUM (same name), hidden COUNT appended,
  // order/limit stripped (the router orders the merged groups).
  ASSERT_EQ(plan.shard_query.aggs.size(), 4u);
  EXPECT_EQ(plan.shard_query.aggs[1].kind(), AggKind::kSum);
  EXPECT_EQ(plan.shard_query.aggs[1].name(), "avg_qty");
  EXPECT_EQ(plan.shard_query.aggs[3].kind(), AggKind::kCount);
  EXPECT_TRUE(plan.shard_query.order_by.empty());
  // Merge kinds keep the ORIGINAL semantics for finalization.
  ASSERT_EQ(plan.agg_kinds.size(), 3u);
  EXPECT_EQ(plan.agg_kinds[1], AggKind::kAvg);
  ASSERT_EQ(plan.order_by.size(), 1u);
}

TEST(ScatterPlanTest, RefusesGenuinelyCrossShardPlans) {
  const PartitionMap layout = LineitemOrders();
  // COUNT(DISTINCT) over a scattered stream.
  WireQuery distinct;
  distinct.table = "lineitem";
  distinct.aggs.push_back(CountDistinct(Col("l_suppkey")).As("d"));
  EXPECT_EQ(PlanScatter(distinct, layout).mode, ScatterMode::kUnsupported);

  // Join of two partitioned tables without a co-partitioned key pair.
  WireQuery bad_join;
  bad_join.table = "lineitem";
  WireJoin join;
  join.input.table = "orders";
  join.probe_keys = {"l_suppkey"};   // Not the partition key.
  join.build_keys = {"o_orderkey"};
  bad_join.joins.push_back(join);
  const ScatterPlan refused = PlanScatter(bad_join, layout);
  EXPECT_EQ(refused.mode, ScatterMode::kUnsupported);
  EXPECT_FALSE(refused.reason.empty());

  // Same join through the partition keys: co-partitioned, concat-safe.
  WireQuery good_join = bad_join;
  good_join.joins[0].probe_keys = {"l_orderkey"};
  EXPECT_EQ(PlanScatter(good_join, layout).mode, ScatterMode::kConcat);

  // Semi join against a partitioned build side from a replicated probe.
  WireQuery semi;
  semi.table = "nation";
  WireJoin semi_join;
  semi_join.input.table = "orders";
  semi_join.type = JoinType::kLeftSemi;
  semi_join.probe_keys = {"n_nationkey"};
  semi_join.build_keys = {"o_custkey"};
  semi.joins.push_back(semi_join);
  EXPECT_EQ(PlanScatter(semi, layout).mode, ScatterMode::kUnsupported);

  // The reserved merge column name.
  WireQuery reserved;
  reserved.table = "lineitem";
  reserved.aggs.push_back(Sum(Col("l_quantity")).As("__shard_count"));
  EXPECT_EQ(PlanScatter(reserved, layout).mode, ScatterMode::kUnsupported);
}

TEST(ScatterPlanTest, InnerJoinAgainstPartitionedBuildTransfersAlignment) {
  // Replicated probe INNER-joined into a partitioned build side pins
  // each output row to the build row's shard; grouping on the
  // transferred key stays shard-local.
  const PartitionMap layout = LineitemOrders();
  WireQuery q;
  q.table = "nation";
  WireJoin join;
  join.input.table = "orders";
  join.probe_keys = {"n_nationkey"};
  join.build_keys = {"o_orderkey"};
  q.joins.push_back(join);
  q.aggs.push_back(Count().As("c"));
  q.group_by.push_back("n_nationkey");  // Aligned via the key transfer.
  EXPECT_EQ(PlanScatter(q, layout).mode, ScatterMode::kConcat);
}

// ---- merging --------------------------------------------------------------

QueryResult GroupedResult(
    std::vector<std::pair<uint64_t, std::vector<double>>> rows,
    std::vector<std::string> columns, uint64_t scanned) {
  QueryResult r;
  r.columns = std::move(columns);
  r.key_names = {"g"};
  r.key_types = {ExprType::kInt64};
  r.rows_scanned = scanned;
  for (auto& [key, values] : rows) {
    QueryResult::Row row;
    row.keys = {key};
    row.values = std::move(values);
    r.rows.push_back(std::move(row));
  }
  return r;
}

TEST(MergeTest, ConcatReSortsAndReLimitsExactly) {
  ScatterPlan plan;
  plan.mode = ScatterMode::kConcat;
  plan.order_by = {{"v", /*desc=*/true}};
  plan.limit = 3;
  // Shard-local top-3s; the global top-3 interleaves both shards.
  QueryResult a = GroupedResult({{1, {10.0}}, {3, {6.0}}, {5, {2.0}}},
                                {"v"}, 100);
  QueryResult b = GroupedResult({{2, {8.0}}, {4, {6.0}}, {6, {1.0}}},
                                {"v"}, 50);
  QueryResult out;
  ASSERT_TRUE(MergeShardResults(plan, {a, b}, &out).ok());
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0].keys[0], 1u);
  EXPECT_EQ(out.rows[1].keys[0], 2u);
  // The 6.0-tie breaks on the full row in schema order: key 3 < key 4.
  EXPECT_EQ(out.rows[2].keys[0], 3u);
  EXPECT_EQ(out.rows_scanned, 150u);
}

TEST(MergeTest, PartialAggReAggregatesAndFinalizesAvg) {
  ScatterPlan plan;
  plan.mode = ScatterMode::kPartialAgg;
  plan.agg_kinds = {AggKind::kSum, AggKind::kAvg, AggKind::kMin,
                    AggKind::kMax, AggKind::kCount};
  plan.hidden_count = true;
  // Per-shard partials: sum, avg-as-sum, min, max, count, hidden count.
  const std::vector<std::string> cols = {"s", "a", "lo", "hi", "n",
                                         "__shard_count"};
  QueryResult a = GroupedResult(
      {{1, {10.0, 6.0, 2.0, 9.0, 3.0, 3.0}},
       {2, {4.0, 4.0, 4.0, 4.0, 1.0, 1.0}}},
      cols, 10);
  QueryResult b = GroupedResult(
      {{1, {5.0, 2.0, 1.0, 5.0, 1.0, 1.0}},
       {3, {7.0, 7.0, 7.0, 7.0, 2.0, 2.0}}},
      cols, 20);
  QueryResult out;
  ASSERT_TRUE(MergeShardResults(plan, {a, b}, &out).ok());
  ASSERT_EQ(out.rows.size(), 3u);  // Groups 1, 2, 3 in key order.
  EXPECT_EQ(out.rows_scanned, 30u);
  // Hidden count dropped from the schema.
  ASSERT_EQ(out.columns.size(), 5u);
  EXPECT_EQ(out.columns.back(), "n");
  const QueryResult::Row& g1 = out.rows[0];
  ASSERT_EQ(g1.keys[0], 1u);
  ASSERT_EQ(g1.values.size(), 5u);
  EXPECT_EQ(g1.values[0], 15.0);        // Sum of sums.
  EXPECT_EQ(g1.values[1], 8.0 / 4.0);   // AVG = global sum / global count.
  EXPECT_EQ(g1.values[2], 1.0);         // Min of mins.
  EXPECT_EQ(g1.values[3], 9.0);         // Max of maxes.
  EXPECT_EQ(g1.values[4], 4.0);         // Count of counts.
  // Single-shard groups pass through finalization unchanged.
  EXPECT_EQ(out.rows[1].values[1], 4.0);
  EXPECT_EQ(out.rows[2].values[1], 3.5);
}

TEST(MergeTest, MergeRefusesSchemaDisagreementAndWrongModes) {
  ScatterPlan concat;
  concat.mode = ScatterMode::kConcat;
  QueryResult a = GroupedResult({{1, {1.0}}}, {"v"}, 1);
  QueryResult b = GroupedResult({{2, {2.0}}}, {"other_name"}, 1);
  QueryResult out;
  const Status mismatch = MergeShardResults(concat, {a, b}, &out);
  EXPECT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.code(), StatusCode::kInternal);

  ScatterPlan single;
  single.mode = ScatterMode::kSingleShard;
  EXPECT_FALSE(MergeShardResults(single, {a}, &out).ok());

  // Missing sort column in the shard schema: Internal, not a crash.
  ScatterPlan bad_sort;
  bad_sort.mode = ScatterMode::kConcat;
  bad_sort.order_by = {{"missing", false}};
  EXPECT_FALSE(MergeShardResults(bad_sort, {a}, &out).ok());
}

TEST(MergeTest, SingleShardDegenerateMergeIsIdentityPlusSort) {
  // One reachable shard under --allow_partial: merge still runs, and
  // must behave as identity (plus the ordering obligations).
  ScatterPlan plan;
  plan.mode = ScatterMode::kConcat;
  plan.order_by = {{"g", false}};
  QueryResult only = GroupedResult({{3, {1.0}}, {1, {2.0}}}, {"v"}, 7);
  QueryResult out;
  ASSERT_TRUE(MergeShardResults(plan, {only}, &out).ok());
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[0].keys[0], 1u);
  EXPECT_EQ(out.rows_scanned, 7u);
}

}  // namespace
}  // namespace anker::query
