// Cross-shard 2PC end-to-end over loopback: two in-process engine
// shards behind a live RouterServer. Beyond the happy path (covered in
// router_e2e_test.cc), this drives the protocol's failure surface by
// playing a dead coordinator with direct shard connections: intents
// blocking readers, idempotent duplicate COMMIT_PREPARED, an abort at
// the primary fencing a zombie commit, committed-but-unfanned intents
// healed lazily by a router-side reader, and an undecided transaction
// escalated to a durable abort when its coordinator never returns.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/backend_pool.h"
#include "shard/router_core.h"
#include "shard/router_server.h"
#include "shard/shard_map.h"
#include "storage/value.h"

namespace anker::shard {
namespace {

using storage::ValueType;

constexpr size_t kShards = 2;
constexpr size_t kKeysPerShard = 4;

class Router2pcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string map_text = "version 1\n";
    for (size_t i = 0; i < kShards; ++i) {
      engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
          txn::ProcessingMode::kHeterogeneousSerializable);
      config.worker_threads = 2;
      dbs_[i] = std::make_unique<engine::Database>(config);
      dbs_[i]->Start();
      servers_[i] = std::make_unique<server::Server>(dbs_[i].get(),
                                                     server::ServerConfig{});
      ASSERT_TRUE(servers_[i]->Start().ok());
      map_text += "shard 127.0.0.1:" + std::to_string(servers_[i]->port()) +
                  "\n";
    }
    map_text += "table acct partition id\n";
    auto parsed = ShardMap::Parse(map_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    map_ = parsed.TakeValue();

    pool_ = std::make_unique<BackendPool>(map_.shards(),
                                          BackendPoolConfig{});
    RouterCoreConfig core_config;
    // Short escalation fuse: the undecided-coordinator test should not
    // spin for long before declaring the router dead.
    core_config.intent_resolve_attempts = 3;
    core_config.busy_backoff_initial_millis = 1;
    core_config.busy_backoff_max_millis = 5;
    core_ = std::make_unique<RouterCore>(&map_, pool_.get(), core_config);
    router_ = std::make_unique<RouterServer>(core_.get(),
                                             RouterServerConfig{});
    ASSERT_TRUE(router_->Start().ok());
    auto connected = server::Client::Connect("127.0.0.1", router_->port());
    ASSERT_TRUE(connected.ok());
    client_ = connected.TakeValue();

    for (uint64_t key = 1; shard_keys_[0].size() < kKeysPerShard ||
                           shard_keys_[1].size() < kKeysPerShard;
         ++key) {
      std::vector<uint64_t>& owned = shard_keys_[map_.ShardFor(key)];
      if (owned.size() < kKeysPerShard) owned.push_back(key);
    }

    // Per-shard seed: every key starts with balance 1000.
    for (size_t shard = 0; shard < kShards; ++shard) {
      auto direct = DirectClient(shard);
      const std::vector<uint64_t>& keys = shard_keys_[shard];
      ASSERT_TRUE(direct
                      ->CreateTable("acct", keys.size(),
                                    {{"id", ValueType::kInt64},
                                     {"balance", ValueType::kInt64}})
                      .ok());
      std::vector<uint64_t> ids, balances;
      for (uint64_t key : keys) {
        ids.push_back(storage::EncodeInt64(static_cast<int64_t>(key)));
        balances.push_back(storage::EncodeInt64(1000));
      }
      ASSERT_TRUE(direct->Load("acct", "id", 0, ids).ok());
      ASSERT_TRUE(direct->Load("acct", "balance", 0, balances).ok());
      ASSERT_TRUE(direct->BuildIndex("acct", "id").ok());
    }
  }

  void TearDown() override {
    client_.reset();
    if (router_) router_->Shutdown();
    for (size_t i = 0; i < kShards; ++i) {
      if (servers_[i]) servers_[i]->Shutdown();
      if (dbs_[i]) dbs_[i]->Stop();
    }
  }

  std::unique_ptr<server::Client> DirectClient(size_t shard) {
    auto connected =
        server::Client::Connect("127.0.0.1", servers_[shard]->port());
    EXPECT_TRUE(connected.ok());
    return connected.TakeValue();
  }

  static server::PointWrite BalanceWrite(uint64_t key, int64_t balance) {
    server::PointWrite write;
    write.table = "acct";
    write.column = "balance";
    write.by_key = true;
    write.key = key;
    write.raw = storage::EncodeInt64(balance);
    return write;
  }

  std::unique_ptr<engine::Database> dbs_[kShards];
  std::unique_ptr<server::Server> servers_[kShards];
  ShardMap map_;
  std::unique_ptr<BackendPool> pool_;
  std::unique_ptr<RouterCore> core_;
  std::unique_ptr<RouterServer> router_;
  std::unique_ptr<server::Client> client_;
  std::vector<uint64_t> shard_keys_[kShards];
};

TEST_F(Router2pcTest, CrossShardTransferConservesTotalAndCounts) {
  const uint64_t from = shard_keys_[0][0];
  const uint64_t to = shard_keys_[1][0];
  ASSERT_TRUE(
      client_->ExecTxn({BalanceWrite(from, 900), BalanceWrite(to, 1100)})
          .ok());

  auto from_val = client_->Read("acct", "balance", from, /*by_key=*/true);
  auto to_val = client_->Read("acct", "balance", to, /*by_key=*/true);
  ASSERT_TRUE(from_val.ok() && to_val.ok());
  EXPECT_EQ(from_val.value(), storage::EncodeInt64(900));
  EXPECT_EQ(to_val.value(), storage::EncodeInt64(1100));

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().twopc_txns, 1u);
  EXPECT_EQ(status.value().passthrough_txns, 0u);
}

TEST_F(Router2pcTest, ReaderBlockedByIntentUntilCommitAndDuplicateIsIdempotent) {
  const uint64_t key = shard_keys_[0][0];
  auto direct = DirectClient(0);

  // A snapshot taken BEFORE the prepare reads around the intent: the
  // old version is the correct answer at that timestamp.
  auto old_reader = DirectClient(0);
  ASSERT_TRUE(old_reader->Begin().ok());
  auto before = old_reader->Read("acct", "balance", key, /*by_key=*/true);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value(), storage::EncodeInt64(1000));

  uint64_t prepare_ts = 0;
  ASSERT_TRUE(direct
                  ->PrepareTxn(/*gtid=*/777, /*primary_shard=*/0,
                               {BalanceWrite(key, 1), BalanceWrite(
                                                          shard_keys_[0][1],
                                                          1999)},
                               &prepare_ts)
                  .ok());
  ASSERT_GT(prepare_ts, 0u);

  // A fresh reader's snapshot is at/above the prepare stamp: blocked,
  // and the bounce names the transaction and its primary shard.
  server::IntentPendingMsg intent;
  auto blocked = direct->Read("acct", "balance", key, /*by_key=*/true,
                              &intent);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kResourceBusy);
  EXPECT_EQ(intent.gtid, 777u);
  EXPECT_EQ(intent.primary_shard, 0u);

  // An untouched key on the same shard reads fine.
  auto other = direct->Read("acct", "balance", shard_keys_[0][2],
                            /*by_key=*/true);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other.value(), storage::EncodeInt64(1000));

  // The pre-prepare snapshot still reads the old version, unblocked.
  auto still_old = old_reader->Read("acct", "balance", key, /*by_key=*/true);
  ASSERT_TRUE(still_old.ok());
  EXPECT_EQ(still_old.value(), storage::EncodeInt64(1000));
  ASSERT_TRUE(old_reader->Commit().ok());

  // Phase two: the intent materializes, readers unblock.
  uint64_t lsn = 1;
  ASSERT_TRUE(direct->CommitPrepared(777, prepare_ts + 1, &lsn).ok());
  auto after = direct->Read("acct", "balance", key, /*by_key=*/true);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), storage::EncodeInt64(1));

  // Duplicate COMMIT_PREPARED is an idempotent OK with LSN 0 (no new
  // WAL record; durability is off in this fixture anyway).
  uint64_t dup_lsn = 99;
  ASSERT_TRUE(direct->CommitPrepared(777, prepare_ts + 1, &dup_lsn).ok());
  EXPECT_EQ(dup_lsn, 0u);
  auto unchanged = direct->Read("acct", "balance", key, /*by_key=*/true);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_EQ(unchanged.value(), storage::EncodeInt64(1));

  // Aborting a committed transaction is refused: commits are final.
  const Status late_abort = direct->AbortPrepared(777);
  EXPECT_EQ(late_abort.code(), StatusCode::kInvalidArgument);
}

TEST_F(Router2pcTest, PrimaryAbortFencesZombieCommitAndReaderHealsSecondary) {
  const uint64_t on_primary = shard_keys_[0][0];
  const uint64_t on_secondary = shard_keys_[1][0];
  auto primary = DirectClient(0);
  auto secondary = DirectClient(1);

  // A coordinator staged both halves of a transfer, then "decided" to
  // abort at the primary (e.g. a participant refused) and died before
  // telling the secondary.
  ASSERT_TRUE(primary
                  ->PrepareTxn(555, /*primary_shard=*/0,
                               {BalanceWrite(on_primary, 0)})
                  .ok());
  ASSERT_TRUE(secondary
                  ->PrepareTxn(555, /*primary_shard=*/0,
                               {BalanceWrite(on_secondary, 2000)})
                  .ok());
  ASSERT_TRUE(primary->AbortPrepared(555).ok());

  // A zombie COMMIT_PREPARED arriving after the abort is refused — the
  // outcome ledger is authoritative.
  const Status zombie = primary->CommitPrepared(555, 1ull << 40);
  ASSERT_FALSE(zombie.ok());
  EXPECT_EQ(zombie.code(), StatusCode::kAborted);

  // Reading the secondary's key through the router finds the orphaned
  // intent, learns "aborted" from the primary, applies it, and serves
  // the pre-transaction value.
  auto healed = client_->Read("acct", "balance", on_secondary,
                              /*by_key=*/true);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(healed.value(), storage::EncodeInt64(1000));

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status.value().intent_resolutions, 1u);

  // The secondary no longer carries the intent.
  auto direct_read = secondary->Read("acct", "balance", on_secondary,
                                     /*by_key=*/true);
  ASSERT_TRUE(direct_read.ok());
  EXPECT_EQ(direct_read.value(), storage::EncodeInt64(1000));
}

TEST_F(Router2pcTest, CommittedIntentOnSecondaryResolvedLazilyByReader) {
  const uint64_t on_primary = shard_keys_[0][0];
  const uint64_t on_secondary = shard_keys_[1][0];
  auto primary = DirectClient(0);
  auto secondary = DirectClient(1);

  // The coordinator committed at the primary (the commit point) and
  // died before fanning out to the secondary.
  uint64_t prepare_a = 0, prepare_b = 0;
  ASSERT_TRUE(primary
                  ->PrepareTxn(666, /*primary_shard=*/0,
                               {BalanceWrite(on_primary, 800)}, &prepare_a)
                  .ok());
  ASSERT_TRUE(secondary
                  ->PrepareTxn(666, /*primary_shard=*/0,
                               {BalanceWrite(on_secondary, 1200)},
                               &prepare_b)
                  .ok());
  const uint64_t commit_ts = std::max(prepare_a, prepare_b) + 1;
  ASSERT_TRUE(primary->CommitPrepared(666, commit_ts).ok());

  // The transaction IS committed: a router-side reader must see the
  // new value on BOTH shards, healing the secondary on the way.
  auto secondary_val = client_->Read("acct", "balance", on_secondary,
                                     /*by_key=*/true);
  ASSERT_TRUE(secondary_val.ok()) << secondary_val.status().ToString();
  EXPECT_EQ(secondary_val.value(), storage::EncodeInt64(1200));
  auto primary_val = client_->Read("acct", "balance", on_primary,
                                   /*by_key=*/true);
  ASSERT_TRUE(primary_val.ok());
  EXPECT_EQ(primary_val.value(), storage::EncodeInt64(800));

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status.value().intent_resolutions, 1u);
}

TEST_F(Router2pcTest, UndecidedIntentEscalatesToDurableAbort) {
  const uint64_t on_secondary = shard_keys_[1][0];
  auto primary = DirectClient(0);
  auto secondary = DirectClient(1);

  // Both halves prepared, no decision anywhere: the coordinator died
  // between phases. The primary keeps answering "pending" until a
  // reader escalates.
  ASSERT_TRUE(primary
                  ->PrepareTxn(888, /*primary_shard=*/0,
                               {BalanceWrite(shard_keys_[0][0], 0)})
                  .ok());
  ASSERT_TRUE(secondary
                  ->PrepareTxn(888, /*primary_shard=*/0,
                               {BalanceWrite(on_secondary, 9999)})
                  .ok());

  // The router retries resolution, then presumes the coordinator dead
  // and escalates to a durable abort at the primary; the read then
  // serves the pre-transaction value.
  auto resolved = client_->Read("acct", "balance", on_secondary,
                                /*by_key=*/true);
  ASSERT_TRUE(resolved.ok()) << resolved.status().ToString();
  EXPECT_EQ(resolved.value(), storage::EncodeInt64(1000));

  // The escalation fenced the gtid: a zombie coordinator waking up and
  // committing is refused at the primary.
  const Status zombie = primary->CommitPrepared(888, 1ull << 40);
  ASSERT_FALSE(zombie.ok());
  EXPECT_EQ(zombie.code(), StatusCode::kAborted);

  // And the primary's own intent unwound too (its slot reads old).
  auto primary_val = primary->Read("acct", "balance", shard_keys_[0][0],
                                   /*by_key=*/true);
  ASSERT_TRUE(primary_val.ok());
  EXPECT_EQ(primary_val.value(), storage::EncodeInt64(1000));
}

TEST_F(Router2pcTest, SingleShardConflictWithIntentSurfacesBusyThenClears) {
  const uint64_t key = shard_keys_[0][0];
  auto direct = DirectClient(0);
  uint64_t prepare_ts = 0;
  ASSERT_TRUE(direct
                  ->PrepareTxn(444, /*primary_shard=*/0,
                               {BalanceWrite(key, 1)}, &prepare_ts)
                  .ok());

  // A normal single-shard EXEC_TXN against the intent-locked slot is
  // refused with a recoverable ResourceBusy (the commit fails before
  // applying anything), which travels through the router untouched.
  const Status conflicted = client_->ExecTxn({BalanceWrite(key, 5)});
  ASSERT_FALSE(conflicted.ok());
  EXPECT_EQ(conflicted.code(), StatusCode::kResourceBusy);

  // Once the intent resolves, the same transaction goes through.
  ASSERT_TRUE(direct->CommitPrepared(444, prepare_ts + 1).ok());
  ASSERT_TRUE(client_->ExecTxn({BalanceWrite(key, 5)}).ok());
  auto value = client_->Read("acct", "balance", key, /*by_key=*/true);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), storage::EncodeInt64(5));
}

}  // namespace
}  // namespace anker::shard
