// Router end-to-end over loopback: two in-process engine shards behind
// a live RouterServer, driven through the ordinary client library. The
// routing contract under test: fan-out DDL reaches every shard,
// single-shard transactions pass through (and count as pass-throughs),
// cross-shard EXEC_TXN commits atomically via 2PC (and counts as a
// twopc_txn, NOT a pass-through), scatter-gather queries
// merge to exactly the union of the shard answers, and a down shard
// degrades to BUSY for writes — or a partial answer when the router
// runs with allow_partial.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "query/serialize.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/backend_pool.h"
#include "shard/router_core.h"
#include "shard/router_server.h"
#include "shard/shard_map.h"
#include "storage/value.h"

namespace anker::shard {
namespace {

using storage::ValueType;

constexpr size_t kShards = 2;
constexpr size_t kKeysPerShard = 8;

class RouterE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string map_text = "version 1\n";
    for (size_t i = 0; i < kShards; ++i) {
      engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
          txn::ProcessingMode::kHeterogeneousSerializable);
      config.worker_threads = 2;
      dbs_[i] = std::make_unique<engine::Database>(config);
      dbs_[i]->Start();
      servers_[i] = std::make_unique<server::Server>(dbs_[i].get(),
                                                     server::ServerConfig{});
      ASSERT_TRUE(servers_[i]->Start().ok());
      map_text += "shard 127.0.0.1:" + std::to_string(servers_[i]->port()) +
                  "\n";
    }
    map_text += "table part partition id\n";
    auto parsed = ShardMap::Parse(map_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    map_ = parsed.TakeValue();

    pool_ = std::make_unique<BackendPool>(map_.shards(),
                                          BackendPoolConfig{});
    core_ = std::make_unique<RouterCore>(&map_, pool_.get(),
                                         RouterCoreConfig{});
    router_ = std::make_unique<RouterServer>(core_.get(),
                                             RouterServerConfig{});
    ASSERT_TRUE(router_->Start().ok());
    auto connected = server::Client::Connect("127.0.0.1", router_->port());
    ASSERT_TRUE(connected.ok());
    client_ = connected.TakeValue();

    // Deterministic key split: first kKeysPerShard keys owned by each
    // shard, in routing order.
    for (uint64_t key = 1; shard_keys_[0].size() < kKeysPerShard ||
                           shard_keys_[1].size() < kKeysPerShard;
         ++key) {
      std::vector<uint64_t>& owned = shard_keys_[map_.ShardFor(key)];
      if (owned.size() < kKeysPerShard) owned.push_back(key);
    }
  }

  void TearDown() override {
    client_.reset();
    if (router_) router_->Shutdown();
    for (size_t i = 0; i < kShards; ++i) {
      if (servers_[i]) servers_[i]->Shutdown();
      if (dbs_[i]) dbs_[i]->Stop();
    }
  }

  std::unique_ptr<server::Client> DirectClient(size_t shard) {
    auto connected =
        server::Client::Connect("127.0.0.1", servers_[shard]->port());
    EXPECT_TRUE(connected.ok());
    return connected.TakeValue();
  }

  /// Creates + loads the partitioned `part` table the way a real loader
  /// would: directly on each shard, rows split by the routing hash.
  void SeedPartitioned(double value_scale) {
    for (size_t shard = 0; shard < kShards; ++shard) {
      auto direct = DirectClient(shard);
      const std::vector<uint64_t>& keys = shard_keys_[shard];
      ASSERT_TRUE(direct
                      ->CreateTable("part", keys.size(),
                                    {{"id", ValueType::kInt64},
                                     {"val", ValueType::kDouble}})
                      .ok());
      std::vector<uint64_t> ids, vals;
      for (size_t row = 0; row < keys.size(); ++row) {
        ids.push_back(storage::EncodeInt64(static_cast<int64_t>(keys[row])));
        // Dyadic rationals keyed on the (globally unique) key: shard
        // sums are exact and every value is distinct, so the merged
        // result must be byte-identical to a single-node run.
        vals.push_back(storage::EncodeDouble(
            value_scale * static_cast<double>(keys[row]) * 0.25));
      }
      ASSERT_TRUE(direct->Load("part", "id", 0, ids).ok());
      ASSERT_TRUE(direct->Load("part", "val", 0, vals).ok());
      ASSERT_TRUE(direct->BuildIndex("part", "id").ok());
    }
  }

  std::unique_ptr<engine::Database> dbs_[kShards];
  std::unique_ptr<server::Server> servers_[kShards];
  ShardMap map_;
  std::unique_ptr<BackendPool> pool_;
  std::unique_ptr<RouterCore> core_;
  std::unique_ptr<RouterServer> router_;
  std::unique_ptr<server::Client> client_;
  std::vector<uint64_t> shard_keys_[kShards];
};

TEST_F(RouterE2eTest, FanoutReachesEveryShardAndRefusesPartitionedDdl) {
  // Replicated DDL + load through the router lands on both shards.
  ASSERT_TRUE(client_
                  ->CreateTable("dim", 4,
                                {{"k", ValueType::kInt64},
                                 {"w", ValueType::kDouble}})
                  .ok());
  std::vector<uint64_t> ks, ws;
  for (uint64_t row = 0; row < 4; ++row) {
    ks.push_back(storage::EncodeInt64(static_cast<int64_t>(row)));
    ws.push_back(storage::EncodeDouble(0.5 * static_cast<double>(row + 1)));
  }
  ASSERT_TRUE(client_->Load("dim", "k", 0, ks).ok());
  ASSERT_TRUE(client_->Load("dim", "w", 0, ws).ok());
  ASSERT_TRUE(client_->BuildIndex("dim", "k").ok());

  for (size_t shard = 0; shard < kShards; ++shard) {
    auto direct = DirectClient(shard);
    auto tables = direct->ListTables();
    ASSERT_TRUE(tables.ok());
    ASSERT_EQ(tables.value().size(), 1u) << "shard " << shard;
    EXPECT_EQ(tables.value()[0].name, "dim");
    EXPECT_EQ(tables.value()[0].num_rows, 4u);
    EXPECT_TRUE(tables.value()[0].has_primary_index);
  }

  // Replicated-only query: served by ONE shard, not scattered.
  query::WireQuery sum;
  sum.table = "dim";
  sum.aggs.push_back(query::Sum(query::Col("w")).As("s"));
  auto result = client_->Query(sum, query::Params());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().Value("s"), 0.5 + 1.0 + 1.5 + 2.0);

  // Partitioned-table DDL/load through the router is the loader's job.
  const Status refused = client_->CreateTable(
      "part", 16, {{"id", ValueType::kInt64}, {"val", ValueType::kDouble}});
  EXPECT_EQ(refused.code(), StatusCode::kNotSupported) << refused.ToString();

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().shard_count, 2u);
  EXPECT_EQ(status.value().healthy_shards, 2u);
  EXPECT_EQ(status.value().shard_map_digest, map_.digest());
  EXPECT_GE(status.value().fanout_ops, 4u);  // create + 2 loads + index.
  EXPECT_GE(status.value().single_shard_queries, 1u);
  EXPECT_EQ(status.value().scatter_queries, 0u);
}

TEST_F(RouterE2eTest, SingleShardTxnsPassThroughAndCrossShardIsRefused) {
  SeedPartitioned(1.0);
  const uint64_t mine = shard_keys_[0][0];
  const uint64_t theirs = shard_keys_[1][0];

  // Auto-commit EXEC_TXN on one shard's keys: the pass-through path.
  std::vector<server::PointWrite> batch;
  for (size_t i = 0; i < 2; ++i) {
    server::PointWrite write;
    write.table = "part";
    write.column = "val";
    write.by_key = true;
    write.key = shard_keys_[0][i];
    write.raw = storage::EncodeDouble(100.0 + static_cast<double>(i));
    batch.push_back(std::move(write));
  }
  ASSERT_TRUE(client_->ExecTxn(batch).ok());

  // The write is visible through the router and on the owning shard.
  auto via_router = client_->Read("part", "val", mine, /*by_key=*/true);
  ASSERT_TRUE(via_router.ok());
  EXPECT_EQ(via_router.value(), storage::EncodeDouble(100.0));
  auto direct = DirectClient(0);
  auto on_shard = direct->Read("part", "val", mine, /*by_key=*/true);
  ASSERT_TRUE(on_shard.ok());
  EXPECT_EQ(on_shard.value(), storage::EncodeDouble(100.0));

  // A batch spanning both shards commits atomically via 2PC; both
  // writes are visible on their owning shards afterwards.
  std::vector<server::PointWrite> spanning = batch;
  spanning[1].key = theirs;
  spanning[0].raw = storage::EncodeDouble(200.0);
  spanning[1].raw = storage::EncodeDouble(201.0);
  const Status cross = client_->ExecTxn(spanning);
  ASSERT_TRUE(cross.ok()) << cross.ToString();
  auto mine_after = client_->Read("part", "val", mine, /*by_key=*/true);
  ASSERT_TRUE(mine_after.ok());
  EXPECT_EQ(mine_after.value(), storage::EncodeDouble(200.0));
  auto theirs_after = DirectClient(1)->Read("part", "val", theirs,
                                            /*by_key=*/true);
  ASSERT_TRUE(theirs_after.ok());
  EXPECT_EQ(theirs_after.value(), storage::EncodeDouble(201.0));

  // Interactive transaction: BEGIN pins lazily, sees its own write,
  // COMMIT forwards to the pinned shard.
  ASSERT_TRUE(client_->Begin().ok());
  ASSERT_TRUE(client_
                  ->Write("part", "val", mine, storage::EncodeDouble(7.25),
                          /*by_key=*/true)
                  .ok());
  auto own = client_->Read("part", "val", mine, /*by_key=*/true);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own.value(), storage::EncodeDouble(7.25));
  // Touching the other shard mid-transaction is refused; the pinned
  // transaction survives the refusal.
  const Status pinned = client_->Write("part", "val", theirs,
                                       storage::EncodeDouble(1.0),
                                       /*by_key=*/true);
  EXPECT_EQ(pinned.code(), StatusCode::kNotSupported);
  ASSERT_TRUE(client_->Commit().ok());
  auto committed = client_->Read("part", "val", mine, /*by_key=*/true);
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed.value(), storage::EncodeDouble(7.25));

  // An untouched transaction and an empty batch commit locally.
  ASSERT_TRUE(client_->Begin().ok());
  ASSERT_TRUE(client_->Commit().ok());
  ASSERT_TRUE(client_->ExecTxn({}).ok());

  // Writes outside a transaction are refused (EXEC_TXN is the
  // auto-commit path through the router).
  const Status naked = client_->Write("part", "val", mine,
                                      storage::EncodeDouble(0.0),
                                      /*by_key=*/true);
  EXPECT_EQ(naked.code(), StatusCode::kInvalidArgument);

  // Row-id addressing cannot route on a partitioned table.
  ASSERT_TRUE(client_->Begin().ok());
  const Status row_id = client_->Write("part", "val", 0,
                                       storage::EncodeDouble(0.0),
                                       /*by_key=*/false);
  EXPECT_EQ(row_id.code(), StatusCode::kNotSupported);
  ASSERT_TRUE(client_->Abort().ok());

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  // EXEC_TXN + the committed interactive txn (empty ones stay local).
  // The cross-shard 2PC transaction counts under twopc_txns, not here:
  // the pass-through counter moves exactly once per single-shard txn.
  EXPECT_EQ(status.value().passthrough_txns, 2u);
  EXPECT_EQ(status.value().twopc_txns, 1u);
}

TEST_F(RouterE2eTest, ScatterGatherMatchesUnionOfShards) {
  SeedPartitioned(1.0);

  // Global SUM via the router == the sum of per-shard direct answers
  // (exact by construction: dyadic values).
  query::WireQuery sum;
  sum.table = "part";
  sum.aggs.push_back(query::Sum(query::Col("val")).As("s"));
  sum.aggs.push_back(query::Avg(query::Col("val")).As("a"));
  sum.aggs.push_back(query::Count().As("n"));
  double expect_sum = 0.0;
  uint64_t expect_rows = 0;
  for (size_t shard = 0; shard < kShards; ++shard) {
    auto direct = DirectClient(shard);
    query::WireQuery local;
    local.table = "part";
    local.aggs.push_back(query::Sum(query::Col("val")).As("s"));
    local.aggs.push_back(query::Count().As("n"));
    auto part = direct->Query(local, query::Params());
    ASSERT_TRUE(part.ok());
    expect_sum += part.value().Value("s");
    expect_rows += static_cast<uint64_t>(part.value().Value("n"));
  }
  auto merged = client_->Query(sum, query::Params());
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().rows.size(), 1u);
  EXPECT_EQ(merged.value().shards_missing, 0u);  // Complete answer.
  EXPECT_EQ(merged.value().Value("s"), expect_sum);
  EXPECT_EQ(merged.value().Value("n"), static_cast<double>(expect_rows));
  EXPECT_EQ(merged.value().Value("a"),
            expect_sum / static_cast<double>(expect_rows));

  // Concat + router-side top-k: group by the partition key, order by
  // the aggregate. Values are key * 0.25 (all distinct), so the global
  // top-3 are the three largest keys across both shards — a set that
  // straddles the shard split, which is exactly what per-shard top-k
  // plus router re-sort must get right.
  std::vector<uint64_t> all_keys;
  for (size_t shard = 0; shard < kShards; ++shard) {
    all_keys.insert(all_keys.end(), shard_keys_[shard].begin(),
                    shard_keys_[shard].end());
  }
  std::sort(all_keys.rbegin(), all_keys.rend());
  query::WireQuery topk;
  topk.table = "part";
  topk.aggs.push_back(query::Sum(query::Col("val")).As("s"));
  topk.group_by.push_back("id");
  topk.order_by.push_back({"s", /*desc=*/true});
  topk.limit = 3;
  auto top = client_->Query(topk, query::Params());
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top.value().rows.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(top.value().rows[i].values[0],
              static_cast<double>(all_keys[i]) * 0.25)
        << "rank " << i;
  }

  // Genuinely cross-shard: recoverable refusal, the session survives.
  query::WireQuery distinct;
  distinct.table = "part";
  distinct.aggs.push_back(
      query::CountDistinct(query::Col("val")).As("d"));
  auto refused = client_->Query(distinct, query::Params());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kNotSupported);
  EXPECT_TRUE(client_->Ping().ok());

  auto status = client_->RouterStatus();
  ASSERT_TRUE(status.ok());
  EXPECT_GE(status.value().scatter_queries, 2u);
}

TEST_F(RouterE2eTest, DownShardMeansBusyWritesAndPartialQueriesOptIn) {
  SeedPartitioned(1.0);

  // Compute the live shard's expected partial before the kill.
  double shard0_sum = 0.0;
  {
    auto direct = DirectClient(0);
    query::WireQuery local;
    local.table = "part";
    local.aggs.push_back(query::Sum(query::Col("val")).As("s"));
    auto part = direct->Query(local, query::Params());
    ASSERT_TRUE(part.ok());
    shard0_sum = part.value().Value("s");
  }

  // A second router over the SAME pool, with allow_partial on.
  RouterCoreConfig partial_config;
  partial_config.allow_partial = true;
  RouterCore partial_core(&map_, pool_.get(), partial_config);
  RouterServer partial_router(&partial_core, RouterServerConfig{});
  ASSERT_TRUE(partial_router.Start().ok());
  auto partial_connected =
      server::Client::Connect("127.0.0.1", partial_router.port());
  ASSERT_TRUE(partial_connected.ok());
  auto partial_client = partial_connected.TakeValue();

  servers_[1]->Shutdown();
  servers_[1].reset();

  // Writes that must reach the dead shard: every attempt fails; once
  // the stale pooled connections drain, the failure is BUSY (the pool's
  // reconnect backoff). A fresh client retries and moves on.
  server::PointWrite write;
  write.table = "part";
  write.column = "val";
  write.by_key = true;
  write.key = shard_keys_[1][0];
  write.raw = storage::EncodeDouble(9.0);
  bool saw_busy = false;
  for (int attempt = 0; attempt < 12 && !saw_busy; ++attempt) {
    const Status s = client_->ExecTxn({write});
    ASSERT_FALSE(s.ok());
    saw_busy = s.IsResourceBusy();
  }
  EXPECT_TRUE(saw_busy);

  // The live shard's keys still write through the same router.
  write.key = shard_keys_[0][0];
  write.raw = storage::EncodeDouble(11.0);
  ASSERT_TRUE(client_->ExecTxn({write}).ok());

  // Strict router: scatter queries refuse while a shard is missing.
  query::WireQuery sum;
  sum.table = "part";
  sum.aggs.push_back(query::Sum(query::Col("val")).As("s"));
  bool query_busy = false;
  for (int attempt = 0; attempt < 12 && !query_busy; ++attempt) {
    auto blocked = client_->Query(sum, query::Params());
    ASSERT_FALSE(blocked.ok());
    query_busy = blocked.status().IsResourceBusy();
  }
  EXPECT_TRUE(query_busy);

  // allow_partial router: answers from the reachable subset. The write
  // above bumped shard 0's sum by (11.0 - original val of that key);
  // re-read the live shard for the fresh expectation.
  {
    auto direct = DirectClient(0);
    query::WireQuery local;
    local.table = "part";
    local.aggs.push_back(query::Sum(query::Col("val")).As("s"));
    auto part = direct->Query(local, query::Params());
    ASSERT_TRUE(part.ok());
    shard0_sum = part.value().Value("s");
  }
  query::QueryResult partial_result;
  bool partial_ok = false;
  for (int attempt = 0; attempt < 12 && !partial_ok; ++attempt) {
    auto answered = partial_client->Query(sum, query::Params());
    if (!answered.ok()) {
      // Stale pooled connection to the dead shard can poison the
      // probing client mid-stream; reconnect and retry.
      auto reconnected =
          server::Client::Connect("127.0.0.1", partial_router.port());
      ASSERT_TRUE(reconnected.ok());
      partial_client = reconnected.TakeValue();
      continue;
    }
    partial_result = answered.TakeValue();
    partial_ok = true;
  }
  ASSERT_TRUE(partial_ok);
  EXPECT_EQ(partial_result.Value("s"), shard0_sum);
  // The degraded result is wire-marked: one shard's rows are absent.
  EXPECT_EQ(partial_result.shards_missing, 1u);

  partial_client.reset();
  partial_router.Shutdown();
}

TEST_F(RouterE2eTest, OperationsSurfaceIsRefusedByTheRouter) {
  // Per-node operator actions are meaningless through a router.
  EXPECT_EQ(client_->DecommissionReplica("replica-x").code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(client_->CheckpointNow().code(), StatusCode::kNotSupported);
  EXPECT_EQ(client_->Promote().code(), StatusCode::kNotSupported);
  ASSERT_FALSE(client_->Digest().ok());
  // ...while a plain engine server refuses ROUTER_STATUS symmetrically.
  auto direct = DirectClient(0);
  auto probe = direct->RouterStatus();
  ASSERT_FALSE(probe.ok());
  EXPECT_EQ(probe.status().code(), StatusCode::kNotSupported);
}

}  // namespace
}  // namespace anker::shard
