// Protocol v4 (shard routing) codec hardening, in the repl_protocol_test
// mold: the extended HELLO_OK (flags + shard map digest), the router
// status counters, the decommission request, and the QUERY_DONE
// interleave tags all round-trip their encoders and reject every
// truncation and mutation with a clean Status — a router sits on the
// network edge, so a decoder that aborts or over-reads is a remote DoS.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "query/query.h"
#include "server/protocol.h"

namespace anker::server {
namespace {

template <typename DecodeFn>
void AllTruncationsRejected(std::string_view body, DecodeFn decode) {
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode(body.substr(0, len)).ok())
        << "truncation to " << len << " of " << body.size() << " accepted";
  }
}

TEST(RouterProtocolTest, HelloOkCarriesRouterFlagsAndDigest) {
  HelloOkMsg msg;
  msg.server_info = "anker-router";
  msg.flags = kHelloFlagRouter;
  msg.shard_map_digest = 0x123456789ABCDEF0ULL;
  std::string payload;
  EncodeHelloOk(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kHelloOk);

  HelloOkMsg out;
  ASSERT_TRUE(DecodeHelloOk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.version, kProtocolVersion);
  EXPECT_EQ(out.server_info, "anker-router");
  EXPECT_EQ(out.flags, kHelloFlagRouter);
  EXPECT_EQ(out.shard_map_digest, 0x123456789ABCDEF0ULL);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           HelloOkMsg m;
                           return DecodeHelloOk(in, &m);
                         });
}

TEST(RouterProtocolTest, PlainServerHelloOkDecodesWithZeroFlags) {
  HelloOkMsg msg;
  msg.server_info = "anker";
  std::string payload;
  EncodeHelloOk(msg, &payload);
  HelloOkMsg out;
  ASSERT_TRUE(DecodeHelloOk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.flags, 0u);
  EXPECT_EQ(out.shard_map_digest, 0u);
}

TEST(RouterProtocolTest, RouterStatusOkRoundTrip) {
  RouterStatusOkMsg msg;
  msg.shard_count = 3;
  msg.healthy_shards = 2;
  msg.shard_map_version = 7;
  msg.shard_map_digest = 0xFEEDFACECAFEBEEFULL;
  msg.allow_partial = true;
  msg.passthrough_txns = 1000;
  msg.scatter_queries = 42;
  msg.single_shard_queries = 9;
  msg.fanout_ops = 5;
  std::string payload;
  EncodeRouterStatusOk(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kRouterStatusOk);

  RouterStatusOkMsg out;
  ASSERT_TRUE(
      DecodeRouterStatusOk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.shard_count, 3u);
  EXPECT_EQ(out.healthy_shards, 2u);
  EXPECT_EQ(out.shard_map_version, 7u);
  EXPECT_EQ(out.shard_map_digest, 0xFEEDFACECAFEBEEFULL);
  EXPECT_TRUE(out.allow_partial);
  EXPECT_EQ(out.passthrough_txns, 1000u);
  EXPECT_EQ(out.scatter_queries, 42u);
  EXPECT_EQ(out.single_shard_queries, 9u);
  EXPECT_EQ(out.fanout_ops, 5u);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           RouterStatusOkMsg m;
                           return DecodeRouterStatusOk(in, &m);
                         });
}

TEST(RouterProtocolTest, DecommissionReplicaRejectsHostileIds) {
  DecommissionReplicaMsg msg;
  msg.replica_id = "replica-b";
  std::string payload;
  EncodeDecommissionReplica(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kDecommissionReplica);
  DecommissionReplicaMsg out;
  ASSERT_TRUE(
      DecodeDecommissionReplica(std::string_view(payload).substr(1), &out)
          .ok());
  EXPECT_EQ(out.replica_id, "replica-b");

  const auto reject = [](const std::string& id) {
    DecommissionReplicaMsg hostile;
    hostile.replica_id = id;
    std::string body;
    EncodeDecommissionReplica(hostile, &body);
    DecommissionReplicaMsg decoded;
    const Status s =
        DecodeDecommissionReplica(std::string_view(body).substr(1), &decoded);
    EXPECT_FALSE(s.ok()) << "accepted replica_id: " << id;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  };
  reject("");                      // No name.
  reject(std::string(4096, 'x'));  // Absurd length.

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           DecommissionReplicaMsg m;
                           return DecodeDecommissionReplica(in, &m);
                         });
}

TEST(RouterProtocolTest, QueryDoneRoundTripsInterleave) {
  query::QueryResult result;
  result.columns = {"sum_qty", "avg_qty"};
  result.key_names = {"l_returnflag", "l_linestatus"};
  result.key_types = {query::ExprType::kDict, query::ExprType::kDict};
  result.interleave = {0, 0, 1, 1};
  result.rows_scanned = 123456;
  result.shards_missing = 2;  // Degraded (--allow_partial) result.
  std::string payload;
  EncodeQueryDone(result, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kQueryDone);

  query::QueryResult out;
  ASSERT_TRUE(DecodeQueryDone(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.columns, result.columns);
  EXPECT_EQ(out.key_names, result.key_names);
  EXPECT_EQ(out.interleave, (std::vector<uint8_t>{0, 0, 1, 1}));
  EXPECT_EQ(out.rows_scanned, 123456u);
  EXPECT_EQ(out.shards_missing, 2u);

  // Legacy shape: no interleave travels as an empty vector, and the
  // consumer falls back to keys-then-values ordering. A complete
  // result travels shards_missing = 0.
  query::QueryResult plain;
  plain.columns = {"v"};
  std::string plain_payload;
  EncodeQueryDone(plain, &plain_payload);
  query::QueryResult plain_out;
  plain_out.shards_missing = 7;  // Decode must overwrite, not keep.
  ASSERT_TRUE(
      DecodeQueryDone(std::string_view(plain_payload).substr(1), &plain_out)
          .ok());
  EXPECT_TRUE(plain_out.interleave.empty());
  EXPECT_EQ(plain_out.shards_missing, 0u);
}

TEST(RouterProtocolTest, QueryDoneRejectsInterleaveCountLies) {
  // An interleave whose length disagrees with cols+keys is hostile: a
  // consumer indexing by it would walk off the row vectors.
  query::QueryResult result;
  result.columns = {"v"};
  result.key_names = {"k"};
  result.key_types = {query::ExprType::kInt64};
  result.interleave = {0, 1, 1};  // Lies: 3 tags for 2 output columns.
  std::string lying;
  EncodeQueryDone(result, &lying);
  query::QueryResult decoded;
  const Status s =
      DecodeQueryDone(std::string_view(lying).substr(1), &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();

  result.interleave = {0, 1};
  std::string payload;
  EncodeQueryDone(result, &payload);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           query::QueryResult m;
                           return DecodeQueryDone(in, &m);
                         });
}

TEST(RouterProtocolTest, NewOpsClassifyCorrectly) {
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kRouterStatus)));
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kDecommissionReplica)));
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kRouterStatusOk)));
}

TEST(RouterProtocolTest, FuzzedBodiesNeverCrashDecoders) {
  std::mt19937_64 rng(0x5EEDC0DEULL);
  RouterStatusOkMsg status;
  status.shard_count = 3;
  status.passthrough_txns = 99;
  std::string status_payload;
  EncodeRouterStatusOk(status, &status_payload);
  HelloOkMsg hello;
  hello.server_info = "anker-router";
  hello.flags = kHelloFlagRouter;
  hello.shard_map_digest = 42;
  std::string hello_payload;
  EncodeHelloOk(hello, &hello_payload);

  for (int round = 0; round < 2000; ++round) {
    for (const std::string* base : {&status_payload, &hello_payload}) {
      std::string mutated = base->substr(1);
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int f = 0; f < flips; ++f) {
        mutated[rng() % mutated.size()] ^=
            static_cast<char>(1u << (rng() % 8));
      }
      if (rng() % 4 == 0) mutated.resize(rng() % (mutated.size() + 1));
      RouterStatusOkMsg s;
      DecodeRouterStatusOk(mutated, &s);  // Any clean Status is fine.
      HelloOkMsg h;
      DecodeHelloOk(mutated, &h);
    }
  }
}

}  // namespace
}  // namespace anker::server
