#include "storage/value.h"

#include <gtest/gtest.h>

#include <limits>

namespace anker::storage {
namespace {

TEST(ValueTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    EXPECT_EQ(DecodeInt64(EncodeInt64(v)), v);
  }
}

TEST(ValueTest, DoubleRoundTripIsBitExact) {
  for (double v : {0.0, -0.0, 1.5, -273.15, 1e300, 5e-324}) {
    EXPECT_EQ(DecodeDouble(EncodeDouble(v)), v);
  }
}

TEST(ValueTest, DictRoundTrip) {
  EXPECT_EQ(DecodeDict(EncodeDict(0)), 0u);
  EXPECT_EQ(DecodeDict(EncodeDict(0xFFFFFFFF)), 0xFFFFFFFFu);
}

TEST(ValueTest, CompareRawOrdersNegativesCorrectly) {
  // Raw uint64 comparison would order -1 after 1; the typed comparison
  // must not.
  EXPECT_LT(CompareRaw(ValueType::kInt64, EncodeInt64(-1), EncodeInt64(1)),
            0);
  EXPECT_GT(CompareRaw(ValueType::kInt64, EncodeInt64(5), EncodeInt64(-5)),
            0);
  EXPECT_EQ(CompareRaw(ValueType::kInt64, EncodeInt64(7), EncodeInt64(7)),
            0);
}

TEST(ValueTest, CompareRawDoublesInValueDomain) {
  EXPECT_LT(CompareRaw(ValueType::kDouble, EncodeDouble(-2.5),
                       EncodeDouble(0.1)),
            0);
  EXPECT_GT(CompareRaw(ValueType::kDouble, EncodeDouble(1e10),
                       EncodeDouble(1e-10)),
            0);
}

TEST(ValueTest, CompareRawDates) {
  EXPECT_LT(
      CompareRaw(ValueType::kDate, EncodeDate(100), EncodeDate(2405)), 0);
}

TEST(ValueTest, RawInRangeInclusiveBounds) {
  const uint64_t lo = EncodeDouble(0.05);
  const uint64_t hi = EncodeDouble(0.07);
  EXPECT_TRUE(RawInRange(ValueType::kDouble, EncodeDouble(0.05), lo, hi));
  EXPECT_TRUE(RawInRange(ValueType::kDouble, EncodeDouble(0.06), lo, hi));
  EXPECT_TRUE(RawInRange(ValueType::kDouble, EncodeDouble(0.07), lo, hi));
  EXPECT_FALSE(RawInRange(ValueType::kDouble, EncodeDouble(0.0701), lo, hi));
  EXPECT_FALSE(RawInRange(ValueType::kDouble, EncodeDouble(0.0499), lo, hi));
}

TEST(ValueTest, RawInRangeNegativeInterval) {
  EXPECT_TRUE(RawInRange(ValueType::kInt64, EncodeInt64(-5),
                         EncodeInt64(-10), EncodeInt64(-1)));
  EXPECT_FALSE(RawInRange(ValueType::kInt64, EncodeInt64(0),
                          EncodeInt64(-10), EncodeInt64(-1)));
}

}  // namespace
}  // namespace anker::storage
