#include "storage/column.h"

#include <gtest/gtest.h>

#include "vm/page.h"

namespace anker::storage {
namespace {

std::unique_ptr<Column> MakeColumn(size_t rows,
                                   snapshot::BufferBackend backend =
                                       snapshot::BufferBackend::kVmSnapshot) {
  auto buffer = snapshot::CreateBuffer(
      backend, vm::RoundUpToPage(rows * sizeof(uint64_t)));
  EXPECT_TRUE(buffer.ok());
  return std::make_unique<Column>("c", ValueType::kInt64, buffer.TakeValue(),
                                  rows);
}

TEST(ColumnTest, LoadAndReadLatest) {
  auto column = MakeColumn(100);
  column->LoadValue(3, 33);
  EXPECT_EQ(column->ReadLatestRaw(3), 33u);
  EXPECT_EQ(column->ReadLatestRaw(4), 0u);
}

TEST(ColumnTest, CommittedWritePushesVersion) {
  auto column = MakeColumn(100);
  column->LoadValue(0, 10);
  column->ApplyCommittedWrite(0, 20, /*commit_ts=*/5);
  EXPECT_EQ(column->ReadLatestRaw(0), 20u);
  EXPECT_EQ(column->ReadVisibleRaw(0, 3), 10u);   // older reader
  EXPECT_EQ(column->ReadVisibleRaw(0, 5), 20u);   // reader at commit ts
  EXPECT_EQ(column->LastWriteTs(0, 0), 5u);
}

TEST(ColumnTest, SnapshotHandsOverChains) {
  auto column = MakeColumn(100);
  column->LoadValue(0, 1);
  column->ApplyCommittedWrite(0, 2, 4);

  auto snap = column->MaterializeSnapshot(/*epoch_ts=*/6, /*seal_ts=*/7,
                                          /*min_active_ts=*/10);
  ASSERT_TRUE(snap.ok());
  const ColumnSnapshot& s = snap.value();
  EXPECT_EQ(s.epoch_ts, 6u);
  ASSERT_NE(s.chains, nullptr);  // the ts-4 version was handed over
  EXPECT_EQ(s.chains->TotalVersions(), 1u);
  // Snapshot view holds the committed slot image.
  EXPECT_EQ(s.view->ReadU64(0), 2u);
  // The live column starts a fresh chain segment.
  EXPECT_EQ(column->versions()->current()->TotalVersions(), 0u);
}

TEST(ColumnTest, CleanSnapshotHasNoChains) {
  auto column = MakeColumn(100);
  column->LoadValue(0, 1);
  auto snap = column->MaterializeSnapshot(2, 3, 10);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value().chains, nullptr);
}

TEST(ColumnTest, WritesAfterSnapshotInvisibleInView) {
  auto column = MakeColumn(100);
  column->LoadValue(7, 70);
  auto snap = column->MaterializeSnapshot(2, 3, 10);
  ASSERT_TRUE(snap.ok());
  column->ApplyCommittedWrite(7, 71, 5);
  EXPECT_EQ(snap.value().view->ReadU64(7 * 8), 70u);
  EXPECT_EQ(column->ReadLatestRaw(7), 71u);
}

TEST(ColumnTest, OldReaderResolvesAcrossEpochBoundary) {
  auto column = MakeColumn(100);
  column->LoadValue(0, 100);
  column->ApplyCommittedWrite(0, 200, 4);
  // A transaction at start_ts 2 is still in flight: min_active_ts = 2.
  auto snap = column->MaterializeSnapshot(5, 6, /*min_active_ts=*/2);
  ASSERT_TRUE(snap.ok());
  // The old reader must still resolve the pre-ts-4 value via prev-link.
  EXPECT_EQ(column->ReadVisibleRaw(0, 2), 100u);
  // A fresh reader sees the slot.
  EXPECT_EQ(column->ReadVisibleRaw(0, 7), 200u);
}

TEST(ColumnTest, PlainBackendWorksWithoutSnapshots) {
  auto column = MakeColumn(64, snapshot::BufferBackend::kPlain);
  column->LoadValue(1, 11);
  column->ApplyCommittedWrite(1, 12, 3);
  EXPECT_EQ(column->ReadVisibleRaw(1, 1), 11u);
  EXPECT_EQ(column->ReadVisibleRaw(1, 3), 12u);
  EXPECT_FALSE(column->MaterializeSnapshot(4, 5, 6).ok());
}

}  // namespace
}  // namespace anker::storage
