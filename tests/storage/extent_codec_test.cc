// Seeded property/fuzz suite for the extent codec: every encoding must
// round-trip bit-exactly over randomized and adversarial distributions,
// and the decoder must reject (never crash on, never silently accept) any
// corrupted frame — truncations, bit flips, and forged headers whose CRC
// was left stale.
//
// ANKER_FUZZ_ITERS overrides the iteration count of the randomized
// sections (smoke default 60; the nightly fuzz sweep in
// .github/workflows runs 2000 under ASan and TSan).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/extent_codec.h"

namespace anker::storage {
namespace {

size_t FuzzIters() {
  if (const char* env = std::getenv("ANKER_FUZZ_ITERS")) {
    return static_cast<size_t>(std::atoll(env));
  }
  return 60;
}

/// Encode -> decode -> compare, returning the encoding the encoder chose.
ExtentEncoding RoundTrip(const std::vector<uint64_t>& slots, ValueType type) {
  ExtentEncoding chosen = ExtentEncoding::kPlainU64;
  const std::string frame =
      EncodeExtent(slots.data(), slots.size(), type, &chosen);
  auto rows = ExtentRowCount(frame);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (rows.ok()) {
    EXPECT_EQ(rows.value(), slots.size());
  }
  std::vector<uint64_t> decoded;
  const Status s = DecodeExtent(frame, &decoded);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(decoded, slots) << "lossy round trip under "
                            << ExtentEncodingName(chosen);
  return chosen;
}

/// One adversarial or randomized distribution, keyed by `shape`. Shapes
/// cover the edges each encoding is most likely to mishandle: all-equal
/// (1-entry dictionary, 0-bit indices), alternating INT64_MIN/MAX (FOR
/// range overflow), dict-miss (> kMaxExtentDictEntries distinct values),
/// tight FOR ranges, sign-boundary straddles, and plain chaos.
std::vector<uint64_t> MakeSlots(Rng& rng, int shape) {
  const size_t n = 1 + rng.NextBounded(4096);
  std::vector<uint64_t> slots(n);
  switch (shape) {
    case 0: {  // All equal (zero-width packing).
      const uint64_t v = rng.Next();
      for (auto& s : slots) s = v;
      break;
    }
    case 1: {  // Alternating extremes: INT64_MIN / INT64_MAX.
      for (size_t i = 0; i < n; ++i) {
        slots[i] = static_cast<uint64_t>(
            (i & 1) != 0 ? std::numeric_limits<int64_t>::max()
                         : std::numeric_limits<int64_t>::min());
      }
      break;
    }
    case 2: {  // Small dictionary, random draw.
      const size_t card = 1 + rng.NextBounded(16);
      std::vector<uint64_t> dict(card);
      for (auto& d : dict) d = rng.Next();
      for (auto& s : slots) s = dict[rng.NextBounded(card)];
      break;
    }
    case 3: {  // Dict miss: every slot distinct.
      for (size_t i = 0; i < n; ++i) slots[i] = (rng.Next() << 16) | i;
      break;
    }
    case 4: {  // Tight FOR range around a random (possibly negative) base.
      const int64_t base = rng.NextInRange(-1'000'000'000, 1'000'000'000);
      for (auto& s : slots) {
        s = static_cast<uint64_t>(base + rng.NextInRange(0, 255));
      }
      break;
    }
    case 5: {  // Straddle the int64 sign boundary.
      for (auto& s : slots) {
        s = static_cast<uint64_t>(rng.NextInRange(-3, 3));
      }
      break;
    }
    default: {  // Uniform chaos.
      for (auto& s : slots) s = rng.Next();
      break;
    }
  }
  return slots;
}

TEST(ExtentCodecTest, EmptyExtentRoundTrips) {
  const std::vector<uint64_t> empty;
  RoundTrip(empty, ValueType::kInt64);
  std::string frame = EncodeExtent(nullptr, 0, ValueType::kDouble, nullptr);
  std::vector<uint64_t> decoded{42};
  ASSERT_TRUE(DecodeExtent(frame, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(ExtentCodecTest, AllEqualPicksCompactEncoding) {
  std::vector<uint64_t> slots(2048, 0xDEADBEEFCAFEF00Dull);
  const ExtentEncoding chosen = RoundTrip(slots, ValueType::kInt64);
  EXPECT_NE(chosen, ExtentEncoding::kPlainU64)
      << "a constant column must compress";
}

TEST(ExtentCodecTest, ExtremesRoundTripUnderEveryType) {
  Rng rng(0xA5EED);
  for (ValueType type :
       {ValueType::kInt64, ValueType::kDouble, ValueType::kDict32}) {
    for (int shape = 0; shape < 7; ++shape) {
      RoundTrip(MakeSlots(rng, shape), type);
    }
  }
}

TEST(ExtentCodecTest, DictMissFallsBackLosslessly) {
  // More distinct values than kMaxExtentDictEntries: the dictionary
  // candidate must bail, and whatever wins must still round-trip.
  std::vector<uint64_t> slots(kMaxExtentDictEntries + 512);
  for (size_t i = 0; i < slots.size(); ++i) {
    slots[i] = 0x8000000000000000ull ^ (i * 0x9E3779B97F4A7C15ull);
  }
  RoundTrip(slots, ValueType::kInt64);
}

TEST(ExtentCodecTest, RandomizedRoundTripSweep) {
  Rng rng(20260809);
  const size_t iters = FuzzIters();
  for (size_t iter = 0; iter < iters; ++iter) {
    const int shape = static_cast<int>(rng.NextBounded(7));
    const ValueType type = rng.NextBool(0.5) ? ValueType::kInt64
                           : rng.NextBool(0.5)
                               ? ValueType::kDouble
                               : ValueType::kDict32;
    RoundTrip(MakeSlots(rng, shape), type);
  }
}

TEST(ExtentCodecTest, TruncationAlwaysRejected) {
  Rng rng(777);
  const size_t iters = FuzzIters();
  std::vector<uint64_t> decoded;
  for (size_t iter = 0; iter < iters; ++iter) {
    const std::string frame = EncodeExtent(
        MakeSlots(rng, static_cast<int>(iter % 7)).data(),
        1 + iter % 257, ValueType::kInt64, nullptr);
    // Every strict prefix must fail cleanly — including cuts inside the
    // header, inside the payload, and one byte short of the trailer.
    for (size_t cut : {size_t{0}, size_t{3}, kExtentHeaderBytes - 1,
                       kExtentHeaderBytes, frame.size() / 2,
                       frame.size() - 1}) {
      if (cut >= frame.size()) continue;
      decoded.assign(9, 9);
      EXPECT_FALSE(
          DecodeExtent(std::string_view(frame.data(), cut), &decoded).ok())
          << "accepted a " << cut << "-byte prefix of a " << frame.size()
          << "-byte frame";
    }
    EXPECT_FALSE(ExtentRowCount(std::string_view(
                     frame.data(), std::min(frame.size() - 1,
                                            kExtentHeaderBytes)))
                     .ok());
  }
}

TEST(ExtentCodecTest, BitFlipsAlwaysRejected) {
  Rng rng(31337);
  const size_t iters = FuzzIters();
  std::vector<uint64_t> decoded;
  for (size_t iter = 0; iter < iters; ++iter) {
    std::vector<uint64_t> slots = MakeSlots(rng, static_cast<int>(iter % 7));
    std::string frame =
        EncodeExtent(slots.data(), slots.size(), ValueType::kInt64, nullptr);
    // Flip one random bit anywhere in the frame: header, payload or CRC.
    const size_t byte = rng.NextBounded(frame.size());
    const uint8_t bit = static_cast<uint8_t>(1u << rng.NextBounded(8));
    frame[byte] = static_cast<char>(
        static_cast<uint8_t>(frame[byte]) ^ bit);
    decoded.clear();
    const Status s = DecodeExtent(frame, &decoded);
    if (s.ok()) {
      // The only way a flip may pass is if it flipped back to the same
      // bytes — impossible for a single flip. Decoding to the original
      // values would at least be harmless; anything else is corruption
      // accepted as truth.
      ADD_FAILURE() << "bit flip at byte " << byte << " (mask "
                    << static_cast<int>(bit) << ") decoded OK";
    }
  }
}

TEST(ExtentCodecTest, ForgedLengthFieldsRejectedBeforeAllocation) {
  // A hostile frame advertising kMaxExtentRows+1 rows (or a payload_len
  // pointing past the buffer) must be rejected without sizing a vector
  // from the forged field — CRC is stale on every forgery by definition,
  // but the guards must hold even if an attacker recomputed it.
  std::vector<uint64_t> slots{1, 2, 3};
  std::string frame =
      EncodeExtent(slots.data(), slots.size(), ValueType::kInt64, nullptr);
  std::string forged = frame;
  const uint64_t huge_rows = static_cast<uint64_t>(kMaxExtentRows) + 1;
  std::memcpy(&forged[8], &huge_rows, sizeof(huge_rows));
  std::vector<uint64_t> decoded;
  EXPECT_FALSE(DecodeExtent(forged, &decoded).ok());
  EXPECT_FALSE(ExtentRowCount(forged).ok());

  forged = frame;
  const uint64_t huge_payload = 1ull << 40;
  std::memcpy(&forged[16], &huge_payload, sizeof(huge_payload));
  EXPECT_FALSE(DecodeExtent(forged, &decoded).ok());

  forged = frame;
  forged[4] = static_cast<char>(kExtentVersion + 1);  // Unknown version.
  EXPECT_FALSE(DecodeExtent(forged, &decoded).ok());
  forged = frame;
  forged[5] = 17;  // Unknown encoding byte.
  EXPECT_FALSE(DecodeExtent(forged, &decoded).ok());
}

/// Same seed, same frames: a reported failing iteration must replay.
TEST(ExtentCodecTest, GeneratorAndEncoderAreDeterministic) {
  Rng a(4242), b(4242);
  for (int i = 0; i < 25; ++i) {
    const std::vector<uint64_t> sa = MakeSlots(a, i % 7);
    const std::vector<uint64_t> sb = MakeSlots(b, i % 7);
    ASSERT_EQ(sa, sb) << "iteration " << i;
    EXPECT_EQ(EncodeExtent(sa.data(), sa.size(), ValueType::kInt64, nullptr),
              EncodeExtent(sb.data(), sb.size(), ValueType::kInt64, nullptr))
        << "iteration " << i;
  }
}

}  // namespace
}  // namespace anker::storage
