#include "storage/table.h"

#include <gtest/gtest.h>

#include "storage/catalog.h"

namespace anker::storage {
namespace {

std::vector<ColumnDef> TestSchema() {
  return {{"id", ValueType::kInt64},
          {"price", ValueType::kDouble},
          {"flag", ValueType::kDict32}};
}

TEST(TableTest, CreateBuildsAllColumns) {
  auto table = Table::Create("t", TestSchema(), 100,
                             snapshot::BufferBackend::kVmSnapshot);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->num_columns(), 3u);
  EXPECT_EQ(table.value()->num_rows(), 100u);
  EXPECT_TRUE(table.value()->HasColumn("price"));
  EXPECT_FALSE(table.value()->HasColumn("bogus"));
  EXPECT_EQ(table.value()->GetColumn("id")->type(), ValueType::kInt64);
}

TEST(TableTest, UnknownColumnDies) {
  auto table = Table::Create("t", TestSchema(), 10,
                             snapshot::BufferBackend::kPlain);
  ASSERT_TRUE(table.ok());
  EXPECT_DEATH(table.value()->GetColumn("bogus"), "CHECK");
}

TEST(TableTest, DictionaryPerColumn) {
  auto table = Table::Create("t", TestSchema(), 10,
                             snapshot::BufferBackend::kPlain);
  ASSERT_TRUE(table.ok());
  Dictionary* dict = table.value()->GetDictionary("flag");
  const uint32_t code = dict->GetOrAdd("R");
  EXPECT_EQ(table.value()->GetDictionary("flag")->Decode(code), "R");
}

TEST(TableTest, PrimaryIndexLifecycle) {
  auto table = Table::Create("t", TestSchema(), 10,
                             snapshot::BufferBackend::kPlain);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.value()->primary_index(), nullptr);
  table.value()->CreatePrimaryIndex(10);
  ASSERT_NE(table.value()->primary_index(), nullptr);
  ASSERT_TRUE(table.value()->primary_index()->Insert(1, 0).ok());
  EXPECT_EQ(table.value()->primary_index()->Lookup(1).value(), 0u);
}

TEST(CatalogTest, RegistersAndResolvesTables) {
  Catalog catalog;
  auto table = Table::Create("orders", TestSchema(), 10,
                             snapshot::BufferBackend::kPlain);
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE(catalog.AddTable(table.TakeValue()).ok());
  EXPECT_TRUE(catalog.HasTable("orders"));
  EXPECT_EQ(catalog.GetTable("orders")->name(), "orders");
  EXPECT_EQ(catalog.num_tables(), 1u);
  EXPECT_EQ(catalog.AllColumns().size(), 3u);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog catalog;
  auto t1 = Table::Create("t", TestSchema(), 10,
                          snapshot::BufferBackend::kPlain);
  auto t2 = Table::Create("t", TestSchema(), 10,
                          snapshot::BufferBackend::kPlain);
  ASSERT_TRUE(catalog.AddTable(t1.TakeValue()).ok());
  EXPECT_EQ(catalog.AddTable(t2.TakeValue()).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace anker::storage
