#include "storage/hash_index.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.h"

namespace anker::storage {
namespace {

TEST(HashIndexTest, InsertAndLookup) {
  HashIndex index(16);
  ASSERT_TRUE(index.Insert(100, 0).ok());
  ASSERT_TRUE(index.Insert(200, 1).ok());
  auto row = index.Lookup(100);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value(), 0u);
  EXPECT_EQ(index.Lookup(200).value(), 1u);
  EXPECT_FALSE(index.Lookup(300).ok());
  EXPECT_TRUE(index.Contains(200));
  EXPECT_FALSE(index.Contains(300));
}

TEST(HashIndexTest, DuplicateKeyRejected) {
  HashIndex index(16);
  ASSERT_TRUE(index.Insert(7, 0).ok());
  EXPECT_EQ(index.Insert(7, 1).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(index.Lookup(7).value(), 0u);  // original mapping intact
}

TEST(HashIndexTest, GrowsPastInitialCapacity) {
  HashIndex index(4);
  for (uint64_t key = 1; key <= 10000; ++key) {
    ASSERT_TRUE(index.Insert(key, key * 2).ok());
  }
  EXPECT_EQ(index.size(), 10000u);
  for (uint64_t key = 1; key <= 10000; ++key) {
    ASSERT_EQ(index.Lookup(key).value(), key * 2);
  }
}

TEST(HashIndexTest, SequentialKeysDoNotDegrade) {
  // Dense primary keys are the TPC-H norm; the mixer must spread them.
  HashIndex index(1 << 12);
  for (uint64_t key = 0; key < 4000; ++key) {
    ASSERT_TRUE(index.Insert(key * 8 + 1, key).ok());  // lineitem-style keys
  }
  for (uint64_t key = 0; key < 4000; ++key) {
    ASSERT_EQ(index.Lookup(key * 8 + 1).value(), key);
  }
}

TEST(HashIndexTest, RandomizedAgainstReference) {
  Rng rng(55);
  HashIndex index(64);
  std::unordered_map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.Next() | 1;  // avoid 0 collisions in test keys
    const uint64_t row = rng.Next();
    if (reference.emplace(key, row).second) {
      ASSERT_TRUE(index.Insert(key, row).ok());
    }
  }
  EXPECT_EQ(index.size(), reference.size());
  for (const auto& [key, row] : reference) {
    ASSERT_EQ(index.Lookup(key).value(), row);
  }
}

}  // namespace
}  // namespace anker::storage
