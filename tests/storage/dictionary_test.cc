#include "storage/dictionary.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace anker::storage {
namespace {

TEST(DictionaryTest, GetOrAddAssignsDenseCodes) {
  Dictionary dict;
  EXPECT_EQ(dict.GetOrAdd("R"), 0u);
  EXPECT_EQ(dict.GetOrAdd("A"), 1u);
  EXPECT_EQ(dict.GetOrAdd("N"), 2u);
  EXPECT_EQ(dict.GetOrAdd("A"), 1u);  // existing value keeps its code
  EXPECT_EQ(dict.size(), 3u);
}

TEST(DictionaryTest, DecodeRoundTrips) {
  Dictionary dict;
  const uint32_t code = dict.GetOrAdd("1-URGENT");
  EXPECT_EQ(dict.Decode(code), "1-URGENT");
}

TEST(DictionaryTest, LookupWithoutInsert) {
  Dictionary dict;
  dict.GetOrAdd("Brand#11");
  auto found = dict.Lookup("Brand#11");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 0u);
  EXPECT_FALSE(dict.Lookup("Brand#99").ok());
  EXPECT_EQ(dict.size(), 1u);  // lookup never inserts
}

TEST(DictionaryTest, ConcurrentGetOrAddIsConsistent) {
  Dictionary dict;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        const std::string value = "v" + std::to_string(i % 25);
        const uint32_t code = dict.GetOrAdd(value);
        ASSERT_EQ(dict.Decode(code), value);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dict.size(), 25u);
}

TEST(DictionaryTest, DecodeOutOfRangeDies) {
  Dictionary dict;
  EXPECT_DEATH(dict.Decode(0), "CHECK");
}

}  // namespace
}  // namespace anker::storage
