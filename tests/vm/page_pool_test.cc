#include "vm/page_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "vm/page.h"

namespace anker::vm {
namespace {

TEST(PagePoolTest, AllocatesDistinctPages) {
  PagePool pool;
  ASSERT_TRUE(pool.Init("t", 4 * kPageSize).ok());
  std::set<off_t> seen;
  for (int i = 0; i < 16; ++i) {
    auto offset = pool.AllocatePage();
    ASSERT_TRUE(offset.ok());
    EXPECT_TRUE(seen.insert(offset.value()).second);
    EXPECT_EQ(offset.value() % static_cast<off_t>(kPageSize), 0);
  }
  EXPECT_EQ(pool.allocated_pages(), 16u);
}

TEST(PagePoolTest, GrowsBeyondInitialCapacity) {
  PagePool pool;
  ASSERT_TRUE(pool.Init("t", kPageSize).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.AllocatePage().ok());
  }
  EXPECT_GE(pool.file().size(), 100 * kPageSize);
}

TEST(PagePoolTest, AllocatePagesReturnsContiguousRun) {
  PagePool pool;
  ASSERT_TRUE(pool.Init("t", 16 * kPageSize).ok());
  auto first = pool.AllocatePages(8);
  ASSERT_TRUE(first.ok());
  auto next = pool.AllocatePage();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next.value(), first.value() + static_cast<off_t>(8 * kPageSize));
}

TEST(PagePoolTest, ConcurrentAllocationsAreUnique) {
  PagePool pool;
  ASSERT_TRUE(pool.Init("t", kPageSize).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::vector<off_t>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto offset = pool.AllocatePage();
        ASSERT_TRUE(offset.ok());
        results[t].push_back(offset.value());
      }
    });
  }
  for (auto& th : threads) th.join();
  std::set<off_t> all;
  for (const auto& v : results) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace anker::vm
