#include "vm/map_region.h"

#include <sys/mman.h>

#include <gtest/gtest.h>

#include <cstring>

#include "vm/memfd.h"
#include "vm/page.h"

namespace anker::vm {
namespace {

TEST(MapRegionTest, AnonymousIsZeroedAndWritable) {
  auto region = MapRegion::MapAnonymous(2 * kPageSize);
  ASSERT_TRUE(region.ok());
  MapRegion r = region.TakeValue();
  EXPECT_EQ(r.size(), 2 * kPageSize);
  for (size_t i = 0; i < r.size(); i += 512) EXPECT_EQ(r.data()[i], 0);
  r.data()[0] = 42;
  EXPECT_EQ(r.data()[0], 42);
}

TEST(MapRegionTest, SharedFileMappingWritesThrough) {
  auto memfd = Memfd::Create("t", kPageSize);
  ASSERT_TRUE(memfd.ok());
  auto region = MapRegion::MapSharedFile(memfd.value().fd(), kPageSize, 0,
                                         PROT_READ | PROT_WRITE);
  ASSERT_TRUE(region.ok());
  region.value().data()[10] = 0x5a;
  char byte = 0;
  ASSERT_TRUE(memfd.value().ReadAt(&byte, 1, 10).ok());
  EXPECT_EQ(byte, 0x5a);
}

TEST(MapRegionTest, PrivateFileMappingDoesNotWriteThrough) {
  auto memfd = Memfd::Create("t", kPageSize);
  ASSERT_TRUE(memfd.ok());
  auto region = MapRegion::MapPrivateFile(memfd.value().fd(), kPageSize, 0,
                                          PROT_READ | PROT_WRITE);
  ASSERT_TRUE(region.ok());
  region.value().data()[10] = 0x5a;  // COWs into an anonymous page
  char byte = 0x7f;
  ASSERT_TRUE(memfd.value().ReadAt(&byte, 1, 10).ok());
  EXPECT_EQ(byte, 0);  // file untouched
  EXPECT_EQ(region.value().data()[10], 0x5a);
}

TEST(MapRegionTest, PrivateMappingSeesFileStateAtFault) {
  auto memfd = Memfd::Create("t", kPageSize);
  ASSERT_TRUE(memfd.ok());
  const char v1 = 0x11;
  ASSERT_TRUE(memfd.value().WriteAt(&v1, 1, 0).ok());
  auto region = MapRegion::MapPrivateFile(memfd.value().fd(), kPageSize, 0,
                                          PROT_READ | PROT_WRITE);
  ASSERT_TRUE(region.ok());
  EXPECT_EQ(region.value().data()[0], 0x11);
}

TEST(MapRegionTest, DontNeedDropsPrivateCopy) {
  auto memfd = Memfd::Create("t", kPageSize);
  ASSERT_TRUE(memfd.ok());
  const char file_byte = 0x33;
  ASSERT_TRUE(memfd.value().WriteAt(&file_byte, 1, 0).ok());
  auto region = MapRegion::MapPrivateFile(memfd.value().fd(), kPageSize, 0,
                                          PROT_READ | PROT_WRITE);
  ASSERT_TRUE(region.ok());
  MapRegion r = region.TakeValue();
  r.data()[0] = 0x44;  // private COW copy
  EXPECT_EQ(r.data()[0], 0x44);
  ASSERT_TRUE(r.DontNeed(0, kPageSize).ok());
  EXPECT_EQ(r.data()[0], 0x33);  // back to the file content
}

TEST(MapRegionTest, MapFixedSharedRedirectsPage) {
  auto memfd = Memfd::Create("t", 2 * kPageSize);
  ASSERT_TRUE(memfd.ok());
  const char a = 'a';
  const char b = 'b';
  ASSERT_TRUE(memfd.value().WriteAt(&a, 1, 0).ok());
  ASSERT_TRUE(
      memfd.value().WriteAt(&b, 1, static_cast<off_t>(kPageSize)).ok());
  auto region = MapRegion::MapSharedFile(memfd.value().fd(), kPageSize, 0,
                                         PROT_READ);
  ASSERT_TRUE(region.ok());
  MapRegion r = region.TakeValue();
  EXPECT_EQ(r.data()[0], 'a');
  // Rewire the single page to the second file page.
  ASSERT_TRUE(MapRegion::MapFixedShared(r.data(), memfd.value().fd(),
                                        kPageSize,
                                        static_cast<off_t>(kPageSize),
                                        PROT_READ)
                  .ok());
  EXPECT_EQ(r.data()[0], 'b');
}

TEST(MapRegionTest, ProtectRangeRejectsUnaligned) {
  auto region = MapRegion::MapAnonymous(2 * kPageSize);
  ASSERT_TRUE(region.ok());
  MapRegion r = region.TakeValue();
  ASSERT_TRUE(r.ProtectRange(0, kPageSize, PROT_READ).ok());
  ASSERT_TRUE(r.ProtectRange(0, kPageSize, PROT_READ | PROT_WRITE).ok());
  EXPECT_DEATH((void)r.ProtectRange(1, kPageSize, PROT_READ), "CHECK");
}

TEST(MapRegionTest, MoveTransfersOwnership) {
  auto region = MapRegion::MapAnonymous(kPageSize);
  ASSERT_TRUE(region.ok());
  MapRegion a = region.TakeValue();
  uint8_t* data = a.data();
  MapRegion b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.data(), data);
  b.data()[0] = 1;  // still mapped
}

}  // namespace
}  // namespace anker::vm
