#include "vm/proc_maps.h"

#include <sys/mman.h>

#include <gtest/gtest.h>

#include "vm/map_region.h"
#include "vm/memfd.h"
#include "vm/page.h"

namespace anker::vm {
namespace {

TEST(ProcMapsTest, ReadsSomething) {
  const auto vmas = ReadProcMaps();
  EXPECT_GT(vmas.size(), 10u);  // any process has dozens of VMAs
  for (const VmaInfo& vma : vmas) EXPECT_LT(vma.start, vma.end);
}

TEST(ProcMapsTest, CountsMappedRegion) {
  auto region = MapRegion::MapAnonymous(4 * kPageSize);
  ASSERT_TRUE(region.ok());
  EXPECT_GE(CountVmasInRange(region.value().data(), region.value().size()),
            1u);
}

TEST(ProcMapsTest, FragmentationIncreasesVmaCount) {
  // Map 8 pages of a memfd as one region, then remap every second page with
  // a different protection, forcing VMA splits.
  auto memfd = Memfd::Create("t", 8 * kPageSize);
  ASSERT_TRUE(memfd.ok());
  auto region = MapRegion::MapSharedFile(memfd.value().fd(), 8 * kPageSize,
                                         0, PROT_READ | PROT_WRITE);
  ASSERT_TRUE(region.ok());
  MapRegion r = region.TakeValue();
  const size_t before = CountVmasInRange(r.data(), r.size());
  for (size_t page = 0; page < 8; page += 2) {
    ASSERT_TRUE(
        r.ProtectRange(page * kPageSize, kPageSize, PROT_READ).ok());
  }
  const size_t after = CountVmasInRange(r.data(), r.size());
  EXPECT_GT(after, before);
  EXPECT_GE(after, 7u);  // alternating protections: ~8 VMAs
}

}  // namespace
}  // namespace anker::vm
