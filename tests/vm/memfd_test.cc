#include "vm/memfd.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "vm/page.h"

namespace anker::vm {
namespace {

TEST(MemfdTest, CreateRoundsToPageSize) {
  auto memfd = Memfd::Create("test", 100);
  ASSERT_TRUE(memfd.ok());
  EXPECT_EQ(memfd.value().size(), kPageSize);
  EXPECT_TRUE(memfd.value().valid());
}

TEST(MemfdTest, WriteThenReadBack) {
  auto memfd = Memfd::Create("test", 2 * kPageSize);
  ASSERT_TRUE(memfd.ok());
  const char payload[] = "snapshot me";
  ASSERT_TRUE(memfd.value().WriteAt(payload, sizeof(payload), 100).ok());
  char readback[sizeof(payload)] = {0};
  ASSERT_TRUE(memfd.value().ReadAt(readback, sizeof(payload), 100).ok());
  EXPECT_STREQ(readback, payload);
}

TEST(MemfdTest, GrowExtendsFile) {
  auto memfd = Memfd::Create("test", kPageSize);
  ASSERT_TRUE(memfd.ok());
  Memfd file = memfd.TakeValue();
  ASSERT_TRUE(file.Grow(10 * kPageSize).ok());
  EXPECT_EQ(file.size(), 10 * kPageSize);
  // New region readable (zero filled).
  std::vector<char> buf(16, 0x7f);
  ASSERT_TRUE(file.ReadAt(buf.data(), buf.size(), 9 * kPageSize).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(MemfdTest, GrowCannotShrink) {
  auto memfd = Memfd::Create("test", 4 * kPageSize);
  ASSERT_TRUE(memfd.ok());
  Memfd file = memfd.TakeValue();
  EXPECT_FALSE(file.Grow(kPageSize).ok());
}

TEST(MemfdTest, ReadPastEndFails) {
  auto memfd = Memfd::Create("test", kPageSize);
  ASSERT_TRUE(memfd.ok());
  char buf[8];
  EXPECT_FALSE(memfd.value().ReadAt(buf, 8, 2 * kPageSize).ok());
}

TEST(MemfdTest, MoveTransfersOwnership) {
  auto memfd = Memfd::Create("test", kPageSize);
  ASSERT_TRUE(memfd.ok());
  Memfd a = memfd.TakeValue();
  const int fd = a.fd();
  Memfd b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.fd(), fd);
}

TEST(PageMathTest, Helpers) {
  EXPECT_EQ(RoundUpToPage(0), 0u);
  EXPECT_EQ(RoundUpToPage(1), kPageSize);
  EXPECT_EQ(RoundUpToPage(kPageSize), kPageSize);
  EXPECT_TRUE(IsPageAligned(0));
  EXPECT_TRUE(IsPageAligned(kPageSize * 3));
  EXPECT_FALSE(IsPageAligned(kPageSize + 1));
  EXPECT_EQ(PageIndex(kPageSize * 2 + 5), 2u);
  EXPECT_EQ(PageCount(kPageSize + 1), 2u);
}

}  // namespace
}  // namespace anker::vm
