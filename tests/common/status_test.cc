#include "common/status.h"

#include <gtest/gtest.h>

namespace anker {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::Aborted("ww-conflict on row 5");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsAborted());
  EXPECT_EQ(st.message(), "ww-conflict on row 5");
  EXPECT_EQ(st.ToString(), "Aborted: ww-conflict on row 5");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_FALSE(Status::NotFound("x").IsAborted());
  EXPECT_TRUE(Status::ResourceBusy("x").IsResourceBusy());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = [](bool fail) -> Status {
    if (fail) return Status::IoError("boom");
    return Status::OK();
  };
  auto outer = [&](bool fail) -> Status {
    ANKER_RETURN_IF_ERROR(inner(fail));
    return Status::InvalidArgument("reached end");
  };
  EXPECT_EQ(outer(true).code(), StatusCode::kIoError);
  EXPECT_EQ(outer(false).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string("payload"));
  std::string moved = r.TakeValue();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace anker
