#include "common/latch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace anker {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLockGuard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLockTest, TryLockFailsWhenHeld) {
  SpinLock lock;
  lock.Lock();
  EXPECT_FALSE(lock.TryLock());
  lock.Unlock();
  EXPECT_TRUE(lock.TryLock());
  lock.Unlock();
}

TEST(LatchTest, SharedReadersCoexist) {
  Latch latch;
  std::atomic<int> readers{0};
  std::atomic<int> max_readers{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      SharedGuard guard(latch);
      const int now = readers.fetch_add(1) + 1;
      int prev = max_readers.load();
      while (now > prev && !max_readers.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      readers.fetch_sub(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(max_readers.load(), 1);
}

TEST(LatchTest, ExclusiveBlocksShared) {
  Latch latch;
  latch.LockExclusive();
  std::atomic<bool> reader_entered{false};
  std::thread reader([&] {
    SharedGuard guard(latch);
    reader_entered.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(reader_entered.load());
  latch.UnlockExclusive();
  reader.join();
  EXPECT_TRUE(reader_entered.load());
}

TEST(LatchTest, TryLockExclusiveFailsUnderSharedHolder) {
  Latch latch;
  latch.LockShared();
  EXPECT_FALSE(latch.TryLockExclusive());
  latch.UnlockShared();
  EXPECT_TRUE(latch.TryLockExclusive());
  latch.UnlockExclusive();
}

}  // namespace
}  // namespace anker
