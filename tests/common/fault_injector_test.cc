#include "common/fault_injector.h"

#include <vector>

#include <gtest/gtest.h>

namespace anker {
namespace {

TEST(FaultInjectorTest, DisarmedIsInert) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.ArmForTest("", 0);
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFail("wal.flush.pre"));
  fi.MaybeKill("wal.flush.pre");  // Must be a no-op.
}

TEST(FaultInjectorTest, CertainFailureFires) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.ArmForTest("wal.flush.pre:fail:1.0", 1);
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.ShouldFail("wal.flush.pre"));
  // Other points (and the kill table) stay untouched.
  EXPECT_FALSE(fi.ShouldFail("ckpt.publish.pre"));
  fi.MaybeKill("wal.flush.pre");  // fail-action point never kills.
  fi.ArmForTest("", 0);
}

TEST(FaultInjectorTest, ProbabilityRoughlyHolds) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.ArmForTest("repl.send:fail:0.25", 42);
  int hits = 0;
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    if (fi.ShouldFail("repl.send")) ++hits;
  }
  // 0.25 +- generous slack; splitmix64 is well distributed.
  EXPECT_GT(hits, kDraws / 8);
  EXPECT_LT(hits, kDraws / 2);
  fi.ArmForTest("", 0);
}

TEST(FaultInjectorTest, SeedMakesDrawsDeterministic) {
  FaultInjector& fi = FaultInjector::Instance();
  std::vector<bool> first;
  fi.ArmForTest("p:fail:0.5", 7);
  for (int i = 0; i < 256; ++i) first.push_back(fi.ShouldFail("p"));
  fi.ArmForTest("p:fail:0.5", 7);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(fi.ShouldFail("p"), first[i]) << i;
  fi.ArmForTest("", 0);
}

TEST(FaultInjectorTest, MalformedEntriesAreSkipped) {
  FaultInjector& fi = FaultInjector::Instance();
  // Bad action, missing probability, empty entry: none may arm a point
  // (and none may crash the parser); the one valid entry still works.
  fi.ArmForTest("a:boom:0.5,,b:fail,c:fail:1.0", 3);
  EXPECT_FALSE(fi.ShouldFail("a"));
  EXPECT_FALSE(fi.ShouldFail("b"));
  EXPECT_TRUE(fi.ShouldFail("c"));
  fi.ArmForTest("", 0);
}

TEST(FaultInjectorDeathTest, KillActionExitsWith137) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.ArmForTest("die.here:kill:1.0", 9);
  EXPECT_EXIT(fi.MaybeKill("die.here"), ::testing::ExitedWithCode(137), "");
  fi.ArmForTest("", 0);
}

}  // namespace
}  // namespace anker
