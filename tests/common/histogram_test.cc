#include "common/histogram.h"

#include <gtest/gtest.h>

namespace anker {
namespace {

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(HistogramTest, PercentilesOrdered) {
  Histogram h;
  for (int64_t v = 100; v >= 1; --v) h.Record(v);  // reverse insertion
  EXPECT_LE(h.Percentile(50), h.Percentile(95));
  EXPECT_LE(h.Percentile(95), h.Percentile(99));
  EXPECT_LE(h.Percentile(99), h.max());
  EXPECT_NEAR(static_cast<double>(h.Percentile(50)), 50.0, 2.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  Histogram b;
  a.Record(1);
  a.Record(2);
  b.Record(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.max(), 100);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.Percentile(0), 42);
  EXPECT_EQ(h.Percentile(100), 42);
  EXPECT_EQ(h.min(), 42);
  EXPECT_EQ(h.max(), 42);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1000000);  // 1ms
  const std::string summary = h.Summary();
  EXPECT_NE(summary.find("n=1"), std::string::npos);
}

TEST(HistogramTest, EmptySummaryDoesNotCrash) {
  Histogram h;
  EXPECT_EQ(h.Summary(), "(no samples)");
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace anker
