#include "common/bitmap.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace anker {
namespace {

TEST(BitmapTest, StartsEmpty) {
  Bitmap bitmap(100);
  EXPECT_EQ(bitmap.size(), 100u);
  EXPECT_EQ(bitmap.count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(bitmap.Test(i));
}

TEST(BitmapTest, SetAndClearMaintainCount) {
  Bitmap bitmap(200);
  bitmap.Set(0);
  bitmap.Set(63);
  bitmap.Set(64);
  bitmap.Set(199);
  EXPECT_EQ(bitmap.count(), 4u);
  bitmap.Set(63);  // idempotent
  EXPECT_EQ(bitmap.count(), 4u);
  bitmap.Clear(63);
  EXPECT_EQ(bitmap.count(), 3u);
  bitmap.Clear(63);  // idempotent
  EXPECT_EQ(bitmap.count(), 3u);
  EXPECT_TRUE(bitmap.Test(64));
  EXPECT_FALSE(bitmap.Test(63));
}

TEST(BitmapTest, ResetKeepsSizeDropsBits) {
  Bitmap bitmap(128);
  for (size_t i = 0; i < 128; i += 3) bitmap.Set(i);
  bitmap.Reset();
  EXPECT_EQ(bitmap.size(), 128u);
  EXPECT_EQ(bitmap.count(), 0u);
}

TEST(BitmapTest, ForEachSetVisitsInOrder) {
  Bitmap bitmap(300);
  const std::vector<size_t> expected = {1, 64, 65, 128, 299};
  for (size_t i : expected) bitmap.Set(i);
  std::vector<size_t> seen;
  bitmap.ForEachSet([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitmapTest, ForEachRunCoalescesAdjacent) {
  Bitmap bitmap(100);
  for (size_t i = 10; i < 15; ++i) bitmap.Set(i);
  bitmap.Set(20);
  for (size_t i = 63; i < 66; ++i) bitmap.Set(i);  // crosses word boundary
  std::vector<std::pair<size_t, size_t>> runs;
  bitmap.ForEachRun([&](size_t first, size_t len) {
    runs.emplace_back(first, len);
  });
  ASSERT_EQ(runs.size(), 3u);
  const auto run0 = std::make_pair<size_t, size_t>(10, 5);
  const auto run1 = std::make_pair<size_t, size_t>(20, 1);
  const auto run2 = std::make_pair<size_t, size_t>(63, 3);
  EXPECT_EQ(runs[0], run0);
  EXPECT_EQ(runs[1], run1);
  EXPECT_EQ(runs[2], run2);
}

TEST(BitmapTest, RunsCoverExactlySetBitsRandomized) {
  Rng rng(31);
  for (int round = 0; round < 20; ++round) {
    Bitmap bitmap(517);
    std::vector<bool> reference(517, false);
    for (int i = 0; i < 200; ++i) {
      const size_t bit = rng.NextBounded(517);
      bitmap.Set(bit);
      reference[bit] = true;
    }
    std::vector<bool> covered(517, false);
    bitmap.ForEachRun([&](size_t first, size_t len) {
      for (size_t i = first; i < first + len; ++i) {
        EXPECT_FALSE(covered[i]) << "bit covered twice";
        covered[i] = true;
      }
    });
    EXPECT_EQ(covered, reference);
  }
}

}  // namespace
}  // namespace anker
