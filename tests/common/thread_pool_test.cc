#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

namespace anker {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GT(max_seen.load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, EnsureThreadsGrowsPool) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  pool.EnsureThreads(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  pool.EnsureThreads(2);  // never shrinks
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryItemExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kItems = 10000;
  std::vector<std::atomic<int>> hits(kItems);
  pool.ParallelFor(0, kItems, /*grain=*/64, /*parallelism=*/4,
                   [&](size_t begin, size_t end, size_t /*slot*/) {
                     for (size_t i = begin; i < end; ++i) {
                       hits[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
  for (size_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, ParallelForSlotBoundAndEmptyRange) {
  ThreadPool pool(3);
  std::atomic<size_t> max_slot{0};
  pool.ParallelFor(0, 1000, 10, /*parallelism=*/3,
                   [&](size_t, size_t, size_t slot) {
                     size_t prev = max_slot.load();
                     while (slot > prev &&
                            !max_slot.compare_exchange_weak(prev, slot)) {
                     }
                   });
  EXPECT_LT(max_slot.load(), 3u);
  bool called = false;
  pool.ParallelFor(5, 5, 10, 3,
                   [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, NestedParallelRunFromPoolTasksDoesNotDeadlock) {
  // Every worker is itself inside ParallelRun, so helpers can only make
  // progress through the help-while-waiting path.
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  WaitGroup wg;
  wg.Add(4);
  for (int task = 0; task < 4; ++task) {
    pool.Submit([&] {
      pool.ParallelFor(0, 4096, 16, /*parallelism=*/4,
                       [&](size_t begin, size_t end, size_t) {
                         uint64_t local = 0;
                         for (size_t i = begin; i < end; ++i) local += i;
                         sum.fetch_add(local, std::memory_order_relaxed);
                       });
      wg.Done();
    });
  }
  wg.Wait();
  pool.WaitIdle();
  EXPECT_EQ(sum.load(), 4u * (4096u * 4095u / 2u));
}

TEST(ThreadPoolTest, ParallelRunFromForeignThreadWithBusyWorkers) {
  // Workers are saturated with long tasks; the caller must finish the
  // morsels itself (helpers run late and find nothing).
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      while (!release.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 1000, 10, 4, [&](size_t begin, size_t end, size_t) {
    for (size_t i = begin; i < end; ++i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(sum.load(), 1000u * 999u / 2u);
  release.store(true);
  pool.WaitIdle();
}

TEST(WaitGroupTest, WaitsForAllDone) {
  WaitGroup wg;
  ThreadPool pool(4);
  std::atomic<int> done{0};
  wg.Add(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace anker
