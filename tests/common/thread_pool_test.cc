#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace anker {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      const int now = concurrent.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GT(max_seen.load(), 1);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 100; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.WaitIdle();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(WaitGroupTest, WaitsForAllDone) {
  WaitGroup wg;
  ThreadPool pool(4);
  std::atomic<int> done{0};
  wg.Add(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      done.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace anker
