#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace anker {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDoubleInRange(900.0, 2100.0);
    EXPECT_GE(d, 900.0);
    EXPECT_LT(d, 2100.0);
  }
}

TEST(RngTest, BoolProbabilityRoughlyHolds) {
  Rng rng(17);
  int trues = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(trues / 100000.0, 0.25, 0.02);
}

TEST(RngTest, UniformityChiSquaredSmoke) {
  Rng rng(19);
  int buckets[10] = {0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++buckets[rng.NextBounded(10)];
  for (int count : buckets) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% of expectation
  }
}

}  // namespace
}  // namespace anker
