// Operator-DAG edge cases: joins against empty or unmatched build sides,
// top-k degenerate limits, spill-to-disk mid-query, and a deterministic
// seqlock retry injected between block classification and validation
// while a DAG join is probing.
#include <gtest/gtest.h>

#include <cmath>

#include "engine/executor.h"
#include "query/query.h"

namespace anker::query {
namespace {

/// Probe table "events" (id, tag, price) plus build table "dims"
/// (key, factor): ids cover 0..99, dims keys only 0..49, so half the
/// probe rows miss the build side by construction.
struct JoinDb {
  explicit JoinDb(txn::ProcessingMode mode =
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                  size_t rows = 4000)
      : num_rows(rows) {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
    db = std::make_unique<engine::Database>(config);
    db->Start();
    auto created = db->CreateTable(
        "events",
        {{"id", storage::ValueType::kInt64},
         {"tag", storage::ValueType::kDict32},
         {"price", storage::ValueType::kDouble}},
        rows);
    ANKER_CHECK(created.ok());
    events = created.value();
    storage::Dictionary* tags = events->GetDictionary("tag");
    const char* names[4] = {"red", "green", "blue", "grey"};
    for (const char* name : names) tags->GetOrAdd(name);
    for (size_t row = 0; row < rows; ++row) {
      events->GetColumn("id")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row % 100)));
      events->GetColumn("tag")->LoadValue(
          row, storage::EncodeDict(static_cast<uint32_t>(row % 4)));
      events->GetColumn("price")
          ->LoadValue(row, storage::EncodeDouble(Price(row)));
    }

    auto dims_created = db->CreateTable(
        "dims",
        {{"key", storage::ValueType::kInt64},
         {"factor", storage::ValueType::kDouble}},
        50);
    ANKER_CHECK(dims_created.ok());
    dims = dims_created.value();
    for (size_t row = 0; row < 50; ++row) {
      dims->GetColumn("key")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row)));
      dims->GetColumn("factor")
          ->LoadValue(row, storage::EncodeDouble(
                               2.0 + static_cast<double>(row % 7)));
    }
  }

  static double Price(size_t row) {
    return 1.0 + 0.25 * static_cast<double>(row % 37);
  }

  std::unique_ptr<engine::Database> db;
  storage::Table* events = nullptr;
  storage::Table* dims = nullptr;
  size_t num_rows;
};

TEST(DagEdgeTest, EmptyBuildSideJoins) {
  JoinDb fx;
  // The build filter selects nothing: key < 0 over keys 0..49.
  for (const JoinType type :
       {JoinType::kInner, JoinType::kLeftSemi, JoinType::kLeftAnti,
        JoinType::kLeftOuter}) {
    auto query = Query::On(fx.events)
                     .Join(JoinInput(fx.dims, Col("key") < I64(0)), type,
                           {"id"}, {"key"})
                     .Aggregate({Count().As("n"),
                                 Sum(Col("price")).As("total")})
                     .Build();
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    EXPECT_EQ(query.value().strategy(), ExecStrategy::kDag);
    auto result = fx.db->Run(query.value(), Params());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    switch (type) {
      case JoinType::kInner:
      case JoinType::kLeftSemi:
        // No build rows, no matches: a global aggregate still emits its
        // identity row (count = 0, sum = 0), exactly like the fused fast
        // paths do over an empty selection.
        ASSERT_EQ(result.value().rows.size(), 1u);
        EXPECT_DOUBLE_EQ(result.value().Value("n"), 0.0);
        EXPECT_DOUBLE_EQ(result.value().Value("total"), 0.0);
        break;
      case JoinType::kLeftAnti:
      case JoinType::kLeftOuter:
        // Anti keeps everything; outer pads everything.
        ASSERT_EQ(result.value().rows.size(), 1u);
        EXPECT_DOUBLE_EQ(result.value().Value("n"),
                         static_cast<double>(fx.num_rows));
        break;
    }
  }
}

TEST(DagEdgeTest, UnmatchedKeysAcrossJoinTypes) {
  JoinDb fx;
  // ids 50..99 have no dims row. Expected per join type over all rows.
  double matched_price = 0.0, unmatched_price = 0.0;
  size_t matched_n = 0;
  for (size_t row = 0; row < fx.num_rows; ++row) {
    if (row % 100 < 50) {
      matched_price += JoinDb::Price(row);
      ++matched_n;
    } else {
      unmatched_price += JoinDb::Price(row);
    }
  }

  auto run = [&](JoinType type) {
    auto query = Query::On(fx.events)
                     .Join(JoinInput(fx.dims), type, {"id"}, {"key"})
                     .Aggregate({Count().As("n"),
                                 Sum(Col("price")).As("total")})
                     .Build();
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    auto result = fx.db->Run(query.value(), Params());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.value();
  };

  QueryResult semi = run(JoinType::kLeftSemi);
  EXPECT_DOUBLE_EQ(semi.Value("n"), static_cast<double>(matched_n));
  EXPECT_NEAR(semi.Value("total"), matched_price, 1e-9);

  QueryResult anti = run(JoinType::kLeftAnti);
  EXPECT_DOUBLE_EQ(anti.Value("n"),
                   static_cast<double>(fx.num_rows - matched_n));
  EXPECT_NEAR(anti.Value("total"), unmatched_price, 1e-9);

  // Inner: every matching probe row pairs with exactly one dims row.
  QueryResult inner = run(JoinType::kInner);
  EXPECT_DOUBLE_EQ(inner.Value("n"), static_cast<double>(matched_n));

  // Left outer keeps all rows; __matched flags the padded ones.
  auto outer = Query::On(fx.events)
                   .Join(JoinInput(fx.dims), JoinType::kLeftOuter, {"id"},
                         {"key"})
                   .Aggregate({Count().As("n"),
                               Sum(Col("__matched")).As("matches"),
                               Sum(Col("factor")).As("factor_sum")})
                   .Build();
  ASSERT_TRUE(outer.ok()) << outer.status().ToString();
  auto outer_result = fx.db->Run(outer.value(), Params());
  ASSERT_TRUE(outer_result.ok());
  EXPECT_DOUBLE_EQ(outer_result.value().Value("n"),
                   static_cast<double>(fx.num_rows));
  EXPECT_DOUBLE_EQ(outer_result.value().Value("matches"),
                   static_cast<double>(matched_n));
  // Padded rows contribute zeroed build columns to factor_sum.
  double factor_sum = 0.0;
  for (size_t row = 0; row < fx.num_rows; ++row) {
    if (row % 100 < 50) factor_sum += 2.0 + static_cast<double>(row % 100 % 7);
  }
  EXPECT_NEAR(outer_result.value().Value("factor_sum"), factor_sum, 1e-9);
}

TEST(DagEdgeTest, TopKDegenerateLimits) {
  JoinDb fx;
  auto build = [&](int64_t limit) {
    return Query::On(fx.events)
        .Aggregate({Sum(Col("price")).As("total")})
        .GroupBy({"id"})
        .OrderBy({{"total", true}})
        .Limit(limit)
        .Build();
  };

  // k far beyond the group count returns every group, still sorted.
  auto all = build(1000000);
  ASSERT_TRUE(all.ok());
  auto all_result = fx.db->Run(all.value(), Params());
  ASSERT_TRUE(all_result.ok());
  ASSERT_EQ(all_result.value().rows.size(), 100u);
  for (size_t r = 1; r < all_result.value().rows.size(); ++r) {
    EXPECT_GE(all_result.value().rows[r - 1].values[0],
              all_result.value().rows[r].values[0]);
  }

  // k = 0 is a valid degenerate top-k: no rows, no error.
  auto none = build(0);
  ASSERT_TRUE(none.ok());
  auto none_result = fx.db->Run(none.value(), Params());
  ASSERT_TRUE(none_result.ok());
  EXPECT_TRUE(none_result.value().rows.empty());

  // k = 1 returns exactly the maximum group.
  auto top1 = build(1);
  ASSERT_TRUE(top1.ok());
  auto top1_result = fx.db->Run(top1.value(), Params());
  ASSERT_TRUE(top1_result.ok());
  ASSERT_EQ(top1_result.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(top1_result.value().rows[0].values[0],
                   all_result.value().rows[0].values[0]);
}

TEST(DagEdgeTest, SpillMidQueryMatchesInMemory) {
  JoinDb fx;
  auto query = Query::On(fx.events)
                   .Join(JoinInput(fx.dims), JoinType::kInner, {"id"},
                         {"key"})
                   .Aggregate({Sum(Col("price") * Col("factor"))
                                   .As("weighted")})
                   .GroupBy({"id"})
                   .OrderBy({{"weighted", true}})
                   .Build();
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  auto in_memory = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(in_memory.ok());

  // A 1 KiB budget forces every tuple store past the threshold, so the
  // whole pipeline runs through spilled chunks.
  ExecOptions options;
  options.spill_threshold_bytes = 1024;
  auto spilled = fx.db->Run(query.value(), Params(), options);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();

  ASSERT_EQ(spilled.value().rows.size(), in_memory.value().rows.size());
  for (size_t r = 0; r < in_memory.value().rows.size(); ++r) {
    EXPECT_EQ(spilled.value().rows[r].keys, in_memory.value().rows[r].keys);
    // Bit-identical, not approximately equal: the execution order must
    // not change under spilling.
    EXPECT_EQ(spilled.value().rows[r].values,
              in_memory.value().rows[r].values);
  }
}

TEST(DagEdgeTest, SeqlockRetryDuringDagProbe) {
  JoinDb fx(txn::ProcessingMode::kHomogeneousSnapshotIsolation);
  auto query = Query::On(fx.events)
                   .Join(JoinInput(fx.dims), JoinType::kInner, {"id"},
                         {"key"})
                   .Aggregate({Sum(Col("price")).As("total"),
                               Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());

  auto baseline = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(baseline.ok());

  // Inject a committed write between ClassifyBlock and the seqlock
  // validation of block 0: the scan must retry that block with the safe
  // kernel and keep reading its snapshot (the commit is invisible to the
  // already-started OLAP transaction).
  storage::Column* price = fx.events->GetColumn("price");
  bool injected = false;
  engine::ScanOptions scan_options;
  scan_options.on_block_classified = [&](size_t block) {
    if (block == 0 && !injected) {
      injected = true;
      auto txn = fx.db->BeginOltp();
      txn->Write(price, 7, storage::EncodeDouble(1e9));
      ANKER_CHECK(fx.db->Commit(txn.get()).ok());
    }
  };
  ExecOptions options;
  options.scan_options = &scan_options;
  auto raced = fx.db->Run(query.value(), Params(), options);
  ASSERT_TRUE(raced.ok()) << raced.status().ToString();
  ASSERT_TRUE(injected);

  // Same snapshot-consistent answer as the undisturbed run.
  EXPECT_DOUBLE_EQ(raced.value().Value("total"),
                   baseline.value().Value("total"));
  EXPECT_DOUBLE_EQ(raced.value().Value("n"), baseline.value().Value("n"));
  EXPECT_GE(raced.value().scan.seqlock_retries, 1u);

  // A fresh transaction sees the committed write.
  auto after = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(after.ok());
  EXPECT_GT(after.value().Value("total"), baseline.value().Value("total"));
}

}  // namespace
}  // namespace anker::query
