// Seeded differential plan fuzzer: generates random declarative plans in
// their wire form, compiles each against the live catalog, and runs it
//   (a) as compiled (the builder's chosen fast path or DAG),
//   (b) forced through the operator DAG,
//   (c) after an encode -> decode -> recompile wire round trip,
// asserting bit-identical result digests across all three. The data is
// dyadic-rational (prices in 1/4 steps, integer factors) so every sum is
// exact in double regardless of accumulation order — any digest mismatch
// is a real planner/executor divergence, not float reassociation.
//
// ANKER_FUZZ_ITERS overrides the plan count (smoke default 40; the
// nightly sweep in .github/workflows runs 2000 under ASan and TSan).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "query/query.h"
#include "query/serialize.h"

namespace anker::query {
namespace {

struct FuzzDb {
  FuzzDb() {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHomogeneousSnapshotIsolation);
    db = std::make_unique<engine::Database>(config);
    db->Start();
    constexpr size_t kRows = 3000;
    auto created = db->CreateTable(
        "events",
        {{"id", storage::ValueType::kInt64},
         {"tag", storage::ValueType::kDict32},
         {"price", storage::ValueType::kDouble},
         {"qty", storage::ValueType::kDouble}},
        kRows);
    ANKER_CHECK(created.ok());
    events = created.value();
    storage::Dictionary* tags = events->GetDictionary("tag");
    for (const char* name : {"red", "green", "blue", "grey", "gold"}) {
      tags->GetOrAdd(name);
    }
    for (size_t row = 0; row < kRows; ++row) {
      events->GetColumn("id")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row % 64)));
      events->GetColumn("tag")->LoadValue(
          row, storage::EncodeDict(static_cast<uint32_t>(row % 5)));
      events->GetColumn("price")->LoadValue(
          row, storage::EncodeDouble(0.25 * static_cast<double>(row % 201)));
      events->GetColumn("qty")->LoadValue(
          row, storage::EncodeDouble(static_cast<double>(1 + row % 50)));
    }

    auto dims_created = db->CreateTable(
        "dims",
        {{"key", storage::ValueType::kInt64},
         {"factor", storage::ValueType::kDouble}},
        40);
    ANKER_CHECK(dims_created.ok());
    dims = dims_created.value();
    for (size_t row = 0; row < 40; ++row) {
      dims->GetColumn("key")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row)));
      dims->GetColumn("factor")->LoadValue(
          row, storage::EncodeDouble(static_cast<double>(1 + row % 9)));
    }
  }

  std::unique_ptr<engine::Database> db;
  storage::Table* events = nullptr;
  storage::Table* dims = nullptr;
};

/// FNV-1a over the full result: schema names, key bit patterns and the
/// raw IEEE bits of every double. Unordered results are canonicalized by
/// sorting rows (keys, then value bit patterns) first, so two runs agree
/// iff they produced the same multiset of rows.
uint64_t Digest(QueryResult result, bool ordered) {
  if (!ordered) {
    std::sort(result.rows.begin(), result.rows.end(),
              [](const QueryResult::Row& a, const QueryResult::Row& b) {
                if (a.keys != b.keys) return a.keys < b.keys;
                for (size_t i = 0; i < a.values.size(); ++i) {
                  uint64_t av, bv;
                  std::memcpy(&av, &a.values[i], 8);
                  std::memcpy(&bv, &b.values[i], 8);
                  if (av != bv) return av < bv;
                }
                return false;
              });
  }
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  auto mix_str = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
  };
  for (const auto& name : result.key_names) mix_str(name);
  for (const auto& name : result.columns) mix_str(name);
  for (const auto& row : result.rows) {
    for (uint64_t k : row.keys) mix(k);
    for (double v : row.values) {
      uint64_t bits;
      std::memcpy(&bits, &v, 8);
      mix(bits);
    }
  }
  mix(result.rows.size());
  return h;
}

/// One random plan in wire form. Every shape the generator emits is
/// valid by construction; what varies is which execution strategy the
/// builder picks and which DAG operators get exercised.
WireQuery GeneratePlan(Rng& rng) {
  WireQuery w;
  w.table = "events";

  // Scan filter: none / id range / price threshold / dict equality,
  // sometimes OR-combined so the generic predicate path binds too.
  switch (rng.NextBounded(5)) {
    case 0:
      break;
    case 1:
      w.filter = Col("id") < I64(rng.NextInRange(0, 70));
      break;
    case 2:
      w.filter = Col("price") >= F64(0.25 * rng.NextInRange(0, 200));
      break;
    case 3:
      w.filter = Col("tag") == Str(rng.NextBool(0.5) ? "red" : "gold");
      break;
    default:
      w.filter = (Col("tag") == Str("blue")) ||
                 (Col("qty") > F64(rng.NextInRange(1, 49)));
      break;
  }

  // Optional join against dims on id = key (ids 0..63, keys 0..39: a
  // third of the probe side misses by construction).
  const bool joined = rng.NextBool(0.45);
  JoinType join_type = JoinType::kInner;
  if (joined) {
    WireJoin join;
    join.input.table = "dims";
    if (rng.NextBool(0.3)) {
      join.input.filter = Col("key") < I64(rng.NextInRange(0, 45));
    }
    const JoinType kinds[4] = {JoinType::kInner, JoinType::kLeftSemi,
                               JoinType::kLeftAnti, JoinType::kLeftOuter};
    join_type = kinds[rng.NextBounded(4)];
    join.type = join_type;
    join.probe_keys = {"id"};
    join.build_keys = {"key"};
    w.joins.push_back(std::move(join));
  }
  // Build-side value columns survive only matched inner/outer joins.
  const bool has_factor =
      joined &&
      (join_type == JoinType::kInner || join_type == JoinType::kLeftOuter);

  // Aggregates: 1..3 drawn without worrying about duplicates (names are
  // position-suffixed).
  const size_t num_aggs = 1 + rng.NextBounded(3);
  for (size_t i = 0; i < num_aggs; ++i) {
    Agg agg;
    switch (rng.NextBounded(has_factor ? 7 : 6)) {
      case 0:
        agg = Sum(Col("price"));
        break;
      case 1:
        agg = Count();
        break;
      case 2:
        agg = Sum(Col("price") * Col("qty"));
        break;
      case 3:
        agg = Min(Col("price"));
        break;
      case 4:
        agg = Max(Col("qty"));
        break;
      case 5:
        agg = CountDistinct(Col("id"));
        break;
      default:
        agg = Sum(Col("qty") * Col("factor"));
        break;
    }
    w.aggs.push_back(agg.As("a" + std::to_string(i)));
  }

  // Group keys: none (global) / tag / id / both.
  switch (rng.NextBounded(4)) {
    case 0:
      break;
    case 1:
      w.group_by = {"tag"};
      break;
    case 2:
      w.group_by = {"id"};
      break;
    default:
      w.group_by = {"tag", "id"};
      break;
  }

  if (!w.group_by.empty()) {
    if (rng.NextBool(0.25)) {
      w.having = Col("a0") > F64(0.25 * rng.NextInRange(0, 400));
    }
    if (rng.NextBool(0.3)) {
      w.has_window = true;
      w.win_funcs = {rng.NextBool(0.5) ? WinRank("w")
                                       : WinSum(Col("a0"), "w")};
      w.win_partition = {w.group_by[0]};
      w.win_order = {{"a0", true}};
      if (rng.NextBool(0.5)) {
        w.post_filter = Col("w") <= F64(rng.NextInRange(1, 5));
      }
    }
    if (rng.NextBool(0.4)) {
      w.order_by = {{"a0", rng.NextBool(0.5)}};
      if (rng.NextBool(0.7)) {
        w.limit = rng.NextInRange(0, 30);
      }
    }
  }
  return w;
}

/// One-line plan shape for replaying failures (ANKER_FUZZ_VERBOSE=1):
/// an ANKER_CHECK inside the engine kills the process before gtest can
/// print anything, so the shape goes to stderr before the run.
std::string DescribePlan(const WireQuery& w, size_t iter) {
  std::string out = "plan " + std::to_string(iter) + ": " + w.table;
  if (w.filter.valid()) out += " filtered";
  for (const WireJoin& j : w.joins) {
    out += " join(" + j.input.table +
           ", type=" + std::to_string(static_cast<int>(j.type)) +
           (j.input.filter.valid() ? ", filtered)" : ")");
  }
  out += " aggs=";
  for (size_t i = 0; i < w.aggs.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(static_cast<int>(w.aggs[i].kind()));
    if (w.aggs[i].expr().valid()) out += "e";
  }
  out += " group_by=" + std::to_string(w.group_by.size());
  if (w.having.valid()) out += " having";
  if (w.has_window) out += " window";
  if (w.post_filter.valid()) out += " post_filter";
  if (!w.order_by.empty()) out += " order_by";
  if (w.limit >= 0) out += " limit=" + std::to_string(w.limit);
  return out;
}

TEST(PlanFuzzTest, StrategiesAndWireAgreeOnEveryPlan) {
  FuzzDb fx;
  size_t iters = 40;
  if (const char* env = std::getenv("ANKER_FUZZ_ITERS")) {
    iters = static_cast<size_t>(std::atoll(env));
  }
  Rng rng(20260808);

  const bool verbose = std::getenv("ANKER_FUZZ_VERBOSE") != nullptr;
  for (size_t iter = 0; iter < iters; ++iter) {
    WireQuery wire = GeneratePlan(rng);
    if (verbose) {
      std::fprintf(stderr, "%s\n", DescribePlan(wire, iter).c_str());
    }
    const bool ordered = !wire.order_by.empty();

    auto compiled = CompileWireQuery(wire, fx.db->catalog());
    ASSERT_TRUE(compiled.ok())
        << "plan " << iter << ": " << compiled.status().ToString();

    auto base = fx.db->Run(compiled.value(), Params());
    ASSERT_TRUE(base.ok())
        << "plan " << iter << ": " << base.status().ToString();
    const uint64_t base_digest = Digest(base.value(), ordered);

    // (b) same plan forced through the DAG.
    ExecOptions force;
    force.force_dag = true;
    auto dag = fx.db->Run(compiled.value(), Params(), force);
    ASSERT_TRUE(dag.ok())
        << "plan " << iter << ": " << dag.status().ToString();
    EXPECT_EQ(Digest(dag.value(), ordered), base_digest)
        << "plan " << iter << " diverges between strategy "
        << static_cast<int>(compiled.value().strategy()) << " and dag";

    // (c) encode -> decode -> recompile -> run, as the server would.
    std::string encoded;
    ASSERT_TRUE(EncodeWireQuery(wire, &encoded).ok()) << "plan " << iter;
    std::string_view view(encoded);
    WireQuery decoded;
    ASSERT_TRUE(DecodeWireQuery(&view, &decoded).ok()) << "plan " << iter;
    ASSERT_TRUE(view.empty()) << "plan " << iter << ": trailing bytes";
    auto recompiled = CompileWireQuery(decoded, fx.db->catalog());
    ASSERT_TRUE(recompiled.ok())
        << "plan " << iter << ": " << recompiled.status().ToString();
    EXPECT_EQ(recompiled.value().strategy(), compiled.value().strategy())
        << "plan " << iter;
    auto wired = fx.db->Run(recompiled.value(), Params());
    ASSERT_TRUE(wired.ok())
        << "plan " << iter << ": " << wired.status().ToString();
    EXPECT_EQ(Digest(wired.value(), ordered), base_digest)
        << "plan " << iter << " diverges across the wire";
  }
}

/// The generator itself must be deterministic: two runs from the same
/// seed produce byte-identical wire encodings (otherwise a reported
/// failing iteration could not be replayed).
TEST(PlanFuzzTest, GeneratorIsDeterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 50; ++i) {
    std::string ea, eb;
    ASSERT_TRUE(EncodeWireQuery(GeneratePlan(a), &ea).ok());
    ASSERT_TRUE(EncodeWireQuery(GeneratePlan(b), &eb).ok());
    ASSERT_EQ(ea, eb) << "iteration " << i;
  }
}

}  // namespace
}  // namespace anker::query
