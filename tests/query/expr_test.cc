#include "query/expr.h"

#include <gtest/gtest.h>

#include "query/query.h"

namespace anker::query {
namespace {

std::unique_ptr<storage::Table> MakeTable() {
  auto table = storage::Table::Create(
      "t",
      {{"id", storage::ValueType::kInt64},
       {"price", storage::ValueType::kDouble},
       {"qty", storage::ValueType::kDouble},
       {"day", storage::ValueType::kDate},
       {"tag", storage::ValueType::kDict32}},
      /*num_rows=*/64, snapshot::BufferBackend::kPlain);
  EXPECT_TRUE(table.ok());
  storage::Dictionary* dict = table.value()->GetDictionary("tag");
  dict->GetOrAdd("red");
  dict->GetOrAdd("green");
  dict->GetOrAdd("blue");
  return table.TakeValue();
}

TEST(ExprTypeCheckTest, InfersColumnAndArithmeticTypes) {
  auto table = MakeTable();
  EXPECT_EQ(TypeCheck(Col("id"), *table).value(), ExprType::kInt64);
  EXPECT_EQ(TypeCheck(Col("price") * Col("qty"), *table).value(),
            ExprType::kDouble);
  // int64 promotes to double in mixed arithmetic.
  EXPECT_EQ(TypeCheck(Col("id") * Col("price"), *table).value(),
            ExprType::kDouble);
  // Dates shift by int64 day offsets.
  EXPECT_EQ(TypeCheck(Col("day") + I64(92), *table).value(),
            ExprType::kDate);
  EXPECT_EQ(TypeCheck(Col("price") < F64(1.0), *table).value(),
            ExprType::kBool);
  EXPECT_EQ(
      TypeCheck(Col("price") < F64(1.0) && Col("id") >= I64(3), *table)
          .value(),
      ExprType::kBool);
  EXPECT_EQ(TypeCheck(Col("tag") == Str("red"), *table).value(),
            ExprType::kBool);
}

TEST(ExprTypeCheckTest, UnknownColumnIsNotFound) {
  auto table = MakeTable();
  auto result = TypeCheck(Col("nope") < I64(1), *table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ExprTypeCheckTest, ArithmeticOverDictIsRejected) {
  auto table = MakeTable();
  auto result = TypeCheck(Col("tag") + I64(1), *table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprTypeCheckTest, DictSupportsEqualityOnly) {
  auto table = MakeTable();
  auto result = TypeCheck(Col("tag") < Str("red"), *table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(TypeCheck(Col("tag") != Str("red"), *table).ok());
}

TEST(ExprTypeCheckTest, CrossDomainCompareIsRejected) {
  auto table = MakeTable();
  auto result = TypeCheck(Col("price") == Col("tag"), *table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprTypeCheckTest, LogicalOperatorsNeedBooleans) {
  auto table = MakeTable();
  auto result = TypeCheck(Col("price") && Col("qty"), *table);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprTypeCheckTest, IsConstExprSeparatesBoundSides) {
  EXPECT_TRUE(IsConstExpr(I64(5) * F64(2.0)));
  EXPECT_TRUE(IsConstExpr(Param("p", ExprType::kDate) + I64(92)));
  EXPECT_FALSE(IsConstExpr(Col("price")));
  EXPECT_FALSE(IsConstExpr(Col("price") * F64(2.0)));
}

TEST(QueryBuildTest, NonBooleanFilterIsRejected) {
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Filter(Col("price") * Col("qty"))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuildTest, UnknownFilterColumnIsNotFound) {
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Filter(Col("ghost") < I64(3))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kNotFound);
}

TEST(QueryBuildTest, AggregateOverDictIsRejected) {
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Aggregate({Sum(Col("tag")).As("s")})
                   .Build();
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuildTest, GroupByNonDictFallsBackToDag) {
  // The fused fast paths only pack dictionary keys; grouping by any other
  // type compiles onto the DAG's hash aggregation instead of failing.
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Aggregate({Count().As("n")})
                   .GroupBy({"price"})
                   .Build();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().strategy(), ExecStrategy::kDag);
}

TEST(QueryBuildTest, DuplicateAggregateNamesAreRejected) {
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Aggregate({Sum(Col("price")).As("x"),
                               Count().As("x")})
                   .Build();
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuildTest, QueryWithoutAggregatesIsRejected) {
  auto table = MakeTable();
  auto query = Query::On(table.get()).Build();
  ASSERT_FALSE(query.ok());
  EXPECT_EQ(query.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryBuildTest, InfersReferencedColumns) {
  auto table = MakeTable();
  auto query = Query::On(table.get())
                   .Filter(Col("day") >= DateDays(10))
                   .Aggregate({Sum(Col("price") * Col("qty")).As("rev")})
                   .GroupBy({"tag"})
                   .Build();
  ASSERT_TRUE(query.ok());
  // day (filter), tag (key), price, qty (aggregate) — and nothing else.
  EXPECT_EQ(query.value().columns().size(), 4u);
}

TEST(QueryBuildTest, MenuShapesPickTheFusedKernel) {
  auto table = MakeTable();
  auto fused = Query::On(table.get())
                   .Aggregate({Sum(Col("price")).As("s"), Count().As("n")})
                   .GroupBy({"tag"})
                   .Build();
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused.value().strategy(), ExecStrategy::kFusedGrouped);

  // (price + qty) is outside the fused form menu -> grouped fallback.
  auto generic = Query::On(table.get())
                     .Aggregate({Sum(Col("price") + Col("qty")).As("s")})
                     .GroupBy({"tag"})
                     .Build();
  ASSERT_TRUE(generic.ok());
  EXPECT_EQ(generic.value().strategy(), ExecStrategy::kGroupedVec);

  // Ungrouped queries take the vectorized selection path.
  auto ungrouped = Query::On(table.get())
                       .Aggregate({Sum(Col("price")).As("s")})
                       .Build();
  ASSERT_TRUE(ungrouped.ok());
  EXPECT_EQ(ungrouped.value().strategy(), ExecStrategy::kVectorized);
}

}  // namespace
}  // namespace anker::query
