#include "query/query.h"

#include <gtest/gtest.h>

#include <cmath>

namespace anker::query {
namespace {

/// Small sensor-style fixture: 5000 readings across 3 stations with
/// deterministic values, loaded into a homogeneous (live-read) engine.
struct SensorDb {
  explicit SensorDb(txn::ProcessingMode mode =
                        txn::ProcessingMode::kHomogeneousSerializable,
                    size_t rows = 5000)
      : num_rows(rows) {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
    // Trigger a snapshot epoch on every commit so heterogeneous tests see
    // fresh epochs immediately.
    config.snapshot_interval_commits = 1;
    db = std::make_unique<engine::Database>(config);
    db->Start();
    auto created = db->CreateTable(
        "readings",
        {{"sensor_id", storage::ValueType::kInt64},
         {"station", storage::ValueType::kDict32},
         {"day", storage::ValueType::kDate},
         {"temperature", storage::ValueType::kDouble},
         {"humidity", storage::ValueType::kDouble}},
        rows);
    ANKER_CHECK(created.ok());
    table = created.value();
    storage::Dictionary* stations = table->GetDictionary("station");
    const char* names[3] = {"alpha", "beta", "gamma"};
    for (const char* name : names) stations->GetOrAdd(name);
    for (size_t row = 0; row < rows; ++row) {
      table->GetColumn("sensor_id")
          ->LoadValue(row, storage::EncodeInt64(
                               static_cast<int64_t>(row % 17)));
      table->GetColumn("station")
          ->LoadValue(row, storage::EncodeDict(
                               static_cast<uint32_t>(row % 3)));
      table->GetColumn("day")->LoadValue(
          row, storage::EncodeDate(static_cast<int64_t>(row % 100)));
      table->GetColumn("temperature")
          ->LoadValue(row, storage::EncodeDouble(
                               10.0 + static_cast<double>(row % 50)));
      table->GetColumn("humidity")
          ->LoadValue(row, storage::EncodeDouble(
                               0.3 + 0.01 * static_cast<double>(row % 40)));
    }
  }

  double Temperature(size_t row) const {
    return 10.0 + static_cast<double>(row % 50);
  }
  int64_t Day(size_t row) const { return static_cast<int64_t>(row % 100); }

  std::unique_ptr<engine::Database> db;
  storage::Table* table = nullptr;
  size_t num_rows;
};

TEST(QueryExecTest, UngroupedSumCountMatchesReference) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("day") < Param("cutoff", ExprType::kDate))
                   .Aggregate({Sum(Col("temperature")).As("sum_temp"),
                               Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto result = fx.db->Run(query.value(), Params().SetDate("cutoff", 40));
  ASSERT_TRUE(result.ok());

  double expected_sum = 0;
  uint64_t expected_n = 0;
  for (size_t row = 0; row < fx.num_rows; ++row) {
    if (fx.Day(row) >= 40) continue;
    expected_sum += fx.Temperature(row);
    ++expected_n;
  }
  EXPECT_NEAR(result.value().Value("sum_temp"), expected_sum,
              std::abs(expected_sum) * 1e-12);
  EXPECT_DOUBLE_EQ(result.value().Value("n"),
                   static_cast<double>(expected_n));
  EXPECT_EQ(result.value().rows_scanned, fx.num_rows);
}

TEST(QueryExecTest, GroupedFusedMatchesReference) {
  SensorDb fx;
  auto query =
      Query::On(fx.table)
          .Aggregate({Sum(Col("temperature")).As("sum_temp"),
                      Min(Col("temperature")).As("min_temp"),
                      Max(Col("temperature")).As("max_temp"),
                      Count().As("n")})
          .GroupBy({"station"})
          .Build();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().strategy(), ExecStrategy::kFusedGrouped);
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);

  for (const QueryResult::Row& row : result.value().rows) {
    const uint32_t station = static_cast<uint32_t>(row.keys[0]);
    double sum = 0, mn = 1e300, mx = -1e300;
    uint64_t n = 0;
    for (size_t r = 0; r < fx.num_rows; ++r) {
      if (r % 3 != station) continue;
      const double t = fx.Temperature(r);
      sum += t;
      mn = std::min(mn, t);
      mx = std::max(mx, t);
      ++n;
    }
    EXPECT_NEAR(row.values[0], sum, std::abs(sum) * 1e-12);
    EXPECT_DOUBLE_EQ(row.values[1], mn);
    EXPECT_DOUBLE_EQ(row.values[2], mx);
    EXPECT_DOUBLE_EQ(row.values[3], static_cast<double>(n));
  }
}

TEST(QueryExecTest, AvgAndExprAggregatesUseHiddenCount) {
  SensorDb fx;
  // (temperature + humidity) is outside the fused menu: exercises the
  // temp program and the grouped fallback, plus Avg's hidden count.
  auto query = Query::On(fx.table)
                   .Aggregate({Avg(Col("temperature") + Col("humidity"))
                                   .As("avg_combined")})
                   .GroupBy({"station"})
                   .Build();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().strategy(), ExecStrategy::kGroupedVec);
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);
  ASSERT_EQ(result.value().columns.size(), 1u);  // hidden count not shown

  for (const QueryResult::Row& row : result.value().rows) {
    const uint32_t station = static_cast<uint32_t>(row.keys[0]);
    double sum = 0;
    uint64_t n = 0;
    for (size_t r = 0; r < fx.num_rows; ++r) {
      if (r % 3 != station) continue;
      sum += fx.Temperature(r) + (0.3 + 0.01 * static_cast<double>(r % 40));
      ++n;
    }
    EXPECT_NEAR(row.values[0], sum / static_cast<double>(n), 1e-9);
  }
}

TEST(QueryExecTest, DictEqualityByStringAndGenericOrPredicate) {
  SensorDb fx;
  // String equality lowers to a dict-code range; the OR stays generic.
  auto query = Query::On(fx.table)
                   .Filter(Col("station") == Str("beta"))
                   .Filter(Col("day") < DateDays(10) ||
                           Col("day") >= DateDays(90))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  uint64_t expected = 0;
  for (size_t r = 0; r < fx.num_rows; ++r) {
    if (r % 3 != 1) continue;  // "beta" has code 1
    if (fx.Day(r) < 10 || fx.Day(r) >= 90) ++expected;
  }
  EXPECT_DOUBLE_EQ(result.value().Value("n"),
                   static_cast<double>(expected));
}

TEST(QueryExecTest, StringParameterResolvesThroughDictionary) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("station") ==
                           Param("which", ExprType::kDict))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto result =
      fx.db->Run(query.value(), Params().SetString("which", "gamma"));
  ASSERT_TRUE(result.ok());
  uint64_t expected = 0;
  for (size_t r = 0; r < fx.num_rows; ++r) {
    if (r % 3 == 2) ++expected;
  }
  EXPECT_DOUBLE_EQ(result.value().Value("n"),
                   static_cast<double>(expected));

  auto unknown =
      fx.db->Run(query.value(), Params().SetString("which", "nope"));
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST(QueryExecTest, MissingAndMistypedParamsFailRecoverably) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("day") < Param("cutoff", ExprType::kDate))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto missing = fx.db->Run(query.value(), Params());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  auto mistyped =
      fx.db->Run(query.value(), Params().SetDouble("cutoff", 40.0));
  ASSERT_FALSE(mistyped.ok());
  EXPECT_EQ(mistyped.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryExecTest, EmptySelectionYieldsZeroRowUngrouped) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("day") < DateDays(-5))
                   .Aggregate({Sum(Col("temperature")).As("s"),
                               Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().Value("s"), 0.0);
  EXPECT_DOUBLE_EQ(result.value().Value("n"), 0.0);
}

TEST(QueryExecTest, EmptyGroupsAreDropped) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("station") == Str("alpha"))
                   .Aggregate({Count().As("n")})
                   .GroupBy({"station"})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0].keys[0], 0u);  // "alpha"
}

TEST(QueryExecTest, QueryRunsOnHeterogeneousSnapshots) {
  SensorDb fx(txn::ProcessingMode::kHeterogeneousSerializable);
  auto query = Query::On(fx.table)
                   .Aggregate({Sum(Col("temperature")).As("s")})
                   .Build();
  ASSERT_TRUE(query.ok());
  auto before = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(before.ok());

  // Mutate a row; a new Run sees it, proving Run pins fresh epochs.
  auto txn = fx.db->BeginOltp();
  const double old_value = storage::DecodeDouble(
      txn->Read(fx.table->GetColumn("temperature"), 0));
  txn->Write(fx.table->GetColumn("temperature"), 0,
             storage::EncodeDouble(old_value + 500.0));
  ASSERT_TRUE(fx.db->Commit(txn.get()).ok());

  auto after = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(after.value().Value("s") - before.value().Value("s"), 500.0,
              1e-6);
  // The snapshot path must have scanned, not resolved, the clean column.
  EXPECT_GT(after.value().scan.tight_rows, 0u);
}

TEST(QueryExecTest, ExecuteRejectsContextMissingColumns) {
  SensorDb fx(txn::ProcessingMode::kHeterogeneousSerializable);
  auto query = Query::On(fx.table)
                   .Aggregate({Sum(Col("temperature")).As("s")})
                   .Build();
  ASSERT_TRUE(query.ok());
  // An OLAP context over a different column set: Execute must surface a
  // recoverable error (TryReader), not abort.
  auto ctx = fx.db->BeginOlap({fx.table->GetColumn("humidity")});
  ASSERT_TRUE(ctx.ok());
  QueryResult result;
  const Status status =
      Execute(query.value(), *ctx.value(), Params(), &result);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(fx.db->FinishOlap(ctx.TakeValue()).ok());
}

TEST(QueryExecTest, TryReaderIsRecoverableReaderStillChecks) {
  SensorDb fx(txn::ProcessingMode::kHeterogeneousSerializable);
  auto ctx = fx.db->BeginOlap({fx.table->GetColumn("temperature")});
  ASSERT_TRUE(ctx.ok());
  auto in_set = ctx.value()->TryReader(fx.table->GetColumn("temperature"));
  EXPECT_TRUE(in_set.ok());
  auto out_of_set = ctx.value()->TryReader(fx.table->GetColumn("humidity"));
  ASSERT_FALSE(out_of_set.ok());
  EXPECT_EQ(out_of_set.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(fx.db->FinishOlap(ctx.TakeValue()).ok());
}

TEST(QueryExecTest, GroupDomainBudgetIsEnforced) {
  SensorDb fx;
  // Inflate two dictionaries beyond the packed-group budget.
  auto wide = fx.db->CreateTable(
      "wide",
      {{"k1", storage::ValueType::kDict32},
       {"k2", storage::ValueType::kDict32}},
      16);
  ASSERT_TRUE(wide.ok());
  for (int i = 0; i < 40; ++i) {
    wide.value()->GetDictionary("k1")->GetOrAdd("a" + std::to_string(i));
    wide.value()->GetDictionary("k2")->GetOrAdd("b" + std::to_string(i));
  }
  auto query = Query::On(wide.value())
                   .Aggregate({Count().As("n")})
                   .GroupBy({"k1", "k2"})
                   .Build();
  // Domains past the packed-group budget leave the fused fast paths and
  // compile onto the DAG's hash aggregation instead.
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().strategy(), ExecStrategy::kDag);
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());
  // All 16 rows carry dictionary code 0 in both key columns.
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().Value("n"), 16.0);
}

/// Companion dimension table for join tests. Column names are disjoint
/// from the readings table (the DAG rejects ambiguous names).
storage::Table* MakeLimits(SensorDb* fx) {
  auto created = fx->db->CreateTable("limits",
                                     {{"sid", storage::ValueType::kInt64},
                                      {"t_max", storage::ValueType::kDouble}},
                                     17);
  ANKER_CHECK(created.ok());
  storage::Table* limits = created.value();
  for (size_t row = 0; row < 17; ++row) {
    limits->GetColumn("sid")->LoadValue(
        row, storage::EncodeInt64(static_cast<int64_t>(row)));
    limits->GetColumn("t_max")->LoadValue(
        row, storage::EncodeDouble(20.0 + static_cast<double>(row)));
  }
  return limits;
}

TEST(QueryExecTest, JoinBuildValidatesShapes) {
  SensorDb fx;
  storage::Table* limits = MakeLimits(&fx);

  // Mismatched key types: double probe key against an int64 build key.
  auto bad_key = Query::On(fx.table)
                     .Join(limits, JoinType::kLeftSemi, {"temperature"},
                           {"sid"})
                     .Aggregate({Count().As("n")})
                     .Build();
  ASSERT_FALSE(bad_key.ok());
  EXPECT_EQ(bad_key.status().code(), StatusCode::kInvalidArgument);

  // Key lists must pair up positionally.
  auto bad_arity = Query::On(fx.table)
                       .Join(limits, JoinType::kInner,
                             {"sensor_id", "sensor_id"}, {"sid"})
                       .Aggregate({Count().As("n")})
                       .Build();
  ASSERT_FALSE(bad_arity.ok());
  EXPECT_EQ(bad_arity.status().code(), StatusCode::kInvalidArgument);

  // Non-boolean residual.
  auto bad_residual = Query::On(fx.table)
                          .Join(limits, JoinType::kInner, {"sensor_id"},
                                {"sid"}, Col("t_max") + F64(1.0))
                          .Aggregate({Count().As("n")})
                          .Build();
  ASSERT_FALSE(bad_residual.ok());
  EXPECT_EQ(bad_residual.status().code(), StatusCode::kInvalidArgument);

  // A self join is ambiguous without renaming through a sub-query.
  auto ambiguous = Query::On(fx.table)
                       .Join(fx.table, JoinType::kInner, {"sensor_id"},
                             {"sensor_id"})
                       .Aggregate({Count().As("n")})
                       .Build();
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryExecTest, InnerJoinWithResidualMatchesReference) {
  SensorDb fx;
  storage::Table* limits = MakeLimits(&fx);
  auto query = Query::On(fx.table)
                   .Join(limits, JoinType::kInner, {"sensor_id"}, {"sid"},
                         Col("temperature") < Col("t_max"))
                   .Aggregate({Sum(Col("temperature")).As("s"),
                               Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().strategy(), ExecStrategy::kDag);
  auto result = fx.db->Run(query.value(), Params());
  ASSERT_TRUE(result.ok());

  double expected_sum = 0;
  uint64_t expected_n = 0;
  for (size_t r = 0; r < fx.num_rows; ++r) {
    const double t_max = 20.0 + static_cast<double>(r % 17);
    if (fx.Temperature(r) < t_max) {
      expected_sum += fx.Temperature(r);
      ++expected_n;
    }
  }
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_NEAR(result.value().Value("s"), expected_sum,
              std::abs(expected_sum) * 1e-12);
  EXPECT_DOUBLE_EQ(result.value().Value("n"),
                   static_cast<double>(expected_n));
}

TEST(QueryExecTest, UnboundParameterIsRejected) {
  SensorDb fx;
  auto query = Query::On(fx.table)
                   .Filter(Col("day") < Param("cutoff", ExprType::kDate))
                   .Aggregate({Count().As("n")})
                   .Build();
  ASSERT_TRUE(query.ok());
  // Binding a name the plan never references must fail recoverably, not
  // silently bind nothing.
  auto typoed = fx.db->Run(query.value(),
                           Params().SetDate("cutof", 40).SetDate("cutoff", 40));
  ASSERT_FALSE(typoed.ok());
  EXPECT_EQ(typoed.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(typoed.status().message().find("cutof"), std::string::npos);
}

TEST(DatabaseConfigValidationTest, RejectsMismatchedBackends) {
  engine::DatabaseConfig hetero_plain;
  hetero_plain.mode = txn::ProcessingMode::kHeterogeneousSerializable;
  hetero_plain.backend = snapshot::BufferBackend::kPlain;
  EXPECT_EQ(hetero_plain.Validate().code(), StatusCode::kInvalidArgument);
  auto created = engine::Database::Create(hetero_plain);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);

  engine::DatabaseConfig homog_vm;
  homog_vm.mode = txn::ProcessingMode::kHomogeneousSerializable;
  homog_vm.backend = snapshot::BufferBackend::kVmSnapshot;
  EXPECT_EQ(homog_vm.Validate().code(), StatusCode::kInvalidArgument);

  engine::DatabaseConfig ok = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHomogeneousSnapshotIsolation);
  EXPECT_TRUE(ok.Validate().ok());
  auto db = engine::Database::Create(ok);
  ASSERT_TRUE(db.ok());
  EXPECT_NE(db.value(), nullptr);
}

}  // namespace
}  // namespace anker::query
