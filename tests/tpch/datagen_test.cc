#include "tpch/datagen.h"

#include <gtest/gtest.h>

#include "storage/value.h"
#include "tpch/schema.h"

namespace anker::tpch {
namespace {

engine::DatabaseConfig SmallConfig() {
  return engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
}

TEST(DatagenTest, LoadsAllThreeTables) {
  engine::Database db(SmallConfig());
  TpchConfig config;
  config.lineitem_rows = 6000;
  auto instance = LoadTpch(&db, config);
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance.value().lineitem->num_rows(), 6000u);
  EXPECT_EQ(instance.value().orders->num_rows(), 1501u);
  EXPECT_EQ(instance.value().part->num_rows(), 201u);
  EXPECT_TRUE(db.catalog().HasTable(kLineitem));
  EXPECT_TRUE(db.catalog().HasTable(kOrders));
  EXPECT_TRUE(db.catalog().HasTable(kPart));
}

TEST(DatagenTest, KeysAreDenseAndIndexed) {
  engine::Database db(SmallConfig());
  TpchConfig config;
  config.lineitem_rows = 3000;
  auto instance = LoadTpch(&db, config);
  ASSERT_TRUE(instance.ok());
  const TpchInstance& inst = instance.value();

  // Every orders key 1..N resolves through the index to a row holding it.
  storage::Column* okey = inst.orders->GetColumn("o_orderkey");
  for (uint64_t key = 1; key <= inst.orders_rows; key += 97) {
    auto row = inst.orders->primary_index()->Lookup(key);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(storage::DecodeInt64(okey->ReadLatestRaw(row.value())),
              static_cast<int64_t>(key));
  }

  // Every lineitem row's (orderkey, linenumber) resolves back to itself.
  storage::Column* l_ok = inst.lineitem->GetColumn("l_orderkey");
  storage::Column* l_ln = inst.lineitem->GetColumn("l_linenumber");
  for (uint64_t row = 0; row < inst.lineitem_rows; row += 131) {
    const int64_t orderkey = storage::DecodeInt64(l_ok->ReadLatestRaw(row));
    const int64_t line = storage::DecodeInt64(l_ln->ReadLatestRaw(row));
    auto found = inst.lineitem->primary_index()->Lookup(
        LineitemKey(orderkey, line));
    ASSERT_TRUE(found.ok());
    EXPECT_EQ(found.value(), row);
  }
}

TEST(DatagenTest, ValueDomainsMatchSpecShape) {
  engine::Database db(SmallConfig());
  TpchConfig config;
  config.lineitem_rows = 5000;
  auto instance = LoadTpch(&db, config);
  ASSERT_TRUE(instance.ok());
  const TpchInstance& inst = instance.value();

  storage::Column* qty = inst.lineitem->GetColumn("l_quantity");
  storage::Column* disc = inst.lineitem->GetColumn("l_discount");
  storage::Column* ship = inst.lineitem->GetColumn("l_shipdate");
  for (uint64_t row = 0; row < inst.lineitem_rows; row += 53) {
    const double q = storage::DecodeDouble(qty->ReadLatestRaw(row));
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 50.0);
    const double d = storage::DecodeDouble(disc->ReadLatestRaw(row));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 0.10001);
    const int64_t s = storage::DecodeDate(ship->ReadLatestRaw(row));
    EXPECT_GE(s, 1);
    EXPECT_LE(s, kShipDateMaxDays);
  }

  // Dictionary domains have the spec cardinalities.
  EXPECT_EQ(inst.lineitem->GetDictionary("l_returnflag")->size(), 3u);
  EXPECT_EQ(inst.lineitem->GetDictionary("l_linestatus")->size(), 2u);
  EXPECT_EQ(inst.orders->GetDictionary("o_orderpriority")->size(), 5u);
  EXPECT_LE(inst.part->GetDictionary("p_brand")->size(), 25u);
}

TEST(DatagenTest, DeterministicForSameSeed) {
  TpchConfig config;
  config.lineitem_rows = 2000;
  config.seed = 1234;

  engine::Database db1(SmallConfig());
  engine::Database db2(SmallConfig());
  auto i1 = LoadTpch(&db1, config);
  auto i2 = LoadTpch(&db2, config);
  ASSERT_TRUE(i1.ok());
  ASSERT_TRUE(i2.ok());

  storage::Column* a = i1.value().lineitem->GetColumn("l_extendedprice");
  storage::Column* b = i2.value().lineitem->GetColumn("l_extendedprice");
  for (uint64_t row = 0; row < 2000; row += 17) {
    EXPECT_EQ(a->ReadLatestRaw(row), b->ReadLatestRaw(row));
  }
}

}  // namespace
}  // namespace anker::tpch
