#include "tpch/workload_driver.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tpch/schema.h"

namespace anker::tpch {
namespace {

struct LoadedWorkload {
  explicit LoadedWorkload(txn::ProcessingMode mode, size_t rows = 4000,
                          size_t scan_threads = 1) {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
    config.snapshot_interval_commits = 200;
    config.gc_interval_millis = 20;
    config.scan_threads = scan_threads;
    db = std::make_unique<engine::Database>(config);
    db->Start();
    TpchConfig tpch;
    tpch.lineitem_rows = rows;
    auto loaded = LoadTpch(db.get(), tpch);
    ANKER_CHECK(loaded.ok());
    instance = loaded.TakeValue();
    driver = std::make_unique<WorkloadDriver>(db.get(), instance);
  }

  std::unique_ptr<engine::Database> db;
  TpchInstance instance;
  std::unique_ptr<WorkloadDriver> driver;
};

class WorkloadModeTest
    : public ::testing::TestWithParam<txn::ProcessingMode> {};

TEST_P(WorkloadModeTest, AllOltpKindsCommitOrAbortCleanly) {
  LoadedWorkload w(GetParam());
  Rng rng(3);
  for (OltpKind kind : kAllOltpKinds) {
    for (int i = 0; i < 20; ++i) {
      const Status status = w.driver->oltp().Run(kind, &rng);
      EXPECT_TRUE(status.ok() || status.IsAborted())
          << OltpKindName(kind) << ": " << status.ToString();
    }
  }
  const txn::TxnStats stats = w.db->txn_manager().stats();
  EXPECT_GT(stats.commits, 100u);
}

TEST_P(WorkloadModeTest, MixedRunCompletesAndCounts) {
  LoadedWorkload w(GetParam());
  WorkloadConfig config;
  config.oltp_transactions = 2000;
  config.olap_transactions = 7;
  config.threads = 4;
  const WorkloadResult result = w.driver->RunMixed(config);
  EXPECT_EQ(result.oltp_committed + result.oltp_aborted, 2000u);
  EXPECT_EQ(result.olap_completed, 7u);
  EXPECT_EQ(result.olap_latency.count(), 7u);
  EXPECT_GT(result.throughput_tps, 0.0);
  // The vast majority of point-update transactions commit.
  EXPECT_GT(result.oltp_committed, result.oltp_aborted * 5);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, WorkloadModeTest,
    ::testing::Values(txn::ProcessingMode::kHomogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                      txn::ProcessingMode::kHeterogeneousSerializable),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      switch (info.param) {
        case txn::ProcessingMode::kHomogeneousSerializable:
          return "HomogeneousSerializable";
        case txn::ProcessingMode::kHomogeneousSnapshotIsolation:
          return "HomogeneousSnapshotIsolation";
        case txn::ProcessingMode::kHeterogeneousSerializable:
          return "HeterogeneousSerializable";
      }
      return "Unknown";
    });

TEST(WorkloadTest, UpdatesArePreservedUnderPressure) {
  // After a mixed run, the database is still internally consistent: a
  // fresh OLAP scan in every table returns finite sums and the snapshot
  // machinery has no leftover epochs pinned.
  LoadedWorkload w(txn::ProcessingMode::kHeterogeneousSerializable);
  WorkloadConfig config;
  config.oltp_transactions = 3000;
  config.olap_transactions = 5;
  config.threads = 4;
  (void)w.driver->RunMixed(config);

  for (OlapKind kind : {OlapKind::kScanLineitem, OlapKind::kScanOrders,
                        OlapKind::kScanPart}) {
    OlapParams params;
    auto result = w.driver->RunOlapOnce(kind, params);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(std::isfinite(result.value().digest));
    EXPECT_GT(result.value().digest, 0.0);
  }
  EXPECT_LE(w.db->snapshot_manager()->LiveEpochCount(), 2u);
}

TEST(WorkloadTest, ParallelScansMatchSerialDigests) {
  // Intra-query parallelism must not change any query result: the same
  // workload run with scan_threads=1 and scan_threads=4 produces identical
  // digests for every OLAP kind (pure data, no churn).
  LoadedWorkload serial(txn::ProcessingMode::kHeterogeneousSerializable,
                        /*rows=*/64 * 1024, /*scan_threads=*/1);
  LoadedWorkload parallel(txn::ProcessingMode::kHeterogeneousSerializable,
                          /*rows=*/64 * 1024, /*scan_threads=*/4);
  // Tiny morsels relative to the table force real fan-out in the parallel
  // engine (64 blocks per column = 2 morsels at the default 32).
  for (OlapKind kind : kAllOlapKinds) {
    OlapParams params;  // defaults are deterministic
    auto a = serial.driver->RunOlapOnce(kind, params);
    auto b = parallel.driver->RunOlapOnce(kind, params);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // Merge order differs between serial and parallel folds, so double
    // sums may round differently: compare with a tight relative bound.
    EXPECT_NEAR(a.value().digest, b.value().digest,
                std::abs(a.value().digest) * 1e-9 + 1e-6)
        << OlapKindName(kind);
    EXPECT_EQ(a.value().rows_considered, b.value().rows_considered)
        << OlapKindName(kind);
  }
}

TEST(WorkloadTest, MixedRunWithParallelScansStaysConsistent) {
  // Streams and scan morsels share one pool; nested ParallelRun from
  // stream tasks must neither deadlock nor corrupt results.
  LoadedWorkload w(txn::ProcessingMode::kHeterogeneousSerializable,
                   /*rows=*/64 * 1024, /*scan_threads=*/4);
  WorkloadConfig config;
  config.oltp_transactions = 2000;
  config.olap_transactions = 7;
  config.threads = 4;
  const WorkloadResult result = w.driver->RunMixed(config);
  EXPECT_EQ(result.oltp_committed + result.oltp_aborted, 2000u);
  EXPECT_EQ(result.olap_completed, 7u);
}

TEST(WorkloadTest, OlapLatencyMeasurementTerminates) {
  LoadedWorkload w(txn::ProcessingMode::kHeterogeneousSerializable);
  WorkloadConfig config;
  config.oltp_transactions = 3000;
  config.threads = 2;
  const double nanos =
      w.driver->MeasureOlapLatency(OlapKind::kQ6, config, /*repetitions=*/2);
  EXPECT_GT(nanos, 0.0);
}

TEST(WorkloadTest, HeterogeneousOlapSeesEpochConsistentState) {
  // Two scans of different columns inside one OLAP context must reflect
  // one logical point in time even while OLTP churns: OLTP-Q2 updates
  // l_linestatus and l_discount atomically; we verify the invariant that
  // reading both columns in one context never mixes the halves by checking
  // the scan completes against a pinned epoch (digest stable on re-scan).
  LoadedWorkload w(txn::ProcessingMode::kHeterogeneousSerializable);
  std::atomic<bool> stop{false};
  std::thread churn([&] {
    Rng rng(77);
    while (!stop.load(std::memory_order_relaxed)) {
      (void)w.driver->oltp().Run(OltpKind::kQ2, &rng);
    }
  });

  for (int round = 0; round < 10; ++round) {
    storage::Column* disc = w.instance.lineitem->GetColumn("l_discount");
    auto ctx = w.db->BeginOlap({disc});
    ASSERT_TRUE(ctx.ok());
    const double first =
        ScanColumnSum(ctx.value()->Reader(disc), true, nullptr);
    const double second =
        ScanColumnSum(ctx.value()->Reader(disc), true, nullptr);
    ASSERT_DOUBLE_EQ(first, second);
    ASSERT_TRUE(w.db->FinishOlap(ctx.TakeValue()).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  churn.join();
}

}  // namespace
}  // namespace anker::tpch
