#include "tpch/queries.h"

#include <gtest/gtest.h>

#include "tpch/schema.h"

namespace anker::tpch {
namespace {

struct LoadedDb {
  explicit LoadedDb(txn::ProcessingMode mode, size_t rows = 6000) {
    db = std::make_unique<engine::Database>(
        engine::DatabaseConfig::ForMode(mode));
    db->Start();
    TpchConfig config;
    config.lineitem_rows = rows;
    auto loaded = LoadTpch(db.get(), config);
    ANKER_CHECK(loaded.ok());
    instance = loaded.TakeValue();
    queries = std::make_unique<TpchQueries>(db.get(), instance);
  }

  Result<OlapResult> Run(OlapKind kind, const OlapParams& params) {
    auto ctx = db->BeginOlap(queries->ColumnsFor(kind));
    if (!ctx.ok()) return ctx.status();
    OlapResult result = queries->Run(kind, *ctx.value(), params);
    ANKER_RETURN_IF_ERROR(db->FinishOlap(ctx.TakeValue()));
    return result;
  }

  std::unique_ptr<engine::Database> db;
  TpchInstance instance;
  std::unique_ptr<TpchQueries> queries;
};

OlapParams FixedParams() {
  OlapParams params;
  params.q1_delta_days = 90;
  params.q4_start_day = 800;
  params.q6_start_day = 400;
  params.q6_discount = 0.05;
  params.q6_quantity = 24.0;
  params.q17_brand_code = 3;
  params.q17_container_code = 7;
  return params;
}

TEST(QueriesTest, AllQueriesProduceResults) {
  LoadedDb hetero(txn::ProcessingMode::kHeterogeneousSerializable);
  for (OlapKind kind : kAllOlapKinds) {
    auto result = hetero.Run(kind, FixedParams());
    ASSERT_TRUE(result.ok()) << OlapKindName(kind);
    EXPECT_GT(result.value().rows_considered, 0u) << OlapKindName(kind);
  }
}

TEST(QueriesTest, DigestsAgreeAcrossProcessingModes) {
  // The same immutable data must yield identical results no matter whether
  // the query ran on a snapshot or on the live representation.
  LoadedDb hetero(txn::ProcessingMode::kHeterogeneousSerializable);
  LoadedDb homog(txn::ProcessingMode::kHomogeneousSerializable);
  LoadedDb homog_si(txn::ProcessingMode::kHomogeneousSnapshotIsolation);
  const OlapParams params = FixedParams();
  for (OlapKind kind : kAllOlapKinds) {
    auto a = hetero.Run(kind, params);
    auto b = homog.Run(kind, params);
    auto c = homog_si.Run(kind, params);
    ASSERT_TRUE(a.ok() && b.ok() && c.ok());
    EXPECT_DOUBLE_EQ(a.value().digest, b.value().digest)
        << OlapKindName(kind);
    EXPECT_DOUBLE_EQ(b.value().digest, c.value().digest)
        << OlapKindName(kind);
  }
}

TEST(QueriesTest, Q1SelectivityRespondsToDelta) {
  LoadedDb db(txn::ProcessingMode::kHeterogeneousSerializable);
  OlapParams tight = FixedParams();
  tight.q1_delta_days = 120;  // earlier cutoff -> fewer rows
  OlapParams loose = FixedParams();
  loose.q1_delta_days = 60;
  auto tight_result = db.Run(OlapKind::kQ1, tight);
  auto loose_result = db.Run(OlapKind::kQ1, loose);
  ASSERT_TRUE(tight_result.ok() && loose_result.ok());
  EXPECT_LT(tight_result.value().digest, loose_result.value().digest);
}

TEST(QueriesTest, Q6MatchesNaiveReference) {
  LoadedDb db(txn::ProcessingMode::kHomogeneousSerializable);
  const OlapParams params = FixedParams();
  auto result = db.Run(OlapKind::kQ6, params);
  ASSERT_TRUE(result.ok());

  // Naive reference computed directly from the latest raw column data.
  storage::Table* li = db.instance.lineitem;
  storage::Column* ship = li->GetColumn("l_shipdate");
  storage::Column* disc = li->GetColumn("l_discount");
  storage::Column* qty = li->GetColumn("l_quantity");
  storage::Column* price = li->GetColumn("l_extendedprice");
  double expected = 0;
  for (uint64_t row = 0; row < db.instance.lineitem_rows; ++row) {
    const int64_t date = storage::DecodeDate(ship->ReadLatestRaw(row));
    if (date < params.q6_start_day || date >= params.q6_start_day + 365) {
      continue;
    }
    const double d = storage::DecodeDouble(disc->ReadLatestRaw(row));
    if (d < params.q6_discount - 0.01001 || d > params.q6_discount + 0.01001) {
      continue;
    }
    if (storage::DecodeDouble(qty->ReadLatestRaw(row)) >= params.q6_quantity) {
      continue;
    }
    expected += storage::DecodeDouble(price->ReadLatestRaw(row)) * d;
  }
  EXPECT_NEAR(result.value().digest, expected, std::abs(expected) * 1e-12);
  EXPECT_GT(expected, 0.0);
}

TEST(QueriesTest, ScanDigestEqualsColumnSum) {
  LoadedDb db(txn::ProcessingMode::kHomogeneousSerializable);
  auto result = db.Run(OlapKind::kScanOrders, FixedParams());
  ASSERT_TRUE(result.ok());
  storage::Column* total = db.instance.orders->GetColumn("o_totalprice");
  double expected = 0;
  for (uint64_t row = 0; row < db.instance.orders_rows; ++row) {
    expected += storage::DecodeDouble(total->ReadLatestRaw(row));
  }
  // Block-wise folding associates the floating-point sum differently than
  // the linear reference loop; compare with a relative tolerance.
  EXPECT_NEAR(result.value().digest, expected, expected * 1e-12);
}

TEST(QueriesTest, SnapshotShieldsOlapFromConcurrentCommits) {
  LoadedDb db(txn::ProcessingMode::kHeterogeneousSerializable);
  // Open the OLAP context first (pins the epoch)...
  auto ctx = db.db->BeginOlap(db.queries->ColumnsFor(OlapKind::kScanOrders));
  ASSERT_TRUE(ctx.ok());
  const double before = ScanColumnSum(
      ctx.value()->Reader(db.instance.orders->GetColumn("o_totalprice")),
      true, nullptr);
  // ...then commit a visible change...
  storage::Column* total = db.instance.orders->GetColumn("o_totalprice");
  auto txn = db.db->BeginOltp();
  txn->Write(total, 0, storage::EncodeDouble(1e9));
  ASSERT_TRUE(db.db->Commit(txn.get()).ok());
  // ...and re-scan within the SAME context: identical result.
  const double after = ScanColumnSum(
      ctx.value()->Reader(db.instance.orders->GetColumn("o_totalprice")),
      true, nullptr);
  EXPECT_DOUBLE_EQ(before, after);
  ASSERT_TRUE(db.db->FinishOlap(ctx.TakeValue()).ok());
}

TEST(QueriesTest, RandomParamsStayInSpecBounds) {
  LoadedDb db(txn::ProcessingMode::kHeterogeneousSerializable, 2000);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const OlapParams params = db.queries->RandomParams(OlapKind::kQ6, &rng);
    EXPECT_GE(params.q1_delta_days, 60);
    EXPECT_LE(params.q1_delta_days, 120);
    EXPECT_GE(params.q6_discount, 0.02);
    EXPECT_LE(params.q6_discount, 0.09);
    EXPECT_TRUE(params.q6_quantity == 24.0 || params.q6_quantity == 25.0);
    EXPECT_GE(params.q4_start_day, 0);
    EXPECT_LE(params.q4_start_day + 92, kOrderDateMaxDays);
  }
}

}  // namespace
}  // namespace anker::tpch
