// The TPC-H 22 differential suite: every query of tpch::Tpch22 runs
// declaratively end-to-end and its result is checked against an
// independently computed reference (hand-rolled row loops over a plain
// extraction of the generated data), across mode×backend configs on
// clean data; on versioned data (after identical OLTP commits) the
// configs are differentially checked against each other. The wire path
// (Encode → Decode → CompileWireQuery) must reproduce the in-process
// digests bit-identically.
#include "tpch/queries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "query/serialize.h"
#include "storage/value.h"
#include "tpch/datagen.h"
#include "tpch/schema.h"

namespace anker::tpch {
namespace {

using query::QueryResult;

constexpr size_t kRows = 12000;
constexpr uint64_t kSeed = 7;

engine::DatabaseConfig ConfigFor(txn::ProcessingMode mode,
                                 snapshot::BufferBackend backend) {
  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(mode);
  config.backend = backend;
  return config;
}

/// The mode×backend grid the suite sweeps (4 configs). Homogeneous modes
/// require plain memory; heterogeneous pairs with the snapshot-capable
/// backends.
std::vector<engine::DatabaseConfig> Grid() {
  return {
      ConfigFor(txn::ProcessingMode::kHomogeneousSerializable,
                snapshot::BufferBackend::kPlain),
      ConfigFor(txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                snapshot::BufferBackend::kPlain),
      ConfigFor(txn::ProcessingMode::kHeterogeneousSerializable,
                snapshot::BufferBackend::kVmSnapshot),
      ConfigFor(txn::ProcessingMode::kHeterogeneousSerializable,
                snapshot::BufferBackend::kPhysical),
  };
}

// ---------------------------------------------------------------------------
// Plain extraction of the generated instance (the reference's input).
// ---------------------------------------------------------------------------

struct Data {
  // lineitem
  std::vector<int64_t> l_orderkey, l_partkey, l_suppkey, l_shipyear;
  std::vector<double> l_quantity, l_extendedprice, l_discount, l_tax;
  std::vector<int64_t> l_shipdate, l_commitdate, l_receiptdate;
  std::vector<uint32_t> l_returnflag, l_linestatus, l_shipmode,
      l_shipinstruct;
  // orders
  std::vector<int64_t> o_orderkey, o_custkey, o_shippriority, o_orderyear,
      o_comment_class;
  std::vector<uint32_t> o_orderstatus, o_orderpriority;
  std::vector<double> o_totalprice;
  std::vector<int64_t> o_orderdate;
  // part
  std::vector<int64_t> p_partkey, p_size, p_is_promo;
  std::vector<uint32_t> p_brand, p_container, p_type, p_name_color;
  std::vector<double> p_retailprice;
  // customer
  std::vector<int64_t> c_custkey, c_nationkey, c_phone_cc;
  std::vector<uint32_t> c_mktsegment;
  std::vector<double> c_acctbal;
  // supplier
  std::vector<int64_t> s_suppkey, s_nationkey, s_is_complaint;
  std::vector<double> s_acctbal;
  // partsupp
  std::vector<int64_t> ps_partkey, ps_suppkey;
  std::vector<double> ps_availqty, ps_supplycost;
  // nation / region
  std::vector<int64_t> n_nationkey, n_regionkey;
  std::vector<uint32_t> n_name;
  std::vector<int64_t> r_regionkey;
  std::vector<uint32_t> r_name;

  // Dictionary code lookups (resolved once per instance).
  uint32_t code_R = 0, code_AIR = 0, code_REG_AIR = 0, code_DELIVER = 0,
           code_F_status = 0;
};

int64_t I(storage::Column* c, size_t r) {
  return storage::DecodeInt64(c->ReadLatestRaw(r));
}
double D(storage::Column* c, size_t r) {
  return storage::DecodeDouble(c->ReadLatestRaw(r));
}
int64_t Dt(storage::Column* c, size_t r) {
  return storage::DecodeDate(c->ReadLatestRaw(r));
}
uint32_t Dc(storage::Column* c, size_t r) {
  return storage::DecodeDict(c->ReadLatestRaw(r));
}

uint32_t MustCode(storage::Table* t, const char* col, const char* value) {
  auto code = t->GetDictionary(col)->Lookup(value);
  EXPECT_TRUE(code.ok()) << col << " " << value;
  return code.ok() ? code.value() : 0;
}

Data Extract(const TpchInstance& inst) {
  Data d;
  storage::Table* li = inst.lineitem;
  for (size_t r = 0; r < inst.lineitem_rows; ++r) {
    d.l_orderkey.push_back(I(li->GetColumn("l_orderkey"), r));
    d.l_partkey.push_back(I(li->GetColumn("l_partkey"), r));
    d.l_suppkey.push_back(I(li->GetColumn("l_suppkey"), r));
    d.l_shipyear.push_back(I(li->GetColumn("l_shipyear"), r));
    d.l_quantity.push_back(D(li->GetColumn("l_quantity"), r));
    d.l_extendedprice.push_back(D(li->GetColumn("l_extendedprice"), r));
    d.l_discount.push_back(D(li->GetColumn("l_discount"), r));
    d.l_tax.push_back(D(li->GetColumn("l_tax"), r));
    d.l_shipdate.push_back(Dt(li->GetColumn("l_shipdate"), r));
    d.l_commitdate.push_back(Dt(li->GetColumn("l_commitdate"), r));
    d.l_receiptdate.push_back(Dt(li->GetColumn("l_receiptdate"), r));
    d.l_returnflag.push_back(Dc(li->GetColumn("l_returnflag"), r));
    d.l_linestatus.push_back(Dc(li->GetColumn("l_linestatus"), r));
    d.l_shipmode.push_back(Dc(li->GetColumn("l_shipmode"), r));
    d.l_shipinstruct.push_back(Dc(li->GetColumn("l_shipinstruct"), r));
  }
  storage::Table* ord = inst.orders;
  for (size_t r = 0; r < inst.orders_rows; ++r) {
    d.o_orderkey.push_back(I(ord->GetColumn("o_orderkey"), r));
    d.o_custkey.push_back(I(ord->GetColumn("o_custkey"), r));
    d.o_shippriority.push_back(I(ord->GetColumn("o_shippriority"), r));
    d.o_orderyear.push_back(I(ord->GetColumn("o_orderyear"), r));
    d.o_comment_class.push_back(I(ord->GetColumn("o_comment_class"), r));
    d.o_orderstatus.push_back(Dc(ord->GetColumn("o_orderstatus"), r));
    d.o_orderpriority.push_back(Dc(ord->GetColumn("o_orderpriority"), r));
    d.o_totalprice.push_back(D(ord->GetColumn("o_totalprice"), r));
    d.o_orderdate.push_back(Dt(ord->GetColumn("o_orderdate"), r));
  }
  storage::Table* part = inst.part;
  for (size_t r = 0; r < inst.part_rows; ++r) {
    d.p_partkey.push_back(I(part->GetColumn("p_partkey"), r));
    d.p_size.push_back(I(part->GetColumn("p_size"), r));
    d.p_is_promo.push_back(I(part->GetColumn("p_is_promo"), r));
    d.p_brand.push_back(Dc(part->GetColumn("p_brand"), r));
    d.p_container.push_back(Dc(part->GetColumn("p_container"), r));
    d.p_type.push_back(Dc(part->GetColumn("p_type"), r));
    d.p_name_color.push_back(Dc(part->GetColumn("p_name_color"), r));
    d.p_retailprice.push_back(D(part->GetColumn("p_retailprice"), r));
  }
  storage::Table* cust = inst.customer;
  for (size_t r = 0; r < inst.customer_rows; ++r) {
    d.c_custkey.push_back(I(cust->GetColumn("c_custkey"), r));
    d.c_nationkey.push_back(I(cust->GetColumn("c_nationkey"), r));
    d.c_phone_cc.push_back(I(cust->GetColumn("c_phone_cc"), r));
    d.c_mktsegment.push_back(Dc(cust->GetColumn("c_mktsegment"), r));
    d.c_acctbal.push_back(D(cust->GetColumn("c_acctbal"), r));
  }
  storage::Table* supp = inst.supplier;
  for (size_t r = 0; r < inst.supplier_rows; ++r) {
    d.s_suppkey.push_back(I(supp->GetColumn("s_suppkey"), r));
    d.s_nationkey.push_back(I(supp->GetColumn("s_nationkey"), r));
    d.s_is_complaint.push_back(I(supp->GetColumn("s_is_complaint"), r));
    d.s_acctbal.push_back(D(supp->GetColumn("s_acctbal"), r));
  }
  storage::Table* ps = inst.partsupp;
  for (size_t r = 0; r < inst.partsupp_rows; ++r) {
    d.ps_partkey.push_back(I(ps->GetColumn("ps_partkey"), r));
    d.ps_suppkey.push_back(I(ps->GetColumn("ps_suppkey"), r));
    d.ps_availqty.push_back(D(ps->GetColumn("ps_availqty"), r));
    d.ps_supplycost.push_back(D(ps->GetColumn("ps_supplycost"), r));
  }
  for (size_t r = 0; r < inst.nation->num_rows(); ++r) {
    d.n_nationkey.push_back(I(inst.nation->GetColumn("n_nationkey"), r));
    d.n_regionkey.push_back(I(inst.nation->GetColumn("n_regionkey"), r));
    d.n_name.push_back(Dc(inst.nation->GetColumn("n_name"), r));
  }
  for (size_t r = 0; r < inst.region->num_rows(); ++r) {
    d.r_regionkey.push_back(I(inst.region->GetColumn("r_regionkey"), r));
    d.r_name.push_back(Dc(inst.region->GetColumn("r_name"), r));
  }
  d.code_R = MustCode(li, "l_returnflag", "R");
  d.code_AIR = MustCode(li, "l_shipmode", "AIR");
  d.code_REG_AIR = MustCode(li, "l_shipmode", "REG AIR");
  d.code_DELIVER = MustCode(li, "l_shipinstruct", "DELIVER IN PERSON");
  d.code_F_status = MustCode(ord, "o_orderstatus", "F");
  return d;
}

// ---------------------------------------------------------------------------
// Reference evaluation. RefRow mirrors the DAG result layout: integer-
// domain outputs in `keys` (schema order), doubles in `values`.
// ---------------------------------------------------------------------------

struct RefRow {
  std::vector<uint64_t> keys;
  std::vector<double> values;
};

double Rev(const Data& d, size_t i) {
  return d.l_extendedprice[i] * (1.0 - d.l_discount[i]);
}

uint32_t DictParam(storage::Table* t, const char* col, const char* value) {
  return MustCode(t, col, value);
}

/// The reference rows of query `q` under the fixed ParamsFor bindings.
std::vector<RefRow> Reference(int q, const Data& d,
                              const TpchInstance& inst) {
  std::vector<RefRow> out;
  switch (q) {
    case 1: {
      // keys (returnflag, linestatus) -> 6 sums.
      std::map<std::pair<uint32_t, uint32_t>, std::array<double, 6>> g;
      std::map<std::pair<uint32_t, uint32_t>, int64_t> n;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] > kShipDateMaxDays - 90) continue;
        auto key = std::make_pair(d.l_returnflag[i], d.l_linestatus[i]);
        auto& a = g[key];
        a[0] += d.l_quantity[i];
        a[1] += d.l_extendedprice[i];
        a[2] += Rev(d, i);
        a[3] += Rev(d, i) * (1.0 + d.l_tax[i]);
        n[key] += 1;
      }
      for (const auto& [key, a] : g) {
        RefRow row;
        row.keys = {key.first, key.second};
        row.values = {a[0], a[1], a[2], a[3],
                      a[0] / static_cast<double>(n[key]),
                      static_cast<double>(n[key])};
        out.push_back(std::move(row));
      }
      break;
    }
    case 2: {
      const uint32_t region =
          DictParam(inst.region, "r_name", "EUROPE");
      // Per-part min supplycost over suppliers in the region.
      std::unordered_set<int64_t> region_nations;
      for (size_t i = 0; i < d.n_nationkey.size(); ++i) {
        if (d.r_name[d.n_regionkey[i]] == region) {
          region_nations.insert(d.n_nationkey[i]);
        }
      }
      std::unordered_map<int64_t, double> min_cost;
      for (size_t i = 0; i < d.ps_partkey.size(); ++i) {
        const int64_t nk = d.s_nationkey[d.ps_suppkey[i] - 1];
        if (region_nations.count(nk) == 0) continue;
        auto it = min_cost.find(d.ps_partkey[i]);
        if (it == min_cost.end() || d.ps_supplycost[i] < it->second) {
          min_cost[d.ps_partkey[i]] = d.ps_supplycost[i];
        }
      }
      double total = 0.0;
      int64_t count = 0;
      for (size_t i = 0; i < d.p_partkey.size(); ++i) {
        if (d.p_size[i] != 15) continue;
        auto it = min_cost.find(d.p_partkey[i]);
        if (it == min_cost.end()) continue;
        total += it->second;
        ++count;
      }
      // Global aggregates always emit one row — the identity row (all
      // zeros for sum/count) when nothing matched.
      out.push_back({{}, {total, static_cast<double>(count)}});
      break;
    }
    case 3: {
      const uint32_t segment =
          DictParam(inst.customer, "c_mktsegment", "BUILDING");
      std::unordered_set<int64_t> building;
      for (size_t i = 0; i < d.c_custkey.size(); ++i) {
        if (d.c_mktsegment[i] == segment) building.insert(d.c_custkey[i]);
      }
      std::unordered_map<int64_t, double> revenue;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] <= 1155) continue;
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        if (d.o_orderdate[o] >= 1155) continue;
        if (building.count(d.o_custkey[o]) == 0) continue;
        revenue[d.l_orderkey[i]] += Rev(d, i);
      }
      for (const auto& [orderkey, rev] : revenue) {
        out.push_back({{static_cast<uint64_t>(orderkey)}, {rev}});
      }
      // Schema [l_orderkey, revenue]; order by revenue desc, full-row tie.
      std::sort(out.begin(), out.end(),
                [](const RefRow& a, const RefRow& b) {
                  if (a.values[0] != b.values[0]) {
                    return a.values[0] > b.values[0];
                  }
                  return a.keys[0] < b.keys[0];
                });
      if (out.size() > 10) out.resize(10);
      break;
    }
    case 4: {
      std::unordered_map<int64_t, bool> late;  // orderkey -> any late line
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_commitdate[i] < d.l_receiptdate[i]) {
          late[d.l_orderkey[i]] = true;
        }
      }
      std::map<uint32_t, int64_t> counts;
      for (size_t i = 0; i < d.o_orderkey.size(); ++i) {
        if (d.o_orderdate[i] < 800 || d.o_orderdate[i] >= 892) continue;
        if (!late[d.o_orderkey[i]]) continue;
        counts[d.o_orderpriority[i]] += 1;
      }
      for (const auto& [prio, count] : counts) {
        out.push_back({{prio}, {static_cast<double>(count)}});
      }
      break;
    }
    case 5: {
      const uint32_t region = DictParam(inst.region, "r_name", "ASIA");
      std::unordered_set<int64_t> asia;
      for (size_t i = 0; i < d.n_nationkey.size(); ++i) {
        if (d.r_name[d.n_regionkey[i]] == region) {
          asia.insert(d.n_nationkey[i]);
        }
      }
      std::map<uint32_t, double> revenue;  // n_name code -> revenue
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        if (d.o_orderyear[o] != 1994) continue;
        const int64_t snation = d.s_nationkey[d.l_suppkey[i] - 1];
        const int64_t cnation = d.c_nationkey[d.o_custkey[o] - 1];
        if (snation != cnation) continue;
        if (asia.count(snation) == 0) continue;
        revenue[d.n_name[snation]] += Rev(d, i);
      }
      for (const auto& [name, rev] : revenue) {
        out.push_back({{name}, {rev}});
      }
      break;
    }
    case 6: {
      double revenue = 0.0;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] < 400 || d.l_shipdate[i] >= 765) continue;
        if (d.l_discount[i] < 0.05 - 0.01001 ||
            d.l_discount[i] > 0.05 + 0.01001) {
          continue;
        }
        if (d.l_quantity[i] >= 24.0) continue;
        revenue += d.l_extendedprice[i] * d.l_discount[i];
      }
      out.push_back({{}, {revenue}});
      break;
    }
    case 7: {
      std::map<std::tuple<int64_t, int64_t, int64_t>, double> revenue;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipyear[i] < 1995 || d.l_shipyear[i] > 1996) continue;
        const int64_t sn = d.s_nationkey[d.l_suppkey[i] - 1];
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        const int64_t cn = d.c_nationkey[d.o_custkey[o] - 1];
        if (!((sn == 6 && cn == 7) || (sn == 7 && cn == 6))) continue;
        revenue[{sn, cn, d.l_shipyear[i]}] += Rev(d, i);
      }
      for (const auto& [key, rev] : revenue) {
        out.push_back({{static_cast<uint64_t>(std::get<0>(key)),
                        static_cast<uint64_t>(std::get<1>(key)),
                        static_cast<uint64_t>(std::get<2>(key))},
                       {rev}});
      }
      break;
    }
    case 8: {
      const uint32_t region = DictParam(inst.region, "r_name", "AMERICA");
      std::unordered_set<int64_t> america;
      for (size_t i = 0; i < d.n_nationkey.size(); ++i) {
        if (d.r_name[d.n_regionkey[i]] == region) {
          america.insert(d.n_nationkey[i]);
        }
      }
      std::map<std::pair<int64_t, int64_t>, double> volume;
      std::map<int64_t, double> total;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.p_is_promo[d.l_partkey[i] - 1] != 1) continue;
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        if (d.o_orderyear[o] < 1995 || d.o_orderyear[o] > 1996) continue;
        const int64_t cn = d.c_nationkey[d.o_custkey[o] - 1];
        if (america.count(cn) == 0) continue;
        const int64_t sn = d.s_nationkey[d.l_suppkey[i] - 1];
        volume[{d.o_orderyear[o], sn}] += Rev(d, i);
        total[d.o_orderyear[o]] += Rev(d, i);
      }
      for (const auto& [key, vol] : volume) {
        if (key.second != 2) continue;  // q8_nation = BRAZIL.
        out.push_back({{static_cast<uint64_t>(key.first),
                        static_cast<uint64_t>(key.second)},
                       {vol, total[key.first]}});
      }
      break;
    }
    case 9: {
      const uint32_t color =
          DictParam(inst.part, "p_name_color", "green");
      // (ps_partkey, ps_suppkey) -> supplycost.
      std::unordered_map<int64_t, double> cost;
      for (size_t i = 0; i < d.ps_partkey.size(); ++i) {
        cost[d.ps_partkey[i] * (1 << 20) + d.ps_suppkey[i]] =
            d.ps_supplycost[i];
      }
      std::map<std::pair<int64_t, int64_t>, double> profit;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.p_name_color[d.l_partkey[i] - 1] != color) continue;
        auto it = cost.find(d.l_partkey[i] * (1 << 20) + d.l_suppkey[i]);
        if (it == cost.end()) {
          ADD_FAILURE() << "lineitem without matching partsupp row";
          continue;
        }
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        const int64_t sn = d.s_nationkey[d.l_suppkey[i] - 1];
        profit[{sn, d.o_orderyear[o]}] +=
            Rev(d, i) - it->second * d.l_quantity[i];
      }
      for (const auto& [key, value] : profit) {
        out.push_back({{static_cast<uint64_t>(key.first),
                        static_cast<uint64_t>(key.second)},
                       {value}});
      }
      break;
    }
    case 10: {
      std::unordered_map<int64_t, double> revenue;  // custkey
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_returnflag[i] != d.code_R) continue;
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        if (d.o_orderdate[o] < 800 || d.o_orderdate[o] >= 890) continue;
        revenue[d.o_custkey[o]] += Rev(d, i);
      }
      for (const auto& [custkey, rev] : revenue) {
        out.push_back({{static_cast<uint64_t>(custkey)}, {rev}});
      }
      std::sort(out.begin(), out.end(),
                [](const RefRow& a, const RefRow& b) {
                  if (a.values[0] != b.values[0]) {
                    return a.values[0] > b.values[0];
                  }
                  return a.keys[0] < b.keys[0];
                });
      if (out.size() > 20) out.resize(20);
      break;
    }
    case 11: {
      const uint32_t nation =
          DictParam(inst.nation, "n_name", "GERMANY");
      int64_t germany = -1;
      for (size_t i = 0; i < d.n_nationkey.size(); ++i) {
        if (d.n_name[i] == nation) germany = d.n_nationkey[i];
      }
      std::map<int64_t, double> value;  // partkey -> stock value
      double total = 0.0;
      for (size_t i = 0; i < d.ps_partkey.size(); ++i) {
        if (d.s_nationkey[d.ps_suppkey[i] - 1] != germany) continue;
        const double v = d.ps_supplycost[i] * d.ps_availqty[i];
        value[d.ps_partkey[i]] += v;
        total += v;
      }
      for (const auto& [partkey, v] : value) {
        if (v > 0.001 * total) {
          out.push_back(
              {{static_cast<uint64_t>(partkey)}, {v, total}});
        }
      }
      break;
    }
    case 12: {
      const uint32_t mail = MustCode(inst.lineitem, "l_shipmode", "MAIL");
      const uint32_t ship = MustCode(inst.lineitem, "l_shipmode", "SHIP");
      std::map<std::pair<uint32_t, uint32_t>, int64_t> counts;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipmode[i] != mail && d.l_shipmode[i] != ship) continue;
        if (!(d.l_commitdate[i] < d.l_receiptdate[i])) continue;
        if (!(d.l_shipdate[i] < d.l_commitdate[i])) continue;
        if (d.l_receiptdate[i] < 730 || d.l_receiptdate[i] >= 1095) {
          continue;
        }
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        counts[{d.l_shipmode[i], d.o_orderpriority[o]}] += 1;
      }
      for (const auto& [key, count] : counts) {
        out.push_back(
            {{key.first, key.second}, {static_cast<double>(count)}});
      }
      break;
    }
    case 13: {
      std::unordered_map<int64_t, int64_t> per_customer;
      for (size_t i = 0; i < d.c_custkey.size(); ++i) {
        per_customer[d.c_custkey[i]] = 0;
      }
      for (size_t i = 0; i < d.o_orderkey.size(); ++i) {
        if (d.o_comment_class[i] == 0) continue;
        per_customer[d.o_custkey[i]] += 1;
      }
      std::map<int64_t, int64_t> dist;  // c_count -> custdist
      for (const auto& [cust, count] : per_customer) dist[count] += 1;
      for (const auto& [count, custdist] : dist) {
        // Both outputs are double-typed in the result schema.
        out.push_back({{},
                       {static_cast<double>(count),
                        static_cast<double>(custdist)}});
      }
      break;
    }
    case 14: {
      std::map<int64_t, double> revenue;  // p_is_promo -> revenue
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] < 1000 || d.l_shipdate[i] >= 1030) continue;
        revenue[d.p_is_promo[d.l_partkey[i] - 1]] += Rev(d, i);
      }
      for (const auto& [promo, rev] : revenue) {
        out.push_back({{static_cast<uint64_t>(promo)}, {rev}});
      }
      break;
    }
    case 15: {
      std::map<int64_t, double> revenue;  // suppkey
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] < 1200 || d.l_shipdate[i] >= 1290) continue;
        revenue[d.l_suppkey[i]] += Rev(d, i);
      }
      double max_rev = 0.0;
      for (const auto& [supp, rev] : revenue) {
        max_rev = std::max(max_rev, rev);
      }
      for (const auto& [supp, rev] : revenue) {
        if (rev >= max_rev) {
          out.push_back(
              {{static_cast<uint64_t>(supp)}, {rev, max_rev}});
        }
      }
      break;
    }
    case 16: {
      const uint32_t brand = DictParam(inst.part, "p_brand", "Brand#45");
      std::map<std::tuple<uint32_t, uint32_t, int64_t>,
               std::unordered_set<int64_t>> supps;
      for (size_t i = 0; i < d.ps_partkey.size(); ++i) {
        const size_t p = static_cast<size_t>(d.ps_partkey[i]) - 1;
        if (d.p_brand[p] == brand) continue;
        if (d.p_size[p] < 1 || d.p_size[p] > 15) continue;
        if (d.s_is_complaint[d.ps_suppkey[i] - 1] == 1) continue;
        supps[{d.p_brand[p], d.p_type[p], d.p_size[p]}].insert(
            d.ps_suppkey[i]);
      }
      for (const auto& [key, set] : supps) {
        out.push_back({{std::get<0>(key), std::get<1>(key),
                        static_cast<uint64_t>(std::get<2>(key))},
                       {static_cast<double>(set.size())}});
      }
      // Order by supplier_cnt desc, then full row ascending
      // (schema: p_brand, p_type, p_size, supplier_cnt).
      std::sort(out.begin(), out.end(),
                [](const RefRow& a, const RefRow& b) {
                  if (a.values[0] != b.values[0]) {
                    return a.values[0] > b.values[0];
                  }
                  return a.keys < b.keys;
                });
      break;
    }
    case 17: {
      const uint32_t container =
          DictParam(inst.part, "p_container", "MED BOX");
      std::unordered_map<int64_t, std::pair<double, int64_t>> qty;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        auto& acc = qty[d.l_partkey[i]];
        acc.first += d.l_quantity[i];
        acc.second += 1;
      }
      double total = 0.0;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        const size_t p = static_cast<size_t>(d.l_partkey[i]) - 1;
        if (d.p_container[p] != container) continue;
        const auto& acc = qty[d.l_partkey[i]];
        const double avg = acc.first / static_cast<double>(acc.second);
        if (d.l_quantity[i] < 0.2 * avg) {
          total += d.l_extendedprice[i];
        }
      }
      out.push_back({{}, {total}});
      break;
    }
    case 18: {
      std::unordered_map<int64_t, double> sum_qty;  // orderkey
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        sum_qty[d.l_orderkey[i]] += d.l_quantity[i];
      }
      for (size_t i = 0; i < d.o_orderkey.size(); ++i) {
        auto it = sum_qty.find(d.o_orderkey[i]);
        if (it == sum_qty.end() || it->second <= 180.0) continue;
        // Schema: o_orderkey (key), o_totalprice, sum_qty (values).
        out.push_back({{static_cast<uint64_t>(d.o_orderkey[i])},
                       {d.o_totalprice[i], it->second}});
      }
      std::sort(out.begin(), out.end(),
                [](const RefRow& a, const RefRow& b) {
                  if (a.values[0] != b.values[0]) {
                    return a.values[0] > b.values[0];
                  }
                  return a.keys[0] < b.keys[0];
                });
      if (out.size() > 100) out.resize(100);
      break;
    }
    case 19: {
      const uint32_t b1 = DictParam(inst.part, "p_brand", "Brand#12");
      const uint32_t b2 = DictParam(inst.part, "p_brand", "Brand#23");
      const uint32_t b3 = DictParam(inst.part, "p_brand", "Brand#34");
      double revenue = 0.0;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipmode[i] != d.code_AIR &&
            d.l_shipmode[i] != d.code_REG_AIR) {
          continue;
        }
        if (d.l_shipinstruct[i] != d.code_DELIVER) continue;
        const size_t p = static_cast<size_t>(d.l_partkey[i]) - 1;
        const double q = d.l_quantity[i];
        const int64_t size = d.p_size[p];
        const bool match =
            (d.p_brand[p] == b1 && q >= 1.0 && q <= 11.0 && size >= 1 &&
             size <= 5) ||
            (d.p_brand[p] == b2 && q >= 10.0 && q <= 20.0 && size >= 1 &&
             size <= 10) ||
            (d.p_brand[p] == b3 && q >= 20.0 && q <= 30.0 && size >= 1 &&
             size <= 15);
        if (match) {
          revenue += Rev(d, i);
        }
      }
      out.push_back({{}, {revenue}});
      break;
    }
    case 20: {
      const uint32_t color =
          DictParam(inst.part, "p_name_color", "forest");
      const uint32_t nation = DictParam(inst.nation, "n_name", "CANADA");
      int64_t canada = -1;
      for (size_t i = 0; i < d.n_nationkey.size(); ++i) {
        if (d.n_name[i] == nation) canada = d.n_nationkey[i];
      }
      std::unordered_map<int64_t, double> shipped;  // (part,supp) packed
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (d.l_shipdate[i] < 730 || d.l_shipdate[i] >= 1095) continue;
        shipped[d.l_partkey[i] * (1 << 20) + d.l_suppkey[i]] +=
            d.l_quantity[i];
      }
      std::unordered_set<int64_t> excess;
      for (size_t i = 0; i < d.ps_partkey.size(); ++i) {
        if (d.p_name_color[d.ps_partkey[i] - 1] != color) continue;
        auto it =
            shipped.find(d.ps_partkey[i] * (1 << 20) + d.ps_suppkey[i]);
        if (it == shipped.end()) continue;
        if (d.ps_availqty[i] > 0.5 * it->second) {
          excess.insert(d.ps_suppkey[i]);
        }
      }
      int64_t count = 0;
      double bal = 0.0;
      for (size_t i = 0; i < d.s_suppkey.size(); ++i) {
        if (d.s_nationkey[i] != canada) continue;
        if (excess.count(d.s_suppkey[i]) == 0) continue;
        ++count;
        bal += d.s_acctbal[i];
      }
      out.push_back({{}, {static_cast<double>(count), bal}});
      break;
    }
    case 21: {
      // Per order: the set of suppliers, and of late suppliers.
      std::unordered_map<int64_t, std::unordered_set<int64_t>> all, late;
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        all[d.l_orderkey[i]].insert(d.l_suppkey[i]);
        if (d.l_receiptdate[i] > d.l_commitdate[i]) {
          late[d.l_orderkey[i]].insert(d.l_suppkey[i]);
        }
      }
      std::map<int64_t, int64_t> numwait;  // suppkey
      for (size_t i = 0; i < d.l_orderkey.size(); ++i) {
        if (!(d.l_receiptdate[i] > d.l_commitdate[i])) continue;
        const int64_t supp = d.l_suppkey[i];
        if (d.s_nationkey[supp - 1] != 20) continue;
        const size_t o = static_cast<size_t>(d.l_orderkey[i]) - 1;
        if (d.o_orderstatus[o] != d.code_F_status) continue;
        const auto& order_supps = all[d.l_orderkey[i]];
        bool other = false;
        for (const int64_t s : order_supps) {
          if (s != supp) {
            other = true;
            break;
          }
        }
        if (!other) continue;
        bool other_late = false;
        for (const int64_t s : late[d.l_orderkey[i]]) {
          if (s != supp) {
            other_late = true;
            break;
          }
        }
        if (other_late) continue;
        numwait[supp] += 1;
      }
      for (const auto& [supp, count] : numwait) {
        out.push_back({{static_cast<uint64_t>(supp)},
                       {static_cast<double>(count)}});
      }
      // Schema [l_suppkey, numwait]; order numwait desc, full row asc.
      std::sort(out.begin(), out.end(),
                [](const RefRow& a, const RefRow& b) {
                  if (a.values[0] != b.values[0]) {
                    return a.values[0] > b.values[0];
                  }
                  return a.keys[0] < b.keys[0];
                });
      if (out.size() > 100) out.resize(100);
      break;
    }
    case 22: {
      std::unordered_set<int64_t> has_orders;
      for (size_t i = 0; i < d.o_orderkey.size(); ++i) {
        has_orders.insert(d.o_custkey[i]);
      }
      // Candidates: positive balance, cc in [13,19], no orders.
      std::vector<size_t> candidates;
      double sum = 0.0;
      for (size_t i = 0; i < d.c_custkey.size(); ++i) {
        if (d.c_acctbal[i] <= 0.0) continue;
        if (d.c_phone_cc[i] < 13 || d.c_phone_cc[i] > 19) continue;
        if (has_orders.count(d.c_custkey[i]) != 0) continue;
        candidates.push_back(i);
        sum += d.c_acctbal[i];
      }
      const double avg =
          candidates.empty()
              ? 0.0
              : sum / static_cast<double>(candidates.size());
      std::map<int64_t, std::pair<int64_t, double>> g;  // cc -> (n, bal)
      for (const size_t i : candidates) {
        if (d.c_acctbal[i] <= avg) continue;
        auto& acc = g[d.c_phone_cc[i]];
        acc.first += 1;
        acc.second += d.c_acctbal[i];
      }
      for (const auto& [cc, acc] : g) {
        out.push_back({{static_cast<uint64_t>(cc)},
                       {static_cast<double>(acc.first), acc.second}});
      }
      break;
    }
    default:
      ADD_FAILURE() << "no reference for Q" << q;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Comparison.
// ---------------------------------------------------------------------------

bool Near(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= 1e-8 * scale;
}

void ExpectRowsMatch(int q, const QueryResult& result,
                     std::vector<RefRow> ref, bool ordered) {
  ASSERT_EQ(result.rows.size(), ref.size()) << "Q" << q << " row count";
  std::vector<RefRow> got;
  for (const QueryResult::Row& row : result.rows) {
    got.push_back({row.keys, row.values});
  }
  if (!ordered) {
    auto canon = [](const RefRow& a, const RefRow& b) {
      if (a.keys != b.keys) return a.keys < b.keys;
      return a.values < b.values;  // Exact for key-less multi-row (Q13).
    };
    std::sort(got.begin(), got.end(), canon);
    std::sort(ref.begin(), ref.end(), canon);
  }
  for (size_t r = 0; r < ref.size(); ++r) {
    EXPECT_EQ(got[r].keys, ref[r].keys) << "Q" << q << " row " << r;
    ASSERT_EQ(got[r].values.size(), ref[r].values.size())
        << "Q" << q << " row " << r;
    for (size_t v = 0; v < ref[r].values.size(); ++v) {
      EXPECT_TRUE(Near(got[r].values[v], ref[r].values[v]))
          << "Q" << q << " row " << r << " value " << v << ": got "
          << got[r].values[v] << " want " << ref[r].values[v];
    }
  }
}

// ---------------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------------

struct Instance {
  std::unique_ptr<engine::Database> db;
  TpchInstance inst;
  std::unique_ptr<Tpch22> queries;
};

Instance MakeInstance(const engine::DatabaseConfig& config) {
  Instance in;
  in.db = std::make_unique<engine::Database>(config);
  TpchConfig tpch;
  tpch.lineitem_rows = kRows;
  tpch.seed = kSeed;
  auto loaded = LoadTpch(in.db.get(), tpch);
  EXPECT_TRUE(loaded.ok());
  in.inst = loaded.value();
  in.db->Start();
  in.queries = std::make_unique<Tpch22>(in.db.get());
  return in;
}

TEST(Tpch22Test, AllQueriesMatchReferenceAcrossConfigs) {
  // The reference input: extract once (every config loads the identical
  // deterministic instance).
  Instance first = MakeInstance(Grid()[0]);
  const Data data = Extract(first.inst);

  std::vector<std::vector<uint64_t>> digests(Grid().size());
  for (size_t c = 0; c < Grid().size(); ++c) {
    Instance in = c == 0 ? std::move(first) : MakeInstance(Grid()[c]);
    for (int q = 1; q <= Tpch22::kNumQueries; ++q) {
      auto result =
          in.db->Run(in.queries->Compiled(q), in.queries->ParamsFor(q));
      ASSERT_TRUE(result.ok())
          << "Q" << q << ": " << result.status().ToString();
      const bool ordered = in.queries->Ordered(q);
      if (c == 0) {
        std::vector<RefRow> ref = Reference(q, data, in.inst);
        // A query whose reference comes out empty proves nothing — the
        // fixed parameters must select real data at this scale.
        EXPECT_FALSE(ref.empty()) << "Q" << q << " reference is empty";
        ExpectRowsMatch(q, result.value(), std::move(ref), ordered);
      }
      digests[c].push_back(
          Tpch22::RawDigest(result.value(), ordered));
    }
    in.db->Stop();
  }
  // Same data, same queries: every config must produce bit-identical
  // digests.
  for (size_t c = 1; c < digests.size(); ++c) {
    EXPECT_EQ(digests[c], digests[0]) << "config " << c;
  }
}

TEST(Tpch22Test, WirePathReproducesInProcessDigests) {
  Instance in = MakeInstance(Grid()[2]);
  for (int q = 1; q <= Tpch22::kNumQueries; ++q) {
    // Encode -> decode -> recompile, exactly like anker_serve.
    std::string bytes;
    ASSERT_TRUE(query::EncodeWireQuery(in.queries->Wire(q), &bytes).ok())
        << "Q" << q;
    std::string_view view(bytes);
    query::WireQuery decoded;
    ASSERT_TRUE(query::DecodeWireQuery(&view, &decoded).ok()) << "Q" << q;
    ASSERT_TRUE(view.empty()) << "Q" << q;
    auto recompiled = query::CompileWireQuery(decoded, in.db->catalog());
    ASSERT_TRUE(recompiled.ok())
        << "Q" << q << ": " << recompiled.status().ToString();

    auto local =
        in.db->Run(in.queries->Compiled(q), in.queries->ParamsFor(q));
    auto wire = in.db->Run(recompiled.value(), in.queries->ParamsFor(q));
    ASSERT_TRUE(local.ok()) << "Q" << q;
    ASSERT_TRUE(wire.ok()) << "Q" << q;
    const bool ordered = in.queries->Ordered(q);
    EXPECT_EQ(Tpch22::RawDigest(local.value(), ordered),
              Tpch22::RawDigest(wire.value(), ordered))
        << "Q" << q;
  }
  in.db->Stop();
}

TEST(Tpch22Test, VersionedDataStaysEquivalentAcrossConfigs) {
  // Apply the same committed writes in every config; the per-query
  // digests must still agree config-to-config (snapshot reads see the
  // same post-commit image everywhere).
  std::vector<std::vector<uint64_t>> digests(Grid().size());
  for (size_t c = 0; c < Grid().size(); ++c) {
    Instance in = MakeInstance(Grid()[c]);
    storage::Column* price = in.inst.lineitem->GetColumn("l_extendedprice");
    storage::Column* qty = in.inst.lineitem->GetColumn("l_quantity");
    for (int round = 0; round < 50; ++round) {
      auto txn = in.db->BeginOltp();
      const size_t row = static_cast<size_t>(round) * 97 % kRows;
      txn->Write(price, row, storage::EncodeDouble(1000.0 + round));
      txn->Write(qty, row, storage::EncodeDouble(5.0 + round % 40));
      ASSERT_TRUE(in.db->Commit(txn.get()).ok());
    }
    for (int q = 1; q <= Tpch22::kNumQueries; ++q) {
      auto result =
          in.db->Run(in.queries->Compiled(q), in.queries->ParamsFor(q));
      ASSERT_TRUE(result.ok())
          << "Q" << q << ": " << result.status().ToString();
      digests[c].push_back(
          Tpch22::RawDigest(result.value(), in.queries->Ordered(q)));
    }
    in.db->Stop();
  }
  for (size_t c = 1; c < digests.size(); ++c) {
    EXPECT_EQ(digests[c], digests[0]) << "config " << c;
  }
}

}  // namespace
}  // namespace anker::tpch
