// Differential residency suite: the full TPC-H 22 battery runs with the
// cold tier forced on (cold_budget_bytes tiny, segments spilled between
// queries) and every per-query digest must be byte-identical to the
// RAM-resident run of the same deterministic instance. The residency
// counters prove the cold path was actually exercised — a run where no
// segment faulted in would vacuously pass the digest check.
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tpch/datagen.h"
#include "tpch/queries.h"
#include "wal/io_util.h"

namespace anker::tpch {
namespace {

constexpr size_t kRows = 8000;
constexpr uint64_t kSeed = 7;
// 8000-row lineitem over 1024-row segments: 8 segments per column, so
// every scan crosses several hot/cold boundaries once spilled.
constexpr size_t kSegmentRows = 1024;

struct Instance {
  std::unique_ptr<engine::Database> db;
  TpchInstance inst;
  std::unique_ptr<Tpch22> queries;
};

Instance MakeInstance(const engine::DatabaseConfig& config) {
  Instance in;
  in.db = std::make_unique<engine::Database>(config);
  TpchConfig tpch;
  tpch.lineitem_rows = kRows;
  tpch.seed = kSeed;
  auto loaded = LoadTpch(in.db.get(), tpch);
  EXPECT_TRUE(loaded.ok());
  in.inst = loaded.value();
  in.db->Start();
  in.queries = std::make_unique<Tpch22>(in.db.get());
  return in;
}

std::vector<uint64_t> RunAll(Instance& in, bool spill_between) {
  std::vector<uint64_t> digests;
  for (int q = 1; q <= Tpch22::kNumQueries; ++q) {
    if (spill_between) {
      // Force every query to start against an evicted column set: the
      // scan (or its snapshot pin) must fault each segment back in.
      EXPECT_TRUE(in.db->SpillColdData().ok()) << "before Q" << q;
    }
    auto result =
        in.db->Run(in.queries->Compiled(q), in.queries->ParamsFor(q));
    EXPECT_TRUE(result.ok()) << "Q" << q << ": "
                             << result.status().ToString();
    if (!result.ok()) {
      digests.push_back(0);
      continue;
    }
    digests.push_back(
        Tpch22::RawDigest(result.value(), in.queries->Ordered(q)));
  }
  return digests;
}

class ColdResidencyTest
    : public ::testing::TestWithParam<txn::ProcessingMode> {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_cold_residency_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override { wal::RemoveDirRecursive(dir_); }

  engine::DatabaseConfig ColdConfig() {
    engine::DatabaseConfig config =
        engine::DatabaseConfig::ForMode(GetParam());
    // 1-byte budget: everything spillable is over budget, always.
    config.cold_budget_bytes = 1;
    config.cold_segment_rows = kSegmentRows;
    config.data_dir = dir_;
    return config;
  }

  std::string dir_;
};

TEST_P(ColdResidencyTest, Tpch22DigestsSurviveTheColdTier) {
  // RAM-resident reference: same mode, no cold tier.
  Instance hot =
      MakeInstance(engine::DatabaseConfig::ForMode(GetParam()));
  const std::vector<uint64_t> hot_digests = RunAll(hot, false);
  hot.db->Stop();

  Instance cold = MakeInstance(ColdConfig());
  ASSERT_TRUE(cold.db->SpillColdData().ok());
  const engine::ColdTierStats after_spill = cold.db->cold_stats();
  EXPECT_GT(after_spill.cold_bytes, 0u) << "nothing spilled";
  EXPECT_GT(after_spill.counters.extents_published, 0u);

  const std::vector<uint64_t> cold_digests = RunAll(cold, true);
  EXPECT_EQ(cold_digests, hot_digests)
      << "cold-tier scans diverged from the RAM-resident run";

  // The counters must prove cold reads happened: segments faulted in
  // from extents, and — in the homogeneous modes, where each query's
  // residency pin dies with its OLAP context — got evicted again after
  // the query finished. (Heterogeneous epochs may cache a materialized
  // snapshot whose lease legitimately blocks re-eviction.)
  const engine::ColdTierStats stats = cold.db->cold_stats();
  EXPECT_GT(stats.counters.segment_fault_ins, 0u)
      << "no scan ever crossed the cold tier";
  if (GetParam() == txn::ProcessingMode::kHomogeneousSnapshotIsolation) {
    EXPECT_GT(stats.counters.segments_evicted,
              after_spill.counters.segments_evicted)
        << "the budget enforcer never re-evicted after a query";
  }
  cold.db->Stop();
}

TEST_P(ColdResidencyTest, OltpWritesFaultColdSegmentsBackIn) {
  Instance cold = MakeInstance(ColdConfig());
  ASSERT_TRUE(cold.db->SpillColdData().ok());
  const uint64_t faults_before = cold.db->cold_stats().counters.segment_fault_ins;

  // Point writes against evicted segments: BeginWrite must restore the
  // segment before touching the slot, and reads must see the new value.
  storage::Column* price = cold.inst.lineitem->GetColumn("l_extendedprice");
  for (int i = 0; i < 8; ++i) {
    auto txn = cold.db->BeginOltp();
    const size_t row = static_cast<size_t>(i) * (kRows / 8);
    txn->Write(price, row, storage::EncodeDouble(123456.0 + i));
    ASSERT_TRUE(cold.db->Commit(txn.get()).ok());
  }
  EXPECT_GT(cold.db->cold_stats().counters.segment_fault_ins, faults_before);
  for (int i = 0; i < 8; ++i) {
    const size_t row = static_cast<size_t>(i) * (kRows / 8);
    EXPECT_EQ(storage::DecodeDouble(price->ReadLatestRaw(row)),
              123456.0 + i);
  }
  cold.db->Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Modes, ColdResidencyTest,
    ::testing::Values(txn::ProcessingMode::kHeterogeneousSerializable,
                      txn::ProcessingMode::kHomogeneousSnapshotIsolation),
    [](const ::testing::TestParamInfo<txn::ProcessingMode>& info) {
      return info.param == txn::ProcessingMode::kHeterogeneousSerializable
                 ? "heterogeneous"
                 : "homogeneous";
    });

}  // namespace
}  // namespace anker::tpch
