// Digest equivalence between the query-layer workload definitions and the
// retired hand-written kernels (tpch/reference_kernels.h), across every
// processing mode x buffer backend combination and under versioned data.
// This is the contract of the query-API redesign: same snapshot, same
// digest, for all 7 paper workloads.
#include <gtest/gtest.h>

#include "tpch/reference_kernels.h"
#include "tpch/workload_driver.h"

namespace anker::tpch {
namespace {

struct EngineSetup {
  txn::ProcessingMode mode;
  snapshot::BufferBackend backend;
};

std::string SetupName(const testing::TestParamInfo<EngineSetup>& info) {
  std::string name;
  switch (info.param.mode) {
    case txn::ProcessingMode::kHomogeneousSerializable:
      name = "HomogeneousSerializable";
      break;
    case txn::ProcessingMode::kHomogeneousSnapshotIsolation:
      name = "HomogeneousSnapshotIsolation";
      break;
    case txn::ProcessingMode::kHeterogeneousSerializable:
      name = "HeterogeneousSerializable";
      break;
  }
  return name + "_" + snapshot::BufferBackendName(info.param.backend);
}

class QueryEquivalenceTest : public testing::TestWithParam<EngineSetup> {
 protected:
  void SetUp() override {
    engine::DatabaseConfig config;
    config.mode = GetParam().mode;
    config.backend = GetParam().backend;
    config.snapshot_interval_commits = 100;
    ASSERT_TRUE(config.Validate().ok());
    db_ = std::make_unique<engine::Database>(config);
    db_->Start();
    TpchConfig tpch;
    tpch.lineitem_rows = 6000;
    auto loaded = LoadTpch(db_.get(), tpch);
    ASSERT_TRUE(loaded.ok());
    instance_ = loaded.TakeValue();
    queries_ = std::make_unique<TpchQueries>(db_.get(), instance_);
    reference_ = std::make_unique<ReferenceKernels>(instance_);
    oltp_ = std::make_unique<OltpTransactions>(db_.get(), instance_);
  }

  OlapParams FixedParams() const {
    OlapParams params;
    params.q1_delta_days = 90;
    params.q4_start_day = 800;
    params.q6_start_day = 400;
    params.q6_discount = 0.05;
    params.q6_quantity = 24.0;
    params.q17_brand_code = 3;
    params.q17_container_code = 7;
    return params;
  }

  /// Runs both implementations inside the SAME OLAP transaction (same
  /// snapshot / read timestamp) and asserts digest equality.
  void ExpectEquivalent(OlapKind kind) {
    const OlapParams params = FixedParams();
    auto ctx = db_->BeginOlap(queries_->ColumnsFor(kind));
    ASSERT_TRUE(ctx.ok()) << OlapKindName(kind);
    const OlapResult ref = reference_->Run(kind, *ctx.value(), params);
    const OlapResult via_query = queries_->Run(kind, *ctx.value(), params);
    ASSERT_TRUE(db_->FinishOlap(ctx.TakeValue()).ok());

    const double tolerance = std::abs(ref.digest) * 1e-9 + 1e-9;
    EXPECT_NEAR(via_query.digest, ref.digest, tolerance)
        << OlapKindName(kind);
    EXPECT_EQ(via_query.rows_considered, ref.rows_considered)
        << OlapKindName(kind);
  }

  std::unique_ptr<engine::Database> db_;
  TpchInstance instance_;
  std::unique_ptr<TpchQueries> queries_;
  std::unique_ptr<ReferenceKernels> reference_;
  std::unique_ptr<OltpTransactions> oltp_;
};

TEST_P(QueryEquivalenceTest, AllWorkloadsMatchOnCleanData) {
  for (OlapKind kind : kAllOlapKinds) ExpectEquivalent(kind);
}

TEST_P(QueryEquivalenceTest, AllWorkloadsMatchUnderVersionedData) {
  // Build up version chains so the staged (hinted/safe) block paths are
  // exercised, then compare again within one snapshot.
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) (void)oltp_->RunRandom(&rng);
  for (OlapKind kind : kAllOlapKinds) ExpectEquivalent(kind);
}

TEST_P(QueryEquivalenceTest, EngineRunMatchesInContextExecution) {
  // Database::Run (inferred column set, engine-managed transaction) must
  // agree with in-context execution on quiescent data.
  const OlapParams params = FixedParams();
  for (OlapKind kind : kAllOlapKinds) {
    auto via_engine = queries_->RunOnEngine(kind, params);
    ASSERT_TRUE(via_engine.ok()) << OlapKindName(kind);
    auto ctx = db_->BeginOlap(queries_->ColumnsFor(kind));
    ASSERT_TRUE(ctx.ok());
    const OlapResult in_ctx = queries_->Run(kind, *ctx.value(), params);
    ASSERT_TRUE(db_->FinishOlap(ctx.TakeValue()).ok());
    const double tolerance = std::abs(in_ctx.digest) * 1e-9 + 1e-9;
    EXPECT_NEAR(via_engine.value().digest, in_ctx.digest, tolerance)
        << OlapKindName(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndBackends, QueryEquivalenceTest,
    testing::Values(
        EngineSetup{txn::ProcessingMode::kHomogeneousSerializable,
                    snapshot::BufferBackend::kPlain},
        EngineSetup{txn::ProcessingMode::kHomogeneousSnapshotIsolation,
                    snapshot::BufferBackend::kPlain},
        EngineSetup{txn::ProcessingMode::kHeterogeneousSerializable,
                    snapshot::BufferBackend::kPhysical},
        EngineSetup{txn::ProcessingMode::kHeterogeneousSerializable,
                    snapshot::BufferBackend::kRewired},
        EngineSetup{txn::ProcessingMode::kHeterogeneousSerializable,
                    snapshot::BufferBackend::kVmSnapshot}),
    SetupName);

}  // namespace
}  // namespace anker::tpch
