// Wire-query serialization: expression trees, aggregate specs, group-by
// lists and parameter bindings must round-trip exactly, decode-reject
// malformed input recoverably (never crash, never CHECK), and recompile
// through CompileWireQuery into plans equivalent to locally built ones.
#include "query/serialize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "storage/value.h"

namespace anker::query {
namespace {

using storage::ValueType;

class WireQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    db_ = std::make_unique<engine::Database>(config);
    auto table = db_->CreateTable("events",
                                  {{"id", ValueType::kInt64},
                                   {"price", ValueType::kDouble},
                                   {"day", ValueType::kDate},
                                   {"tag", ValueType::kDict32}},
                                  256);
    ASSERT_TRUE(table.ok());
    table_ = table.value();
    storage::Dictionary* dict = table_->GetDictionary("tag");
    for (size_t row = 0; row < 256; ++row) {
      table_->GetColumn("id")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row)));
      table_->GetColumn("price")->LoadValue(
          row, storage::EncodeDouble(1.5 * static_cast<double>(row)));
      table_->GetColumn("day")->LoadValue(
          row, storage::EncodeDate(static_cast<int64_t>(row % 30)));
      table_->GetColumn("tag")->LoadValue(
          row, storage::EncodeDict(
                   dict->GetOrAdd(row % 2 == 0 ? "even" : "odd")));
    }
  }

  std::unique_ptr<engine::Database> db_;
  storage::Table* table_ = nullptr;
};

Expr RoundTrip(const Expr& expr) {
  std::string wire;
  EXPECT_TRUE(EncodeExpr(expr, &wire).ok());
  std::string_view in(wire);
  Expr decoded;
  EXPECT_TRUE(DecodeExpr(&in, &decoded).ok());
  EXPECT_TRUE(in.empty()) << "decoder left bytes behind";
  return decoded;
}

void ExpectSameTree(const ExprNode* a, const ExprNode* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->type, b->type);
  EXPECT_EQ(a->name, b->name);
  EXPECT_EQ(a->raw, b->raw);
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->is_string, b->is_string);
  ExpectSameTree(a->lhs.get(), b->lhs.get());
  ExpectSameTree(a->rhs.get(), b->rhs.get());
}

TEST_F(WireQueryTest, ExprRoundTripsEveryLeafAndOperator) {
  const Expr expr =
      (Col("price") * (F64(1.0) - Param("disc", ExprType::kDouble)) +
       I64(7) - DateDays(100)) != Str("even") ||
      (Between(Col("day"), DateDays(1), Param("hi", ExprType::kDate)) &&
       Col("tag") == DictCode(3));
  ExpectSameTree(expr.node(), RoundTrip(expr).node());
}

TEST_F(WireQueryTest, ExprRejectsOversizedTrees) {
  Expr deep = I64(1);
  for (int i = 0; i < 100; ++i) deep = deep + I64(1);
  std::string wire;
  EXPECT_FALSE(EncodeExpr(deep, &wire).ok());  // Depth cap on encode too.
}

TEST_F(WireQueryTest, ExprDecodeFuzzNeverCrashes) {
  // Valid encodings with random corruptions plus raw garbage: the decoder
  // must always return (Status or success), never crash or hang.
  Rng rng(23);
  const Expr seedexpr = Col("price") * F64(2.0) + Param("p", ExprType::kInt64);
  std::string valid;
  ASSERT_TRUE(EncodeExpr(seedexpr, &valid).ok());
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    std::string_view in(bytes);
    Expr decoded;
    (void)DecodeExpr(&in, &decoded);  // Either outcome is fine.
  }
  for (int iter = 0; iter < 5000; ++iter) {
    std::string garbage(rng.NextBounded(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    std::string_view in(garbage);
    Expr decoded;
    (void)DecodeExpr(&in, &decoded);
  }
}

TEST_F(WireQueryTest, WireQueryRoundTripsAndRecompiles) {
  WireQuery wire;
  wire.table = "events";
  wire.filter = Col("day") <= Param("cutoff", ExprType::kDate) &&
                Col("price") > F64(10.0);
  wire.aggs = {Sum(Col("price")).As("revenue"), Count().As("n"),
               Avg(Col("price")).As("mean")};
  wire.group_by = {"tag"};

  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.table, "events");
  ASSERT_EQ(decoded.aggs.size(), 3u);
  EXPECT_EQ(decoded.aggs[0].name(), "revenue");
  EXPECT_EQ(decoded.aggs[1].kind(), AggKind::kCount);
  EXPECT_EQ(decoded.group_by, std::vector<std::string>{"tag"});

  // The decoded form must execute identically to the locally built query.
  auto local = Query::On(table_)
                   .Filter(wire.filter)
                   .Aggregate(wire.aggs)
                   .GroupBy(wire.group_by)
                   .Build();
  ASSERT_TRUE(local.ok());
  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok());

  const Params params = Params().SetDate("cutoff", 15);
  auto local_result = db_->Run(local.value(), params);
  auto remote_result = db_->Run(remote.value(), params);
  ASSERT_TRUE(local_result.ok());
  ASSERT_TRUE(remote_result.ok());
  ASSERT_EQ(local_result.value().rows.size(),
            remote_result.value().rows.size());
  for (size_t r = 0; r < local_result.value().rows.size(); ++r) {
    EXPECT_EQ(local_result.value().rows[r].keys,
              remote_result.value().rows[r].keys);
    for (size_t v = 0; v < local_result.value().rows[r].values.size(); ++v) {
      // Byte-identical, not approximately equal.
      EXPECT_EQ(storage::EncodeDouble(local_result.value().rows[r].values[v]),
                storage::EncodeDouble(
                    remote_result.value().rows[r].values[v]));
    }
  }
}

TEST_F(WireQueryTest, CompileRejectsUnknownTableAndBadQueries) {
  WireQuery wire;
  wire.table = "nope";
  wire.aggs = {Count().As("n")};
  EXPECT_TRUE(CompileWireQuery(wire, db_->catalog()).status().IsNotFound());

  wire.table = "events";
  wire.filter = Col("missing_column") > I64(0);
  EXPECT_FALSE(CompileWireQuery(wire, db_->catalog()).ok());
}

TEST_F(WireQueryTest, ParamsRoundTripAllTypes) {
  Params params;
  params.SetInt("i", -42)
      .SetDouble("d", 2.75)
      .SetDate("t", 9000)
      .SetDictCode("c", 3)
      .SetString("s", "Brand#23");
  std::string bytes;
  EncodeParams(params, &bytes);
  std::string_view in(bytes);
  Params decoded;
  ASSERT_TRUE(DecodeParams(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.values().size(), 5u);
  for (const auto& [name, value] : params.values()) {
    const Params::Value* got = decoded.Find(name);
    ASSERT_NE(got, nullptr) << name;
    EXPECT_EQ(got->type, value.type);
    EXPECT_EQ(got->raw, value.raw);
    EXPECT_EQ(got->text, value.text);
    EXPECT_EQ(got->is_string, value.is_string);
  }
}

}  // namespace
}  // namespace anker::query
