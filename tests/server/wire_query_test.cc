// Wire-query serialization: expression trees, aggregate specs, group-by
// lists and parameter bindings must round-trip exactly, decode-reject
// malformed input recoverably (never crash, never CHECK), and recompile
// through CompileWireQuery into plans equivalent to locally built ones.
#include "query/serialize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "engine/database.h"
#include "storage/value.h"

namespace anker::query {
namespace {

using storage::ValueType;

class WireQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    db_ = std::make_unique<engine::Database>(config);
    auto table = db_->CreateTable("events",
                                  {{"id", ValueType::kInt64},
                                   {"price", ValueType::kDouble},
                                   {"day", ValueType::kDate},
                                   {"tag", ValueType::kDict32}},
                                  256);
    ASSERT_TRUE(table.ok());
    table_ = table.value();
    storage::Dictionary* dict = table_->GetDictionary("tag");
    for (size_t row = 0; row < 256; ++row) {
      table_->GetColumn("id")->LoadValue(
          row, storage::EncodeInt64(static_cast<int64_t>(row)));
      table_->GetColumn("price")->LoadValue(
          row, storage::EncodeDouble(1.5 * static_cast<double>(row)));
      table_->GetColumn("day")->LoadValue(
          row, storage::EncodeDate(static_cast<int64_t>(row % 30)));
      table_->GetColumn("tag")->LoadValue(
          row, storage::EncodeDict(
                   dict->GetOrAdd(row % 2 == 0 ? "even" : "odd")));
    }
  }

  std::unique_ptr<engine::Database> db_;
  storage::Table* table_ = nullptr;
};

Expr RoundTrip(const Expr& expr) {
  std::string wire;
  EXPECT_TRUE(EncodeExpr(expr, &wire).ok());
  std::string_view in(wire);
  Expr decoded;
  EXPECT_TRUE(DecodeExpr(&in, &decoded).ok());
  EXPECT_TRUE(in.empty()) << "decoder left bytes behind";
  return decoded;
}

void ExpectSameTree(const ExprNode* a, const ExprNode* b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->kind, b->kind);
  EXPECT_EQ(a->type, b->type);
  EXPECT_EQ(a->name, b->name);
  EXPECT_EQ(a->raw, b->raw);
  EXPECT_EQ(a->text, b->text);
  EXPECT_EQ(a->is_string, b->is_string);
  ExpectSameTree(a->lhs.get(), b->lhs.get());
  ExpectSameTree(a->rhs.get(), b->rhs.get());
}

TEST_F(WireQueryTest, ExprRoundTripsEveryLeafAndOperator) {
  const Expr expr =
      (Col("price") * (F64(1.0) - Param("disc", ExprType::kDouble)) +
       I64(7) - DateDays(100)) != Str("even") ||
      (Between(Col("day"), DateDays(1), Param("hi", ExprType::kDate)) &&
       Col("tag") == DictCode(3));
  ExpectSameTree(expr.node(), RoundTrip(expr).node());
}

TEST_F(WireQueryTest, ExprRejectsOversizedTrees) {
  Expr deep = I64(1);
  for (int i = 0; i < 100; ++i) deep = deep + I64(1);
  std::string wire;
  EXPECT_FALSE(EncodeExpr(deep, &wire).ok());  // Depth cap on encode too.
}

TEST_F(WireQueryTest, ExprDecodeFuzzNeverCrashes) {
  // Valid encodings with random corruptions plus raw garbage: the decoder
  // must always return (Status or success), never crash or hang.
  Rng rng(23);
  const Expr seedexpr = Col("price") * F64(2.0) + Param("p", ExprType::kInt64);
  std::string valid;
  ASSERT_TRUE(EncodeExpr(seedexpr, &valid).ok());
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    std::string_view in(bytes);
    Expr decoded;
    (void)DecodeExpr(&in, &decoded);  // Either outcome is fine.
  }
  for (int iter = 0; iter < 5000; ++iter) {
    std::string garbage(rng.NextBounded(64), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    std::string_view in(garbage);
    Expr decoded;
    (void)DecodeExpr(&in, &decoded);
  }
}

TEST_F(WireQueryTest, WireQueryRoundTripsAndRecompiles) {
  WireQuery wire;
  wire.table = "events";
  wire.filter = Col("day") <= Param("cutoff", ExprType::kDate) &&
                Col("price") > F64(10.0);
  wire.aggs = {Sum(Col("price")).As("revenue"), Count().As("n"),
               Avg(Col("price")).As("mean")};
  wire.group_by = {"tag"};

  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.table, "events");
  ASSERT_EQ(decoded.aggs.size(), 3u);
  EXPECT_EQ(decoded.aggs[0].name(), "revenue");
  EXPECT_EQ(decoded.aggs[1].kind(), AggKind::kCount);
  EXPECT_EQ(decoded.group_by, std::vector<std::string>{"tag"});

  // The decoded form must execute identically to the locally built query.
  auto local = Query::On(table_)
                   .Filter(wire.filter)
                   .Aggregate(wire.aggs)
                   .GroupBy(wire.group_by)
                   .Build();
  ASSERT_TRUE(local.ok());
  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok());

  const Params params = Params().SetDate("cutoff", 15);
  auto local_result = db_->Run(local.value(), params);
  auto remote_result = db_->Run(remote.value(), params);
  ASSERT_TRUE(local_result.ok());
  ASSERT_TRUE(remote_result.ok());
  ASSERT_EQ(local_result.value().rows.size(),
            remote_result.value().rows.size());
  for (size_t r = 0; r < local_result.value().rows.size(); ++r) {
    EXPECT_EQ(local_result.value().rows[r].keys,
              remote_result.value().rows[r].keys);
    for (size_t v = 0; v < local_result.value().rows[r].values.size(); ++v) {
      // Byte-identical, not approximately equal.
      EXPECT_EQ(storage::EncodeDouble(local_result.value().rows[r].values[v]),
                storage::EncodeDouble(
                    remote_result.value().rows[r].values[v]));
    }
  }
}

TEST_F(WireQueryTest, DagWireQueryRoundTripsAndRecompiles) {
  // The v2 surface: a filtered table build side, group-by, order + limit.
  auto dims = db_->CreateTable(
      "dims", {{"key", ValueType::kInt64}, {"factor", ValueType::kDouble}},
      16);
  ASSERT_TRUE(dims.ok());
  for (size_t row = 0; row < 16; ++row) {
    dims.value()->GetColumn("key")->LoadValue(
        row, storage::EncodeInt64(static_cast<int64_t>(row)));
    dims.value()->GetColumn("factor")->LoadValue(
        row, storage::EncodeDouble(2.0 * static_cast<double>(row)));
  }

  WireQuery wire;
  wire.table = "events";
  WireJoin join;
  join.input.table = "dims";
  join.input.filter = Col("key") < I64(12);
  join.type = JoinType::kInner;
  join.probe_keys = {"id"};
  join.build_keys = {"key"};
  join.residual = Col("factor") < Col("price") + F64(100.0);
  wire.joins.push_back(join);
  wire.aggs = {Sum(Col("factor")).As("total"), Count().As("n")};
  wire.group_by = {"tag"};
  wire.order_by = {{"total", true}};
  wire.limit = 1;

  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.joins.size(), 1u);
  EXPECT_EQ(decoded.joins[0].input.table, "dims");
  EXPECT_EQ(decoded.joins[0].type, JoinType::kInner);
  EXPECT_EQ(decoded.joins[0].probe_keys, std::vector<std::string>{"id"});
  ASSERT_EQ(decoded.order_by.size(), 1u);
  EXPECT_TRUE(decoded.order_by[0].desc);
  EXPECT_EQ(decoded.limit, 1);

  auto local =
      Query::On(table_)
          .Join({dims.value(), join.input.filter}, JoinType::kInner, {"id"},
                {"key"}, join.residual)
          .Aggregate(wire.aggs)
          .GroupBy(wire.group_by)
          .OrderBy(wire.order_by)
          .Limit(1)
          .Build();
  ASSERT_TRUE(local.ok());
  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok());
  EXPECT_EQ(remote.value().plan().strategy, ExecStrategy::kDag);

  auto local_result = db_->Run(local.value(), Params());
  auto remote_result = db_->Run(remote.value(), Params());
  ASSERT_TRUE(local_result.ok());
  ASSERT_TRUE(remote_result.ok());
  ASSERT_EQ(local_result.value().rows.size(), 1u);
  ASSERT_EQ(remote_result.value().rows.size(), 1u);
  EXPECT_EQ(local_result.value().rows[0].keys,
            remote_result.value().rows[0].keys);
  for (size_t v = 0; v < local_result.value().rows[0].values.size(); ++v) {
    EXPECT_EQ(
        storage::EncodeDouble(local_result.value().rows[0].values[v]),
        storage::EncodeDouble(remote_result.value().rows[0].values[v]));
  }
}

TEST_F(WireQueryTest, SubQueryBuildSideRoundTripsAndRecompiles) {
  // Q17's shape over the wire: join against a nested aggregate sub-query,
  // with a residual comparing probe values to the sub's aggregate output.
  WireQuery wire;
  wire.table = "events";
  WireJoin join;
  join.input.sub = std::make_shared<WireQuery>();
  join.input.sub->table = "events";
  join.input.sub->aggs = {Avg(Col("price")).As("mean_price")};
  join.input.sub->group_by = {"tag"};
  join.input.sub->select = {{"tag", "sub_tag"}, {"mean_price", ""}};
  join.type = JoinType::kInner;
  join.probe_keys = {"tag"};
  join.build_keys = {"sub_tag"};
  join.residual = Col("price") > Col("mean_price");
  wire.joins.push_back(join);
  wire.aggs = {Count().As("n"), Sum(Col("price")).As("rev")};

  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.joins.size(), 1u);
  ASSERT_NE(decoded.joins[0].input.sub, nullptr);
  EXPECT_EQ(decoded.joins[0].input.sub->table, "events");
  ASSERT_EQ(decoded.joins[0].input.sub->select.size(), 2u);
  EXPECT_EQ(decoded.joins[0].input.sub->select[0].alias, "sub_tag");

  auto sub_local = Query::On(table_)
                       .Aggregate({Avg(Col("price")).As("mean_price")})
                       .GroupBy({"tag"})
                       .Select({{"tag", "sub_tag"}, {"mean_price", ""}})
                       .Build();
  ASSERT_TRUE(sub_local.ok());
  auto local = Query::On(table_)
                   .Join(sub_local.value(), JoinType::kInner, {"tag"},
                         {"sub_tag"}, join.residual)
                   .Aggregate(wire.aggs)
                   .Build();
  ASSERT_TRUE(local.ok());
  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok());

  auto local_result = db_->Run(local.value(), Params());
  auto remote_result = db_->Run(remote.value(), Params());
  ASSERT_TRUE(local_result.ok());
  ASSERT_TRUE(remote_result.ok());
  ASSERT_EQ(local_result.value().rows.size(), 1u);
  ASSERT_EQ(remote_result.value().rows.size(), 1u);
  for (size_t v = 0; v < local_result.value().rows[0].values.size(); ++v) {
    EXPECT_EQ(
        storage::EncodeDouble(local_result.value().rows[0].values[v]),
        storage::EncodeDouble(remote_result.value().rows[0].values[v]));
  }
}

TEST_F(WireQueryTest, WindowAndPostFilterRoundTrip) {
  WireQuery wire;
  wire.table = "events";
  wire.select = {{"id", ""}, {"price", ""}, {"r", ""}, {"tag_total", ""}};
  wire.has_window = true;
  wire.win_funcs = {WinRank("r"), WinSum(Col("price"), "tag_total")};
  wire.win_partition = {"tag"};
  wire.win_order = {{"price", true}};
  wire.post_filter = Col("r") <= I64(3);
  wire.order_by = {{"tag_total", true}, {"r", false}};

  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(decoded.has_window);
  ASSERT_EQ(decoded.win_funcs.size(), 2u);
  EXPECT_EQ(decoded.win_funcs[0].fn, WinFn::kRank);
  EXPECT_EQ(decoded.win_funcs[1].name, "tag_total");
  EXPECT_EQ(decoded.win_partition, std::vector<std::string>{"tag"});
  EXPECT_TRUE(decoded.post_filter.valid());

  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto result = db_->Run(remote.value(), Params());
  ASSERT_TRUE(result.ok());
  // Top-3 prices per tag, two tags.
  EXPECT_EQ(result.value().rows.size(), 6u);
}

TEST_F(WireQueryTest, NestingDepthIsCapped) {
  // Six levels of sub-query input exceed kMaxWireQueryDepth on encode;
  // a hostile hand-rolled deep encoding must be rejected on decode too.
  auto leaf = std::make_shared<WireQuery>();
  leaf->table = "events";
  leaf->aggs = {Count().As("n")};
  WireQuery wire;
  wire.aggs = {Count().As("n")};
  wire.sub = leaf;
  for (int i = 0; i < 5; ++i) {
    auto outer = std::make_shared<WireQuery>(wire);
    wire = WireQuery();
    wire.aggs = {Count().As("n")};
    wire.sub = outer;
  }
  std::string bytes;
  EXPECT_FALSE(EncodeWireQuery(wire, &bytes).ok());

  // Hand-rolled: table "" + has_sub=1 repeated past the cap.
  std::string hostile;
  for (int i = 0; i < 8; ++i) {
    hostile.push_back('\0');
    hostile.push_back('\0');
    hostile.push_back('\0');
    hostile.push_back('\0');  // Empty table name (u32 len = 0).
    hostile.push_back('\x01');  // has_sub = 1.
  }
  std::string_view in(hostile);
  WireQuery decoded;
  EXPECT_EQ(DecodeWireQuery(&in, &decoded).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(WireQueryTest, DagDecodeFuzzNeverCrashes) {
  // Corrupt a valid v2 encoding (joins + window + order/limit) and feed it
  // to the decoder: every byte pattern must return recoverably.
  WireQuery wire;
  wire.table = "events";
  WireJoin join;
  join.input.sub = std::make_shared<WireQuery>();
  join.input.sub->table = "events";
  join.input.sub->aggs = {Avg(Col("price")).As("m")};
  join.input.sub->group_by = {"tag"};
  join.input.sub->select = {{"tag", "t2"}, {"m", ""}};
  join.probe_keys = {"tag"};
  join.build_keys = {"t2"};
  wire.joins.push_back(join);
  wire.aggs = {Count().As("n")};
  wire.has_window = false;
  wire.order_by = {{"n", true}};
  wire.limit = 5;
  std::string valid;
  ASSERT_TRUE(EncodeWireQuery(wire, &valid).ok());

  Rng rng(29);
  for (int iter = 0; iter < 5000; ++iter) {
    std::string bytes = valid;
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      bytes[rng.NextBounded(bytes.size())] =
          static_cast<char>(rng.NextBounded(256));
    }
    std::string_view in(bytes);
    WireQuery decoded;
    (void)DecodeWireQuery(&in, &decoded);
  }
  for (int iter = 0; iter < 5000; ++iter) {
    std::string garbage(rng.NextBounded(96), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    std::string_view in(garbage);
    WireQuery decoded;
    (void)DecodeWireQuery(&in, &decoded);
  }
}

TEST_F(WireQueryTest, UnboundParameterIsRejectedOnTheWirePath) {
  // A recompiled wire query enforces the same unused-binding check as a
  // local Run: a typo'd name errors instead of silently changing nothing.
  WireQuery wire;
  wire.table = "events";
  wire.filter = Col("day") <= Param("cutoff", ExprType::kDate);
  wire.aggs = {Count().As("n")};
  std::string bytes;
  ASSERT_TRUE(EncodeWireQuery(wire, &bytes).ok());
  std::string_view in(bytes);
  WireQuery decoded;
  ASSERT_TRUE(DecodeWireQuery(&in, &decoded).ok());
  auto remote = CompileWireQuery(decoded, db_->catalog());
  ASSERT_TRUE(remote.ok());

  auto bad = db_->Run(remote.value(),
                      Params().SetDate("cutof", 15).SetDate("cutoff", 15));
  ASSERT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("cutof"), std::string::npos);

  auto good = db_->Run(remote.value(), Params().SetDate("cutoff", 15));
  ASSERT_TRUE(good.ok());
}

TEST_F(WireQueryTest, CompileRejectsUnknownTableAndBadQueries) {
  WireQuery wire;
  wire.table = "nope";
  wire.aggs = {Count().As("n")};
  EXPECT_TRUE(CompileWireQuery(wire, db_->catalog()).status().IsNotFound());

  wire.table = "events";
  wire.filter = Col("missing_column") > I64(0);
  EXPECT_FALSE(CompileWireQuery(wire, db_->catalog()).ok());
}

TEST_F(WireQueryTest, ParamsRoundTripAllTypes) {
  Params params;
  params.SetInt("i", -42)
      .SetDouble("d", 2.75)
      .SetDate("t", 9000)
      .SetDictCode("c", 3)
      .SetString("s", "Brand#23");
  std::string bytes;
  EncodeParams(params, &bytes);
  std::string_view in(bytes);
  Params decoded;
  ASSERT_TRUE(DecodeParams(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(decoded.values().size(), 5u);
  for (const auto& [name, value] : params.values()) {
    const Params::Value* got = decoded.Find(name);
    ASSERT_NE(got, nullptr) << name;
    EXPECT_EQ(got->type, value.type);
    EXPECT_EQ(got->raw, value.raw);
    EXPECT_EQ(got->text, value.text);
    EXPECT_EQ(got->is_string, value.is_string);
  }
}

}  // namespace
}  // namespace anker::query
