// Session state-machine negatives, driven over real loopback sockets:
// op before HELLO, double HELLO, double BEGIN, commit without a
// transaction, oversized frames, corrupt CRCs, unknown opcodes, BUSY
// admission, and auth rejection. The server must answer (or close) per
// the rules in docs/SERVER.md and survive every abuse.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "engine/database.h"
#include "server/client.h"
#include "server/server.h"

namespace anker::server {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig config = {}) {
    engine::DatabaseConfig db_config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    db_config.worker_threads = 4;
    db_ = std::make_unique<engine::Database>(db_config);
    auto table = db_->CreateTable("kv",
                                  {{"k", storage::ValueType::kInt64},
                                   {"v", storage::ValueType::kInt64}},
                                  16);
    ASSERT_TRUE(table.ok());
    config.port = 0;
    server_ = std::make_unique<Server>(db_.get(), std::move(config));
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  /// Raw client socket (blocking) for protocol-abuse scenarios the
  /// Client library refuses to produce.
  int RawConnect() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    timeval tv{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    return fd;
  }

  void SendRaw(int fd, std::string_view bytes) {
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  void SendFramed(int fd, std::string_view payload) {
    std::string frame;
    EncodeFrame(payload, &frame);
    SendRaw(fd, frame);
  }

  /// Reads one frame; empty optional-style flag via `closed`.
  std::string ReceiveFramed(int fd, bool* closed) {
    *closed = false;
    std::string buffer;
    char chunk[4096];
    while (true) {
      std::string_view payload;
      size_t consumed = 0;
      if (DecodeFrame(buffer, &payload, &consumed) == FrameStatus::kOk) {
        return std::string(payload);
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        *closed = true;
        return "";
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True when the peer closes the connection (EOF) within the timeout.
  bool WaitForClose(int fd) {
    char byte;
    while (true) {
      const ssize_t n = ::recv(fd, &byte, 1, 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  std::string ValidHello() {
    std::string payload;
    EncodeHello(HelloMsg{}, &payload);
    return payload;
  }

  WireError ErrCodeOf(const std::string& payload) {
    EXPECT_FALSE(payload.empty());
    EXPECT_TRUE(static_cast<Op>(payload[0]) == Op::kErr ||
                static_cast<Op>(payload[0]) == Op::kBusy);
    ErrMsg msg;
    EXPECT_TRUE(DecodeErr(std::string_view(payload).substr(1), &msg).ok());
    return msg.code;
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(SessionTest, OpBeforeHelloIsRejectedAndClosed) {
  StartServer();
  const int fd = RawConnect();
  SendFramed(fd, std::string(1, static_cast<char>(Op::kBegin)));
  bool closed = false;
  const std::string response = ReceiveFramed(fd, &closed);
  ASSERT_FALSE(closed);
  EXPECT_EQ(ErrCodeOf(response), WireError::kProtocolError);
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
}

TEST_F(SessionTest, SecondHelloIsRejectedAndClosed) {
  StartServer();
  const int fd = RawConnect();
  SendFramed(fd, ValidHello());
  bool closed = false;
  std::string response = ReceiveFramed(fd, &closed);
  ASSERT_FALSE(closed);
  ASSERT_EQ(static_cast<Op>(response[0]), Op::kHelloOk);
  SendFramed(fd, ValidHello());
  response = ReceiveFramed(fd, &closed);
  ASSERT_FALSE(closed);
  EXPECT_EQ(ErrCodeOf(response), WireError::kProtocolError);
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
}

TEST_F(SessionTest, WrongVersionAndBadTokenFailHandshake) {
  ServerConfig config;
  config.auth_token = "sesame";
  StartServer(config);

  {  // Wrong token.
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_FALSE(client.ok());
  }
  {  // Right token works.
    ClientOptions options;
    options.auth_token = "sesame";
    auto client = Client::Connect("127.0.0.1", server_->port(), options);
    EXPECT_TRUE(client.ok());
    EXPECT_TRUE(client.value()->Ping().ok());
  }
  {  // Wrong protocol version.
    const int fd = RawConnect();
    std::string payload;
    HelloMsg hello;
    hello.version = 999;
    hello.auth_token = "sesame";
    EncodeHello(hello, &payload);
    SendFramed(fd, payload);
    bool closed = false;
    const std::string response = ReceiveFramed(fd, &closed);
    ASSERT_FALSE(closed);
    EXPECT_EQ(ErrCodeOf(response), WireError::kBadHandshake);
    EXPECT_TRUE(WaitForClose(fd));
    ::close(fd);
  }
}

TEST_F(SessionTest, DoubleBeginAndTxnlessOpsAreRecoverableErrors) {
  StartServer();
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok());
  Client& client = *connected.value();

  // Ops that need a transaction, without one.
  EXPECT_EQ(client.Commit().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Abort().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Write("kv", "v", 0, 1).code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(client.Begin().ok());
  // Double BEGIN: rejected, session (and the open transaction) survive.
  EXPECT_EQ(client.Begin().code(), StatusCode::kInvalidArgument);
  // ExecTxn while a transaction is open: rejected.
  PointWrite write;
  write.table = "kv";
  write.column = "v";
  write.key = 0;
  write.raw = 7;
  EXPECT_EQ(client.ExecTxn({write}).code(), StatusCode::kInvalidArgument);
  // The session still works: finish the transaction normally.
  EXPECT_TRUE(client.Write("kv", "v", 0, 7).ok());
  EXPECT_TRUE(client.Commit().ok());
  auto value = client.Read("kv", "v", 0);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 7u);
}

TEST_F(SessionTest, UnknownTableColumnRowSurfaceTypedErrors) {
  StartServer();
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok());
  Client& client = *connected.value();
  EXPECT_TRUE(client.Read("nope", "v", 0).status().IsNotFound());
  EXPECT_TRUE(client.Read("kv", "nope", 0).status().IsNotFound());
  EXPECT_EQ(client.Read("kv", "v", 999).status().code(),
            StatusCode::kOutOfRange);
  // by_key without an index.
  EXPECT_EQ(client.Read("kv", "v", 0, /*by_key=*/true).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, OversizedFrameClosesTheSession) {
  StartServer();
  const int fd = RawConnect();
  // A header claiming a payload over the limit: the server must drop the
  // connection without trying to read (or allocate) the body.
  std::string header;
  wal::PutU32(&header, kMaxFramePayload + 1);
  wal::PutU32(&header, 0xdeadbeef);
  SendRaw(fd, header);
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
}

TEST_F(SessionTest, CorruptCrcClosesTheSession) {
  StartServer();
  const int fd = RawConnect();
  std::string frame;
  EncodeFrame(ValidHello(), &frame);
  frame[5] = static_cast<char>(frame[5] ^ 0x10);  // Break the CRC word.
  SendRaw(fd, frame);
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
}

TEST_F(SessionTest, UnknownOpcodeIsNotSupportedButSurvivable) {
  StartServer();
  const int fd = RawConnect();
  SendFramed(fd, ValidHello());
  bool closed = false;
  std::string response = ReceiveFramed(fd, &closed);
  ASSERT_EQ(static_cast<Op>(response[0]), Op::kHelloOk);
  SendFramed(fd, std::string(1, '\x7e'));  // Unassigned request opcode.
  response = ReceiveFramed(fd, &closed);
  ASSERT_FALSE(closed);
  EXPECT_EQ(ErrCodeOf(response), WireError::kNotSupported);
  // Session survives: ping still answers.
  SendFramed(fd, std::string(1, static_cast<char>(Op::kPing)));
  response = ReceiveFramed(fd, &closed);
  ASSERT_FALSE(closed);
  EXPECT_EQ(static_cast<Op>(response[0]), Op::kPong);
  ::close(fd);
}

TEST_F(SessionTest, AdmissionControlAnswersBusy) {
  ServerConfig config;
  config.max_inflight = 0;  // Reject every dispatched op deterministically.
  StartServer(config);
  auto connected = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(connected.ok());
  Client& client = *connected.value();
  // Inline ops still work under full admission pressure...
  ASSERT_TRUE(client.Begin().ok());
  ASSERT_TRUE(client.Write("kv", "v", 1, 42).ok());
  // ...but dispatched ones get explicit BUSY backpressure.
  EXPECT_TRUE(client.Commit().IsResourceBusy());
  query::WireQuery query;
  query.table = "kv";
  query.aggs = {query::Count().As("n")};
  EXPECT_TRUE(client.Query(query, query::Params()).status().IsResourceBusy());
  EXPECT_EQ(server_->stats().busy_rejections, 2u);
}

TEST_F(SessionTest, IdleSessionsAreReaped) {
  ServerConfig config;
  config.idle_timeout_millis = 200;
  StartServer(config);
  const int fd = RawConnect();
  SendFramed(fd, ValidHello());
  bool closed = false;
  const std::string response = ReceiveFramed(fd, &closed);
  ASSERT_EQ(static_cast<Op>(response[0]), Op::kHelloOk);
  EXPECT_TRUE(WaitForClose(fd));  // No traffic: the server hangs up.
  ::close(fd);
}

TEST_F(SessionTest, DroppedConnectionAbortsItsTransaction) {
  StartServer();
  {
    auto connected = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(connected.ok());
    ASSERT_TRUE(connected.value()->Begin().ok());
    ASSERT_TRUE(connected.value()->Write("kv", "v", 2, 99).ok());
    // Client destructor closes the socket with the transaction open.
  }
  auto verify = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(verify.ok());
  auto value = verify.value()->Read("kv", "v", 2);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 0u) << "uncommitted write leaked";
}

}  // namespace
}  // namespace anker::server
