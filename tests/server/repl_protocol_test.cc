// Protocol v3 (replication) codec hardening: every decoder round-trips
// its encoder, and every hostile body — truncations at each length,
// lying counts, absurd or non-monotonic LSNs, path traversal, oversize
// payloads — is rejected with a recoverable InvalidArgument. A decoder
// that aborts or over-reads here would let one malicious replica (or a
// bit-flipped stream) take down a primary.
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"

namespace anker::server {
namespace {

/// Every truncation of a valid body must fail cleanly (the frame layer
/// guarantees length integrity, so a short body is always hostile).
template <typename DecodeFn>
void AllTruncationsRejected(std::string_view body, DecodeFn decode) {
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode(body.substr(0, len)).ok())
        << "truncation to " << len << " of " << body.size() << " accepted";
  }
}

TEST(ReplProtocolTest, ReplicateHelloRoundTrip) {
  ReplicateHelloMsg msg;
  msg.replica_id = "replica-7";
  msg.start_lsn = 12345;
  msg.sync_ack = true;
  std::string payload;
  EncodeReplicateHello(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kReplicateHello);

  ReplicateHelloMsg out;
  ASSERT_TRUE(
      DecodeReplicateHello(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.replica_id, "replica-7");
  EXPECT_EQ(out.start_lsn, 12345u);
  EXPECT_TRUE(out.sync_ack);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           ReplicateHelloMsg m;
                           return DecodeReplicateHello(in, &m);
                         });
}

TEST(ReplProtocolTest, ReplicateHelloRejectsHostileFields) {
  const auto reject = [](ReplicateHelloMsg msg) {
    std::string payload;
    EncodeReplicateHello(msg, &payload);
    ReplicateHelloMsg out;
    const Status s =
        DecodeReplicateHello(std::string_view(payload).substr(1), &out);
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  };
  ReplicateHelloMsg empty_id;
  empty_id.replica_id = "";
  empty_id.start_lsn = 1;
  reject(empty_id);
  ReplicateHelloMsg huge_id;
  huge_id.replica_id = std::string(4096, 'x');
  huge_id.start_lsn = 1;
  reject(huge_id);
  ReplicateHelloMsg zero_lsn;
  zero_lsn.replica_id = "r";
  zero_lsn.start_lsn = 0;  // LSNs start at 1; 0 is always a lie.
  reject(zero_lsn);
}

TEST(ReplProtocolTest, ReplicaStatusRejectsAppliedAheadOfDurable) {
  ReplicaStatusMsg msg;
  msg.durable_lsn = 10;
  msg.applied_lsn = 11;  // Would drag the retention floor forward.
  std::string payload;
  EncodeReplicaStatus(msg, &payload);
  ReplicaStatusMsg out;
  EXPECT_FALSE(
      DecodeReplicaStatus(std::string_view(payload).substr(1), &out).ok());

  msg.applied_lsn = 10;
  payload.clear();
  EncodeReplicaStatus(msg, &payload);
  ASSERT_TRUE(
      DecodeReplicaStatus(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.durable_lsn, 10u);
  EXPECT_EQ(out.applied_lsn, 10u);
}

TEST(ReplProtocolTest, LogStreamRoundTripIncludingHeartbeat) {
  std::vector<StreamRecord> records;
  records.push_back({5, "alpha"});
  records.push_back({6, std::string(1000, 'b')});
  records.push_back({9, ""});  // Gaps are legal (retention, batching).
  std::string payload;
  EncodeLogStream(42, records, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kLogStream);

  uint64_t durable = 0;
  std::vector<StreamRecord> out;
  ASSERT_TRUE(
      DecodeLogStream(std::string_view(payload).substr(1), &durable, &out)
          .ok());
  EXPECT_EQ(durable, 42u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].lsn, 5u);
  EXPECT_EQ(out[1].payload.size(), 1000u);

  // Heartbeat: zero records is valid and decodes to an empty batch.
  payload.clear();
  EncodeLogStream(7, {}, &payload);
  ASSERT_TRUE(
      DecodeLogStream(std::string_view(payload).substr(1), &durable, &out)
          .ok());
  EXPECT_EQ(durable, 7u);
  EXPECT_TRUE(out.empty());
}

TEST(ReplProtocolTest, LogStreamRejectsHostileBodies) {
  uint64_t durable = 0;
  std::vector<StreamRecord> out;
  const auto decode = [&](std::string_view in) {
    return DecodeLogStream(in, &durable, &out);
  };

  // Non-monotonic LSNs: replay or reordering attack.
  std::string payload;
  EncodeLogStream(100, {{5, "a"}, {5, "b"}}, &payload);
  EXPECT_FALSE(decode(std::string_view(payload).substr(1)).ok());
  payload.clear();
  EncodeLogStream(100, {{6, "a"}, {5, "b"}}, &payload);
  EXPECT_FALSE(decode(std::string_view(payload).substr(1)).ok());

  // A record claiming to be beyond the primary's own durable watermark.
  payload.clear();
  EncodeLogStream(4, {{5, "a"}}, &payload);
  EXPECT_FALSE(decode(std::string_view(payload).substr(1)).ok());

  // LSN zero.
  payload.clear();
  EncodeLogStream(4, {{0, "a"}}, &payload);
  EXPECT_FALSE(decode(std::string_view(payload).substr(1)).ok());

  // Lying record count: count says 2, bytes carry 1.
  payload.clear();
  EncodeLogStream(10, {{1, "x"}, {2, "y"}}, &payload);
  std::string truncated = payload.substr(1, payload.size() - 1 - 10);
  EXPECT_FALSE(decode(truncated).ok());

  // Lying payload length inside a record: length prefix larger than the
  // remaining bytes must not over-read.
  AllTruncationsRejected(std::string_view(payload).substr(1), decode);
}

TEST(ReplProtocolTest, LogStreamFuzzNeverCrashes) {
  std::mt19937_64 rng(0xA11CE5EEDULL);
  std::string payload;
  EncodeLogStream(1000, {{1, "seed"}, {2, std::string(64, 'z')}}, &payload);
  // Mutate the valid body at random positions; decode must never abort
  // or over-read — any outcome other than a clean Status is a bug.
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = payload.substr(1);
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] ^= static_cast<char>(1u << (rng() % 8));
    }
    if (rng() % 4 == 0) mutated.resize(rng() % (mutated.size() + 1));
    uint64_t durable = 0;
    std::vector<StreamRecord> out;
    DecodeLogStream(mutated, &durable, &out);  // Status either way: fine.
  }
}

TEST(ReplProtocolTest, CkptChunkRejectsPathTraversal) {
  CkptChunkMsg msg;
  msg.offset = 0;
  msg.last = true;
  msg.data = "payload";
  CkptChunkMsg out;
  for (const char* hostile :
       {"../../etc/passwd", "/etc/passwd", "ckpt/../../../x", "a//b",
        "ckpt/./x", "", "ckpt/"}) {
    msg.file = hostile;
    std::string payload;
    EncodeCkptChunk(msg, &payload);
    const Status s =
        DecodeCkptChunk(std::string_view(payload).substr(1), &out);
    EXPECT_FALSE(s.ok()) << "accepted hostile path: " << hostile;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  }
  msg.file = "ckpt-000042/wal_lsn";
  std::string payload;
  EncodeCkptChunk(msg, &payload);
  ASSERT_TRUE(DecodeCkptChunk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.file, "ckpt-000042/wal_lsn");
  EXPECT_EQ(out.data, "payload");
  EXPECT_TRUE(out.last);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [&](std::string_view in) {
                           CkptChunkMsg m;
                           return DecodeCkptChunk(in, &m);
                         });
}

TEST(ReplProtocolTest, WaitLsnClampsAbsurdTimeouts) {
  WaitLsnMsg msg;
  msg.lsn = 99;
  msg.timeout_millis = 0xFFFFFFFF;  // A hostile "wait forever".
  std::string payload;
  EncodeWaitLsn(msg, &payload);
  WaitLsnMsg out;
  ASSERT_TRUE(DecodeWaitLsn(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.lsn, 99u);
  EXPECT_LE(out.timeout_millis, 60'000u);  // Bounded worker occupancy.
}

TEST(ReplProtocolTest, StatusAndCommitOkRoundTrip) {
  ReplicaStatusOkMsg msg;
  msg.role = NodeRole::kPromoted;
  msg.stream_connected = true;
  msg.applied_lsn = 7;
  msg.durable_lsn = 7;
  msg.staleness_millis = 1234;
  msg.primary_addr = "10.0.0.1:4807";
  std::string payload;
  EncodeReplicaStatusOk(msg, &payload);
  ReplicaStatusOkMsg out;
  ASSERT_TRUE(
      DecodeReplicaStatusOk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.role, NodeRole::kPromoted);
  EXPECT_EQ(out.primary_addr, "10.0.0.1:4807");

  // A role byte beyond the enum is hostile.
  std::string bent = payload.substr(1);
  bent[0] = 0x7f;
  EXPECT_FALSE(DecodeReplicaStatusOk(bent, &out).ok());

  std::string commit_ok;
  EncodeCommitOk(0xDEADBEEF, &commit_ok);
  uint64_t lsn = 0;
  ASSERT_TRUE(
      DecodeCommitOk(std::string_view(commit_ok).substr(1), &lsn).ok());
  EXPECT_EQ(lsn, 0xDEADBEEFu);
  std::string digest_ok;
  EncodeDigestOk(0x1234, &digest_ok);
  uint64_t digest = 0;
  ASSERT_TRUE(
      DecodeDigestOk(std::string_view(digest_ok).substr(1), &digest).ok());
  EXPECT_EQ(digest, 0x1234u);
}

TEST(ReplProtocolTest, NewRequestOpsAreRecognized) {
  for (const Op op : {Op::kReplicateHello, Op::kFetchCheckpoint,
                      Op::kReplicaStatus, Op::kWaitLsn, Op::kPromote,
                      Op::kCheckpointNow, Op::kDigest}) {
    EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(op)));
  }
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kLogStream)));
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kCommitOk)));
}

TEST(ReplProtocolTest, ReadOnlyReplicaErrorMapsToRecoverable) {
  const Status s =
      StatusFromWire(WireError::kReadOnlyReplica, "writes go to the primary");
  EXPECT_TRUE(s.IsResourceBusy()) << s.ToString();
}

}  // namespace
}  // namespace anker::server
