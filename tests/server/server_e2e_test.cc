// End-to-end loopback: a client-library session drives the full protocol
// against a live server (schema, bulk load, primary index, BEGIN ->
// keyed writes -> COMMIT, declarative queries) and every aggregate that
// comes back over the wire must be *byte-identical* to an in-process
// Database::Run against the same engine — the server adds transport,
// never arithmetic.
#include <gtest/gtest.h>

#include <thread>

#include "engine/database.h"
#include "query/serialize.h"
#include "server/client.h"
#include "server/server.h"
#include "storage/value.h"

namespace anker::server {
namespace {

using storage::ValueType;

class ServerE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    config.snapshot_interval_commits = 16;  // Exercise epoch turnover.
    config.worker_threads = 4;
    db_ = std::make_unique<engine::Database>(config);
    db_->Start();
    server_ = std::make_unique<Server>(db_.get(), ServerConfig{});
    ASSERT_TRUE(server_->Start().ok());
    auto connected = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(connected.ok());
    client_ = connected.TakeValue();
  }

  void TearDown() override {
    client_.reset();
    server_->Shutdown();
    db_->Stop();
  }

  std::unique_ptr<engine::Database> db_;
  std::unique_ptr<Server> server_;
  std::unique_ptr<Client> client_;
};

TEST_F(ServerE2eTest, FullSessionMatchesInProcessRun) {
  const uint64_t rows = 512;

  // ---- schema + load + index, all over the wire ------------------------
  ASSERT_TRUE(client_
                  ->CreateTable("accounts", rows,
                                {{"id", ValueType::kInt64},
                                 {"balance", ValueType::kDouble},
                                 {"region", ValueType::kDict32}})
                  .ok());
  std::vector<uint64_t> ids, balances, regions;
  for (uint64_t row = 0; row < rows; ++row) {
    // Keys deliberately != row ids so by_key routing is observable.
    ids.push_back(storage::EncodeInt64(static_cast<int64_t>(1000 + row)));
    balances.push_back(
        storage::EncodeDouble(100.0 + static_cast<double>(row % 7)));
    regions.push_back(storage::EncodeDict(static_cast<uint32_t>(row % 3)));
  }
  ASSERT_TRUE(
      client_->DefineDict("accounts", "region", {"emea", "apac", "amer"})
          .ok());
  ASSERT_TRUE(client_->Load("accounts", "id", 0, ids).ok());
  ASSERT_TRUE(client_->Load("accounts", "balance", 0, balances).ok());
  ASSERT_TRUE(client_->Load("accounts", "region", 0, regions).ok());
  ASSERT_TRUE(client_->BuildIndex("accounts", "id").ok());

  auto tables = client_->ListTables();
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables.value().size(), 1u);
  EXPECT_EQ(tables.value()[0].name, "accounts");
  EXPECT_EQ(tables.value()[0].num_rows, rows);
  EXPECT_TRUE(tables.value()[0].has_primary_index);

  // ---- OLTP over the wire: BEGIN -> keyed writes -> COMMIT -------------
  ASSERT_TRUE(client_->Begin().ok());
  ASSERT_TRUE(client_
                  ->Write("accounts", "balance", 1001,
                          storage::EncodeDouble(40.25), /*by_key=*/true)
                  .ok());
  ASSERT_TRUE(client_
                  ->Write("accounts", "balance", 1002,
                          storage::EncodeDouble(161.75), /*by_key=*/true)
                  .ok());
  // Transactional read sees own writes pre-commit.
  auto own = client_->Read("accounts", "balance", 1001, /*by_key=*/true);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own.value(), storage::EncodeDouble(40.25));
  ASSERT_TRUE(client_->Commit().ok());

  // A batch auto-commit transaction on top.
  std::vector<PointWrite> batch;
  for (uint64_t key : {1010ULL, 1011ULL, 1012ULL}) {
    PointWrite write;
    write.table = "accounts";
    write.column = "balance";
    write.by_key = true;
    write.key = key;
    write.raw = storage::EncodeDouble(500.0);
    batch.push_back(std::move(write));
  }
  ASSERT_TRUE(client_->ExecTxn(batch).ok());

  // ---- queries: wire result vs in-process Run, byte for byte -----------
  struct Case {
    const char* label;
    query::WireQuery wire;
    query::Params params;
  };
  std::vector<Case> cases;
  {
    Case ungrouped;
    ungrouped.label = "ungrouped filtered sum";
    ungrouped.wire.table = "accounts";
    ungrouped.wire.filter =
        query::Col("balance") >= query::Param("lo", query::ExprType::kDouble);
    ungrouped.wire.aggs = {query::Sum(query::Col("balance")).As("total"),
                           query::Count().As("n"),
                           query::Min(query::Col("balance")).As("lo"),
                           query::Max(query::Col("balance")).As("hi")};
    ungrouped.params.SetDouble("lo", 100.0);
    cases.push_back(ungrouped);

    Case grouped;
    grouped.label = "grouped avg by region";
    grouped.wire.table = "accounts";
    grouped.wire.aggs = {query::Avg(query::Col("balance")).As("mean"),
                         query::Count().As("n")};
    grouped.wire.group_by = {"region"};
    cases.push_back(grouped);

    Case arithmetic;
    arithmetic.label = "expression aggregate";
    arithmetic.wire.table = "accounts";
    arithmetic.wire.filter = query::Col("id") <= query::I64(1300);
    arithmetic.wire.aggs = {
        query::Sum(query::Col("balance") *
                   (query::F64(1.0) - query::F64(0.1)))
            .As("discounted")};
    cases.push_back(arithmetic);
  }

  for (const Case& c : cases) {
    SCOPED_TRACE(c.label);
    auto remote = client_->Query(c.wire, c.params);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();

    auto compiled = query::CompileWireQuery(c.wire, db_->catalog());
    ASSERT_TRUE(compiled.ok());
    auto local = db_->Run(compiled.value(), c.params);
    ASSERT_TRUE(local.ok());

    const query::QueryResult& r = remote.value();
    const query::QueryResult& l = local.value();
    EXPECT_EQ(r.columns, l.columns);
    EXPECT_EQ(r.key_names, l.key_names);
    ASSERT_EQ(r.rows.size(), l.rows.size());
    for (size_t row = 0; row < r.rows.size(); ++row) {
      EXPECT_EQ(r.rows[row].keys, l.rows[row].keys);
      ASSERT_EQ(r.rows[row].values.size(), l.rows[row].values.size());
      for (size_t v = 0; v < r.rows[row].values.size(); ++v) {
        EXPECT_EQ(storage::EncodeDouble(r.rows[row].values[v]),
                  storage::EncodeDouble(l.rows[row].values[v]))
            << "row " << row << " value " << v << " differs in bits";
      }
    }
  }
}

TEST_F(ServerE2eTest, ResultStreamingSpansMultipleBatches) {
  // A group domain wider than kQueryBatchRows forces the server to
  // stream several kQueryBatch frames; the client must reassemble all of
  // them (QueryDone cross-checks the row count).
  const uint64_t rows = 2048;
  ASSERT_TRUE(client_
                  ->CreateTable("wide", rows,
                                {{"g", ValueType::kDict32},
                                 {"x", ValueType::kInt64}})
                  .ok());
  std::vector<uint64_t> groups, xs;
  const uint32_t domain = 500;  // > kQueryBatchRows (256), < 1024 cap.
  std::vector<std::string> entries;
  for (uint32_t g = 0; g < domain; ++g) {
    entries.push_back("g" + std::to_string(g));
  }
  ASSERT_TRUE(client_->DefineDict("wide", "g", entries).ok());
  for (uint64_t row = 0; row < rows; ++row) {
    groups.push_back(
        storage::EncodeDict(static_cast<uint32_t>(row % domain)));
    xs.push_back(storage::EncodeInt64(static_cast<int64_t>(row)));
  }
  ASSERT_TRUE(client_->Load("wide", "g", 0, groups).ok());
  ASSERT_TRUE(client_->Load("wide", "x", 0, xs).ok());

  query::WireQuery wire;
  wire.table = "wide";
  wire.aggs = {query::Sum(query::Col("x")).As("sum"),
               query::Count().As("n")};
  wire.group_by = {"g"};
  auto remote = client_->Query(wire, query::Params());
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote.value().rows.size(), domain);

  auto compiled = query::CompileWireQuery(wire, db_->catalog());
  ASSERT_TRUE(compiled.ok());
  auto local = db_->Run(compiled.value(), query::Params());
  ASSERT_TRUE(local.ok());
  ASSERT_EQ(remote.value().rows.size(), local.value().rows.size());
  for (size_t row = 0; row < local.value().rows.size(); ++row) {
    EXPECT_EQ(remote.value().rows[row].keys, local.value().rows[row].keys);
    EXPECT_EQ(remote.value().rows[row].values,
              local.value().rows[row].values);
  }
}

TEST_F(ServerE2eTest, ConcurrentSessionsShareSnapshotEpochs) {
  const uint64_t rows = 1024;
  ASSERT_TRUE(client_
                  ->CreateTable("t", rows,
                                {{"k", ValueType::kInt64},
                                 {"v", ValueType::kDouble}})
                  .ok());
  std::vector<uint64_t> ks, vs;
  for (uint64_t row = 0; row < rows; ++row) {
    ks.push_back(storage::EncodeInt64(static_cast<int64_t>(row)));
    vs.push_back(storage::EncodeDouble(1.0));
  }
  ASSERT_TRUE(client_->Load("t", "k", 0, ks).ok());
  ASSERT_TRUE(client_->Load("t", "v", 0, vs).ok());

  // Writers and readers hammer the server from several sessions at once;
  // every query must see a transaction-consistent sum (writers move value
  // between two rows, preserving the total).
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      auto connected = Client::Connect("127.0.0.1", server_->port());
      if (!connected.ok()) {
        ++failures;
        return;
      }
      uint64_t a = static_cast<uint64_t>(w) * 2, b = a + 1;
      double moved = 0;
      while (!stop.load()) {
        std::vector<PointWrite> writes(2);
        moved += 0.25;
        writes[0] = {"t", "v", false, a, storage::EncodeDouble(1.0 - moved)};
        writes[1] = {"t", "v", false, b, storage::EncodeDouble(1.0 + moved)};
        const Status status = connected.value()->ExecTxn(writes);
        if (!status.ok() && !status.IsAborted() &&
            !status.IsResourceBusy()) {
          ++failures;
          return;
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      auto connected = Client::Connect("127.0.0.1", server_->port());
      if (!connected.ok()) {
        ++failures;
        return;
      }
      query::WireQuery wire;
      wire.table = "t";
      wire.aggs = {query::Sum(query::Col("v")).As("total")};
      for (int i = 0; i < 20; ++i) {
        auto result = connected.value()->Query(wire, query::Params());
        if (!result.ok()) {
          if (result.status().IsResourceBusy()) continue;
          ++failures;
          return;
        }
        const double total = result.value().Value("total");
        if (total != static_cast<double>(rows)) {
          ++failures;
          return;
        }
      }
    });
  }
  for (size_t i = 2; i < threads.size(); ++i) threads[i].join();
  stop.store(true);
  threads[0].join();
  threads[1].join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(server_->stats().queries_served, 0u);
}

}  // namespace
}  // namespace anker::server
