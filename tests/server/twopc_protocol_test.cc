// Protocol v5 (cross-shard 2PC) codec hardening, in the same spirit as
// repl_protocol_test.cc: every decoder round-trips its encoder, every
// truncation of a valid body is rejected cleanly, and the hostile-field
// validations (empty or oversize write sets, zero commit stamps,
// unknown outcome codes) fire with recoverable InvalidArgument. These
// four opcodes carry the atomic-commit protocol between router and
// shards — a decoder that aborts here lets one bad coordinator take
// down a shard mid-2PC.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/protocol.h"

namespace anker::server {
namespace {

/// Every truncation of a valid body must fail cleanly (the frame layer
/// guarantees length integrity, so a short body is always hostile).
template <typename DecodeFn>
void AllTruncationsRejected(std::string_view body, DecodeFn decode) {
  for (size_t len = 0; len < body.size(); ++len) {
    EXPECT_FALSE(decode(body.substr(0, len)).ok())
        << "truncation to " << len << " of " << body.size() << " accepted";
  }
}

std::vector<PointWrite> SampleWrites() {
  std::vector<PointWrite> writes;
  for (uint64_t i = 0; i < 3; ++i) {
    PointWrite write;
    write.table = "accounts";
    write.column = "balance";
    write.key = 100 + i;
    write.raw = 0xfeedface00ULL + i;
    write.by_key = (i % 2) == 0;
    writes.push_back(std::move(write));
  }
  return writes;
}

TEST(TwopcProtocolTest, PrepareTxnRoundTrip) {
  PrepareTxnMsg msg;
  msg.gtid = 0xabcdef0123456789ULL;
  msg.primary_shard = 3;
  msg.writes = SampleWrites();
  std::string payload;
  EncodePrepareTxn(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kPrepareTxn);

  PrepareTxnMsg out;
  ASSERT_TRUE(
      DecodePrepareTxn(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.gtid, msg.gtid);
  EXPECT_EQ(out.primary_shard, 3u);
  ASSERT_EQ(out.writes.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.writes[i].table, msg.writes[i].table);
    EXPECT_EQ(out.writes[i].column, msg.writes[i].column);
    EXPECT_EQ(out.writes[i].key, msg.writes[i].key);
    EXPECT_EQ(out.writes[i].raw, msg.writes[i].raw);
    EXPECT_EQ(out.writes[i].by_key, msg.writes[i].by_key);
  }

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           PrepareTxnMsg m;
                           return DecodePrepareTxn(in, &m);
                         });
}

TEST(TwopcProtocolTest, PrepareTxnRejectsHostileWriteCounts) {
  // An empty prepare is meaningless (the engine refuses it too) and a
  // lying count larger than the batch cap must die at the decoder.
  PrepareTxnMsg empty;
  empty.gtid = 1;
  std::string payload;
  EncodePrepareTxn(empty, &payload);
  PrepareTxnMsg out;
  const Status refused =
      DecodePrepareTxn(std::string_view(payload).substr(1), &out);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST(TwopcProtocolTest, PreparedOkRoundTrip) {
  PreparedOkMsg msg;
  msg.prepare_ts = 777;
  msg.lsn = 424242;
  std::string payload;
  EncodePreparedOk(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kPreparedOk);

  PreparedOkMsg out;
  ASSERT_TRUE(
      DecodePreparedOk(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.prepare_ts, 777u);
  EXPECT_EQ(out.lsn, 424242u);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           PreparedOkMsg m;
                           return DecodePreparedOk(in, &m);
                         });
}

TEST(TwopcProtocolTest, CommitPreparedRoundTripAndRejectsZeroStamp) {
  CommitPreparedMsg msg;
  msg.gtid = 99;
  msg.commit_ts = 1234;
  std::string payload;
  EncodeCommitPrepared(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kCommitPrepared);

  CommitPreparedMsg out;
  ASSERT_TRUE(
      DecodeCommitPrepared(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.gtid, 99u);
  EXPECT_EQ(out.commit_ts, 1234u);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           CommitPreparedMsg m;
                           return DecodeCommitPrepared(in, &m);
                         });

  // commit_ts 0 can never be a real HLC stamp; a zero here means a
  // corrupted or hand-rolled coordinator and must not reach the engine.
  msg.commit_ts = 0;
  payload.clear();
  EncodeCommitPrepared(msg, &payload);
  const Status refused =
      DecodeCommitPrepared(std::string_view(payload).substr(1), &out);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST(TwopcProtocolTest, AbortPreparedRoundTrip) {
  AbortPreparedMsg msg;
  msg.gtid = 0x1122334455667788ULL;
  std::string payload;
  EncodeAbortPrepared(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kAbortPrepared);

  AbortPreparedMsg out;
  ASSERT_TRUE(
      DecodeAbortPrepared(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.gtid, msg.gtid);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           AbortPreparedMsg m;
                           return DecodeAbortPrepared(in, &m);
                         });
}

TEST(TwopcProtocolTest, ResolveIntentRoundTrip) {
  ResolveIntentMsg msg;
  msg.gtid = 31337;
  msg.abort_pending = true;
  std::string payload;
  EncodeResolveIntent(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kResolveIntent);

  ResolveIntentMsg out;
  ASSERT_TRUE(
      DecodeResolveIntent(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.gtid, 31337u);
  EXPECT_TRUE(out.abort_pending);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           ResolveIntentMsg m;
                           return DecodeResolveIntent(in, &m);
                         });
}

TEST(TwopcProtocolTest, ResolvedOkRoundTripAndRejectsUnknownOutcome) {
  for (uint8_t outcome = 0; outcome <= 2; ++outcome) {
    ResolvedOkMsg msg;
    msg.outcome = outcome;
    msg.commit_ts = outcome == 1 ? 555 : 0;
    std::string payload;
    EncodeResolvedOk(msg, &payload);
    ASSERT_EQ(static_cast<Op>(payload[0]), Op::kResolvedOk);

    ResolvedOkMsg out;
    ASSERT_TRUE(
        DecodeResolvedOk(std::string_view(payload).substr(1), &out).ok());
    EXPECT_EQ(out.outcome, outcome);
    EXPECT_EQ(out.commit_ts, msg.commit_ts);

    AllTruncationsRejected(std::string_view(payload).substr(1),
                           [](std::string_view in) {
                             ResolvedOkMsg m;
                             return DecodeResolvedOk(in, &m);
                           });
  }

  // Outcome codes above kAborted are a future-protocol leak or
  // corruption; the decoder refuses rather than letting the router
  // misapply an intent.
  ResolvedOkMsg msg;
  msg.outcome = 3;
  std::string payload;
  EncodeResolvedOk(msg, &payload);
  ResolvedOkMsg out;
  const Status refused =
      DecodeResolvedOk(std::string_view(payload).substr(1), &out);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kInvalidArgument);
}

TEST(TwopcProtocolTest, IntentPendingRoundTrip) {
  IntentPendingMsg msg;
  msg.gtid = 808;
  msg.primary_shard = 2;
  std::string payload;
  EncodeIntentPending(msg, &payload);
  ASSERT_EQ(static_cast<Op>(payload[0]), Op::kIntentPending);

  IntentPendingMsg out;
  ASSERT_TRUE(
      DecodeIntentPending(std::string_view(payload).substr(1), &out).ok());
  EXPECT_EQ(out.gtid, 808u);
  EXPECT_EQ(out.primary_shard, 2u);

  AllTruncationsRejected(std::string_view(payload).substr(1),
                         [](std::string_view in) {
                           IntentPendingMsg m;
                           return DecodeIntentPending(in, &m);
                         });
}

TEST(TwopcProtocolTest, TwopcOpsAreRequestOps) {
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kPrepareTxn)));
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kCommitPrepared)));
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kAbortPrepared)));
  EXPECT_TRUE(IsRequestOp(static_cast<uint8_t>(Op::kResolveIntent)));
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kPreparedOk)));
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kResolvedOk)));
  EXPECT_FALSE(IsRequestOp(static_cast<uint8_t>(Op::kIntentPending)));
}

}  // namespace
}  // namespace anker::server
