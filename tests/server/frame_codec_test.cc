// Frame codec: round trips, incremental (byte-by-byte) arrival, CRC
// corruption at every byte, hostile length fields, and decode fuzzing
// over random garbage — the server-side mirror of wal_format_test's
// discipline: nothing read off a socket is trusted until framed and
// checksummed.
#include "server/protocol.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace anker::server {
namespace {

std::string Frame(std::string_view payload) {
  std::string out;
  EncodeFrame(payload, &out);
  return out;
}

TEST(FrameCodec, RoundTripsPayloads) {
  for (const std::string& payload :
       {std::string("x"), std::string(1, '\0'), std::string(100000, 'q'),
        std::string("\x01\x02\x03\xff binary \n bytes")}) {
    const std::string frame = Frame(payload);
    EXPECT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
    std::string_view decoded;
    size_t consumed = 0;
    ASSERT_EQ(DecodeFrame(frame, &decoded, &consumed), FrameStatus::kOk);
    EXPECT_EQ(decoded, payload);
    EXPECT_EQ(consumed, frame.size());
  }
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  const std::string frame = Frame("");
  std::string_view decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(frame, &decoded, &consumed), FrameStatus::kOk);
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(consumed, kFrameHeaderBytes);
}

TEST(FrameCodec, EveryPrefixAsksForMoreBytes) {
  const std::string frame = Frame("the payload under test");
  for (size_t len = 0; len < frame.size(); ++len) {
    std::string_view decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(std::string_view(frame).substr(0, len), &decoded,
                          &consumed),
              FrameStatus::kNeedMore)
        << "prefix length " << len;
  }
}

TEST(FrameCodec, DetectsCorruptionAtEveryByte) {
  const std::string frame = Frame("corruption target payload");
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string copy = frame;
    copy[i] = static_cast<char>(copy[i] ^ 0x40);
    std::string_view decoded;
    size_t consumed = 0;
    const FrameStatus status = DecodeFrame(copy, &decoded, &consumed);
    // A flipped length byte may also read as "frame not complete yet";
    // what must never happen is a successful decode.
    EXPECT_NE(status, FrameStatus::kOk) << "flipped byte " << i;
  }
}

TEST(FrameCodec, RejectsOversizedLengthWithoutWaiting) {
  std::string frame;
  wal::PutU32(&frame, kMaxFramePayload + 1);
  wal::PutU32(&frame, 0);
  std::string_view decoded;
  size_t consumed = 0;
  // The hostile length must be rejected from the 8 header bytes alone —
  // never "need more" (which would make the peer allocate/wait for 4GB).
  EXPECT_EQ(DecodeFrame(frame, &decoded, &consumed), FrameStatus::kCorrupt);
}

TEST(FrameCodec, TrailingBytesStayUntouched) {
  const std::string first = Frame("first");
  const std::string second = Frame("second");
  const std::string stream = first + second;
  std::string_view decoded;
  size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(stream, &decoded, &consumed), FrameStatus::kOk);
  EXPECT_EQ(decoded, "first");
  ASSERT_EQ(DecodeFrame(std::string_view(stream).substr(consumed), &decoded,
                        &consumed),
            FrameStatus::kOk);
  EXPECT_EQ(decoded, "second");
}

TEST(FrameCodec, FuzzRandomGarbageNeverDecodes) {
  Rng rng(7);
  size_t accidental_ok = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    std::string garbage(rng.NextBounded(64) + 8, '\0');
    for (char& c : garbage) c = static_cast<char>(rng.NextBounded(256));
    std::string_view decoded;
    size_t consumed = 0;
    if (DecodeFrame(garbage, &decoded, &consumed) == FrameStatus::kOk) {
      ++accidental_ok;  // ~2^-32 per try; one hit would be suspicious.
    }
  }
  EXPECT_EQ(accidental_ok, 0u);
}

TEST(FrameCodec, FuzzTruncatedRealFramesNeverMisdecode) {
  Rng rng(11);
  for (int iter = 0; iter < 500; ++iter) {
    std::string payload(rng.NextBounded(300) + 1, '\0');
    for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
    const std::string frame = Frame(payload);
    const size_t cut = rng.NextBounded(frame.size());
    std::string_view decoded;
    size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(std::string_view(frame).substr(0, cut), &decoded,
                          &consumed),
              FrameStatus::kNeedMore);
  }
}

}  // namespace
}  // namespace anker::server
