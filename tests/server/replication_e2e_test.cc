// Full replication loop over real sockets: a primary server, a replica
// bootstrapped from its checkpoint via FETCH_CHECKPOINT, WAL shipping
// with read-your-writes (COMMIT_OK token -> WAIT_LSN), the read-only
// gate, simulated partitions through the fault injector, controlled
// promotion, and the client's opt-in BUSY retry budget.
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/replication.h"
#include "server/server.h"
#include "storage/value.h"
#include "wal/io_util.h"

namespace anker::server {
namespace {

class ReplicationE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/anker_repl_e2e_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    FaultInjector::Instance().ArmForTest("", 0);
    replica_server_.reset();
    controller_.reset();
    if (replica_db_ != nullptr) replica_db_->Stop();
    replica_db_.reset();
    primary_server_.reset();
    if (primary_db_ != nullptr) primary_db_->Stop();
    primary_db_.reset();
    wal::RemoveDirRecursive(dir_);
  }

  engine::DatabaseConfig DbConfig(const std::string& subdir) const {
    engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
        txn::ProcessingMode::kHeterogeneousSerializable);
    config.durability = wal::DurabilityMode::kGroupCommit;
    config.data_dir = dir_ + "/" + subdir;
    config.wal_segment_bytes = 1 << 14;  // Exercise rotation under load.
    config.worker_threads = 6;
    return config;
  }

  void StartPrimary(size_t max_inflight = 64) {
    auto opened = engine::Database::Open(DbConfig("primary"));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    primary_db_ = opened.TakeValue();
    primary_db_->Start();
    ServerConfig config;
    config.max_inflight = max_inflight;
    config.repl_heartbeat_millis = 50;  // Tight loop for test speed.
    config.repl_ack_wait_millis = 300;
    primary_server_ = std::make_unique<Server>(primary_db_.get(), config);
    ASSERT_TRUE(primary_server_->Start().ok());
  }

  ReplicaConfig MakeReplicaConfig(bool sync_ack = false) const {
    ReplicaConfig config;
    config.primary_port = primary_server_->port();
    config.replica_id = "r1";
    config.sync_ack = sync_ack;
    config.stream_timeout_millis = 2000;
    config.ack_interval_millis = 20;
    config.backoff_initial_millis = 30;
    config.backoff_max_millis = 300;
    return config;
  }

  /// Bootstrap + open + stream + serve: the anker_serve replica path.
  void StartReplica(bool sync_ack = false) {
    const ReplicaConfig config = MakeReplicaConfig(sync_ack);
    ASSERT_TRUE(
        ReplicaController::Bootstrap(config, dir_ + "/replica").ok());
    auto opened = engine::Database::Open(DbConfig("replica"));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    replica_db_ = opened.TakeValue();
    replica_db_->Start();
    controller_ =
        std::make_unique<ReplicaController>(replica_db_.get(), config);
    controller_->Start();
    ServerConfig server_config;
    server_config.replica = controller_.get();
    replica_server_ =
        std::make_unique<Server>(replica_db_.get(), server_config);
    ASSERT_TRUE(replica_server_->Start().ok());
  }

  std::unique_ptr<Client> Dial(uint16_t port, ClientOptions options = {}) {
    auto connected = Client::Connect("127.0.0.1", port, options);
    EXPECT_TRUE(connected.ok()) << connected.status().ToString();
    return connected.ok() ? connected.TakeValue() : nullptr;
  }

  std::string dir_;
  std::unique_ptr<engine::Database> primary_db_;
  std::unique_ptr<Server> primary_server_;
  std::unique_ptr<engine::Database> replica_db_;
  std::unique_ptr<ReplicaController> controller_;
  std::unique_ptr<Server> replica_server_;
};

TEST_F(ReplicationE2eTest, BootstrapStreamReadYourWritesPromote) {
  StartPrimary();
  auto primary = Dial(primary_server_->port());
  ASSERT_NE(primary, nullptr);

  // Schema + bulk load BEFORE the replica exists: loads are not
  // WAL-logged, so only the bootstrap checkpoint can carry them.
  ASSERT_TRUE(primary
                  ->CreateTable("acct", 256,
                                {{"bal", storage::ValueType::kInt64}})
                  .ok());
  std::vector<uint64_t> init(256);
  for (size_t i = 0; i < init.size(); ++i) {
    init[i] = storage::EncodeInt64(static_cast<int64_t>(1000 + i));
  }
  ASSERT_TRUE(primary->Load("acct", "bal", 0, init).ok());

  StartReplica();
  auto replica = Dial(replica_server_->port());
  ASSERT_NE(replica, nullptr);

  // The bootstrap checkpoint carried the load.
  auto seeded = replica->Read("acct", "bal", 7);
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  EXPECT_EQ(seeded.value(), storage::EncodeInt64(1007));

  // Commit on the primary; the COMMIT_OK token gates the replica read.
  ASSERT_TRUE(primary->Begin().ok());
  ASSERT_TRUE(
      primary->Write("acct", "bal", 7, storage::EncodeInt64(4242)).ok());
  ASSERT_TRUE(primary->Commit().ok());
  const uint64_t token = primary->last_commit_lsn();
  ASSERT_GT(token, 0u);

  ASSERT_TRUE(replica->WaitLsn(token, 5000).ok());
  auto shipped = replica->Read("acct", "bal", 7);
  ASSERT_TRUE(shipped.ok());
  EXPECT_EQ(shipped.value(), storage::EncodeInt64(4242));

  // Status surfaces on both ends.
  auto pstat = primary->ReplicaStatus();
  ASSERT_TRUE(pstat.ok());
  EXPECT_EQ(pstat.value().role, NodeRole::kPrimary);
  EXPECT_TRUE(pstat.value().stream_connected);
  auto rstat = replica->ReplicaStatus();
  ASSERT_TRUE(rstat.ok());
  EXPECT_EQ(rstat.value().role, NodeRole::kReplica);
  EXPECT_GE(rstat.value().applied_lsn, token);

  // Content converges (quiesced on both sides at this point).
  auto pdigest = primary->Digest();
  auto rdigest = replica->Digest();
  ASSERT_TRUE(pdigest.ok());
  ASSERT_TRUE(rdigest.ok());
  EXPECT_EQ(pdigest.value(), rdigest.value());

  // Read-only gate: a write-class request is refused recoverably.
  ASSERT_TRUE(replica->Begin().ok());
  const Status refused =
      replica->Write("acct", "bal", 1, storage::EncodeInt64(1));
  EXPECT_TRUE(refused.IsResourceBusy()) << refused.ToString();
  ASSERT_TRUE(replica->Abort().ok());
  // ...and PROMOTE on the primary is refused outright.
  EXPECT_FALSE(primary->Promote().ok());

  // Controlled failover: promote, then write locally.
  ASSERT_TRUE(replica->Promote().ok());
  auto promoted = replica->ReplicaStatus();
  ASSERT_TRUE(promoted.ok());
  EXPECT_EQ(promoted.value().role, NodeRole::kPromoted);
  ASSERT_TRUE(replica->Begin().ok());
  ASSERT_TRUE(
      replica->Write("acct", "bal", 9, storage::EncodeInt64(777)).ok());
  ASSERT_TRUE(replica->Commit().ok());
  auto after = replica->Read("acct", "bal", 9);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), storage::EncodeInt64(777));
}

TEST_F(ReplicationE2eTest, PartitionDegradesToStaleReadsThenHeals) {
  StartPrimary();
  auto primary = Dial(primary_server_->port());
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary
                  ->CreateTable("acct", 64,
                                {{"bal", storage::ValueType::kInt64}})
                  .ok());
  StartReplica();
  auto replica = Dial(replica_server_->port());
  ASSERT_NE(replica, nullptr);

  ASSERT_TRUE(primary->ExecTxn({{"acct", "bal", false, 3,
                                 storage::EncodeInt64(11)}}).ok());
  ASSERT_TRUE(replica->WaitLsn(primary->last_commit_lsn(), 5000).ok());

  // Partition: every replica-side receive "fails" — the stream drops and
  // every reconnect dies the same way. The replica must keep serving
  // (stale) reads the whole time.
  FaultInjector::Instance().ArmForTest("repl.recv:fail:1.0", 7);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  ASSERT_TRUE(primary->ExecTxn({{"acct", "bal", false, 4,
                                 storage::EncodeInt64(22)}}).ok());
  const uint64_t fenced_token = primary->last_commit_lsn();
  auto stale = replica->Read("acct", "bal", 3);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_EQ(stale.value(), storage::EncodeInt64(11));
  // The partitioned commit is not readable yet.
  EXPECT_FALSE(replica->WaitLsn(fenced_token, 150).ok());

  // Heal: reconnect-with-backoff catches the replica up on its own.
  FaultInjector::Instance().ArmForTest("", 0);
  ASSERT_TRUE(replica->WaitLsn(fenced_token, 10000).ok());
  auto healed = replica->Read("acct", "bal", 4);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed.value(), storage::EncodeInt64(22));
}

TEST_F(ReplicationE2eTest, SyncAckGatesCommitsOnReplicaDurability) {
  StartPrimary();
  auto primary = Dial(primary_server_->port());
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary
                  ->CreateTable("acct", 64,
                                {{"bal", storage::ValueType::kInt64}})
                  .ok());
  StartReplica(/*sync_ack=*/true);
  auto replica = Dial(replica_server_->port());
  ASSERT_NE(replica, nullptr);

  // With the sync replica connected and acking, commits flow.
  ASSERT_TRUE(primary->ExecTxn({{"acct", "bal", false, 1,
                                 storage::EncodeInt64(5)}}).ok());
  ASSERT_TRUE(replica->WaitLsn(primary->last_commit_lsn(), 5000).ok());

  // Kill the replica's fetcher: the next commit is durable locally but
  // its ack times out as "commit uncertain" (ResourceBusy), not lost.
  controller_->Stop();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const Status uncertain = primary->ExecTxn(
      {{"acct", "bal", false, 2, storage::EncodeInt64(6)}});
  EXPECT_TRUE(uncertain.IsResourceBusy()) << uncertain.ToString();
  // Locally durable regardless: the engine applied and logged it.
  auto read_back = primary->Read("acct", "bal", 2);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), storage::EncodeInt64(6));
}

TEST_F(ReplicationE2eTest, DecommissionReleasesDepartedReplicaRetention) {
  StartPrimary();
  auto primary = Dial(primary_server_->port());
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary
                  ->CreateTable("acct", 64,
                                {{"bal", storage::ValueType::kInt64}})
                  .ok());
  StartReplica();
  auto replica = Dial(replica_server_->port());
  ASSERT_NE(replica, nullptr);

  ASSERT_TRUE(primary->ExecTxn({{"acct", "bal", false, 1,
                                 storage::EncodeInt64(9)}}).ok());
  ASSERT_TRUE(replica->WaitLsn(primary->last_commit_lsn(), 5000).ok());

  // Unknown id: the registry only knows replicas that ever subscribed.
  const Status unknown = primary->DecommissionReplica("never-registered");
  EXPECT_EQ(unknown.code(), StatusCode::kNotFound) << unknown.ToString();

  // While the stream is live the retention pin is load-bearing: refused.
  const Status live = primary->DecommissionReplica("r1");
  EXPECT_EQ(live.code(), StatusCode::kInvalidArgument) << live.ToString();

  // The op lives on the primary; a replica has no retention registry.
  const Status wrong_node = replica->DecommissionReplica("r1");
  EXPECT_EQ(wrong_node.code(), StatusCode::kNotSupported)
      << wrong_node.ToString();

  // Permanently retire the replica (fetcher gone, never coming back).
  controller_->Stop();
  // The streamer notices the dropped socket on its next heartbeat; poll
  // until the subscriber flips to disconnected and the erase succeeds.
  Status gone = Status::OK();
  for (int attempt = 0; attempt < 100; ++attempt) {
    gone = primary->DecommissionReplica("r1");
    if (gone.ok() || gone.code() != StatusCode::kInvalidArgument) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(gone.ok()) << gone.ToString();

  // Idempotence check: the id is really gone from the registry.
  const Status again = primary->DecommissionReplica("r1");
  EXPECT_EQ(again.code(), StatusCode::kNotFound) << again.ToString();
  auto pstat = primary->ReplicaStatus();
  ASSERT_TRUE(pstat.ok());
  EXPECT_FALSE(pstat.value().stream_connected);

  // The floor is released: with no subscribers pinning the WAL, the
  // primary keeps committing and checkpoint truncation may reclaim
  // segments the departed replica would have needed. Commits must not
  // block or trip over the erased registry entry.
  for (uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(primary->ExecTxn({{"acct", "bal", false, i % 64,
                                   storage::EncodeInt64(100 + i)}}).ok());
  }
  ASSERT_TRUE(primary->CheckpointNow().ok());
  auto read_back = primary->Read("acct", "bal", 31);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(read_back.value(), storage::EncodeInt64(131));
}

TEST_F(ReplicationE2eTest, BusyRetryBudgetRetriesThenSurfaces) {
  // max_inflight=0 pins every dispatched op to the BUSY path.
  StartPrimary(/*max_inflight=*/0);
  ClientOptions options;
  options.busy_retry_budget = 3;
  options.busy_backoff_initial_millis = 1;
  options.busy_backoff_max_millis = 4;
  auto client = Dial(primary_server_->port(), options);
  ASSERT_NE(client, nullptr);

  const Status busy = client->ExecTxn(
      {{"acct", "bal", false, 0, storage::EncodeInt64(1)}});
  EXPECT_TRUE(busy.IsResourceBusy()) << busy.ToString();
  // 1 initial attempt + 3 retries all hit admission control.
  EXPECT_GE(primary_server_->stats().busy_rejections, 4u);
  // The connection is not poisoned: BUSY is backpressure, not transport
  // failure.
  EXPECT_TRUE(client->Ping().ok());
}

}  // namespace
}  // namespace anker::server
