#include "snapshot/fork_snapshotter.h"

#include <gtest/gtest.h>

#include "snapshot/plain_buffer.h"
#include "vm/page.h"

namespace anker::snapshot {
namespace {

TEST(ForkSnapshotterTest, MeasureReturnsPositiveLatency) {
  auto nanos = ForkSnapshotter::MeasureSnapshotNanos();
  ASSERT_TRUE(nanos.ok());
  EXPECT_GT(nanos.value(), 0);
}

// Shared state for the child function (fork copies the address space, so a
// plain global is visible in the child as-of-fork).
uint64_t* g_probe_slot = nullptr;

int ChildReadsSnapshot(void* /*arg*/) {
  // Runs in the forked child: sees the value at fork time.
  return static_cast<int>(*g_probe_slot);
}

TEST(ForkSnapshotterTest, ChildSeesForkTimeState) {
  auto buffer = PlainBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  buffer.value()->StoreU64(0, 41);
  g_probe_slot = reinterpret_cast<uint64_t*>(buffer.value()->data());
  auto result = ForkSnapshotter::RunInSnapshot(&ChildReadsSnapshot, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 41);
}

int ChildWritesLocally(void* /*arg*/) {
  *g_probe_slot = 99;  // COW: stays local to the child
  return static_cast<int>(*g_probe_slot);
}

TEST(ForkSnapshotterTest, ChildWritesStayLocal) {
  auto buffer = PlainBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  buffer.value()->StoreU64(0, 7);
  g_probe_slot = reinterpret_cast<uint64_t*>(buffer.value()->data());
  auto result = ForkSnapshotter::RunInSnapshot(&ChildWritesLocally, nullptr);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 99);
  EXPECT_EQ(buffer.value()->LoadU64(0), 7u);  // parent unaffected
}

}  // namespace
}  // namespace anker::snapshot
