#include "snapshot/physical_buffer.h"

#include <gtest/gtest.h>

#include "snapshot/plain_buffer.h"
#include "vm/page.h"

namespace anker::snapshot {
namespace {

TEST(PlainBufferTest, NoSnapshotSupport) {
  auto buffer = PlainBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  EXPECT_FALSE(buffer.value()->SupportsSnapshots());
  EXPECT_FALSE(buffer.value()->TakeSnapshot().ok());
  EXPECT_STREQ(buffer.value()->name(), "plain");
}

TEST(PlainBufferTest, StoresAndLoads) {
  auto buffer = PlainBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  buffer.value()->StoreU64(16, 0xDEADBEEF);
  EXPECT_EQ(buffer.value()->LoadU64(16), 0xDEADBEEFu);
}

TEST(PhysicalBufferTest, SnapshotIsDeepCopy) {
  auto buffer = PhysicalBuffer::Create(2 * vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  SnapshotableBuffer* b = buffer.value().get();
  b->StoreU64(0, 111);
  b->StoreU64(vm::kPageSize, 222);

  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value()->ReadU64(0), 111u);
  EXPECT_EQ(snap.value()->ReadU64(vm::kPageSize), 222u);

  // Writes after the snapshot do not leak into it.
  b->StoreU64(0, 999);
  EXPECT_EQ(snap.value()->ReadU64(0), 111u);
  EXPECT_EQ(b->LoadU64(0), 999u);
}

TEST(PhysicalBufferTest, MultipleIndependentSnapshots) {
  auto buffer = PhysicalBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  SnapshotableBuffer* b = buffer.value().get();
  b->StoreU64(8, 1);
  auto s1 = b->TakeSnapshot();
  ASSERT_TRUE(s1.ok());
  b->StoreU64(8, 2);
  auto s2 = b->TakeSnapshot();
  ASSERT_TRUE(s2.ok());
  b->StoreU64(8, 3);
  EXPECT_EQ(s1.value()->ReadU64(8), 1u);
  EXPECT_EQ(s2.value()->ReadU64(8), 2u);
  EXPECT_EQ(b->LoadU64(8), 3u);
  EXPECT_EQ(b->stats().snapshots_taken, 2u);
}

TEST(PhysicalBufferTest, SnapshotOutlivesNothingItNeeds) {
  auto buffer = PhysicalBuffer::Create(vm::kPageSize);
  ASSERT_TRUE(buffer.ok());
  buffer.value()->StoreU64(0, 77);
  auto snap = buffer.value()->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  buffer = Result<std::unique_ptr<PhysicalBuffer>>(
      Status::Internal("dropped"));  // destroy the source buffer
  EXPECT_EQ(snap.value()->ReadU64(0), 77u);  // deep copy survives
}

}  // namespace
}  // namespace anker::snapshot
