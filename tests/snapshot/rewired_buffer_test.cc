#include "snapshot/rewired_buffer.h"

#include <gtest/gtest.h>

#include "vm/page.h"
#include "vm/proc_maps.h"

namespace anker::snapshot {
namespace {

using vm::kPageSize;

TEST(RewiredBufferTest, ReadsBackWritesBeforeAnySnapshot) {
  auto buffer = RewiredBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  SnapshotableBuffer* b = buffer.value().get();
  for (size_t i = 0; i < 4; ++i) b->StoreU64(i * kPageSize, i + 1);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(b->LoadU64(i * kPageSize), i + 1);
}

TEST(RewiredBufferTest, SnapshotSharesUntilWrite) {
  auto buffer = RewiredBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  SnapshotableBuffer* b = buffer.value().get();
  b->StoreU64(0, 10);
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap.value()->ReadU64(0), 10u);
  // The write triggers the SIGSEGV-based manual COW.
  b->StoreU64(0, 20);
  EXPECT_EQ(b->LoadU64(0), 20u);
  EXPECT_EQ(snap.value()->ReadU64(0), 10u);
  EXPECT_GE(b->stats().cow_faults, 1u);
}

TEST(RewiredBufferTest, CowFragmentsMappingRuns) {
  auto buffer = RewiredBuffer::Create(16 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  RewiredBuffer* b = buffer.value().get();
  EXPECT_EQ(b->CountMappingRuns(), 1u);
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  // Touch every second page: each COW splits the mapping.
  for (size_t page = 0; page < 16; page += 2) {
    b->StoreU64(page * kPageSize, page);
  }
  EXPECT_GE(b->CountMappingRuns(), 8u);
  // The VMA count in /proc/self/maps reflects the fragmentation too.
  EXPECT_GE(vm::CountVmasInRange(b->data(), b->size()), 8u);
}

TEST(RewiredBufferTest, RepeatedSnapshotsStayConsistent) {
  auto buffer = RewiredBuffer::Create(8 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  RewiredBuffer* b = buffer.value().get();
  std::vector<std::unique_ptr<SnapshotView>> snaps;
  for (uint64_t round = 0; round < 5; ++round) {
    b->StoreU64(0, round);
    auto snap = b->TakeSnapshot();
    ASSERT_TRUE(snap.ok());
    snaps.push_back(snap.TakeValue());
  }
  for (uint64_t round = 0; round < 5; ++round) {
    EXPECT_EQ(snaps[round]->ReadU64(0), round);
  }
}

TEST(RewiredBufferTest, WritesToDifferentPagesAfterSnapshot) {
  auto buffer = RewiredBuffer::Create(8 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  RewiredBuffer* b = buffer.value().get();
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  for (size_t page = 0; page < 8; ++page) {
    b->StoreU64(page * kPageSize + 8, page * 100);
  }
  for (size_t page = 0; page < 8; ++page) {
    EXPECT_EQ(b->LoadU64(page * kPageSize + 8), page * 100);
    EXPECT_EQ(snap.value()->ReadU64(page * kPageSize + 8), 0u);
  }
  EXPECT_EQ(b->stats().cow_faults, 8u);
}

TEST(RewiredBufferTest, PoolGrowsWithCows) {
  auto buffer = RewiredBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  RewiredBuffer* b = buffer.value().get();
  const size_t before = b->stats().pool_pages;
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  b->StoreU64(0, 1);
  b->StoreU64(kPageSize, 1);
  EXPECT_EQ(b->stats().pool_pages, before + 2);
}

}  // namespace
}  // namespace anker::snapshot
