// Property-based tests run identically against every snapshot-capable
// backend: the snapshotting mechanism differs (memcpy, rewiring with manual
// COW, emulated vm_snapshot), the observable semantics must not.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "snapshot/snapshotable_buffer.h"
#include "vm/page.h"

namespace anker::snapshot {
namespace {

using vm::kPageSize;

class BufferPropertyTest : public ::testing::TestWithParam<BufferBackend> {
 protected:
  std::unique_ptr<SnapshotableBuffer> MakeBuffer(size_t size) {
    auto buffer = CreateBuffer(GetParam(), size);
    EXPECT_TRUE(buffer.ok());
    return buffer.TakeValue();
  }
};

TEST_P(BufferPropertyTest, FreshBufferIsZeroed) {
  auto buffer = MakeBuffer(4 * kPageSize);
  for (size_t offset = 0; offset < buffer->size(); offset += 1024) {
    EXPECT_EQ(buffer->LoadU64(offset), 0u);
  }
}

TEST_P(BufferPropertyTest, RandomWritesReadBack) {
  auto buffer = MakeBuffer(16 * kPageSize);
  Rng rng(101);
  std::map<size_t, uint64_t> reference;
  for (int i = 0; i < 2000; ++i) {
    const size_t slot = rng.NextBounded(buffer->size() / 8);
    const uint64_t value = rng.Next();
    buffer->StoreU64(slot * 8, value);
    reference[slot] = value;
  }
  for (const auto& [slot, value] : reference) {
    EXPECT_EQ(buffer->LoadU64(slot * 8), value);
  }
}

TEST_P(BufferPropertyTest, SnapshotMatchesReferenceModel) {
  auto buffer = MakeBuffer(16 * kPageSize);
  const size_t num_slots = buffer->size() / 8;
  Rng rng(202 + static_cast<uint64_t>(GetParam()));
  std::vector<uint64_t> model(num_slots, 0);

  struct Checkpoint {
    std::unique_ptr<SnapshotView> view;
    std::vector<uint64_t> model_at_snapshot;
  };
  std::vector<Checkpoint> checkpoints;

  for (int round = 0; round < 8; ++round) {
    // Random batch of writes.
    for (int i = 0; i < 300; ++i) {
      const size_t slot = rng.NextBounded(num_slots);
      const uint64_t value = rng.Next();
      buffer->StoreU64(slot * 8, value);
      model[slot] = value;
    }
    auto snap = buffer->TakeSnapshot();
    ASSERT_TRUE(snap.ok());
    checkpoints.push_back(Checkpoint{snap.TakeValue(), model});
  }

  // Every snapshot must exactly equal the model at its creation point, and
  // the live buffer the final model.
  for (const Checkpoint& cp : checkpoints) {
    for (size_t slot = 0; slot < num_slots; slot += 7) {
      ASSERT_EQ(cp.view->ReadU64(slot * 8), cp.model_at_snapshot[slot]);
    }
  }
  for (size_t slot = 0; slot < num_slots; slot += 7) {
    ASSERT_EQ(buffer->LoadU64(slot * 8), model[slot]);
  }
}

TEST_P(BufferPropertyTest, DroppingSnapshotsInAnyOrderIsSafe) {
  auto buffer = MakeBuffer(8 * kPageSize);
  Rng rng(303);
  std::vector<std::unique_ptr<SnapshotView>> snaps;
  std::vector<uint64_t> expected;
  for (uint64_t round = 0; round < 6; ++round) {
    buffer->StoreU64(0, round * 11);
    auto snap = buffer->TakeSnapshot();
    ASSERT_TRUE(snap.ok());
    snaps.push_back(snap.TakeValue());
    expected.push_back(round * 11);
  }
  // Drop snapshots in a scrambled order, verifying survivors each time.
  const std::vector<size_t> drop_order = {2, 0, 5, 1, 4, 3};
  for (size_t drop : drop_order) {
    snaps[drop].reset();
    for (size_t i = 0; i < snaps.size(); ++i) {
      if (snaps[i] != nullptr) {
        EXPECT_EQ(snaps[i]->ReadU64(0), expected[i]);
      }
    }
  }
}

TEST_P(BufferPropertyTest, WholeBufferContentEquality) {
  auto buffer = MakeBuffer(4 * kPageSize);
  Rng rng(404);
  for (size_t offset = 0; offset < buffer->size(); offset += 8) {
    buffer->StoreU64(offset, rng.Next());
  }
  auto snap = buffer->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(memcmp(snap.value()->data(), buffer->data(), buffer->size()), 0);
  // Overwrite everything; the snapshot must still hold the old image.
  std::vector<uint8_t> before(snap.value()->data(),
                              snap.value()->data() + snap.value()->size());
  for (size_t offset = 0; offset < buffer->size(); offset += 8) {
    buffer->StoreU64(offset, rng.Next());
  }
  EXPECT_EQ(memcmp(snap.value()->data(), before.data(), before.size()), 0);
}

TEST_P(BufferPropertyTest, SizeRoundsUpToWholePages) {
  auto buffer = CreateBuffer(GetParam(), kPageSize + 1);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(buffer.value()->size() % kPageSize, 0u);
  EXPECT_GE(buffer.value()->size(), kPageSize + 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BufferPropertyTest,
    ::testing::Values(BufferBackend::kPhysical, BufferBackend::kRewired,
                      BufferBackend::kVmSnapshot),
    [](const ::testing::TestParamInfo<BufferBackend>& info) {
      return std::string(BufferBackendName(info.param)) == "vm_snapshot"
                 ? "vm_snapshot"
                 : BufferBackendName(info.param);
    });

TEST(BufferFactoryTest, ParseRoundTrips) {
  for (BufferBackend backend :
       {BufferBackend::kPlain, BufferBackend::kPhysical,
        BufferBackend::kRewired, BufferBackend::kVmSnapshot}) {
    auto parsed = ParseBufferBackend(BufferBackendName(backend));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), backend);
  }
  EXPECT_FALSE(ParseBufferBackend("bogus").ok());
}

}  // namespace
}  // namespace anker::snapshot
