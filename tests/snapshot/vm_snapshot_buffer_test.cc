#include "snapshot/vm_snapshot_buffer.h"

#include <gtest/gtest.h>

#include "vm/page.h"
#include "vm/proc_maps.h"

namespace anker::snapshot {
namespace {

using vm::kPageSize;

TEST(VmSnapshotBufferTest, SnapshotIsolatesSubsequentWrites) {
  auto buffer = VmSnapshotBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  b->StoreU64(0, 5);
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  b->StoreU64(0, 6);
  EXPECT_EQ(snap.value()->ReadU64(0), 5u);
  EXPECT_EQ(b->LoadU64(0), 6u);
}

TEST(VmSnapshotBufferTest, DirtyTrackingCountsPages) {
  auto buffer = VmSnapshotBuffer::Create(8 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  EXPECT_EQ(b->DirtyPageCount(), 0u);
  b->StoreU64(0, 1);
  b->StoreU64(8, 2);  // same page
  EXPECT_EQ(b->DirtyPageCount(), 1u);
  b->StoreU64(3 * kPageSize, 3);
  EXPECT_EQ(b->DirtyPageCount(), 2u);
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(b->DirtyPageCount(), 0u);  // flushed
  EXPECT_EQ(b->stats().dirty_pages_flushed, 2u);
}

TEST(VmSnapshotBufferTest, MarkDirtySpanningPages) {
  auto buffer = VmSnapshotBuffer::Create(8 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  b->MarkDirty(kPageSize - 4, 8);  // straddles two pages
  EXPECT_EQ(b->DirtyPageCount(), 2u);
}

TEST(VmSnapshotBufferTest, OlderSnapshotsKeepTheirContent) {
  auto buffer = VmSnapshotBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  std::vector<std::unique_ptr<SnapshotView>> snaps;
  for (uint64_t round = 1; round <= 6; ++round) {
    b->StoreU64(0, round);
    b->StoreU64(2 * kPageSize, round * 10);
    auto snap = b->TakeSnapshot();
    ASSERT_TRUE(snap.ok());
    snaps.push_back(snap.TakeValue());
  }
  // Every snapshot must still see the state at its creation, even though
  // the file pages were rewritten by every later flush.
  for (uint64_t round = 1; round <= 6; ++round) {
    EXPECT_EQ(snaps[round - 1]->ReadU64(0), round);
    EXPECT_EQ(snaps[round - 1]->ReadU64(2 * kPageSize), round * 10);
  }
  EXPECT_EQ(b->LiveViewCount(), 6u);
  snaps.clear();
  EXPECT_EQ(b->LiveViewCount(), 0u);
}

TEST(VmSnapshotBufferTest, SourceStaysOneVma) {
  // The whole point versus rewiring: writes never fragment the source
  // mapping, so snapshot cost stays flat.
  auto buffer = VmSnapshotBuffer::Create(64 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  for (int round = 0; round < 4; ++round) {
    for (size_t page = 0; page < 64; page += 3) {
      b->StoreU64(page * kPageSize, page + round);
    }
    auto snap = b->TakeSnapshot();
    ASSERT_TRUE(snap.ok());
  }
  EXPECT_EQ(vm::CountVmasInRange(b->data(), b->size()), 1u);
}

TEST(VmSnapshotBufferTest, SnapshotWithNoDirtyPagesIsCheap) {
  auto buffer = VmSnapshotBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  auto s1 = b->TakeSnapshot();
  ASSERT_TRUE(s1.ok());
  auto s2 = b->TakeSnapshot();  // nothing dirty in between
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(b->stats().dirty_pages_flushed, 0u);
  EXPECT_EQ(s2.value()->ReadU64(0), 0u);
}

TEST(VmSnapshotBufferTest, RecycleExistingView) {
  auto buffer = VmSnapshotBuffer::Create(4 * kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  b->StoreU64(0, 1);
  auto snap = b->TakeSnapshot();
  ASSERT_TRUE(snap.ok());
  auto* view = static_cast<VmSnapshotView*>(snap.value().get());
  const uint8_t* addr_before = snap.value()->data();
  EXPECT_EQ(snap.value()->ReadU64(0), 1u);

  b->StoreU64(0, 2);
  // vm_snapshot's dst_addr form: refresh the snapshot in place.
  ASSERT_TRUE(b->TakeSnapshotInto(view).ok());
  EXPECT_EQ(snap.value()->data(), addr_before);
  EXPECT_EQ(snap.value()->ReadU64(0), 2u);
}

TEST(VmSnapshotBufferTest, InterleavedWritesAndSnapshotsOnSamePage) {
  // Regression shape: the same page dirtied across several epochs while
  // multiple snapshots stay alive.
  auto buffer = VmSnapshotBuffer::Create(kPageSize);
  ASSERT_TRUE(buffer.ok());
  VmSnapshotBuffer* b = buffer.value().get();
  b->StoreU64(0, 1);
  auto s1 = b->TakeSnapshot();
  ASSERT_TRUE(s1.ok());
  b->StoreU64(0, 2);
  auto s2 = b->TakeSnapshot();
  ASSERT_TRUE(s2.ok());
  b->StoreU64(0, 3);
  auto s3 = b->TakeSnapshot();
  ASSERT_TRUE(s3.ok());
  b->StoreU64(0, 4);
  EXPECT_EQ(s1.value()->ReadU64(0), 1u);
  EXPECT_EQ(s2.value()->ReadU64(0), 2u);
  EXPECT_EQ(s3.value()->ReadU64(0), 3u);
  EXPECT_EQ(b->LoadU64(0), 4u);
}

}  // namespace
}  // namespace anker::snapshot
