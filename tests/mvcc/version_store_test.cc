#include "mvcc/version_store.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"

namespace anker::mvcc {
namespace {

TEST(VersionStoreTest, UnversionedRowReturnsSlot) {
  VersionStore store(100);
  EXPECT_EQ(store.ResolveVisible(5, 10, 777), 777u);
  EXPECT_EQ(store.LastWriteTs(5, 0), kLoadTimestamp);
}

TEST(VersionStoreTest, NewestToOldestResolution) {
  VersionStore store(100);
  // History of row 3: value 10 until ts 5, value 20 until ts 9,
  // slot now holds 30.
  store.AddVersion(3, 10, 5);
  store.AddVersion(3, 20, 9);

  EXPECT_EQ(store.ResolveVisible(3, 2, 30), 10u);   // before first commit
  EXPECT_EQ(store.ResolveVisible(3, 4, 30), 10u);
  EXPECT_EQ(store.ResolveVisible(3, 5, 30), 20u);   // at ts 5 sees 2nd value
  EXPECT_EQ(store.ResolveVisible(3, 8, 30), 20u);
  EXPECT_EQ(store.ResolveVisible(3, 9, 30), 30u);   // at ts 9 sees slot
  EXPECT_EQ(store.ResolveVisible(3, 100, 30), 30u);
}

TEST(VersionStoreTest, LastWriteTsIsChainHead) {
  VersionStore store(10);
  store.AddVersion(1, 0, 4);
  store.AddVersion(1, 1, 8);
  EXPECT_EQ(store.LastWriteTs(1, 0), 8u);
  EXPECT_EQ(store.LastWriteTs(2, 0), kLoadTimestamp);
  EXPECT_TRUE(store.HasRelevantVersion(1, 5));
  EXPECT_FALSE(store.HasRelevantVersion(1, 8));
}

TEST(VersionStoreTest, BlockMetadataTracksRange) {
  VersionStore store(4 * kRowsPerBlock);
  store.AddVersion(kRowsPerBlock + 7, 1, 2);
  store.AddVersion(kRowsPerBlock + 100, 1, 3);

  const BlockInfo b0 = store.current()->GetBlockInfo(0);
  EXPECT_FALSE(b0.has_versions);

  const BlockInfo b1 = store.current()->GetBlockInfo(1);
  EXPECT_TRUE(b1.has_versions);
  EXPECT_EQ(b1.first_versioned, 7u);
  EXPECT_EQ(b1.last_versioned, 100u);
  EXPECT_EQ(b1.seq % 2, 0u);  // no write in progress
}

TEST(VersionStoreTest, SeqlockAdvancesPerVersion) {
  VersionStore store(kRowsPerBlock);
  const uint64_t before = store.current()->GetBlockInfo(0).seq;
  store.AddVersion(0, 1, 2);
  const uint64_t after = store.current()->GetBlockInfo(0).seq;
  EXPECT_EQ(after, before + 2);  // odd during, even after
}

TEST(VersionStoreTest, SealEpochHandsOverChains) {
  VersionStore store(100);
  store.AddVersion(1, 10, 5);
  auto sealed = store.SealEpoch(7);
  EXPECT_EQ(sealed->seal_ts(), 7u);
  EXPECT_EQ(sealed->TotalVersions(), 1u);
  EXPECT_EQ(store.current()->TotalVersions(), 0u);

  // Old readers resolve through the sealed segment via prev-link.
  EXPECT_EQ(store.ResolveVisible(1, 3, 99), 10u);
  // Readers newer than the seal see the slot value.
  EXPECT_EQ(store.ResolveVisible(1, 8, 99), 99u);
}

TEST(VersionStoreTest, ResolutionAcrossMultipleEpochs) {
  VersionStore store(10);
  store.AddVersion(0, 100, 2);   // value 100 until ts 2
  auto seg1 = store.SealEpoch(3);
  store.AddVersion(0, 200, 5);   // value 200 until ts 5
  auto seg2 = store.SealEpoch(6);
  store.AddVersion(0, 300, 9);   // value 300 until ts 9; slot = 400

  EXPECT_EQ(store.ResolveVisible(0, 1, 400), 100u);
  EXPECT_EQ(store.ResolveVisible(0, 2, 400), 200u);
  EXPECT_EQ(store.ResolveVisible(0, 4, 400), 200u);
  EXPECT_EQ(store.ResolveVisible(0, 5, 400), 300u);
  EXPECT_EQ(store.ResolveVisible(0, 9, 400), 400u);

  EXPECT_EQ(store.LastWriteTs(0, 0), 9u);
}

TEST(VersionStoreTest, LastWriteTsCutoffSkipsOldSegments) {
  VersionStore store(10);
  store.AddVersion(0, 1, 2);
  store.SealEpoch(3);
  // A transaction started at ts 4 (>= seal) cannot conflict with anything
  // in the sealed segment; a lookup bounded by `since`=4 reports no write.
  EXPECT_EQ(store.LastWriteTs(0, 4), kLoadTimestamp);
  // An older transaction must still see the ts-2 write.
  EXPECT_EQ(store.LastWriteTs(0, 1), 2u);
}

TEST(VersionStoreTest, TruncateDropsOnlyDeadNodes) {
  VersionStore store(10);
  store.AddVersion(0, 1, 2);
  store.AddVersion(0, 2, 5);
  store.AddVersion(0, 3, 9);
  std::vector<RetiredChain> retired;
  // min active start_ts = 5: nodes with ts <= 5 are dead.
  const size_t unlinked = store.TruncateOlderThan(5, &retired);
  EXPECT_EQ(unlinked, 2u);
  // The ts-9 node must survive: a reader at ts 6 needs its value.
  EXPECT_EQ(store.ResolveVisible(0, 6, 42), 3u);
  EXPECT_EQ(store.ResolveVisible(0, 9, 42), 42u);
  // The retired suffix stays valid, readable memory until recycled: a
  // reader that was already past the truncation point may still walk it.
  ASSERT_EQ(retired.size(), 1u);
  EXPECT_EQ(retired[0].head->ts, 5u);
  EXPECT_EQ(retired[0].head->value, 2u);
  ASSERT_NE(retired[0].head->next, nullptr);
  EXPECT_EQ(retired[0].head->next->ts, 2u);
  EXPECT_EQ(retired[0].head->next->value, 1u);
  for (RetiredChain& chain : retired) chain.owner->RecycleChain(chain.head);
}

TEST(VersionStoreTest, TruncateWholeChain) {
  VersionStore store(10);
  store.AddVersion(0, 1, 2);
  store.AddVersion(0, 2, 3);
  std::vector<RetiredChain> retired;
  const size_t unlinked = store.TruncateOlderThan(10, &retired);
  EXPECT_EQ(unlinked, 2u);
  EXPECT_EQ(store.current()->Head(0), nullptr);
  EXPECT_EQ(store.ResolveVisible(0, 11, 7), 7u);
  size_t recycled = 0;
  for (RetiredChain& chain : retired) {
    recycled += chain.owner->RecycleChain(chain.head);
  }
  EXPECT_EQ(recycled, 2u);
}

TEST(VersionArenaTest, BumpAllocationSpansChunks) {
  VersionArena arena;
  std::vector<VersionNode*> nodes;
  const size_t total = VersionArena::kNodesPerChunk * 2 + 10;
  for (size_t i = 0; i < total; ++i) {
    VersionNode* node = arena.Allocate();
    node->value = i;
    node->ts = i;
    node->next = nullptr;
    nodes.push_back(node);
  }
  EXPECT_EQ(arena.allocated_chunks(), 3u);
  EXPECT_EQ(arena.reused_nodes(), 0u);
  // Addresses are stable and distinct; values survive later allocations.
  for (size_t i = 0; i < total; ++i) {
    ASSERT_EQ(nodes[i]->value, i);
  }
}

TEST(VersionArenaTest, RecycledNodesAreReusedBeforeBumping) {
  VersionArena arena;
  VersionNode* a = arena.Allocate();
  VersionNode* b = arena.Allocate();
  a->next = b;
  b->next = nullptr;
  arena.Recycle(a);  // pushes the 2-node chain onto the free list
  VersionNode* r1 = arena.Allocate();
  VersionNode* r2 = arena.Allocate();
  EXPECT_EQ(arena.reused_nodes(), 2u);
  // LIFO reuse of exactly the recycled nodes, in some order.
  EXPECT_TRUE((r1 == a && r2 == b) || (r1 == b && r2 == a));
  // Free list exhausted: next allocation bumps again.
  VersionNode* fresh = arena.Allocate();
  EXPECT_NE(fresh, a);
  EXPECT_NE(fresh, b);
  EXPECT_EQ(arena.reused_nodes(), 2u);
}

TEST(VersionStoreTest, ChainsSurviveEpochHandOverAndSegmentDrop) {
  // The arena travels with the sealed segment: resolving through the
  // prev-link touches nodes owned by the sealed segment's arena, and
  // dropping the last reference to the segment releases them all at once
  // (ASan would flag any use-after-free here).
  VersionStore store(10);
  store.AddVersion(0, 100, 2);
  std::shared_ptr<ChainDirectory> sealed = store.SealEpoch(3);
  store.AddVersion(0, 200, 5);

  // Reader older than the seal resolves into the sealed segment's arena.
  EXPECT_EQ(store.ResolveVisible(0, 1, 400), 100u);
  EXPECT_EQ(store.ResolveVisible(0, 4, 400), 200u);

  // Retire the epoch: cut the prev-link, drop the last segment reference.
  store.current()->DropPrev();
  EXPECT_EQ(sealed.use_count(), 1);
  sealed.reset();

  // The current segment's own chains are untouched.
  EXPECT_EQ(store.ResolveVisible(0, 4, 400), 200u);
  EXPECT_EQ(store.ResolveVisible(0, 5, 400), 400u);
}

TEST(VersionStoreTest, RetiredChainOutlivesSealedSegment) {
  // A retire-list entry keeps the sealed segment (and its arena) alive via
  // the owner reference even after the store seals and drops the segment.
  VersionStore store(10);
  store.AddVersion(0, 1, 2);
  store.AddVersion(0, 2, 3);
  std::vector<RetiredChain> retired;
  ASSERT_EQ(store.TruncateOlderThan(10, &retired), 2u);
  ASSERT_EQ(retired.size(), 1u);

  std::shared_ptr<ChainDirectory> sealed = store.SealEpoch(4);
  store.current()->DropPrev();
  sealed.reset();  // the retire list now holds the only reference

  EXPECT_EQ(retired[0].head->ts, 3u);  // still valid memory
  EXPECT_EQ(retired[0].owner->RecycleChain(retired[0].head), 2u);
  retired.clear();  // drops the segment and its arena
}

TEST(VersionStoreTest, ConcurrentReadersDuringWrites) {
  // Single writer pushing versions, several readers resolving concurrently;
  // every read must return a value consistent with the row's history
  // (row value at ts t is t for our encoding).
  VersionStore store(kRowsPerBlock);
  std::atomic<uint64_t> slot{0};
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> committed_ts{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(r + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const uint64_t read_ts = committed_ts.load(std::memory_order_acquire);
        const uint64_t observed_slot = slot.load(std::memory_order_acquire);
        const uint64_t value = store.ResolveVisible(7, read_ts, observed_slot);
        // History: value at timestamp t equals the largest commit ts <= t.
        ASSERT_LE(value, read_ts + 2);  // never from the future beyond race
      }
    });
  }

  for (uint64_t ts = 1; ts <= 20000; ++ts) {
    // Writer protocol: push node (old value), then overwrite slot.
    store.AddVersion(7, slot.load(std::memory_order_relaxed), ts);
    slot.store(ts, std::memory_order_release);
    committed_ts.store(ts, std::memory_order_release);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
}

}  // namespace
}  // namespace anker::mvcc
