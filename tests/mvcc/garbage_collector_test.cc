#include "mvcc/garbage_collector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace anker::mvcc {
namespace {

struct GcFixture {
  TimestampOracle oracle;
  ActiveTxnRegistry registry;
  VersionStore store{1000};

  GarbageCollector MakeGc(int interval_ms = 10) {
    return GarbageCollector([this] { return std::vector<VersionStore*>{
                                         &store}; },
                            &registry, &oracle, interval_ms);
  }
};

TEST(GarbageCollectorTest, CollectsVersionsOlderThanOldestTxn) {
  GcFixture f;
  // Three versions at ts 1, 2, 3 (oracle advanced accordingly).
  for (int i = 0; i < 5; ++i) f.oracle.Next();
  f.store.AddVersion(0, 10, 1);
  f.store.AddVersion(0, 20, 2);
  f.store.AddVersion(0, 30, 3);

  auto gc = f.MakeGc();
  // No active transactions: everything up to oracle.Current() is dead.
  const size_t unlinked = gc.CollectOnce();
  EXPECT_EQ(unlinked, 3u);
  EXPECT_EQ(gc.total_unlinked(), 3u);
  gc.Stop();  // forces the retire list to drain
  EXPECT_EQ(gc.total_freed(), 3u);
}

TEST(GarbageCollectorTest, ActiveTxnPinsVersions) {
  GcFixture f;
  for (int i = 0; i < 10; ++i) f.oracle.Next();
  f.store.AddVersion(0, 10, 2);
  f.store.AddVersion(0, 20, 6);

  const uint64_t serial = f.registry.Begin(4);  // reader at start_ts 4
  auto gc = f.MakeGc();
  const size_t unlinked = gc.CollectOnce();
  // The ts-2 node is dead even for the ts-4 reader; the ts-6 node is the
  // one providing the reader's visible value and must stay.
  EXPECT_EQ(unlinked, 1u);
  EXPECT_EQ(f.store.ResolveVisible(0, 4, 99), 20u);
  f.registry.End(serial);
  gc.Stop();
}

TEST(GarbageCollectorTest, RetireListWaitsForReaders) {
  GcFixture f;
  for (int i = 0; i < 10; ++i) f.oracle.Next();
  f.store.AddVersion(0, 10, 2);

  // A reader began before the unlink; freeing must be deferred.
  const uint64_t reader = f.registry.Begin(9);
  auto gc = f.MakeGc();
  gc.CollectOnce();
  EXPECT_EQ(gc.total_unlinked(), 1u);
  EXPECT_EQ(gc.total_freed(), 0u);
  EXPECT_EQ(gc.retired_pending(), 1u);

  f.registry.End(reader);
  gc.CollectOnce();  // drain happens on the next pass
  EXPECT_EQ(gc.total_freed(), 1u);
  gc.Stop();
}

TEST(GarbageCollectorTest, BackgroundThreadCollects) {
  GcFixture f;
  for (int i = 0; i < 10; ++i) f.oracle.Next();
  f.store.AddVersion(0, 1, 1);
  f.store.AddVersion(1, 2, 2);

  auto gc = f.MakeGc(/*interval_ms=*/5);
  gc.Start();
  for (int i = 0; i < 100 && gc.total_unlinked() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  gc.Stop();
  EXPECT_EQ(gc.total_unlinked(), 2u);
  EXPECT_EQ(gc.total_freed(), 2u);
}

TEST(GarbageCollectorTest, IdempotentStartStop) {
  GcFixture f;
  auto gc = f.MakeGc();
  gc.Start();
  gc.Start();  // no-op
  gc.Stop();
  gc.Stop();  // no-op
  SUCCEED();
}

}  // namespace
}  // namespace anker::mvcc
