#include "mvcc/active_txn_registry.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace anker::mvcc {
namespace {

TEST(ActiveTxnRegistryTest, EmptyUsesFallback) {
  ActiveTxnRegistry registry;
  EXPECT_EQ(registry.MinStartTs(42), 42u);
  EXPECT_EQ(registry.MinActiveSerial(), UINT64_MAX);
  EXPECT_EQ(registry.ActiveCount(), 0u);
}

TEST(ActiveTxnRegistryTest, TracksMinimumStartTs) {
  ActiveTxnRegistry registry;
  const uint64_t s1 = registry.Begin(10);
  const uint64_t s2 = registry.Begin(5);
  const uint64_t s3 = registry.Begin(20);
  EXPECT_EQ(registry.MinStartTs(0), 5u);
  registry.End(s2);
  EXPECT_EQ(registry.MinStartTs(0), 10u);
  registry.End(s1);
  EXPECT_EQ(registry.MinStartTs(0), 20u);
  registry.End(s3);
  EXPECT_EQ(registry.MinStartTs(99), 99u);
}

TEST(ActiveTxnRegistryTest, SerialsAreMonotonic) {
  ActiveTxnRegistry registry;
  const uint64_t a = registry.Begin(1);
  const uint64_t b = registry.Begin(1);
  EXPECT_LT(a, b);
  EXPECT_EQ(registry.CurrentSerial(), b);
  EXPECT_EQ(registry.MinActiveSerial(), a);
  registry.End(a);
  EXPECT_EQ(registry.MinActiveSerial(), b);
  registry.End(b);
}

TEST(ActiveTxnRegistryTest, EndUnknownSerialDies) {
  ActiveTxnRegistry registry;
  EXPECT_DEATH(registry.End(12345), "unknown transaction serial");
}

TEST(ActiveTxnRegistryTest, ConcurrentBeginEnd) {
  ActiveTxnRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const uint64_t serial = registry.Begin(t * 1000 + i);
        registry.End(serial);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(registry.ActiveCount(), 0u);
  EXPECT_EQ(registry.CurrentSerial(), 16000u);
}

}  // namespace
}  // namespace anker::mvcc
