#include "txn/recent_committers.h"

#include <gtest/gtest.h>

#include "snapshot/snapshotable_buffer.h"
#include "vm/page.h"

namespace anker::txn {
namespace {

// A predicate needs a typed column; build a tiny real one.
std::unique_ptr<storage::Column> MakeColumn(storage::ValueType type) {
  auto buffer =
      snapshot::CreateBuffer(snapshot::BufferBackend::kPlain, vm::kPageSize);
  EXPECT_TRUE(buffer.ok());
  return std::make_unique<storage::Column>("c", type, buffer.TakeValue(),
                                           vm::kPageSize / 8);
}

TEST(RecentCommittersTest, EmptyValidatesEverything) {
  RecentCommitters recent;
  EXPECT_TRUE(recent.Validate(0, {}, {}).ok());
}

TEST(RecentCommittersTest, PointReadConflictAborts) {
  auto column = MakeColumn(storage::ValueType::kInt64);
  RecentCommitters recent;
  recent.Record(10, {WriteRecord{column.get(), 5, 1, 2}});

  // A txn started before the commit and read the written row -> abort.
  const std::vector<PointRead> reads = {{column.get(), 5}};
  EXPECT_TRUE(recent.Validate(8, reads, {}).IsAborted());
  // Different row -> fine.
  const std::vector<PointRead> other = {{column.get(), 6}};
  EXPECT_TRUE(recent.Validate(8, other, {}).ok());
  // Started after the commit -> fine.
  EXPECT_TRUE(recent.Validate(10, reads, {}).ok());
}

TEST(RecentCommittersTest, PredicateIntersectionChecksOldAndNewValue) {
  auto column = MakeColumn(storage::ValueType::kInt64);
  RecentCommitters recent;
  // Write moved the value 100 -> 999.
  recent.Record(10, {WriteRecord{column.get(), 0,
                                 storage::EncodeInt64(100),
                                 storage::EncodeInt64(999)}});

  // Predicate [50, 150] matches the OLD value: the row left the range.
  const std::vector<PredicateRange> p1 = {
      {column.get(), storage::EncodeInt64(50), storage::EncodeInt64(150)}};
  EXPECT_TRUE(recent.Validate(5, {}, p1).IsAborted());

  // Predicate [900, 1000] matches the NEW value: the row entered the range.
  const std::vector<PredicateRange> p2 = {
      {column.get(), storage::EncodeInt64(900), storage::EncodeInt64(1000)}};
  EXPECT_TRUE(recent.Validate(5, {}, p2).IsAborted());

  // Predicate [0, 50] matches neither -> serializable.
  const std::vector<PredicateRange> p3 = {
      {column.get(), storage::EncodeInt64(0), storage::EncodeInt64(50)}};
  EXPECT_TRUE(recent.Validate(5, {}, p3).ok());
}

TEST(RecentCommittersTest, DoublePredicatesCompareInValueDomain) {
  auto column = MakeColumn(storage::ValueType::kDouble);
  RecentCommitters recent;
  recent.Record(10, {WriteRecord{column.get(), 0,
                                 storage::EncodeDouble(0.05),
                                 storage::EncodeDouble(0.07)}});
  const std::vector<PredicateRange> range = {
      {column.get(), storage::EncodeDouble(0.06),
       storage::EncodeDouble(0.08)}};
  EXPECT_TRUE(recent.Validate(5, {}, range).IsAborted());
  const std::vector<PredicateRange> miss = {
      {column.get(), storage::EncodeDouble(0.10),
       storage::EncodeDouble(0.20)}};
  EXPECT_TRUE(recent.Validate(5, {}, miss).ok());
}

TEST(RecentCommittersTest, OnlyCommitsDuringLifetimeMatter) {
  auto column = MakeColumn(storage::ValueType::kInt64);
  RecentCommitters recent;
  recent.Record(3, {WriteRecord{column.get(), 1, 0, 1}});
  recent.Record(7, {WriteRecord{column.get(), 2, 0, 1}});
  const std::vector<PointRead> reads = {{column.get(), 1}};
  // Start ts 5: the ts-3 commit predates the txn -> visible, not stale.
  EXPECT_TRUE(recent.Validate(5, reads, {}).ok());
  const std::vector<PointRead> reads2 = {{column.get(), 2}};
  EXPECT_TRUE(recent.Validate(5, reads2, {}).IsAborted());
}

TEST(RecentCommittersTest, TrimmedWindowAbortsConservatively) {
  auto column = MakeColumn(storage::ValueType::kInt64);
  RecentCommitters recent(/*max_entries=*/2);
  recent.Record(3, {WriteRecord{column.get(), 0, 0, 1}});
  recent.Record(5, {WriteRecord{column.get(), 0, 1, 2}});
  recent.Record(7, {WriteRecord{column.get(), 0, 2, 3}});  // trims ts 3
  // A txn whose lifetime began before the trimmed entry can't be validated.
  EXPECT_TRUE(recent.Validate(1, {}, {}).IsAborted());
  // A young transaction validates normally.
  EXPECT_TRUE(recent.Validate(7, {}, {}).ok());
}

TEST(RecentCommittersTest, TrimOlderThanDropsEntries) {
  auto column = MakeColumn(storage::ValueType::kInt64);
  RecentCommitters recent;
  recent.Record(3, {});
  recent.Record(5, {});
  recent.Record(9, {});
  EXPECT_EQ(recent.size(), 3u);
  recent.TrimOlderThan(6);
  EXPECT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent.OldestRetained(), 9u);
}

}  // namespace
}  // namespace anker::txn
