#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "storage/column.h"
#include "vm/page.h"

namespace anker::txn {
namespace {

struct Fixture {
  explicit Fixture(ProcessingMode mode = ProcessingMode::kHomogeneousSerializable)
      : manager(mode) {
    auto buffer = snapshot::CreateBuffer(snapshot::BufferBackend::kPlain,
                                         vm::kPageSize);
    ANKER_CHECK(buffer.ok());
    column = std::make_unique<storage::Column>(
        "c", storage::ValueType::kInt64, buffer.TakeValue(), 512);
    for (size_t row = 0; row < 512; ++row) {
      column->LoadValue(row, storage::EncodeInt64(0));
    }
  }

  TransactionManager manager;
  std::unique_ptr<storage::Column> column;
};

TEST(TransactionManagerTest, CommitMaterializesWrites) {
  Fixture f;
  auto txn = f.manager.Begin(TxnType::kOltp);
  txn->Write(f.column.get(), 3, 33);
  ASSERT_TRUE(f.manager.Commit(txn.get()).ok());
  EXPECT_EQ(f.column->ReadLatestRaw(3), 33u);
  EXPECT_EQ(f.manager.stats().commits, 1u);
}

TEST(TransactionManagerTest, AbortDiscardsWrites) {
  Fixture f;
  auto txn = f.manager.Begin(TxnType::kOltp);
  txn->Write(f.column.get(), 3, 33);
  f.manager.Abort(txn.get());
  EXPECT_EQ(f.column->ReadLatestRaw(3), 0u);
  EXPECT_EQ(f.manager.stats().user_aborts, 1u);
}

TEST(TransactionManagerTest, ReadYourOwnWrites) {
  Fixture f;
  auto txn = f.manager.Begin(TxnType::kOltp);
  txn->Write(f.column.get(), 5, 55);
  EXPECT_EQ(txn->Read(f.column.get(), 5), 55u);
  f.manager.Abort(txn.get());
}

TEST(TransactionManagerTest, UncommittedWritesInvisibleToOthers) {
  Fixture f;
  auto writer = f.manager.Begin(TxnType::kOltp);
  writer->Write(f.column.get(), 5, 55);
  auto reader = f.manager.Begin(TxnType::kOltp);
  EXPECT_EQ(reader->Read(f.column.get(), 5), 0u);
  f.manager.Abort(writer.get());
  f.manager.Abort(reader.get());
}

TEST(TransactionManagerTest, SnapshotReadsOldVersionAfterCommit) {
  Fixture f;
  auto old_reader = f.manager.Begin(TxnType::kOltp);
  auto writer = f.manager.Begin(TxnType::kOltp);
  writer->Write(f.column.get(), 7, 77);
  ASSERT_TRUE(f.manager.Commit(writer.get()).ok());
  // The reader began before the commit: it must still see the old value.
  EXPECT_EQ(old_reader->Read(f.column.get(), 7), 0u);
  // A fresh transaction sees the new value.
  auto new_reader = f.manager.Begin(TxnType::kOltp);
  EXPECT_EQ(new_reader->Read(f.column.get(), 7), 77u);
  f.manager.Abort(old_reader.get());
  f.manager.Abort(new_reader.get());
}

TEST(TransactionManagerTest, FirstCommitterWins) {
  Fixture f;
  auto t1 = f.manager.Begin(TxnType::kOltp);
  auto t2 = f.manager.Begin(TxnType::kOltp);
  t1->Write(f.column.get(), 9, 1);
  t2->Write(f.column.get(), 9, 2);
  ASSERT_TRUE(f.manager.Commit(t1.get()).ok());
  const Status second = f.manager.Commit(t2.get());
  EXPECT_TRUE(second.IsAborted());
  EXPECT_EQ(f.column->ReadLatestRaw(9), 1u);
  EXPECT_EQ(f.manager.stats().aborts_ww, 1u);
}

TEST(TransactionManagerTest, DisjointWritesBothCommit) {
  Fixture f;
  auto t1 = f.manager.Begin(TxnType::kOltp);
  auto t2 = f.manager.Begin(TxnType::kOltp);
  t1->Write(f.column.get(), 1, 11);
  t2->Write(f.column.get(), 2, 22);
  EXPECT_TRUE(f.manager.Commit(t1.get()).ok());
  EXPECT_TRUE(f.manager.Commit(t2.get()).ok());
  EXPECT_EQ(f.column->ReadLatestRaw(1), 11u);
  EXPECT_EQ(f.column->ReadLatestRaw(2), 22u);
}

TEST(TransactionManagerTest, SerializableAbortsStaleRead) {
  Fixture f(ProcessingMode::kHomogeneousSerializable);
  // T reads row 4, then a concurrent txn commits a write to row 4, then T
  // tries to commit a dependent write elsewhere -> stale read -> abort.
  auto t = f.manager.Begin(TxnType::kOltp);
  EXPECT_EQ(t->Read(f.column.get(), 4), 0u);
  t->Write(f.column.get(), 100, 1);

  auto interferer = f.manager.Begin(TxnType::kOltp);
  interferer->Write(f.column.get(), 4, 44);
  ASSERT_TRUE(f.manager.Commit(interferer.get()).ok());

  EXPECT_TRUE(f.manager.Commit(t.get()).IsAborted());
  EXPECT_EQ(f.manager.stats().aborts_validation, 1u);
  EXPECT_EQ(f.column->ReadLatestRaw(100), 0u);
}

TEST(TransactionManagerTest, SnapshotIsolationAllowsWriteSkew) {
  // The same interleaving commits under SI (write-skew anomaly permitted,
  // paper Section 2.1).
  Fixture f(ProcessingMode::kHomogeneousSnapshotIsolation);
  auto t = f.manager.Begin(TxnType::kOltp);
  EXPECT_EQ(t->Read(f.column.get(), 4), 0u);
  t->Write(f.column.get(), 100, 1);

  auto interferer = f.manager.Begin(TxnType::kOltp);
  interferer->Write(f.column.get(), 4, 44);
  ASSERT_TRUE(f.manager.Commit(interferer.get()).ok());

  EXPECT_TRUE(f.manager.Commit(t.get()).ok());
  EXPECT_EQ(f.column->ReadLatestRaw(100), 1u);
}

TEST(TransactionManagerTest, PredicateValidationAborts) {
  Fixture f(ProcessingMode::kHomogeneousSerializable);
  auto scanner = f.manager.Begin(TxnType::kOltp);
  // The scanner filtered on values in [0, 10] over the column.
  scanner->AddPredicate(f.column.get(), storage::EncodeInt64(0),
                        storage::EncodeInt64(10));
  scanner->Write(f.column.get(), 200, 1);  // make it a writer

  auto mover = f.manager.Begin(TxnType::kOltp);
  mover->Write(f.column.get(), 50, storage::EncodeInt64(5));  // enters range
  ASSERT_TRUE(f.manager.Commit(mover.get()).ok());

  EXPECT_TRUE(f.manager.Commit(scanner.get()).IsAborted());
}

TEST(TransactionManagerTest, ReadOnlyCommitsWithoutValidation) {
  Fixture f(ProcessingMode::kHomogeneousSerializable);
  auto reader = f.manager.Begin(TxnType::kOlap);
  reader->AddPredicate(f.column.get(), 0, UINT64_MAX);
  (void)reader->Read(f.column.get(), 1);

  auto writer = f.manager.Begin(TxnType::kOltp);
  writer->Write(f.column.get(), 1, 11);
  ASSERT_TRUE(f.manager.Commit(writer.get()).ok());

  // Read-only transactions see a consistent snapshot at start_ts and are
  // serializable at that point; they never abort.
  EXPECT_TRUE(f.manager.Commit(reader.get()).ok());
}

TEST(TransactionManagerTest, CommitHookFiresWithCount) {
  Fixture f;
  std::vector<uint64_t> seen;
  f.manager.SetCommitHook([&](uint64_t commits) { seen.push_back(commits); });
  for (int i = 0; i < 3; ++i) {
    auto txn = f.manager.Begin(TxnType::kOltp);
    txn->Write(f.column.get(), static_cast<uint64_t>(i), 1);
    ASSERT_TRUE(f.manager.Commit(txn.get()).ok());
  }
  EXPECT_EQ(seen, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(TransactionManagerTest, ConcurrentCountersConsistent) {
  Fixture f;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = f.manager.Begin(TxnType::kOltp);
        // Heavy contention on 8 rows: many ww-aborts expected.
        txn->Write(f.column.get(), static_cast<uint64_t>(i % 8),
                   static_cast<uint64_t>(t));
        (void)f.manager.Commit(txn.get());
      }
    });
  }
  for (auto& th : threads) th.join();
  const TxnStats stats = f.manager.stats();
  EXPECT_EQ(stats.commits + stats.aborts_ww + stats.aborts_validation,
            static_cast<uint64_t>(kThreads * kPerThread));
  EXPECT_GT(stats.commits, 0u);
  EXPECT_EQ(f.manager.registry().ActiveCount(), 0u);
}

TEST(TransactionManagerTest, ReadersNeverObserveTornCommits) {
  // Regression: Begin() must not hand out a start timestamp beyond an
  // in-flight commit whose writes are still being materialized row by
  // row — a reader stamped in that window saw one half of a transfer
  // (the read-visibility watermark fixes this). A writer moves value
  // between two rows keeping the sum constant; readers check the sum.
  // Wide transactions keep the commit's apply loop (the race window)
  // open long enough for a reader to start inside it.
  constexpr size_t kRows = 128;
  constexpr int64_t kInitial = 1000;
  Fixture f;
  for (size_t row = 0; row < kRows; ++row) {
    f.column->LoadValue(row, storage::EncodeInt64(kInitial));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int64_t direction = 1;
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = f.manager.Begin(TxnType::kOltp);
      for (size_t row = 0; row < kRows; ++row) {
        const int64_t value =
            storage::DecodeInt64(txn->Read(f.column.get(), row));
        const int64_t delta = row < kRows / 2 ? direction : -direction;
        txn->Write(f.column.get(), row,
                   storage::EncodeInt64(value + delta));
      }
      (void)f.manager.Commit(txn.get());
      direction = -direction;
    }
  });

  for (int round = 0; round < 3000; ++round) {
    auto reader = f.manager.Begin(TxnType::kOlap);
    int64_t sum = 0;
    for (size_t row = 0; row < kRows; ++row) {
      sum += storage::DecodeInt64(reader->Read(f.column.get(), row));
    }
    f.manager.Abort(reader.get());
    ASSERT_EQ(sum, static_cast<int64_t>(kRows) * kInitial)
        << "torn commit observed in round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
}

TEST(TransactionManagerTest, SerialHistoryMatchesSequentialApplication) {
  // Single-threaded sequence of committed transactions must behave exactly
  // like applying the writes in commit order.
  Fixture f;
  uint64_t expected = 0;
  for (int i = 1; i <= 50; ++i) {
    auto txn = f.manager.Begin(TxnType::kOltp);
    const uint64_t read = txn->Read(f.column.get(), 0);
    EXPECT_EQ(read, expected);
    txn->Write(f.column.get(), 0, read + 1);
    ASSERT_TRUE(f.manager.Commit(txn.get()).ok());
    expected = read + 1;
  }
  EXPECT_EQ(f.column->ReadLatestRaw(0), 50u);
}

}  // namespace
}  // namespace anker::txn
