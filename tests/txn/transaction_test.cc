#include "txn/transaction.h"

#include <gtest/gtest.h>

#include "storage/column.h"
#include "vm/page.h"

namespace anker::txn {
namespace {

std::unique_ptr<storage::Column> MakeColumn() {
  auto buffer =
      snapshot::CreateBuffer(snapshot::BufferBackend::kPlain, vm::kPageSize);
  EXPECT_TRUE(buffer.ok());
  return std::make_unique<storage::Column>("c", storage::ValueType::kInt64,
                                           buffer.TakeValue(), 512);
}

TEST(TransactionTest, StartsReadOnly) {
  Transaction txn(1, 10, 1, TxnType::kOltp);
  EXPECT_TRUE(txn.read_only());
  EXPECT_EQ(txn.start_ts(), 10u);
  EXPECT_EQ(txn.type(), TxnType::kOltp);
}

TEST(TransactionTest, SecondWriteToSameSlotOverwritesFirst) {
  auto column = MakeColumn();
  Transaction txn(1, 10, 1, TxnType::kOltp);
  txn.Write(column.get(), 3, 100);
  txn.Write(column.get(), 3, 200);
  ASSERT_EQ(txn.writes().size(), 1u);
  EXPECT_EQ(txn.writes()[0].new_raw, 200u);
  EXPECT_EQ(txn.Read(column.get(), 3), 200u);
}

TEST(TransactionTest, WritesToDistinctSlotsAccumulate) {
  auto column = MakeColumn();
  auto other = MakeColumn();
  Transaction txn(1, 10, 1, TxnType::kOltp);
  txn.Write(column.get(), 1, 11);
  txn.Write(column.get(), 2, 22);
  txn.Write(other.get(), 1, 33);  // same row, different column
  EXPECT_EQ(txn.writes().size(), 3u);
  EXPECT_FALSE(txn.read_only());
}

TEST(TransactionTest, ReadRecordsPointReadOnlyForDatabaseReads) {
  auto column = MakeColumn();
  Transaction txn(1, 10, 1, TxnType::kOltp);
  (void)txn.Read(column.get(), 5);        // database read -> recorded
  txn.Write(column.get(), 6, 1);
  (void)txn.Read(column.get(), 6);        // own write -> not recorded
  ASSERT_EQ(txn.point_reads().size(), 1u);
  EXPECT_EQ(txn.point_reads()[0].row, 5u);
}

TEST(TransactionTest, PredicatesAccumulate) {
  auto column = MakeColumn();
  Transaction txn(1, 10, 1, TxnType::kOlap);
  txn.AddPredicate(column.get(), 1, 5);
  txn.AddPredicate(column.get(), 10, 20);
  ASSERT_EQ(txn.predicates().size(), 2u);
  EXPECT_TRUE(txn.predicates()[0].Matches(3));
  EXPECT_FALSE(txn.predicates()[0].Matches(7));
}

}  // namespace
}  // namespace anker::txn
