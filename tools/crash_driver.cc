// Kill-point recovery workload driver (tools/crash_driver).
//
// Two subcommands, driven by scripts/crash_recovery_harness.py:
//
//   crash_driver --mode=run --dir=D [...]
//     Creates a durable database in D, loads a deterministic ledger,
//     writes the bootstrap checkpoint, prints "READY" and then hammers it
//     with transfer transactions until SIGKILLed. After every
//     acknowledged commit the worker appends the transaction's serial to
//     an fsynced side file (acks-<t>.bin) — independent evidence of what
//     the engine promised to keep.
//
//   crash_driver --mode=verify --dir=D [...]
//     Recovers via Database::Open and checks, in order of strength:
//       1. conservation: sum(balance) equals the loaded total — a torn
//          transfer would break it (atomicity across rows and columns);
//       2. durability: every acknowledged serial is present (group_commit
//          only — lazy is allowed to lose a bounded recent suffix);
//       3. exactness (single-threaded runs): the recovered ContentDigest
//          equals a from-scratch in-memory re-simulation of exactly the
//          recovered number of transactions — the state is not just
//          plausible, it is bit-identical to a legal prefix.
//
// The workload is deterministic per (seed, thread, serial), which is what
// makes check 3 possible without any channel between run and verify.
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "engine/database.h"
#include "wal/io_util.h"

namespace anker {
namespace {

constexpr size_t kMetaRows = 16;  ///< Fixed: digest-stable across --threads.

struct DriverOptions {
  std::string dir;
  wal::DurabilityMode durability = wal::DurabilityMode::kGroupCommit;
  size_t threads = 1;
  size_t accounts = 1024;
  uint64_t seed = 7;
  uint64_t ckpt_every = 4000;      ///< Auto-checkpoint cadence (commits).
  size_t segment_bytes = 1 << 16;  ///< Small: kills land mid-rotation too.
  uint64_t cold_budget = 0;        ///< >0: cold tier on + archive workload.
  size_t cold_segment_rows = 1024;
};

/// Rows of the version-free archive table the cold iterations spill and
/// fault back in; immutable after load, so its recovered content is a
/// pure function of the bootstrap (no WAL records involved).
constexpr size_t kArchiveRows = 16384;

int64_t ArchiveValue(size_t row) {
  return static_cast<int64_t>((row * 2654435761u) ^ (row >> 3));
}

int64_t InitialBalance(size_t row) {
  return 1000 + static_cast<int64_t>((row * 37) % 1000);
}

int64_t ExpectedTotal(size_t accounts) {
  int64_t total = 0;
  for (size_t row = 0; row < accounts; ++row) total += InitialBalance(row);
  return total;
}

engine::DatabaseConfig MakeConfig(const DriverOptions& options,
                                  bool durable) {
  engine::DatabaseConfig config;  // Heterogeneous default.
  if (durable) {
    config.durability = options.durability;
    config.data_dir = options.dir;
    config.wal_segment_bytes = options.segment_bytes;
    config.checkpoint_interval_commits = options.ckpt_every;
    config.cold_budget_bytes = options.cold_budget;
    config.cold_segment_rows = options.cold_segment_rows;
  }
  return config;
}

/// The archive table exists whenever the cold tier is exercised — in the
/// durable instance AND in verify's in-memory re-simulation (which never
/// tiers), so the content digests stay comparable.
Status CreateTables(engine::Database* db, const DriverOptions& options,
                    storage::Table** ledger, storage::Table** meta,
                    storage::Table** archive) {
  auto ledger_r = db->CreateTable(
      "ledger", {{"balance", storage::ValueType::kInt64}}, options.accounts);
  ANKER_RETURN_IF_ERROR(ledger_r.status());
  *ledger = ledger_r.value();
  auto meta_r = db->CreateTable(
      "meta", {{"serial", storage::ValueType::kInt64}}, kMetaRows);
  ANKER_RETURN_IF_ERROR(meta_r.status());
  *meta = meta_r.value();
  *archive = nullptr;
  if (options.cold_budget > 0) {
    auto archive_r = db->CreateTable(
        "archive", {{"value", storage::ValueType::kInt64}}, kArchiveRows);
    ANKER_RETURN_IF_ERROR(archive_r.status());
    *archive = archive_r.value();
    storage::Column* value = (*archive)->GetColumn("value");
    for (size_t row = 0; row < kArchiveRows; ++row) {
      value->LoadValue(row, storage::EncodeInt64(ArchiveValue(row)));
    }
  }
  return Status::OK();
}

void LoadLedger(storage::Table* ledger, const DriverOptions& options) {
  storage::Column* balance = ledger->GetColumn("balance");
  for (size_t row = 0; row < options.accounts; ++row) {
    balance->LoadValue(row, storage::EncodeInt64(InitialBalance(row)));
  }
}

/// One transfer transaction, fully determined by (seed, thread, serial).
/// Returns the commit status.
Status RunTransfer(engine::Database* db, storage::Table* ledger,
                   storage::Table* meta, const DriverOptions& options,
                   size_t thread, uint64_t serial) {
  Rng rng(options.seed ^ (0x9E3779B97F4A7C15ULL * (thread + 1)) ^
          (0xC2B2AE3D27D4EB4FULL * serial));
  storage::Column* balance = ledger->GetColumn("balance");
  storage::Column* serial_col = meta->GetColumn("serial");

  const uint64_t from = rng.NextBounded(options.accounts);
  uint64_t to = rng.NextBounded(options.accounts - 1);
  if (to >= from) ++to;
  const int64_t amount = rng.NextInRange(1, 100);

  auto txn = db->BeginOltp();
  const int64_t from_balance =
      storage::DecodeInt64(txn->Read(balance, from));
  const int64_t to_balance = storage::DecodeInt64(txn->Read(balance, to));
  txn->Write(balance, from, storage::EncodeInt64(from_balance - amount));
  txn->Write(balance, to, storage::EncodeInt64(to_balance + amount));
  txn->Write(serial_col, thread, storage::EncodeInt64(
                                     static_cast<int64_t>(serial)));
  return db->Commit(txn.get());
}

// --- run mode -------------------------------------------------------------

int RunMode(const DriverOptions& options) {
  engine::Database db(MakeConfig(options, /*durable=*/true));
  db.Start();
  storage::Table* ledger = nullptr;
  storage::Table* meta = nullptr;
  storage::Table* archive = nullptr;
  Status s = CreateTables(&db, options, &ledger, &meta, &archive);
  if (!s.ok()) {
    std::fprintf(stderr, "create tables: %s\n", s.ToString().c_str());
    return 1;
  }
  LoadLedger(ledger, options);
  // Bootstrap checkpoint: the bulk load is not WAL-logged; this makes it
  // durable before any transaction is acknowledged.
  auto ckpt = db.Checkpoint();
  if (!ckpt.ok()) {
    std::fprintf(stderr, "bootstrap checkpoint: %s\n",
                 ckpt.status().ToString().c_str());
    return 1;
  }
  std::printf("READY\n");
  std::fflush(stdout);

  std::atomic<bool> failed{false};
  std::vector<std::thread> workers;
  // Cold churn: spill everything spillable, fault a few archive rows back
  // in, repeat. Keeps extent publication / eviction / fault-in active the
  // whole run, so a randomized SIGKILL (or an armed extent.publish.* /
  // ckpt.publish.* fault point) lands inside the cold tier's protocols.
  if (options.cold_budget > 0) {
    workers.emplace_back([&db, archive, &failed] {
      storage::Column* value = archive->GetColumn("value");
      for (uint64_t tick = 0; !failed.load(std::memory_order_relaxed);
           ++tick) {
        (void)db.SpillColdData();  // Best effort, like the budget enforcer.
        for (uint64_t i = 0; i < 4; ++i) {
          const size_t row = (tick * 131 + i * 4099) % kArchiveRows;
          (void)value->ReadLatestRaw(row);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (size_t t = 0; t < options.threads; ++t) {
    workers.emplace_back([&, t] {
      const std::string ack_path =
          options.dir + "/acks-" + std::to_string(t) + ".bin";
      const int ack_fd =
          ::open(ack_path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
      if (ack_fd < 0) {
        failed.store(true);
        return;
      }
      for (uint64_t serial = 1; !failed.load(std::memory_order_relaxed);
           ++serial) {
        for (;;) {  // Retry aborts: serial must eventually commit.
          const Status commit =
              RunTransfer(&db, ledger, meta, options, t, serial);
          if (commit.ok()) break;
          if (!commit.IsAborted()) {
            std::fprintf(stderr, "thread %zu serial %" PRIu64 ": %s\n", t,
                         serial, commit.ToString().c_str());
            failed.store(true);
            return;
          }
        }
        // The commit is durable (group_commit) — only now acknowledge it
        // in the side channel the verifier trusts.
        uint64_t raw = serial;
        if (::write(ack_fd, &raw, sizeof(raw)) != sizeof(raw) ||
            ::fdatasync(ack_fd) != 0) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();  // Unreachable unless a worker failed.
  return failed.load() ? 1 : 0;
}

// --- verify mode ----------------------------------------------------------

uint64_t LastAckedSerial(const std::string& dir, size_t thread) {
  std::string data;
  const Status s =
      wal::ReadFile(dir + "/acks-" + std::to_string(thread) + ".bin", &data);
  if (!s.ok()) return 0;
  const size_t records = data.size() / sizeof(uint64_t);  // Ignore torn tail.
  if (records == 0) return 0;
  uint64_t serial = 0;
  std::memcpy(&serial, data.data() + (records - 1) * sizeof(uint64_t),
              sizeof(serial));
  return serial;
}

int Fail(const char* what) {
  std::fprintf(stderr, "VERIFY FAILED: %s\n", what);
  return 2;
}

int VerifyMode(const DriverOptions& options) {
  engine::DatabaseConfig config = MakeConfig(options, /*durable=*/true);
  config.checkpoint_interval_commits = 0;  // Just inspect, no new work.
  auto opened = engine::Database::Open(config);
  if (!opened.ok()) {
    std::fprintf(stderr, "VERIFY FAILED: Open: %s\n",
                 opened.status().ToString().c_str());
    return 2;
  }
  engine::Database* db = opened.value().get();

  if (!db->catalog().HasTable("ledger")) {
    // Killed before the bootstrap checkpoint/creation became durable.
    // Legal only if nothing was ever acknowledged.
    for (size_t t = 0; t < options.threads; ++t) {
      if (LastAckedSerial(options.dir, t) != 0) {
        return Fail("acknowledged commits exist but no ledger recovered");
      }
    }
    std::printf("OK (no durable state yet, nothing was acknowledged)\n");
    return 0;
  }

  storage::Table* ledger = db->catalog().GetTable("ledger");
  storage::Table* meta = db->catalog().GetTable("meta");
  storage::Column* balance = ledger->GetColumn("balance");
  storage::Column* serial_col = meta->GetColumn("serial");

  bool acked_any = false;
  for (size_t t = 0; t < options.threads; ++t) {
    if (LastAckedSerial(options.dir, t) > 0) acked_any = true;
  }

  // 1. Conservation: transfers move money, they never create or destroy it.
  int64_t total = 0;
  for (size_t row = 0; row < options.accounts; ++row) {
    total += storage::DecodeInt64(balance->ReadLatestRaw(row));
  }
  if (total != ExpectedTotal(options.accounts)) {
    // With fault points armed the kill can land inside the *bootstrap*
    // checkpoint: the create records are in the WAL but the bulk load
    // (never WAL-logged) died with the process. Legal iff nothing was
    // acknowledged and the recovered ledger is the all-zero image
    // (replayed transfers conserve that zero sum).
    if (!acked_any && total == 0) {
      std::printf("OK (killed before the bootstrap image became durable)\n");
      return 0;
    }
    std::fprintf(stderr,
                 "VERIFY FAILED: balance sum %" PRId64 " != expected %" PRId64
                 " (torn transaction)\n",
                 total, ExpectedTotal(options.accounts));
    return 2;
  }

  // 1b. Archive integrity (cold-tier runs): immutable after load, so every
  // recovered row must match the deterministic load exactly — these reads
  // cross the cold tier whenever the row's extent-backed segment is cold.
  if (options.cold_budget > 0) {
    if (!db->catalog().HasTable("archive")) {
      return Fail("cold-tier run recovered without its archive table");
    }
    storage::Column* value =
        db->catalog().GetTable("archive")->GetColumn("value");
    for (size_t row = 0; row < kArchiveRows; ++row) {
      if (storage::DecodeInt64(value->ReadLatestRaw(row)) !=
          ArchiveValue(row)) {
        std::fprintf(stderr,
                     "VERIFY FAILED: archive row %zu diverged after "
                     "recovery\n",
                     row);
        return 2;
      }
    }
  }

  // 2. Durability of acknowledged commits (group_commit contract).
  uint64_t recovered[kMetaRows] = {};
  for (size_t t = 0; t < options.threads; ++t) {
    recovered[t] = static_cast<uint64_t>(
        storage::DecodeInt64(serial_col->ReadLatestRaw(t)));
    const uint64_t acked = LastAckedSerial(options.dir, t);
    if (options.durability == wal::DurabilityMode::kGroupCommit &&
        recovered[t] < acked) {
      std::fprintf(stderr,
                   "VERIFY FAILED: thread %zu acked serial %" PRIu64
                   " but recovered only %" PRIu64 "\n",
                   t, acked, recovered[t]);
      return 2;
    }
  }

  // 3. Exactness: single-threaded runs are a deterministic function of the
  //    recovered transaction count — re-simulate and compare digests.
  if (options.threads == 1) {
    engine::Database sim(MakeConfig(options, /*durable=*/false));
    storage::Table* sim_ledger = nullptr;
    storage::Table* sim_meta = nullptr;
    storage::Table* sim_archive = nullptr;
    const Status s =
        CreateTables(&sim, options, &sim_ledger, &sim_meta, &sim_archive);
    if (!s.ok()) return Fail("re-simulation setup failed");
    LoadLedger(sim_ledger, options);
    for (uint64_t serial = 1; serial <= recovered[0]; ++serial) {
      const Status commit =
          RunTransfer(&sim, sim_ledger, sim_meta, options, 0, serial);
      if (!commit.ok()) return Fail("re-simulation commit aborted");
    }
    if (sim.ContentDigest() != db->ContentDigest()) {
      std::fprintf(stderr,
                   "VERIFY FAILED: digest mismatch after %" PRIu64
                   " transactions: recovered %016" PRIx64
                   " vs simulated %016" PRIx64 "\n",
                   recovered[0], db->ContentDigest(), sim.ContentDigest());
      return 2;
    }
  }

  // The recovered instance must also be writable and re-checkpointable.
  {
    auto txn = db->BeginOltp();
    const int64_t v = storage::DecodeInt64(txn->Read(balance, 0));
    txn->Write(balance, 0, storage::EncodeInt64(v));
    if (!db->Commit(txn.get()).ok()) {
      return Fail("post-recovery commit failed");
    }
    auto ckpt = db->Checkpoint();
    if (!ckpt.ok()) return Fail("post-recovery checkpoint failed");
  }

  uint64_t max_serial = 0;
  for (size_t t = 0; t < options.threads; ++t) {
    max_serial = std::max(max_serial, recovered[t]);
  }
  std::printf("OK (sum conserved, %zu thread(s), newest serial %" PRIu64
              ")\n",
              options.threads, max_serial);
  return 0;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  DriverOptions options;
  const std::string mode = flags.Str("mode", "");
  options.dir = flags.Str("dir", "");
  const std::string durability = flags.Str("durability", "group_commit");
  options.threads = static_cast<size_t>(flags.Int("threads", 1));
  options.accounts = static_cast<size_t>(flags.Int("accounts", 1024));
  options.seed = static_cast<uint64_t>(flags.Int("seed", 7));
  options.ckpt_every = static_cast<uint64_t>(flags.Int("ckpt_every", 4000));
  options.segment_bytes =
      static_cast<size_t>(flags.Int("segment_bytes", 1 << 16));
  options.cold_budget = static_cast<uint64_t>(flags.Int("cold_budget", 0));
  options.cold_segment_rows =
      static_cast<size_t>(flags.Int("cold_segment_rows", 1024));
  flags.RejectUnknown();

  if (options.dir.empty() || (mode != "run" && mode != "verify")) {
    std::fprintf(stderr,
                 "usage: crash_driver --mode=run|verify --dir=PATH "
                 "[--durability=group_commit|lazy] [--threads=N] "
                 "[--accounts=N] [--seed=N] [--ckpt_every=N] "
                 "[--segment_bytes=N] [--cold_budget=BYTES] "
                 "[--cold_segment_rows=N]\n");
    return 64;
  }
  if (durability == "lazy") {
    options.durability = wal::DurabilityMode::kLazy;
  } else if (durability != "group_commit") {
    std::fprintf(stderr, "unknown --durability=%s\n", durability.c_str());
    return 64;
  }
  ANKER_CHECK(options.threads >= 1 && options.threads <= kMetaRows);
  ANKER_CHECK(options.accounts >= 2);

  return mode == "run" ? RunMode(options) : VerifyMode(options);
}
