// anker_serve — the network front-end binary: one engine::Database behind
// an epoll session server speaking the anker wire protocol (docs/
// SERVER.md). Durable by default when --data_dir is given: opens existing
// state (checkpoint + WAL replay) or starts fresh, and on SIGTERM/SIGINT
// drains sessions, takes a final checkpoint and exits cleanly — the
// lifecycle scripts/server_smoke.py exercises in CI.
//
//   anker_serve --port=4807 --data_dir=/tmp/anker-serve
//               --durability=group_commit
//
// Operational guidance (tuning, monitoring, recovery drills):
// docs/OPERATIONS.md.
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  server::ServerConfig server_config;
  server_config.host = flags.Str("host", "127.0.0.1");
  server_config.port = static_cast<uint16_t>(flags.Int("port", 4807));
  server_config.auth_token = flags.Str("auth_token", "");
  server_config.max_sessions =
      static_cast<size_t>(flags.Int("max_sessions", 1024));
  server_config.max_inflight =
      static_cast<size_t>(flags.Int("max_inflight", 64));
  server_config.max_pipeline =
      static_cast<size_t>(flags.Int("max_pipeline", 64));
  server_config.idle_timeout_millis =
      static_cast<int>(flags.Int("idle_timeout_ms", 0));

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.data_dir = flags.Str("data_dir", "");
  const std::string durability = flags.Str("durability", "group_commit");
  config.snapshot_interval_commits =
      static_cast<uint64_t>(flags.Int("snapshot_interval", 10000));
  config.checkpoint_interval_commits =
      static_cast<uint64_t>(flags.Int("checkpoint_interval", 0));
  config.scan_threads = static_cast<size_t>(flags.Int("scan_threads", 0));
  config.worker_threads =
      static_cast<size_t>(flags.Int("worker_threads", 0));
  flags.RejectUnknown();

  if (config.worker_threads == 0) {
    // Every admitted dispatched op occupies a pool thread (commits block
    // inside the group-commit protocol; queries scan); size the pool so
    // admission control — not thread starvation — is what limits
    // concurrency, or cross-session group-commit batching cannot form.
    config.worker_threads = server_config.max_inflight + 4;
  }

  if (config.data_dir.empty()) {
    config.durability = wal::DurabilityMode::kOff;
    std::printf("WARNING: no --data_dir; running in-memory only\n");
  } else if (durability == "off") {
    config.durability = wal::DurabilityMode::kOff;
  } else if (durability == "lazy") {
    config.durability = wal::DurabilityMode::kLazy;
  } else if (durability == "group_commit") {
    config.durability = wal::DurabilityMode::kGroupCommit;
  } else {
    std::fprintf(stderr, "unknown --durability=%s\n", durability.c_str());
    return 2;
  }
  if (config.scan_threads == 0) {
    config.scan_threads =
        std::max<size_t>(1, std::thread::hardware_concurrency());
  }

  std::unique_ptr<engine::Database> db;
  if (config.data_dir.empty()) {
    auto created = engine::Database::Create(config);
    if (!created.ok()) {
      std::fprintf(stderr, "cannot create database: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    db = created.TakeValue();
  } else {
    // Open is the universal durable entry point: empty dir = fresh
    // database, existing dir = checkpoint load + WAL replay.
    auto opened = engine::Database::Open(config);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open database: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    db = opened.TakeValue();
  }
  db->Start();
  std::printf("OPENED mode=%s durability=%s data_dir=%s tables=%zu\n",
              txn::ProcessingModeName(config.mode),
              wal::DurabilityModeName(config.durability),
              config.data_dir.empty() ? "<none>" : config.data_dir.c_str(),
              db->catalog().num_tables());

  server::Server server(db.get(), server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING host=%s port=%u\n", server_config.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: drain sessions, then make everything durable in
  // one final checkpoint, then exit. An immediate SIGKILL instead of this
  // path is also survivable (that is what the WAL is for) — the
  // checkpoint just makes the next open instant.
  std::printf("SHUTDOWN draining sessions\n");
  std::fflush(stdout);
  server.Shutdown();
  const server::ServerStats stats = server.stats();
  std::printf(
      "DRAINED sessions_accepted=%llu frames=%llu commits_acked=%llu "
      "queries=%llu busy=%llu protocol_errors=%llu\n",
      static_cast<unsigned long long>(stats.sessions_accepted),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.commits_acked),
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.busy_rejections),
      static_cast<unsigned long long>(stats.protocol_errors));
  if (!config.data_dir.empty()) {
    auto checkpoint = db->Checkpoint();
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                   checkpoint.status().ToString().c_str());
      return 1;
    }
    std::printf("CHECKPOINT ts=%llu dir=%s\n",
                static_cast<unsigned long long>(
                    checkpoint.value().checkpoint_ts),
                checkpoint.value().directory.c_str());
  }
  db->Stop();
  std::printf("EXIT OK\n");
  return 0;
}
