// anker_serve — the network front-end binary: one engine::Database behind
// an epoll session server speaking the anker wire protocol (docs/
// SERVER.md). Durable by default when --data_dir is given: opens existing
// state (checkpoint + WAL replay) or starts fresh, and on SIGTERM/SIGINT
// drains sessions, takes a final checkpoint and exits cleanly — the
// lifecycle scripts/server_smoke.py exercises in CI.
//
//   anker_serve --port=4807 --data_dir=/tmp/anker-serve
//               --durability=group_commit
//
// Replica mode (--replica_of=host:port) turns the node into a read
// replica: it bootstraps an empty data_dir from the primary's newest
// checkpoint, then streams and applies the primary's WAL, serving
// read-only sessions until PROMOTE flips it writable.
//
//   anker_serve --port=4808 --data_dir=/tmp/anker-replica
//               --replica_of=127.0.0.1:4807 --replica_id=r1
//
// Operational guidance (tuning, monitoring, recovery drills, failover):
// docs/OPERATIONS.md.
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "engine/database.h"
#include "server/replication.h"
#include "server/server.h"
#include "wal/io_util.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  server::ServerConfig server_config;
  server_config.host = flags.Str("host", "127.0.0.1");
  server_config.port = static_cast<uint16_t>(flags.Int("port", 4807));
  server_config.auth_token = flags.Str("auth_token", "");
  server_config.max_sessions =
      static_cast<size_t>(flags.Int("max_sessions", 1024));
  server_config.max_inflight =
      static_cast<size_t>(flags.Int("max_inflight", 64));
  server_config.max_pipeline =
      static_cast<size_t>(flags.Int("max_pipeline", 64));
  server_config.idle_timeout_millis =
      static_cast<int>(flags.Int("idle_timeout_ms", 0));

  engine::DatabaseConfig config = engine::DatabaseConfig::ForMode(
      txn::ProcessingMode::kHeterogeneousSerializable);
  config.data_dir = flags.Str("data_dir", "");
  const std::string durability = flags.Str("durability", "group_commit");
  config.snapshot_interval_commits =
      static_cast<uint64_t>(flags.Int("snapshot_interval", 10000));
  config.checkpoint_interval_commits =
      static_cast<uint64_t>(flags.Int("checkpoint_interval", 0));
  config.scan_threads = static_cast<size_t>(flags.Int("scan_threads", 0));
  config.worker_threads =
      static_cast<size_t>(flags.Int("worker_threads", 0));

  // Replication knobs. --replica_of selects replica mode; the rest tune
  // the primary-side streamers (heartbeat/ack gate) or the replica-side
  // fetcher (timeouts, ack cadence).
  const std::string replica_of = flags.Str("replica_of", "");
  server::ReplicaConfig replica_config;
  replica_config.replica_id = flags.Str("replica_id", "replica");
  replica_config.sync_ack = flags.Int("sync_ack", 0) != 0;
  replica_config.stream_timeout_millis =
      static_cast<int>(flags.Int("stream_timeout_ms", 3000));
  replica_config.ack_interval_millis =
      static_cast<int>(flags.Int("ack_interval_ms", 200));
  server_config.repl_heartbeat_millis =
      static_cast<int>(flags.Int("heartbeat_ms", 500));
  server_config.repl_ack_wait_millis =
      static_cast<int>(flags.Int("ack_wait_ms", 2000));
  flags.RejectUnknown();

  if (!replica_of.empty()) {
    const size_t colon = replica_of.rfind(':');
    if (colon == std::string::npos || colon + 1 >= replica_of.size()) {
      std::fprintf(stderr, "--replica_of must be host:port\n");
      return 2;
    }
    replica_config.primary_host = replica_of.substr(0, colon);
    replica_config.primary_port =
        static_cast<uint16_t>(std::atoi(replica_of.c_str() + colon + 1));
    replica_config.auth_token = server_config.auth_token;
    if (config.data_dir.empty() || durability == "off") {
      std::fprintf(stderr,
                   "replica mode needs --data_dir and durability on (the "
                   "replica keeps a local WAL mirror)\n");
      return 2;
    }
  }

  if (config.worker_threads == 0) {
    // Every admitted dispatched op occupies a pool thread (commits block
    // inside the group-commit protocol; queries scan); size the pool so
    // admission control — not thread starvation — is what limits
    // concurrency, or cross-session group-commit batching cannot form.
    config.worker_threads = server_config.max_inflight + 4;
  }

  if (config.data_dir.empty()) {
    config.durability = wal::DurabilityMode::kOff;
    std::printf("WARNING: no --data_dir; running in-memory only\n");
  } else if (durability == "off") {
    config.durability = wal::DurabilityMode::kOff;
  } else if (durability == "lazy") {
    config.durability = wal::DurabilityMode::kLazy;
  } else if (durability == "group_commit") {
    config.durability = wal::DurabilityMode::kGroupCommit;
  } else {
    std::fprintf(stderr, "unknown --durability=%s\n", durability.c_str());
    return 2;
  }
  if (config.scan_threads == 0) {
    config.scan_threads =
        std::max<size_t>(1, std::thread::hardware_concurrency());
  }

  if (!replica_of.empty()) {
    // An empty data_dir bootstraps from the primary's newest checkpoint;
    // one with local state recovers locally and resumes the stream from
    // its own applied watermark.
    const bool has_state =
        wal::PathExists(config.data_dir + "/CURRENT") ||
        wal::PathExists(config.data_dir + "/wal");
    if (!has_state) {
      std::printf("BOOTSTRAP from=%s\n", replica_of.c_str());
      std::fflush(stdout);
      const Status fetched =
          server::ReplicaController::Bootstrap(replica_config,
                                               config.data_dir);
      if (!fetched.ok()) {
        std::fprintf(stderr, "bootstrap failed: %s\n",
                     fetched.ToString().c_str());
        return 1;
      }
    }
  }

  std::unique_ptr<engine::Database> db;
  if (config.data_dir.empty()) {
    auto created = engine::Database::Create(config);
    if (!created.ok()) {
      std::fprintf(stderr, "cannot create database: %s\n",
                   created.status().ToString().c_str());
      return 1;
    }
    db = created.TakeValue();
  } else {
    // Open is the universal durable entry point: empty dir = fresh
    // database, existing dir = checkpoint load + WAL replay.
    auto opened = engine::Database::Open(config);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open database: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    db = opened.TakeValue();
  }
  db->Start();
  std::printf("OPENED mode=%s durability=%s data_dir=%s tables=%zu\n",
              txn::ProcessingModeName(config.mode),
              wal::DurabilityModeName(config.durability),
              config.data_dir.empty() ? "<none>" : config.data_dir.c_str(),
              db->catalog().num_tables());

  std::unique_ptr<server::ReplicaController> replica;
  if (!replica_of.empty()) {
    replica = std::make_unique<server::ReplicaController>(db.get(),
                                                          replica_config);
    replica->Start();
    server_config.replica = replica.get();
    std::printf("ROLE replica primary=%s id=%s applied_lsn=%llu\n",
                replica_of.c_str(), replica_config.replica_id.c_str(),
                static_cast<unsigned long long>(db->applied_lsn()));
  } else {
    std::printf("ROLE primary\n");
  }

  server::Server server(db.get(), server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING host=%s port=%u\n", server_config.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // Graceful shutdown: drain sessions, then make everything durable in
  // one final checkpoint, then exit. An immediate SIGKILL instead of this
  // path is also survivable (that is what the WAL is for) — the
  // checkpoint just makes the next open instant.
  std::printf("SHUTDOWN draining sessions\n");
  std::fflush(stdout);
  server.Shutdown();
  // Stop the stream after the serving layer: no session can observe the
  // controller mid-teardown, and everything applied so far is kept.
  if (replica != nullptr) replica->Stop();
  const server::ServerStats stats = server.stats();
  std::printf(
      "DRAINED sessions_accepted=%llu frames=%llu commits_acked=%llu "
      "queries=%llu busy=%llu protocol_errors=%llu\n",
      static_cast<unsigned long long>(stats.sessions_accepted),
      static_cast<unsigned long long>(stats.frames_received),
      static_cast<unsigned long long>(stats.commits_acked),
      static_cast<unsigned long long>(stats.queries_served),
      static_cast<unsigned long long>(stats.busy_rejections),
      static_cast<unsigned long long>(stats.protocol_errors));
  if (!config.data_dir.empty()) {
    auto checkpoint = db->Checkpoint();
    if (!checkpoint.ok()) {
      std::fprintf(stderr, "shutdown checkpoint failed: %s\n",
                   checkpoint.status().ToString().c_str());
      return 1;
    }
    std::printf("CHECKPOINT ts=%llu dir=%s\n",
                static_cast<unsigned long long>(
                    checkpoint.value().checkpoint_ts),
                checkpoint.value().directory.c_str());
  }
  db->Stop();
  std::printf("EXIT OK\n");
  return 0;
}
