// anker_cli — interactive / scriptable REPL over the anker client
// library. Reads one command per line from stdin (pipe a script for CI
// smoke runs — scripts/server_smoke.py does exactly that), prints one
// result line per command, and exits non-zero if any command failed.
//
//   anker_cli --port=4807 <<'EOF'
//   create accounts 1000 id:int64 balance:double
//   load accounts balance 0 100 100 100
//   begin
//   write accounts balance 1 250.5
//   commit
//   query accounts sum(balance) where id >= 0
//   EOF
//
// Command reference: docs/SERVER.md ("The CLI").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "query/serialize.h"
#include "server/client.h"
#include "storage/value.h"

namespace {

using namespace anker;

struct Cli {
  std::unique_ptr<server::Client> client;
  /// Schema cache for typed value parsing (refreshed by `tables`/
  /// `create`).
  std::unordered_map<std::string, std::vector<storage::ColumnDef>> schemas;
  bool echo = false;
  int failures = 0;

  storage::ValueType ColumnType(const std::string& table,
                                const std::string& column, bool* known) {
    *known = false;
    auto it = schemas.find(table);
    if (it == schemas.end()) return storage::ValueType::kInt64;
    for (const storage::ColumnDef& def : it->second) {
      if (def.name == column) {
        *known = true;
        return def.type;
      }
    }
    return storage::ValueType::kInt64;
  }

  void RefreshSchemas() {
    auto tables = client->ListTables();
    if (!tables.ok()) return;
    schemas.clear();
    for (const server::TableInfo& info : tables.value()) {
      schemas[info.name] = info.schema;
    }
  }
};

bool ParseType(const std::string& name, storage::ValueType* type) {
  if (name == "int64") *type = storage::ValueType::kInt64;
  else if (name == "double") *type = storage::ValueType::kDouble;
  else if (name == "date") *type = storage::ValueType::kDate;
  else if (name == "dict32") *type = storage::ValueType::kDict32;
  else return false;
  return true;
}

const char* TypeName(storage::ValueType type) {
  switch (type) {
    case storage::ValueType::kInt64: return "int64";
    case storage::ValueType::kDouble: return "double";
    case storage::ValueType::kDate: return "date";
    case storage::ValueType::kDict32: return "dict32";
  }
  return "?";
}

uint64_t EncodeTyped(storage::ValueType type, const std::string& text) {
  switch (type) {
    case storage::ValueType::kDouble:
      return storage::EncodeDouble(std::atof(text.c_str()));
    case storage::ValueType::kDict32:
      return storage::EncodeDict(
          static_cast<uint32_t>(std::atoll(text.c_str())));
    case storage::ValueType::kInt64:
    case storage::ValueType::kDate:
      return storage::EncodeInt64(std::atoll(text.c_str()));
  }
  return 0;
}

std::string DecodeTyped(storage::ValueType type, uint64_t raw) {
  char buf[64];
  switch (type) {
    case storage::ValueType::kDouble:
      std::snprintf(buf, sizeof(buf), "%.17g", storage::DecodeDouble(raw));
      break;
    case storage::ValueType::kDict32:
      std::snprintf(buf, sizeof(buf), "%u", storage::DecodeDict(raw));
      break;
    case storage::ValueType::kInt64:
    case storage::ValueType::kDate:
      std::snprintf(buf, sizeof(buf), "%lld",
                    static_cast<long long>(storage::DecodeInt64(raw)));
      break;
  }
  return buf;
}

/// Parses "sum(col)" / "count()" / "avg(col)" / "min(col)" / "max(col)".
bool ParseAgg(const std::string& token, query::Agg* agg) {
  const size_t open = token.find('(');
  if (open == std::string::npos || token.back() != ')') return false;
  const std::string fn = token.substr(0, open);
  const std::string arg = token.substr(open + 1,
                                       token.size() - open - 2);
  if (fn == "count" && arg.empty()) {
    *agg = query::Count().As(token);
    return true;
  }
  if (arg.empty()) return false;
  if (fn == "sum") *agg = query::Sum(query::Col(arg)).As(token);
  else if (fn == "avg") *agg = query::Avg(query::Col(arg)).As(token);
  else if (fn == "min") *agg = query::Min(query::Col(arg)).As(token);
  else if (fn == "max") *agg = query::Max(query::Col(arg)).As(token);
  else return false;
  return true;
}

/// Builds `Col(column) <op> literal` with the literal typed after the
/// column's schema type.
bool ParseCondition(Cli* cli, const std::string& table,
                    const std::string& column, const std::string& op,
                    const std::string& literal, query::Expr* out) {
  bool known = false;
  const storage::ValueType type = cli->ColumnType(table, column, &known);
  query::Expr lhs = query::Col(column);
  query::Expr rhs;
  if (!literal.empty() && literal.front() == '"' && literal.back() == '"' &&
      literal.size() >= 2) {
    rhs = query::Str(literal.substr(1, literal.size() - 2));
  } else if (known) {
    switch (type) {
      case storage::ValueType::kDouble:
        rhs = query::F64(std::atof(literal.c_str()));
        break;
      case storage::ValueType::kDate:
        rhs = query::DateDays(std::atoll(literal.c_str()));
        break;
      case storage::ValueType::kDict32:
        rhs = query::DictCode(
            static_cast<uint32_t>(std::atoll(literal.c_str())));
        break;
      case storage::ValueType::kInt64:
        rhs = query::I64(std::atoll(literal.c_str()));
        break;
    }
  } else if (literal.find('.') != std::string::npos) {
    rhs = query::F64(std::atof(literal.c_str()));
  } else {
    rhs = query::I64(std::atoll(literal.c_str()));
  }
  if (op == "<") *out = lhs < rhs;
  else if (op == "<=") *out = lhs <= rhs;
  else if (op == ">") *out = lhs > rhs;
  else if (op == ">=") *out = lhs >= rhs;
  else if (op == "==" || op == "=") *out = lhs == rhs;
  else if (op == "!=") *out = lhs != rhs;
  else return false;
  return true;
}

int RunCommand(Cli* cli, const std::vector<std::string>& tokens);

void Fail(Cli* cli, const std::string& message) {
  std::printf("ERR %s\n", message.c_str());
  ++cli->failures;
}

int RunCommand(Cli* cli, const std::vector<std::string>& tokens) {
  server::Client& client = *cli->client;
  const std::string& cmd = tokens[0];

  if (cmd == "quit" || cmd == "exit") return 1;
  if (cmd == "help") {
    std::printf(
        "commands:\n"
        "  tables | ping | begin | commit | abort | quit\n"
        "  create <table> <rows> <col>:<type> ...   (types: int64 double "
        "date dict32)\n"
        "  index <table> <key_column>\n"
        "  dict <table> <column> <v1> [v2 ...]   (entry code = position)\n"
        "  load <table> <column> <start_row> <v1> [v2 ...]\n"
        "  read <table> <column> <key> [bykey]\n"
        "  write <table> <column> <key> <value> [bykey]\n"
        "  query <table> <agg(col)> [...] [where <col> <op> <val> [and "
        "...]] [group <c1,c2>]\n"
        "        [order <c1[:desc],c2...>] [limit <n>]\n"
        "  status | digest | checkpoint | promote | waitlsn <lsn> "
        "[timeout_ms] | lastlsn\n"
        "  decommission <replica_id>   (primary only: drop a departed "
        "replica's WAL pin)\n"
        "  routerstatus   (shard router only: routing counters + health)\n");
    return 0;
  }
  if (cmd == "status") {
    auto status = client.ReplicaStatus();
    if (!status.ok()) {
      Fail(cli, status.status().ToString());
      return 0;
    }
    const server::ReplicaStatusOkMsg& s = status.value();
    const char* role = s.role == server::NodeRole::kPrimary    ? "primary"
                       : s.role == server::NodeRole::kReplica  ? "replica"
                                                               : "promoted";
    std::printf(
        "STATUS role=%s stream=%s applied_lsn=%llu durable_lsn=%llu "
        "staleness_ms=%llu primary=%s\n",
        role, s.stream_connected ? "connected" : "down",
        static_cast<unsigned long long>(s.applied_lsn),
        static_cast<unsigned long long>(s.durable_lsn),
        static_cast<unsigned long long>(s.staleness_millis),
        s.primary_addr.empty() ? "-" : s.primary_addr.c_str());
    return 0;
  }
  if (cmd == "decommission") {
    if (tokens.size() != 2) {
      Fail(cli, "usage: decommission <replica_id>");
      return 0;
    }
    const Status status = client.DecommissionReplica(tokens[1]);
    if (status.ok()) std::printf("OK decommissioned %s\n", tokens[1].c_str());
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "routerstatus") {
    auto status = client.RouterStatus();
    if (!status.ok()) {
      Fail(cli, status.status().ToString());
      return 0;
    }
    const server::RouterStatusOkMsg& s = status.value();
    std::printf(
        "ROUTER shards=%u healthy=%u map_version=%u map_digest=%016llx "
        "allow_partial=%d passthrough_txns=%llu scatter_queries=%llu "
        "single_shard_queries=%llu fanout_ops=%llu\n",
        s.shard_count, s.healthy_shards, s.shard_map_version,
        static_cast<unsigned long long>(s.shard_map_digest),
        s.allow_partial ? 1 : 0,
        static_cast<unsigned long long>(s.passthrough_txns),
        static_cast<unsigned long long>(s.scatter_queries),
        static_cast<unsigned long long>(s.single_shard_queries),
        static_cast<unsigned long long>(s.fanout_ops));
    return 0;
  }
  if (cmd == "digest") {
    auto digest = client.Digest();
    if (digest.ok()) {
      std::printf("DIGEST %016llx\n",
                  static_cast<unsigned long long>(digest.value()));
    } else {
      Fail(cli, digest.status().ToString());
    }
    return 0;
  }
  if (cmd == "checkpoint") {
    const Status status = client.CheckpointNow();
    if (status.ok()) std::printf("OK\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "promote") {
    const Status status = client.Promote();
    if (status.ok()) std::printf("OK promoted\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "waitlsn") {
    if (tokens.size() < 2) {
      Fail(cli, "usage: waitlsn <lsn> [timeout_ms]");
      return 0;
    }
    const uint64_t lsn = std::strtoull(tokens[1].c_str(), nullptr, 10);
    const uint32_t timeout_ms =
        tokens.size() > 2
            ? static_cast<uint32_t>(std::strtoul(tokens[2].c_str(),
                                                 nullptr, 10))
            : 5000;
    const Status status = client.WaitLsn(lsn, timeout_ms);
    if (status.ok()) std::printf("OK applied\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "lastlsn") {
    std::printf("LSN %llu\n",
                static_cast<unsigned long long>(client.last_commit_lsn()));
    return 0;
  }
  if (cmd == "ping") {
    const Status status = client.Ping();
    if (status.ok()) std::printf("PONG\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "tables") {
    auto tables = client.ListTables();
    if (!tables.ok()) {
      Fail(cli, tables.status().ToString());
      return 0;
    }
    cli->RefreshSchemas();
    for (const server::TableInfo& info : tables.value()) {
      std::printf("TABLE %s rows=%llu index=%s", info.name.c_str(),
                  static_cast<unsigned long long>(info.num_rows),
                  info.has_primary_index ? "yes" : "no");
      for (const storage::ColumnDef& def : info.schema) {
        std::printf(" %s:%s", def.name.c_str(), TypeName(def.type));
      }
      std::printf("\n");
    }
    return 0;
  }
  if (cmd == "create") {
    if (tokens.size() < 4) {
      Fail(cli, "usage: create <table> <rows> <col>:<type> ...");
      return 0;
    }
    std::vector<storage::ColumnDef> schema;
    for (size_t i = 3; i < tokens.size(); ++i) {
      const size_t colon = tokens[i].find(':');
      storage::ColumnDef def;
      if (colon == std::string::npos ||
          !ParseType(tokens[i].substr(colon + 1), &def.type)) {
        Fail(cli, "bad column spec: " + tokens[i]);
        return 0;
      }
      def.name = tokens[i].substr(0, colon);
      schema.push_back(std::move(def));
    }
    const Status status = client.CreateTable(
        tokens[1], std::strtoull(tokens[2].c_str(), nullptr, 10), schema);
    if (status.ok()) {
      std::printf("OK\n");
      cli->RefreshSchemas();
    } else {
      Fail(cli, status.ToString());
    }
    return 0;
  }
  if (cmd == "index") {
    if (tokens.size() != 3) {
      Fail(cli, "usage: index <table> <key_column>");
      return 0;
    }
    const Status status = client.BuildIndex(tokens[1], tokens[2]);
    if (status.ok()) std::printf("OK\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "dict") {
    if (tokens.size() < 4) {
      Fail(cli, "usage: dict <table> <column> <v1> [v2 ...]");
      return 0;
    }
    const std::vector<std::string> values(tokens.begin() + 3, tokens.end());
    const Status status = client.DefineDict(tokens[1], tokens[2], values);
    if (status.ok()) std::printf("OK %zu entries\n", values.size());
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "load") {
    if (tokens.size() < 5) {
      Fail(cli, "usage: load <table> <column> <start_row> <v1> [v2 ...]");
      return 0;
    }
    bool known = false;
    const storage::ValueType type =
        cli->ColumnType(tokens[1], tokens[2], &known);
    std::vector<uint64_t> values;
    for (size_t i = 4; i < tokens.size(); ++i) {
      values.push_back(EncodeTyped(type, tokens[i]));
    }
    const Status status = client.Load(
        tokens[1], tokens[2],
        std::strtoull(tokens[3].c_str(), nullptr, 10), values);
    if (status.ok()) std::printf("OK %zu values\n", values.size());
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "begin" || cmd == "commit" || cmd == "abort") {
    const Status status = cmd == "begin"    ? client.Begin()
                          : cmd == "commit" ? client.Commit()
                                            : client.Abort();
    if (status.ok()) std::printf("OK\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "read") {
    if (tokens.size() < 4) {
      Fail(cli, "usage: read <table> <column> <key> [bykey]");
      return 0;
    }
    const bool by_key = tokens.size() > 4 && tokens[4] == "bykey";
    auto value = client.Read(tokens[1], tokens[2],
                             std::strtoull(tokens[3].c_str(), nullptr, 10),
                             by_key);
    if (!value.ok()) {
      Fail(cli, value.status().ToString());
      return 0;
    }
    bool known = false;
    const storage::ValueType type =
        cli->ColumnType(tokens[1], tokens[2], &known);
    std::printf("VALUE %s\n", DecodeTyped(type, value.value()).c_str());
    return 0;
  }
  if (cmd == "write") {
    if (tokens.size() < 5) {
      Fail(cli, "usage: write <table> <column> <key> <value> [bykey]");
      return 0;
    }
    bool known = false;
    const storage::ValueType type =
        cli->ColumnType(tokens[1], tokens[2], &known);
    const bool by_key = tokens.size() > 5 && tokens[5] == "bykey";
    const Status status = client.Write(
        tokens[1], tokens[2], std::strtoull(tokens[3].c_str(), nullptr, 10),
        EncodeTyped(type, tokens[4]), by_key);
    if (status.ok()) std::printf("OK\n");
    else Fail(cli, status.ToString());
    return 0;
  }
  if (cmd == "query") {
    // query <table> <agg> [...] [where <col> <op> <val> [and ...]]
    //       [group <c1,c2>]
    if (tokens.size() < 3) {
      Fail(cli, "usage: query <table> <agg(col)> ... [where ...] [group ...]");
      return 0;
    }
    query::WireQuery wire;
    wire.table = tokens[1];
    size_t i = 2;
    for (; i < tokens.size() && tokens[i] != "where" &&
           tokens[i] != "group" && tokens[i] != "order" &&
           tokens[i] != "limit";
         ++i) {
      query::Agg agg;
      if (!ParseAgg(tokens[i], &agg)) {
        Fail(cli, "bad aggregate: " + tokens[i]);
        return 0;
      }
      wire.aggs.push_back(std::move(agg));
    }
    if (i < tokens.size() && tokens[i] == "where") {
      ++i;
      while (i + 3 <= tokens.size()) {
        query::Expr condition;
        if (!ParseCondition(cli, wire.table, tokens[i], tokens[i + 1],
                            tokens[i + 2], &condition)) {
          Fail(cli, "bad condition at: " + tokens[i]);
          return 0;
        }
        wire.filter =
            wire.filter.valid() ? (wire.filter && condition) : condition;
        i += 3;
        if (i < tokens.size() && tokens[i] == "and") ++i;
        else break;
      }
    }
    if (i < tokens.size() && tokens[i] == "group") {
      ++i;
      if (i >= tokens.size()) {
        Fail(cli, "group needs a column list");
        return 0;
      }
      std::stringstream list(tokens[i]);
      std::string column;
      while (std::getline(list, column, ',')) {
        wire.group_by.push_back(column);
      }
      ++i;
    }
    if (i < tokens.size() && tokens[i] == "order") {
      ++i;
      if (i >= tokens.size()) {
        Fail(cli, "order needs a column list");
        return 0;
      }
      std::stringstream list(tokens[i]);
      std::string key;
      while (std::getline(list, key, ',')) {
        query::SortSpec spec;
        const size_t colon = key.rfind(":desc");
        if (colon != std::string::npos && colon + 5 == key.size()) {
          spec.column = key.substr(0, colon);
          spec.desc = true;
        } else {
          spec.column = key;
        }
        wire.order_by.push_back(std::move(spec));
      }
      ++i;
    }
    if (i < tokens.size() && tokens[i] == "limit") {
      ++i;
      if (i >= tokens.size()) {
        Fail(cli, "limit needs a row count");
        return 0;
      }
      wire.limit = std::atoll(tokens[i].c_str());
      ++i;
    }
    if (i < tokens.size()) {
      Fail(cli, "trailing tokens after query");
      return 0;
    }
    auto result = client.Query(wire, query::Params());
    if (!result.ok()) {
      Fail(cli, result.status().ToString());
      return 0;
    }
    const query::QueryResult& r = result.value();
    for (const query::QueryResult::Row& row : r.rows) {
      std::printf("ROW");
      for (size_t k = 0; k < row.keys.size(); ++k) {
        std::printf(" %s=%llu", r.key_names[k].c_str(),
                    static_cast<unsigned long long>(row.keys[k]));
      }
      for (size_t v = 0; v < row.values.size(); ++v) {
        std::printf(" %s=%.17g", r.columns[v].c_str(), row.values[v]);
      }
      std::printf("\n");
    }
    if (r.shards_missing > 0) {
      std::printf("DONE rows=%zu scanned=%llu PARTIAL shards_missing=%u\n",
                  r.rows.size(),
                  static_cast<unsigned long long>(r.rows_scanned),
                  r.shards_missing);
    } else {
      std::printf("DONE rows=%zu scanned=%llu\n", r.rows.size(),
                  static_cast<unsigned long long>(r.rows_scanned));
    }
    return 0;
  }
  Fail(cli, "unknown command: " + cmd + " (try: help)");
  return 0;
}

}  // namespace

namespace {

struct Endpoint {
  std::string host;
  uint16_t port = 0;
};

/// Parses "--server=h1:p1,h2:p2,..." into an ordered failover list; a
/// bare "--host/--port" pair becomes a one-entry list.
bool ParseEndpoints(const std::string& list, std::vector<Endpoint>* out) {
  std::stringstream stream(list);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    const size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return false;
    }
    const long port = std::atol(entry.c_str() + colon + 1);
    if (port <= 0 || port > 65535) return false;
    out->push_back({entry.substr(0, colon), static_cast<uint16_t>(port)});
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  const std::string host = flags.Str("host", "127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(flags.Int("port", 4807));
  // Comma-separated endpoint list; the CLI connects to the first
  // endpoint that answers (failover for replica sets / router pairs).
  const std::string server_list = flags.Str("server", "");
  server::ClientOptions options;
  options.auth_token = flags.Str("auth_token", "");
  options.io_timeout_millis =
      static_cast<int>(flags.Int("timeout_ms", 30000));
  // Opt-in BUSY retry: bounded exponential backoff inside the client, so
  // scripted runs survive admission-control spikes without hand-rolled
  // retry loops.
  options.busy_retry_budget =
      static_cast<int>(flags.Int("busy_retries", 0));
  Cli cli;
  cli.echo = flags.Has("echo");
  flags.RejectUnknown();

  std::vector<Endpoint> endpoints;
  if (!server_list.empty()) {
    if (!ParseEndpoints(server_list, &endpoints)) {
      std::fprintf(stderr, "bad --server list: %s\n", server_list.c_str());
      return 1;
    }
  } else {
    endpoints.push_back({host, port});
  }
  for (const Endpoint& endpoint : endpoints) {
    auto connected =
        server::Client::Connect(endpoint.host, endpoint.port, options);
    if (connected.ok()) {
      cli.client = connected.TakeValue();
      break;
    }
    std::fprintf(stderr, "cannot connect to %s:%u: %s\n",
                 endpoint.host.c_str(), endpoint.port,
                 connected.status().ToString().c_str());
  }
  if (!cli.client) return 1;
  cli.RefreshSchemas();

  std::string line;
  while (std::getline(std::cin, line)) {
    if (cli.echo) std::printf("> %s\n", line.c_str());
    std::vector<std::string> tokens;
    std::stringstream stream(line);
    std::string token;
    while (stream >> token) tokens.push_back(token);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (RunCommand(&cli, tokens) != 0) break;
    std::fflush(stdout);
  }
  return cli.failures == 0 ? 0 : 1;
}
