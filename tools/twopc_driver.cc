// Cross-shard 2PC chaos workload driver (tools/twopc_driver).
//
// Two subcommands, driven by scripts/twopc_harness.py:
//
//   twopc_driver --mode=run --port=P --shard_ports=P1,P2 [...]
//     Connects to a shard router on P and hammers it with zero-sum
//     balance transfers between keys owned by DIFFERENT shards — every
//     transaction exercises the intent-based 2PC path. After each
//     acknowledged commit the driver appends the serial to an fsynced
//     ack file: independent evidence of what the cluster promised to
//     keep. Transport failures (the harness SIGKILLs the router at the
//     2pc.prepare.post / 2pc.commit.pre fault points, and shards
//     besides) are absorbed by reconnecting with backoff — balances are
//     re-read fresh before every transfer, so an unknown-outcome commit
//     never corrupts the next one. Runs until SIGKILLed/SIGTERMed.
//
//   twopc_driver --mode=verify --port=P --shard_ports=P1,P2 [...]
//     The atomicity audit after the dust settles:
//       1. conservation: every account balance read THROUGH the router
//          (which lazily resolves any intents a dead coordinator left
//          behind) sums to accounts * 1000 — a torn cross-shard
//          transfer would break it;
//       2. no orphans: after those reads, every shard's REPLICA_STATUS
//          reports pending_intents == 0 — nothing undecided survives;
//       3. progress: the ack file is non-empty (the gauntlet actually
//          committed transactions between kills).
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/rng.h"
#include "server/client.h"
#include "shard/shard_map.h"
#include "storage/value.h"
#include "wal/io_util.h"

namespace anker {
namespace {

struct DriverOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;                  ///< Router port.
  std::vector<uint16_t> shard_ports;  ///< Direct engine ports, map order.
  std::string ack_file;
  size_t accounts = 64;
  uint64_t seed = 7;
  int reconnect_deadline_ms = 30000;
  long min_acks = 1;  ///< verify: required ack-file entries (progress).
};

constexpr int64_t kInitialBalance = 1000;

std::unique_ptr<server::Client> ConnectWithRetry(const DriverOptions& options,
                                                 uint16_t port) {
  // The harness kills and restarts processes under us: keep dialing
  // until the deadline, then give up loudly.
  const int step_ms = 100;
  for (int waited = 0; waited <= options.reconnect_deadline_ms;
       waited += step_ms) {
    server::ClientOptions client_options;
    client_options.io_timeout_millis = 10000;
    auto connected =
        server::Client::Connect(options.host, port, client_options);
    if (connected.ok()) return connected.TakeValue();
    std::this_thread::sleep_for(std::chrono::milliseconds(step_ms));
  }
  return nullptr;
}

server::PointWrite BalanceWrite(uint64_t key, int64_t balance) {
  server::PointWrite write;
  write.table = "acct";
  write.column = "balance";
  write.by_key = true;
  write.key = key;
  write.raw = storage::EncodeInt64(balance);
  return write;
}

// --- run mode -------------------------------------------------------------

int RunMode(const DriverOptions& options) {
  const int ack_fd =
      ::open(options.ack_file.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (ack_fd < 0) {
    std::fprintf(stderr, "cannot open ack file %s\n",
                 options.ack_file.c_str());
    return 1;
  }
  auto client = ConnectWithRetry(options, options.port);
  if (client == nullptr) {
    std::fprintf(stderr, "router never came up on port %u\n", options.port);
    return 1;
  }
  std::printf("READY\n");
  std::fflush(stdout);

  Rng rng(options.seed);
  const size_t num_shards = options.shard_ports.size();
  auto shard_of = [num_shards](uint64_t key) {
    return shard::ShardMap::Mix64(key) % num_shards;
  };
  uint64_t serial = 0;
  for (;;) {
    ++serial;
    // Pick a pair living on DIFFERENT shards (same splitmix64 the router
    // uses) so every transfer takes the 2PC path the gauntlet targets.
    // Fresh reads every round: a previous commit with an unknown
    // outcome (router killed mid-2PC) may or may not have landed, and
    // these reads — which resolve any leftover intents — tell us which.
    const uint64_t from = 1 + rng.NextBounded(options.accounts);
    uint64_t to = from;
    for (int spin = 0; spin < 64; ++spin) {
      to = 1 + rng.NextBounded(options.accounts);
      if (to != from && shard_of(to) != shard_of(from)) break;
    }
    if (to == from || shard_of(to) == shard_of(from)) continue;
    const int64_t amount =
        static_cast<int64_t>(1 + rng.NextBounded(100));

    auto from_raw = client->Read("acct", "balance", from, /*by_key=*/true);
    if (!from_raw.ok()) {
      if (from_raw.status().code() == StatusCode::kIoError) {
        client = ConnectWithRetry(options, options.port);
        if (client == nullptr) return 1;
      }
      continue;  // BUSY / blocked intent: next round retries fresh.
    }
    auto to_raw = client->Read("acct", "balance", to, /*by_key=*/true);
    if (!to_raw.ok()) {
      if (to_raw.status().code() == StatusCode::kIoError) {
        client = ConnectWithRetry(options, options.port);
        if (client == nullptr) return 1;
      }
      continue;
    }
    const int64_t from_balance = storage::DecodeInt64(from_raw.value());
    const int64_t to_balance = storage::DecodeInt64(to_raw.value());

    const Status committed = client->ExecTxn(
        {BalanceWrite(from, from_balance - amount),
         BalanceWrite(to, to_balance + amount)});
    if (!committed.ok()) {
      if (committed.code() == StatusCode::kIoError) {
        // Router died mid-transaction (the whole point of the drill).
        // The outcome is unknown; the next round's reads resolve it.
        client = ConnectWithRetry(options, options.port);
        if (client == nullptr) return 1;
      }
      continue;
    }
    // Acknowledged and durable — only now does the serial enter the
    // evidence file the verifier trusts.
    uint64_t raw = serial;
    if (::write(ack_fd, &raw, sizeof(raw)) != sizeof(raw) ||
        ::fdatasync(ack_fd) != 0) {
      std::fprintf(stderr, "ack file write failed\n");
      return 1;
    }
  }
}

// --- verify mode ----------------------------------------------------------

int Fail(const char* what) {
  std::fprintf(stderr, "VERIFY FAILED: %s\n", what);
  return 2;
}

int VerifyMode(const DriverOptions& options) {
  auto client = ConnectWithRetry(options, options.port);
  if (client == nullptr) return Fail("router unreachable");

  // 1. Conservation. Reading through the router resolves every intent
  //    a killed coordinator abandoned: committed ones materialize,
  //    undecided ones escalate to durable aborts. Either way each
  //    transfer moved money atomically or not at all.
  int64_t total = 0;
  for (uint64_t key = 1; key <= options.accounts; ++key) {
    Result<uint64_t> raw = Status::ResourceBusy("unread");
    for (int attempt = 0; attempt < 50 && !raw.ok(); ++attempt) {
      raw = client->Read("acct", "balance", key, /*by_key=*/true);
      if (!raw.ok()) {
        if (raw.status().code() == StatusCode::kIoError) {
          client = ConnectWithRetry(options, options.port);
          if (client == nullptr) return Fail("router unreachable");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
    if (!raw.ok()) {
      std::fprintf(stderr, "VERIFY FAILED: key %" PRIu64 " unreadable: %s\n",
                   key, raw.status().ToString().c_str());
      return 2;
    }
    total += storage::DecodeInt64(raw.value());
  }
  const int64_t expected =
      static_cast<int64_t>(options.accounts) * kInitialBalance;
  if (total != expected) {
    std::fprintf(stderr,
                 "VERIFY FAILED: balance sum %" PRId64 " != expected %" PRId64
                 " (torn cross-shard transaction)\n",
                 total, expected);
    return 2;
  }

  // 2. No orphaned intents anywhere once the reads above resolved them.
  for (uint16_t port : options.shard_ports) {
    auto direct = ConnectWithRetry(options, port);
    if (direct == nullptr) return Fail("shard unreachable");
    auto status = direct->ReplicaStatus();
    if (!status.ok()) return Fail("REPLICA_STATUS refused");
    if (status.value().pending_intents != 0) {
      std::fprintf(stderr,
                   "VERIFY FAILED: shard on port %u still holds %" PRIu64
                   " pending intents\n",
                   port,
                   static_cast<uint64_t>(status.value().pending_intents));
      return 2;
    }
  }

  // 3. Progress: the gauntlet must have actually committed something
  //    (the harness relaxes this for early rounds via --min_acks=0).
  std::string acks;
  const Status read_acks = wal::ReadFile(options.ack_file, &acks);
  const size_t committed =
      read_acks.ok() ? acks.size() / sizeof(uint64_t) : 0;
  if (committed < static_cast<size_t>(options.min_acks)) {
    std::fprintf(stderr,
                 "VERIFY FAILED: only %zu acked commits, need %ld "
                 "(no progress through the gauntlet)\n",
                 committed, options.min_acks);
    return 2;
  }

  std::printf("OK (sum conserved at %" PRId64 ", %zu commits acked, "
              "0 orphaned intents)\n",
              total, committed);
  return 0;
}

}  // namespace
}  // namespace anker

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);
  DriverOptions options;
  const std::string mode = flags.Str("mode", "");
  options.host = flags.Str("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(flags.Int("port", 0));
  options.ack_file = flags.Str("ack_file", "");
  options.accounts = static_cast<size_t>(flags.Int("accounts", 64));
  options.seed = static_cast<uint64_t>(flags.Int("seed", 7));
  options.reconnect_deadline_ms =
      static_cast<int>(flags.Int("reconnect_deadline_ms", 30000));
  options.min_acks = flags.Int("min_acks", 1);
  const std::string shard_ports = flags.Str("shard_ports", "");
  flags.RejectUnknown();

  size_t begin = 0;
  while (begin < shard_ports.size()) {
    size_t end = shard_ports.find(',', begin);
    if (end == std::string::npos) end = shard_ports.size();
    options.shard_ports.push_back(static_cast<uint16_t>(
        std::stoul(shard_ports.substr(begin, end - begin))));
    begin = end + 1;
  }

  if (options.port == 0 || (mode != "run" && mode != "verify") ||
      options.shard_ports.size() < 2 || options.ack_file.empty()) {
    std::fprintf(stderr,
                 "usage: twopc_driver --mode=run|verify --port=ROUTER_PORT "
                 "--shard_ports=P1,P2[,...] --ack_file=PATH [--accounts=N] "
                 "[--seed=N] [--host=H] [--reconnect_deadline_ms=N]\n");
    return 64;
  }
  ANKER_CHECK(options.accounts >= 2);
  return mode == "run" ? RunMode(options) : VerifyMode(options);
}
