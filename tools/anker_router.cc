// anker_router — the shard-routing front-end binary: an epoll session
// server speaking the same anker wire protocol as anker_serve, but whose
// backend is a fleet of engine shards instead of a local database
// (docs/SERVER.md has the routing contract, docs/OPERATIONS.md the
// scale-out runbook).
//
//   anker_router --port=4800 --shard_map=/etc/anker/shards.conf
//
// The shard map file names the backends and the table layout:
//
//   version 1
//   shard 127.0.0.1:4807
//   shard 127.0.0.1:4808
//   table lineitem partition l_orderkey
//
// Single-shard transactions pass through verbatim (1 RTT), cross-shard
// EXEC_TXN runs intent-based 2PC (the router coordinates; the lowest
// participating shard is the durable commit point), DDL fans out to
// every shard, queries scatter-gather with router-side merging.
// --allow_partial=1 lets queries answer from the reachable subset while
// a shard is down (writes to a down shard always surface as BUSY;
// --busy_retries/--busy_backoff_ms shape the router's own retry loop).
//
// SIGTERM/SIGINT drains client sessions and exits; the shards it fronts
// are separate processes and keep running.
#include <csignal>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "shard/backend_pool.h"
#include "shard/router_core.h"
#include "shard/router_server.h"
#include "shard/shard_map.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) { g_shutdown = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace anker;
  bench::Flags flags(argc, argv);

  shard::RouterServerConfig server_config;
  server_config.host = flags.Str("host", "127.0.0.1");
  server_config.port = static_cast<uint16_t>(flags.Int("port", 4800));
  server_config.auth_token = flags.Str("auth_token", "");
  server_config.max_sessions =
      static_cast<size_t>(flags.Int("max_sessions", 1024));
  server_config.max_inflight =
      static_cast<size_t>(flags.Int("max_inflight", 64));
  server_config.max_pipeline =
      static_cast<size_t>(flags.Int("max_pipeline", 64));
  server_config.idle_timeout_millis =
      static_cast<int>(flags.Int("idle_timeout_ms", 0));

  const std::string shard_map_path = flags.Str("shard_map", "");

  shard::RouterCoreConfig core_config;
  core_config.allow_partial = flags.Int("allow_partial", 0) != 0;
  core_config.busy_retry_budget =
      static_cast<int>(flags.Int("busy_retries", 4));
  core_config.busy_backoff_initial_millis =
      static_cast<int>(flags.Int("busy_backoff_ms", 5));
  core_config.intent_resolve_attempts =
      static_cast<int>(flags.Int("intent_resolve_attempts", 5));

  shard::BackendPoolConfig pool_config;
  // Backends authenticate with the same token the router accepts unless
  // overridden (heterogeneous deployments).
  pool_config.client.auth_token =
      flags.Str("shard_auth_token", server_config.auth_token);
  pool_config.client.io_timeout_millis =
      static_cast<int>(flags.Int("shard_io_timeout_ms", 30000));
  pool_config.backoff_initial_millis =
      static_cast<int>(flags.Int("shard_backoff_initial_ms", 50));
  pool_config.backoff_max_millis =
      static_cast<int>(flags.Int("shard_backoff_max_ms", 2000));
  flags.RejectUnknown();

  if (shard_map_path.empty()) {
    std::fprintf(stderr, "--shard_map=<file> is required\n");
    return 2;
  }
  auto loaded = shard::ShardMap::LoadFile(shard_map_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load shard map: %s\n",
                 loaded.status().ToString().c_str());
    return 2;
  }
  const shard::ShardMap map = loaded.TakeValue();
  std::printf("SHARD_MAP version=%u shards=%zu partitioned_tables=%zu "
              "digest=%016llx\n",
              map.version(), map.num_shards(), map.partitioned().size(),
              static_cast<unsigned long long>(map.digest()));

  shard::BackendPool pool(map.shards(), pool_config);
  shard::RouterCore core(&map, &pool, core_config);
  shard::RouterServer server(&core, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start router: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING host=%s port=%u\n", server_config.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_shutdown == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  std::printf("SHUTDOWN draining sessions\n");
  std::fflush(stdout);
  server.Shutdown();
  const server::RouterStatusOkMsg stats = core.StatusSnapshot();
  std::printf(
      "DRAINED passthrough_txns=%llu twopc_txns=%llu "
      "intent_resolutions=%llu scatter_queries=%llu "
      "single_shard_queries=%llu fanout_ops=%llu healthy=%u/%u\n",
      static_cast<unsigned long long>(stats.passthrough_txns),
      static_cast<unsigned long long>(stats.twopc_txns),
      static_cast<unsigned long long>(stats.intent_resolutions),
      static_cast<unsigned long long>(stats.scatter_queries),
      static_cast<unsigned long long>(stats.single_shard_queries),
      static_cast<unsigned long long>(stats.fanout_ops),
      stats.healthy_shards, stats.shard_count);
  std::printf("EXIT OK\n");
  return 0;
}
